//! Per-query trace span trees.
//!
//! A [`Trace`] records one query's journey through the search funnel as
//! a tree of named, timed spans with attached attributes: which
//! segments the filter fanned out to, how many branches Theorem 1
//! pruned in each, how long the exact-DTW postprocess took, how much
//! pager I/O each stage caused. It follows the same `Option<Arc<…>>`
//! no-op contract as [`Counter`](crate::Counter): a handle from
//! [`Trace::noop`] makes every operation an inlined `is_some` check —
//! no clock reads, no allocation, no locking — so the search code can
//! thread tracing unconditionally and the server can sample 1-in-N
//! queries without taxing the rest.
//!
//! Spans are identified by their creation index and carry an optional
//! parent id, so the flat span list snapshotted by [`Trace::finish`]
//! reconstructs the tree even when spans were opened concurrently from
//! parallel workers (creation order is serialized by one mutex; wall
//! times are offsets from the trace's start).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json;

/// An attribute value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// An unsigned integer (counts, bytes, ids).
    U64(u64),
    /// A float (ε values, rates).
    F64(f64),
    /// A short string (segment names, outcomes).
    Str(String),
}

impl AttrValue {
    fn to_json(&self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::F64(v) => json::num(*v),
            AttrValue::Str(s) => format!("\"{}\"", json::escape(s)),
        }
    }

    fn render(&self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::F64(v) => format!("{v}"),
            AttrValue::Str(s) => s.clone(),
        }
    }
}

/// One recorded span: a named, timed node of the trace tree.
#[derive(Clone, Debug)]
pub struct SpanData {
    /// Creation index, unique within the trace.
    pub id: u32,
    /// Parent span id; `None` for a root span.
    pub parent: Option<u32>,
    /// Stage name (e.g. `"filter"`, `"filter.segment"`).
    pub name: String,
    /// Start offset from the trace's start, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds. `0` when the span was never closed
    /// before the trace was snapshotted.
    pub dur_ns: u64,
    /// Attributes in attachment order.
    pub attrs: Vec<(String, AttrValue)>,
}

#[derive(Debug)]
struct TraceInner {
    start: Instant,
    trace_id: String,
    spans: Mutex<Vec<SpanData>>,
}

/// A handle to one query's span tree (or a no-op).
///
/// Cloning is cheap (`Arc`); all clones record into the same tree, so
/// the handle can ride along into parallel workers. Dropping every
/// clone discards the trace; call [`Trace::finish`] first to snapshot
/// it.
#[derive(Clone, Debug, Default)]
pub struct Trace(Option<Arc<TraceInner>>);

impl Trace {
    /// A live trace identified by `trace_id` (the id travels with the
    /// trace into the slow-query log and wire responses).
    pub fn active(trace_id: impl Into<String>) -> Trace {
        Trace(Some(Arc::new(TraceInner {
            start: Instant::now(),
            trace_id: trace_id.into(),
            spans: Mutex::new(Vec::new()),
        })))
    }

    /// A trace that records nothing; every operation is one branch.
    pub fn noop() -> Trace {
        Trace(None)
    }

    /// `true` when this trace records spans.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// The trace id, when active.
    pub fn id(&self) -> Option<&str> {
        self.0.as_deref().map(|i| i.trace_id.as_str())
    }

    /// Opens a root-level span named `name`.
    pub fn span(&self, name: &str) -> TraceSpan {
        self.span_with_parent(None, name)
    }

    /// Opens a span under an explicit parent id (`None` = root). This
    /// is the plumbing hook for code that carries a parent id across a
    /// clone boundary (e.g. `SearchMetrics` handing a kNN round span
    /// down to the filter it re-invokes) rather than a `&TraceSpan`.
    pub fn span_with_parent(&self, parent: Option<u32>, name: &str) -> TraceSpan {
        let Some(inner) = &self.0 else {
            return TraceSpan {
                inner: None,
                id: 0,
                start: None,
            };
        };
        let start = Instant::now();
        let start_ns = start.duration_since(inner.start).as_nanos() as u64;
        let mut spans = inner.spans.lock().expect("trace poisoned");
        let id = spans.len() as u32;
        spans.push(SpanData {
            id,
            parent,
            name: name.to_string(),
            start_ns,
            dur_ns: 0,
            attrs: Vec::new(),
        });
        TraceSpan {
            inner: Some(inner.clone()),
            id,
            start: Some(start),
        }
    }

    /// Snapshots the recorded tree; `None` for a no-op trace. The
    /// trace keeps recording — `finish` copies, it does not consume —
    /// so the caller decides when a query is "done".
    pub fn finish(&self) -> Option<TraceData> {
        let inner = self.0.as_deref()?;
        let spans = inner.spans.lock().expect("trace poisoned").clone();
        Some(TraceData {
            trace_id: inner.trace_id.clone(),
            total_ns: inner.start.elapsed().as_nanos() as u64,
            spans,
        })
    }
}

/// An open span. Records its duration when dropped (or explicitly via
/// [`TraceSpan::close`]); attributes may be attached while open.
#[derive(Debug)]
pub struct TraceSpan {
    inner: Option<Arc<TraceInner>>,
    id: u32,
    start: Option<Instant>,
}

impl TraceSpan {
    /// `true` when this span records into a live trace.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's id within its trace, `None` for a no-op span. Used
    /// with [`Trace::span_with_parent`] to parent across clone
    /// boundaries.
    pub fn span_id(&self) -> Option<u32> {
        self.inner.as_ref().map(|_| self.id)
    }

    /// Opens a child span named `name`.
    pub fn child(&self, name: &str) -> TraceSpan {
        match &self.inner {
            None => TraceSpan {
                inner: None,
                id: 0,
                start: None,
            },
            Some(inner) => Trace(Some(inner.clone())).span_with_parent(Some(self.id), name),
        }
    }

    /// Attaches an integer attribute.
    pub fn attr_u64(&self, key: &str, v: u64) {
        self.attr(key, AttrValue::U64(v));
    }

    /// Attaches a float attribute.
    pub fn attr_f64(&self, key: &str, v: f64) {
        self.attr(key, AttrValue::F64(v));
    }

    /// Attaches a string attribute.
    pub fn attr_str(&self, key: &str, v: &str) {
        self.attr(key, AttrValue::Str(v.to_string()));
    }

    fn attr(&self, key: &str, v: AttrValue) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut spans = inner.spans.lock().expect("trace poisoned");
        if let Some(s) = spans.get_mut(self.id as usize) {
            s.attrs.push((key.to_string(), v));
        }
    }

    /// Closes the span now (otherwise `Drop` does).
    pub fn close(self) {
        drop(self);
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let (Some(inner), Some(start)) = (&self.inner, self.start) else {
            return;
        };
        let dur = start.elapsed().as_nanos() as u64;
        let mut spans = inner.spans.lock().expect("trace poisoned");
        if let Some(s) = spans.get_mut(self.id as usize) {
            s.dur_ns = dur;
        }
    }
}

/// A completed trace: the flat span list (ids + parent links encode
/// the tree) plus the total wall time from trace creation to
/// [`Trace::finish`].
#[derive(Clone, Debug)]
pub struct TraceData {
    /// The id the trace was created with.
    pub trace_id: String,
    /// Nanoseconds from trace creation to the snapshot.
    pub total_ns: u64,
    /// Every span, in creation order (`spans[i].id == i`).
    pub spans: Vec<SpanData>,
}

impl TraceData {
    /// Serializes the trace as one JSON object:
    ///
    /// ```json
    /// {"trace_id":"…","total_ns":1,
    ///  "spans":[{"id":0,"parent":null,"name":"…","start_ns":0,
    ///            "dur_ns":1,"attrs":{"k":1}},…]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"trace_id\":\"{}\",\"total_ns\":{},\"spans\":[",
            json::escape(&self.trace_id),
            self.total_ns
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"attrs\":{{",
                s.id,
                match s.parent {
                    Some(p) => p.to_string(),
                    None => "null".into(),
                },
                json::escape(&s.name),
                s.start_ns,
                s.dur_ns,
            ));
            for (j, (k, v)) in s.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json::escape(k), v.to_json()));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the span tree as indented text for terminals:
    ///
    /// ```text
    /// trace 4f21c09a (2.134 ms)
    ///   filter 1.201ms  [segments=3]
    ///     filter.segment 0.331ms  [segment=0 branches_pruned=12]
    ///   postprocess 0.790ms  [postprocessed=41 false_alarms=33]
    /// ```
    pub fn render(&self) -> String {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            match s.parent {
                Some(p) if (p as usize) < self.spans.len() => children[p as usize].push(i),
                _ => roots.push(i),
            }
        }
        let mut out = format!(
            "trace {} ({:.3} ms)\n",
            self.trace_id,
            self.total_ns as f64 / 1e6
        );
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 1)).collect();
        while let Some((i, depth)) = stack.pop() {
            let s = &self.spans[i];
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{} {:.3}ms", s.name, s.dur_ns as f64 / 1e6));
            if !s.attrs.is_empty() {
                let rendered: Vec<String> = s
                    .attrs
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.render()))
                    .collect();
                out.push_str(&format!("  [{}]", rendered.join(" ")));
            }
            out.push('\n');
            for &c in children[i].iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_trace_records_nothing() {
        let t = Trace::noop();
        assert!(!t.is_active());
        assert!(t.id().is_none());
        let s = t.span("filter");
        assert!(!s.is_active());
        assert!(s.span_id().is_none());
        s.attr_u64("n", 1);
        let c = s.child("inner");
        assert!(!c.is_active());
        drop(c);
        drop(s);
        assert!(t.finish().is_none());
    }

    #[test]
    fn spans_build_a_tree_with_attrs() {
        let t = Trace::active("abc123");
        assert_eq!(t.id(), Some("abc123"));
        {
            let filter = t.span("filter");
            filter.attr_u64("segments", 2);
            {
                let seg = filter.child("filter.segment");
                seg.attr_u64("segment", 0);
                seg.attr_f64("epsilon", 2.5);
                seg.attr_str("mode", "sparse");
            }
            let _post = t.span("postprocess");
        }
        let data = t.finish().expect("active trace");
        assert_eq!(data.trace_id, "abc123");
        assert_eq!(data.spans.len(), 3);
        assert_eq!(data.spans[0].name, "filter");
        assert_eq!(data.spans[0].parent, None);
        assert_eq!(data.spans[1].name, "filter.segment");
        assert_eq!(data.spans[1].parent, Some(0));
        assert_eq!(data.spans[2].parent, None);
        assert_eq!(
            data.spans[1].attrs,
            vec![
                ("segment".to_string(), AttrValue::U64(0)),
                ("epsilon".to_string(), AttrValue::F64(2.5)),
                ("mode".to_string(), AttrValue::Str("sparse".into())),
            ]
        );
        // Closed spans carry a duration; ids index the span list.
        for (i, s) in data.spans.iter().enumerate() {
            assert_eq!(s.id as usize, i);
        }
    }

    #[test]
    fn explicit_parenting_crosses_clone_boundaries() {
        let t = Trace::active("x");
        let round = t.span("knn.round");
        let rid = round.span_id();
        let t2 = t.clone();
        let inner = t2.span_with_parent(rid, "filter");
        drop(inner);
        drop(round);
        let data = t.finish().unwrap();
        assert_eq!(data.spans[1].parent, Some(0));
    }

    #[test]
    fn json_and_render_are_well_formed() {
        let t = Trace::active("id-1");
        {
            let a = t.span("a");
            a.attr_u64("count", 3);
            let _b = a.child("b");
        }
        let data = t.finish().unwrap();
        let j = data.to_json();
        assert!(j.starts_with("{\"trace_id\":\"id-1\""));
        assert!(j.contains("\"name\":\"a\""));
        assert!(j.contains("\"attrs\":{\"count\":3}"));
        assert!(j.contains("\"parent\":0"));
        let text = data.render();
        assert!(text.starts_with("trace id-1"));
        // b nests one level deeper than a.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with("  a "));
        assert!(lines[2].starts_with("    b "));
        assert!(lines[1].contains("[count=3]"));
    }

    #[test]
    fn unclosed_spans_snapshot_with_zero_duration() {
        let t = Trace::active("z");
        let open = t.span("still-open");
        let data = t.finish().unwrap();
        assert_eq!(data.spans[0].dur_ns, 0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        open.close();
        assert!(t.finish().unwrap().spans[0].dur_ns > 0);
    }

    #[test]
    fn trace_handles_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Trace>();
        assert_send_sync::<TraceSpan>();
    }
}
