#![warn(missing_docs)]

//! # warptree-obs
//!
//! A zero-dependency observability layer for the warptree workspace:
//!
//! * [`Counter`] — monotonically increasing `u64` (atomic, relaxed).
//! * [`Gauge`] — last-written `f64` value.
//! * [`Histogram`] — log₂-bucketed distribution of `u64` samples
//!   (durations in nanoseconds, sizes in bytes) with quantile
//!   estimation and merging.
//! * [`Span`] — a scoped timing guard recording its elapsed wall time
//!   into a histogram on drop.
//! * [`Trace`]/[`TraceSpan`] — a per-query tree of named, timed stage
//!   spans with attributes, snapshotted as a [`TraceData`].
//! * [`MetricsRegistry`] — a named collection of the above, snapshotted
//!   into a [`MetricsSnapshot`] renderable as text, JSON, or the
//!   Prometheus text exposition format
//!   ([`MetricsSnapshot::to_prometheus`]).
//!
//! ## The no-op mode
//!
//! Every handle is internally an `Option<Arc<…>>`. A handle obtained
//! from [`MetricsRegistry::noop`] (or via [`Counter::noop`] etc.) holds
//! `None`, so every operation is an inlined `is_some` check and nothing
//! else — no atomics, no clock reads, no allocation. Instrumented code
//! can therefore thread metrics unconditionally through hot paths; the
//! caller decides per run whether measurement happens. The
//! `obs_overhead` benchmark in `warptree-bench` holds this contract.
//!
//! The crate is deliberately `std`-only (no serde, no chrono): snapshots
//! serialize through the hand-rolled [`json`] helpers.

mod counter;
mod hist;
pub mod json;
mod registry;
mod trace;

pub use counter::{Counter, Gauge};
pub use hist::{Histogram, HistogramSnapshot, Span};
pub use registry::{sanitize_metric_name, MetricsRegistry, MetricsSnapshot};
pub use trace::{AttrValue, SpanData, Trace, TraceData, TraceSpan};
