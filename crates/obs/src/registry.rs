//! The named metrics registry and its snapshot.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::counter::{Counter, Gauge};
use crate::hist::{HistInner, Histogram, HistogramSnapshot};
use crate::json;

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistInner>),
}

struct RegistryInner {
    map: Mutex<BTreeMap<String, Metric>>,
    /// Monotonic creation time; snapshots report their age against it
    /// so scrapes can turn lifetime totals into true rates.
    created: Instant,
    /// Wall-clock creation time (ms since the Unix epoch), so a
    /// snapshot can stamp itself with an absolute timestamp without a
    /// second `SystemTime` syscall per scrape.
    created_unix_ms: u64,
}

fn unix_ms_now() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// A named collection of metrics shared across a process.
///
/// Cloning is cheap (an `Arc`); all clones address the same metrics.
/// Handles returned for the same name share one cell, so independent
/// subsystems can meter into a common counter by agreeing on its name.
/// Names are conventionally dotted paths (`"disk.vfs.read_bytes"`,
/// `"search.branches_pruned"`).
///
/// [`MetricsRegistry::noop`] yields a registry whose handles are all
/// no-ops — instrumented code paths need no `if` around their metric
/// updates.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// A live registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner {
                map: Mutex::new(BTreeMap::new()),
                created: Instant::now(),
                created_unix_ms: unix_ms_now(),
            })),
        }
    }

    /// A registry that registers nothing and hands out no-op handles.
    pub fn noop() -> Self {
        MetricsRegistry { inner: None }
    }

    /// `true` when this registry records metrics.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let mut map = inner.map.lock().expect("metrics registry poisoned");
        let metric = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Counter(cell) => Counter::from_cell(cell.clone()),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::noop();
        };
        let mut map = inner.map.lock().expect("metrics registry poisoned");
        let metric = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match metric {
            Metric::Gauge(cell) => Gauge::from_cell(cell.clone()),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::noop();
        };
        let mut map = inner.map.lock().expect("metrics registry poisoned");
        let metric = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistInner::new())));
        match metric {
            Metric::Histogram(inner) => Histogram::from_inner(inner.clone()),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Sets the gauge `name` to `v` (registering it on first use).
    pub fn set_gauge(&self, name: &str, v: f64) {
        if self.is_active() {
            self.gauge(name).set(v);
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        snap.uptime_ms = inner.created.elapsed().as_millis() as u64;
        // Derived from the cached creation wall-clock so a scrape costs
        // no extra syscall; drift against a stepped system clock is
        // acceptable for a telemetry timestamp.
        snap.snapshot_unix_ms = inner.created_unix_ms.saturating_add(snap.uptime_ms);
        let map = inner.map.lock().expect("metrics registry poisoned");
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(cell) => {
                    snap.counters.insert(
                        name.clone(),
                        cell.load(std::sync::atomic::Ordering::Relaxed),
                    );
                }
                Metric::Gauge(cell) => {
                    snap.gauges.insert(
                        name.clone(),
                        f64::from_bits(cell.load(std::sync::atomic::Ordering::Relaxed)),
                    );
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// An owned, point-in-time copy of a [`MetricsRegistry`].
///
/// Renders as aligned text via [`fmt::Display`] and as JSON via
/// [`MetricsSnapshot::to_json`]. The JSON shape is stable — CI
/// validates it — and is:
///
/// ```json
/// {
///   "uptime_ms": 1, "snapshot_unix_ms": 1,
///   "counters": { "name": 1, … },
///   "gauges": { "name": 1.5, … },
///   "histograms": {
///     "name": { "count": 1, "sum": 1, "min": 1, "max": 1,
///                "mean": 1.0, "p50": 1, "p90": 1, "p99": 1 }, …
///   }
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotonic milliseconds from registry creation to this snapshot
    /// — the denominator for turning lifetime counter totals into true
    /// rates. `0` for a no-op registry.
    pub uptime_ms: u64,
    /// Wall-clock snapshot time, milliseconds since the Unix epoch.
    /// `0` for a no-op registry.
    pub snapshot_unix_ms: u64,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram distributions by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// `true` when nothing was registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"uptime_ms\":{},\"snapshot_unix_ms\":{},\"counters\":{{",
            self.uptime_ms, self.snapshot_unix_ms
        );
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json::escape(name), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json::escape(name), json::num(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                json::escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                json::num(h.mean()),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
            ));
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` line per metric, dotted names
    /// sanitized to `[a-zA-Z0-9_]`, histograms rendered as summaries
    /// with `quantile` labels plus `_sum`/`_count` series. Names that
    /// collide after sanitization keep the first occurrence — the
    /// exposition never emits a duplicate series.
    pub fn to_prometheus(&self) -> String {
        fn val(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "NaN".to_string()
            }
        }
        let mut out = String::new();
        let mut seen = std::collections::BTreeSet::new();
        out.push_str("# TYPE uptime_ms gauge\n");
        out.push_str(&format!("uptime_ms {}\n", self.uptime_ms));
        seen.insert("uptime_ms".to_string());
        for (name, v) in &self.counters {
            let name = sanitize_metric_name(name);
            if !seen.insert(name.clone()) {
                continue;
            }
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let name = sanitize_metric_name(name);
            if !seen.insert(name.clone()) {
                continue;
            }
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", val(*v)));
        }
        for (name, h) in &self.histograms {
            let name = sanitize_metric_name(name);
            if !seen.insert(name.clone()) {
                continue;
            }
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

/// Maps a dotted metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`,
/// and a leading digit gets a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|n| n.len())
            .max()
            .unwrap_or(0);
        for (name, v) in &self.counters {
            writeln!(f, "{name:<width$}  {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "{name:<width$}  {v:.4}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "{name:<width$}  count={} sum={} min={} p50={} p90={} max={}",
                h.count,
                h.sum,
                h.min,
                h.quantile(0.5),
                h.quantile(0.9),
                h.max,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_handles_share_cells() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.total");
        let b = reg.counter("x.total");
        a.incr();
        b.add(2);
        assert_eq!(reg.snapshot().counters["x.total"], 3);
    }

    #[test]
    fn noop_registry_hands_out_noop_handles() {
        let reg = MetricsRegistry::noop();
        let c = reg.counter("x");
        let h = reg.histogram("y");
        c.incr();
        h.record(5);
        reg.set_gauge("z", 1.0);
        assert!(!c.is_active());
        assert!(!h.is_active());
        assert!(reg.snapshot().is_empty());
        assert!(!reg.is_active());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn snapshot_carries_uptime_and_timestamp() {
        let reg = MetricsRegistry::new();
        reg.counter("a").incr();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let snap = reg.snapshot();
        assert!(snap.uptime_ms >= 2, "uptime_ms = {}", snap.uptime_ms);
        // A real wall clock (2020-01-01 in ms is ~1.577e12).
        assert!(snap.snapshot_unix_ms > 1_577_000_000_000);
        let j = snap.to_json();
        assert!(j.starts_with("{\"uptime_ms\":"), "{j}");
        assert!(j.contains("\"snapshot_unix_ms\":"));
        // A no-op registry reports neither.
        let empty = MetricsRegistry::noop().snapshot();
        assert_eq!(empty.uptime_ms, 0);
        assert_eq!(empty.snapshot_unix_ms, 0);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("server.requests_ok").add(3);
        reg.set_gauge("server.queue_depth", 2.0);
        reg.histogram("server.request_ns").record(1000);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE server_requests_ok counter\n"));
        assert!(text.contains("server_requests_ok 3\n"));
        assert!(text.contains("# TYPE server_queue_depth gauge\n"));
        assert!(text.contains("server_queue_depth 2\n"));
        assert!(text.contains("# TYPE server_request_ns summary\n"));
        assert!(text.contains("server_request_ns{quantile=\"0.5\"}"));
        assert!(text.contains("server_request_ns_sum 1000\n"));
        assert!(text.contains("server_request_ns_count 1\n"));
        assert!(text.contains("# TYPE uptime_ms gauge\n"));
        // No duplicate bare series names.
        let mut names = std::collections::BTreeSet::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let bare = line.split(['{', ' ']).next().unwrap().to_string();
            assert!(
                bare.ends_with("_sum")
                    || bare.ends_with("_count")
                    || line.contains("quantile=")
                    || names.insert(bare.clone()),
                "duplicate series {bare:?}"
            );
        }
    }

    #[test]
    fn sanitizer_maps_to_prometheus_grammar() {
        assert_eq!(
            sanitize_metric_name("disk.vfs.read_bytes"),
            "disk_vfs_read_bytes"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn snapshot_renders_text_and_json() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(7);
        reg.set_gauge("b.rate", 0.5);
        reg.histogram("c.ns").record(100);
        let snap = reg.snapshot();
        let text = snap.to_string();
        assert!(text.contains("a.count"));
        assert!(text.contains('7'));
        let j = snap.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"a.count\":7"));
        assert!(j.contains("\"b.rate\":0.5"));
        assert!(j.contains("\"count\":1"));
    }
}
