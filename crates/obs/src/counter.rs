//! Counters and gauges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell: all clones observe the same
/// total. The no-op variant ([`Counter::noop`]) ignores every update at
/// the cost of a single inlined branch.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A live counter, detached from any registry.
    pub fn active() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// A counter that ignores all updates.
    pub fn noop() -> Self {
        Counter(None)
    }

    pub(crate) fn from_cell(cell: Arc<AtomicU64>) -> Self {
        Counter(Some(cell))
    }

    /// `true` when updates are recorded (not the no-op variant).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total (0 for the no-op variant).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A gauge holding the last value written (an `f64` stored as bits).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A live gauge, detached from any registry. Initial value `0.0`.
    pub fn active() -> Self {
        Gauge(Some(Arc::new(AtomicU64::new(0f64.to_bits()))))
    }

    /// A gauge that ignores all updates.
    pub fn noop() -> Self {
        Gauge(None)
    }

    pub(crate) fn from_cell(cell: Arc<AtomicU64>) -> Self {
        Gauge(Some(cell))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// The last value written (`0.0` for the no-op variant).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_shares() {
        let c = Counter::active();
        let c2 = c.clone();
        c.incr();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c2.get(), 5);
        assert!(c.is_active());
    }

    #[test]
    fn noop_counter_ignores_updates() {
        let c = Counter::noop();
        c.add(100);
        assert_eq!(c.get(), 0);
        assert!(!c.is_active());
    }

    #[test]
    fn gauge_keeps_last_value() {
        let g = Gauge::active();
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
        let noop = Gauge::noop();
        noop.set(9.0);
        assert_eq!(noop.get(), 0.0);
    }
}
