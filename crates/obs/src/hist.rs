//! Log₂-bucketed histograms and scoped timing spans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of buckets: bucket 0 holds the value 0, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i − 1]`.
pub(crate) const BUCKETS: usize = 65;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (saturating for the last bucket).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
pub(crate) struct HistInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistInner {
    pub(crate) fn new() -> Self {
        HistInner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A histogram of `u64` samples in logarithmic (power-of-two) buckets.
///
/// Intended for durations in nanoseconds and sizes in bytes, where a
/// factor-of-two resolution is plenty. Cloning shares the underlying
/// buckets; [`Histogram::noop`] drops every sample for the cost of one
/// branch.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistInner>>);

impl Histogram {
    /// A live histogram, detached from any registry.
    pub fn active() -> Self {
        Histogram(Some(Arc::new(HistInner::new())))
    }

    /// A histogram that drops every sample.
    pub fn noop() -> Self {
        Histogram(None)
    }

    pub(crate) fn from_inner(inner: Arc<HistInner>) -> Self {
        Histogram(Some(inner))
    }

    /// `true` when samples are recorded (not the no-op variant).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(inner) = &self.0 {
            inner.record(v);
        }
    }

    /// Starts a timing span that records its elapsed nanoseconds into
    /// this histogram when dropped. On a no-op histogram the span never
    /// reads the clock.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span {
            hist: self,
            start: if self.is_active() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |inner| inner.snapshot())
    }
}

/// A scoped timing guard: created by [`Histogram::span`], records the
/// elapsed wall time (in nanoseconds) on drop. Spans nest naturally —
/// an outer span's sample covers the time spent in inner spans.
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
        }
    }
}

/// An owned, point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts; bucket `i ≥ 1` covers
    /// `[2^(i-1), 2^i − 1]`, bucket 0 the value 0.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) as the upper bound
    /// of the bucket containing it, clamped into `[min, max]`. Exact to
    /// within the factor-of-two bucket resolution.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        debug_assert_eq!(self.buckets.len(), other.buckets.len());
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn records_land_in_the_right_buckets() {
        let h = Histogram::active();
        for v in [0u64, 1, 2, 3, 4, 1000, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 2034);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[10], 1); // 1000
        assert_eq!(s.buckets[11], 1); // 1024
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let h = Histogram::active();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // p50 of 1..=100 is 50: its bucket [32, 63] upper bound is 63.
        assert_eq!(s.quantile(0.5), 63);
        // p100 clamps to the observed max.
        assert_eq!(s.quantile(1.0), 100);
        // p0 returns the first non-empty bucket, clamped to min.
        assert_eq!(s.quantile(0.0), 1);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_benign() {
        let s = Histogram::active().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn merge_combines_distributions() {
        let a = Histogram::active();
        let b = Histogram::active();
        a.record(1);
        a.record(2);
        b.record(1000);
        let mut sa = a.snapshot();
        let sb = b.snapshot();
        sa.merge(&sb);
        assert_eq!(sa.count, 3);
        assert_eq!(sa.sum, 1003);
        assert_eq!(sa.min, 1);
        assert_eq!(sa.max, 1000);
        assert_eq!(sa.buckets[1], 1);
        assert_eq!(sa.buckets[2], 1);
        assert_eq!(sa.buckets[10], 1);
        // Merging into an empty snapshot preserves min.
        let mut empty = HistogramSnapshot::empty();
        empty.merge(&sb);
        assert_eq!(empty.min, 1000);
        assert_eq!(empty.count, 1);
    }

    #[test]
    fn empty_snapshot_quantiles_are_zero_at_every_q() {
        let s = HistogramSnapshot::empty();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0, "q={q}");
        }
        // Out-of-range q values clamp instead of panicking.
        assert_eq!(s.quantile(-1.0), 0);
        assert_eq!(s.quantile(2.0), 0);
    }

    #[test]
    fn top_bucket_saturates_at_u64_max() {
        let h = Histogram::active();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1u64 << 63); // same (top) bucket, smaller value
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[64], 3);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.min, 1u64 << 63);
        // The top bucket's upper bound is u64::MAX, clamped to the
        // observed max — no overflow in `bucket_upper`.
        assert_eq!(s.quantile(0.99), u64::MAX);
        // All samples share the top bucket, so even p0 reports that
        // bucket's upper bound (clamped to the observed max).
        assert_eq!(s.quantile(0.0), u64::MAX);
        // The sum wrapped (MAX + MAX + 2^63 mod 2^64) rather than
        // panicking in the atomic add.
        assert_eq!(
            s.sum,
            u64::MAX.wrapping_add(u64::MAX).wrapping_add(1u64 << 63)
        );
    }

    #[test]
    fn merge_of_disjoint_bucket_histograms_keeps_both_tails() {
        // a populates only low buckets, b only the top bucket; the
        // merged distribution must report quantiles spanning both.
        let a = Histogram::active();
        let b = Histogram::active();
        for _ in 0..9 {
            a.record(1);
        }
        b.record(u64::MAX);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 10);
        assert_eq!(m.min, 1);
        assert_eq!(m.max, u64::MAX);
        assert_eq!(m.buckets[1], 9);
        assert_eq!(m.buckets[64], 1);
        // p50 sits in the low tail, p99 in the top bucket.
        assert_eq!(m.quantile(0.5), 1);
        assert_eq!(m.quantile(0.99), u64::MAX);
        // Merging in the other order gives the identical snapshot.
        let mut m2 = b.snapshot();
        m2.merge(&a.snapshot());
        assert_eq!(m, m2);
    }

    #[test]
    fn spans_nest_and_accumulate() {
        let outer = Histogram::active();
        let inner = Histogram::active();
        {
            let _o = outer.span();
            for _ in 0..3 {
                let _i = inner.span();
                std::hint::black_box(0u64);
            }
        }
        let so = outer.snapshot();
        let si = inner.snapshot();
        assert_eq!(so.count, 1);
        assert_eq!(si.count, 3);
        // The outer span's time covers all inner spans.
        assert!(so.sum >= si.sum, "outer {} < inner {}", so.sum, si.sum);
    }

    #[test]
    fn noop_histogram_and_span_record_nothing() {
        let h = Histogram::noop();
        h.record(7);
        {
            let _s = h.span();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert!(!h.is_active());
    }
}
