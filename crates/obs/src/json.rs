//! Minimal JSON emission helpers (the workspace has no serde).
//!
//! Only what the snapshot/report writers need: string escaping and
//! locale-independent number formatting. Parsing is out of scope.

/// Escapes `s` for inclusion in a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value: finite numbers in `{}` format
/// (always containing enough precision to round-trip), non-finite
/// values as `null` (JSON has no NaN/Infinity).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a fractional part, which
        // is still valid JSON — keep it.
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(3.0), "3");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
