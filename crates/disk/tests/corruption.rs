//! Corruption robustness: any byte flip anywhere in a tree file must be
//! *detected* (surfaced as an error), never silently change answers or
//! panic the reader — every page is covered by its CRC.

use proptest::prelude::*;
use std::sync::Arc;
use warptree_core::categorize::CatStore;
use warptree_core::search::SuffixTreeIndex;
use warptree_disk::{write_tree, DiskError, DiskTree};
use warptree_suffix::build_full;

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("warptree-corrupt-{}-{tag}.wt", std::process::id()))
}

fn build_file(tag: &str) -> (std::path::PathBuf, Arc<CatStore>) {
    let cat = Arc::new(CatStore::from_symbols(
        (0..8)
            .map(|i| (0..24).map(|j| ((i * 5 + j) % 4) as u32).collect())
            .collect(),
        4,
    ));
    let tree = build_full(cat.clone());
    let path = tmp(tag);
    write_tree(&tree, &path).unwrap();
    (path, cat)
}

/// Fully traverses a disk tree, returning an error if any read fails.
fn try_traverse(tree: &DiskTree) -> Result<u64, DiskError> {
    let mut count = 0u64;
    let mut stack = vec![tree.header().root_offset];
    while let Some(off) = stack.pop() {
        let node = tree.read_node(off)?;
        count += node.suffixes.len() as u64;
        for &(_, c) in &node.children {
            stack.push(c);
        }
    }
    Ok(count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any single byte of the file is detected at open or
    /// during a full traversal.
    #[test]
    fn single_byte_flip_detected(pos_seed in any::<u64>(), bit in 0u8..8) {
        let (path, cat) = build_file(&format!("flip-{pos_seed}-{bit}"));
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let outcome = DiskTree::open(&path, cat, 8, 16)
            .and_then(|t| try_traverse(&t));
        prop_assert!(
            outcome.is_err(),
            "flip at byte {pos} bit {bit} went undetected"
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// Truncating the file is detected.
    #[test]
    fn truncation_detected(keep_fraction in 1u32..99) {
        let (path, cat) =
            build_file(&format!("trunc-{keep_fraction}"));
        let bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len() * keep_fraction as usize / 100;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let outcome = DiskTree::open(&path, cat, 8, 16)
            .and_then(|t| try_traverse(&t));
        prop_assert!(outcome.is_err(), "truncation to {keep} undetected");
        std::fs::remove_file(&path).unwrap();
    }
}

/// The pristine file traverses fine (sanity for the tests above).
#[test]
fn pristine_file_traverses() {
    let (path, cat) = build_file("pristine");
    let tree = DiskTree::open(&path, cat, 8, 16).unwrap();
    let suffixes = try_traverse(&tree).unwrap();
    assert_eq!(suffixes, tree.suffix_count());
    std::fs::remove_file(&path).unwrap();
}
