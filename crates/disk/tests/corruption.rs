//! Corruption robustness: any byte flip anywhere in a tree *or corpus*
//! file must be *detected* (surfaced as an error), never silently change
//! answers or panic the reader — every page is covered by its CRC.

use proptest::prelude::*;
use std::sync::Arc;
use warptree_core::categorize::{Alphabet, CatStore};
use warptree_core::search::IndexBackend;
use warptree_core::sequence::SequenceStore;
use warptree_disk::{load_corpus, save_corpus, write_tree, DiskError, DiskTree};
use warptree_suffix::build_full;

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("warptree-corrupt-{}-{tag}.wt", std::process::id()))
}

fn build_file(tag: &str) -> (std::path::PathBuf, Arc<CatStore>) {
    let cat = Arc::new(CatStore::from_symbols(
        (0..8)
            .map(|i| (0..24).map(|j| ((i * 5 + j) % 4) as u32).collect())
            .collect(),
        4,
    ));
    let tree = build_full(cat.clone());
    let path = tmp(tag);
    write_tree(&tree, &path).unwrap();
    (path, cat)
}

/// Fully traverses a disk tree, returning an error if any read fails.
fn try_traverse(tree: &DiskTree) -> Result<u64, DiskError> {
    let mut count = 0u64;
    let mut stack = vec![tree.header().root_offset];
    while let Some(off) = stack.pop() {
        let node = tree.read_node(off)?;
        count += node.suffixes.len() as u64;
        for &(_, c) in &node.children {
            stack.push(c);
        }
    }
    Ok(count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any single byte of the file is detected at open or
    /// during a full traversal.
    #[test]
    fn single_byte_flip_detected(pos_seed in any::<u64>(), bit in 0u8..8) {
        let (path, cat) = build_file(&format!("flip-{pos_seed}-{bit}"));
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let outcome = DiskTree::open(&path, cat, 8, 16)
            .and_then(|t| try_traverse(&t));
        prop_assert!(
            outcome.is_err(),
            "flip at byte {pos} bit {bit} went undetected"
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// Truncating the file is detected.
    #[test]
    fn truncation_detected(keep_fraction in 1u32..99) {
        let (path, cat) =
            build_file(&format!("trunc-{keep_fraction}"));
        let bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len() * keep_fraction as usize / 100;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let outcome = DiskTree::open(&path, cat, 8, 16)
            .and_then(|t| try_traverse(&t));
        prop_assert!(outcome.is_err(), "truncation to {keep} undetected");
        std::fs::remove_file(&path).unwrap();
    }
}

/// The pristine file traverses fine (sanity for the tests above).
#[test]
fn pristine_file_traverses() {
    let (path, cat) = build_file("pristine");
    let tree = DiskTree::open(&path, cat, 8, 16).unwrap();
    let suffixes = try_traverse(&tree).unwrap();
    assert_eq!(suffixes, tree.suffix_count());
    std::fs::remove_file(&path).unwrap();
}

fn build_corpus_file(tag: &str) -> std::path::PathBuf {
    let store = SequenceStore::from_values(
        (0..6)
            .map(|i| {
                (0..20)
                    .map(|j| ((i * 7 + j * 3) % 11) as f64)
                    .collect::<Vec<f64>>()
            })
            .collect::<Vec<_>>(),
    );
    let alphabet = Alphabet::max_entropy(&store, 5).unwrap();
    let path = tmp(tag);
    save_corpus(&store, &alphabet, &path).unwrap();
    path
}

/// Every single-byte flip of a corpus file must make `load_corpus`
/// return an error — never panic, never hand back altered sequences or
/// boundaries. Deterministic sweep: a stride of byte positions covering
/// header, category table, and sequence data, with every bit tried at
/// each position.
#[test]
fn corpus_byte_flip_detected() {
    let path = build_corpus_file("corpus-flip");
    let pristine = std::fs::read(&path).unwrap();
    assert!(load_corpus(&path).is_ok(), "pristine corpus must load");
    let stride = (pristine.len() / 97).max(1);
    for pos in (0..pristine.len()).step_by(stride) {
        for bit in 0..8u8 {
            let mut bytes = pristine.clone();
            bytes[pos] ^= 1 << bit;
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                load_corpus(&path).is_err(),
                "corpus flip at byte {pos} bit {bit} went undetected"
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// Truncating a corpus file to any page-aligned or unaligned length is
/// detected at load.
#[test]
fn corpus_truncation_detected() {
    let path = build_corpus_file("corpus-trunc");
    let pristine = std::fs::read(&path).unwrap();
    for keep_fraction in [1usize, 13, 42, 50, 77, 99] {
        let keep = pristine.len() * keep_fraction / 100;
        std::fs::write(&path, &pristine[..keep]).unwrap();
        assert!(
            load_corpus(&path).is_err(),
            "corpus truncation to {keep} bytes went undetected"
        );
    }
    std::fs::remove_file(&path).unwrap();
}
