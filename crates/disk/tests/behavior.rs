//! Behavioural tests of the disk layer: node-cache effectiveness,
//! merge preconditions, and builder edge cases.

use std::sync::Arc;
use warptree_core::categorize::CatStore;
use warptree_core::search::IndexBackend;
use warptree_disk::{merge_trees, write_tree, DiskTree, IncrementalBuilder, TreeKind};
use warptree_suffix::{build_full, build_full_truncated, TruncateSpec};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-behavior-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn small_cat() -> Arc<CatStore> {
    Arc::new(CatStore::from_symbols(
        vec![vec![0, 1, 2, 1, 0, 2], vec![2, 2, 1]],
        3,
    ))
}

#[test]
fn node_cache_avoids_repeated_page_reads() {
    let cat = small_cat();
    let tree = build_full(cat.clone());
    let dir = tmpdir("cache");
    let path = dir.join("t.wt");
    write_tree(&tree, &path).unwrap();
    let disk = DiskTree::open(&path, cat, 4, 128).unwrap();
    // Walk the whole tree twice; the second pass must be nearly free.
    let mut n1 = 0u64;
    disk.for_each_suffix_below(disk.root(), &mut |_, _, _| n1 += 1);
    let after_first = disk.io_stats();
    let mut n2 = 0u64;
    disk.for_each_suffix_below(disk.root(), &mut |_, _, _| n2 += 1);
    let after_second = disk.io_stats();
    assert_eq!(n1, n2);
    // The decoded-node cache absorbs the second traversal entirely: no
    // new page reads or page-cache hits (records never touch the pager).
    assert_eq!(after_second.pages_read, after_first.pages_read);
    assert_eq!(after_second.cache_hits, after_first.cache_hits);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
#[should_panic(expected = "depth limits")]
fn merge_rejects_mismatched_depth_limits() {
    let cat = small_cat();
    let full = build_full(cat.clone());
    let trunc = build_full_truncated(
        cat.clone(),
        TruncateSpec {
            max_answer_len: 2,
            min_answer_len: 1,
        },
    );
    let dir = tmpdir("mismatch");
    let (p1, p2) = (dir.join("a.wt"), dir.join("b.wt"));
    write_tree(&full, &p1).unwrap();
    write_tree(&trunc, &p2).unwrap();
    let a = DiskTree::open(&p1, cat.clone(), 4, 16).unwrap();
    let b = DiskTree::open(&p2, cat.clone(), 4, 16).unwrap();
    let _ = merge_trees(&a, &b, &cat, &dir.join("m.wt"));
}

#[test]
fn incremental_builder_handles_empty_store() {
    let cat = Arc::new(CatStore::from_symbols(vec![], 2));
    let dir = tmpdir("empty");
    let out = dir.join("index.wt");
    IncrementalBuilder::new(cat.clone(), TreeKind::Sparse, 4, dir.clone())
        .build(&out)
        .unwrap();
    let disk = DiskTree::open(&out, cat, 4, 16).unwrap();
    assert_eq!(disk.suffix_count(), 0);
    assert!(disk.is_sparse());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopening_with_tiny_caches_matches_large_caches() {
    let cat = small_cat();
    let tree = build_full(cat.clone());
    let dir = tmpdir("caches");
    let path = dir.join("t.wt");
    write_tree(&tree, &path).unwrap();
    let collect = |pages: usize, nodes: usize| {
        let disk = DiskTree::open(&path, cat.clone(), pages, nodes).unwrap();
        let mut v = Vec::new();
        disk.for_each_suffix_below(disk.root(), &mut |s, p, r| v.push((s, p, r)));
        v.sort();
        v
    };
    assert_eq!(collect(1, 1), collect(64, 1024));
    std::fs::remove_dir_all(&dir).unwrap();
}
