//! Fault-injection sweep over every I/O operation of build, rebuild,
//! and append.
//!
//! Each scenario first runs against a counting [`FaultVfs`] that never
//! fires, to learn the total number of filesystem operations `T`; it is
//! then re-run `2·T` times, injecting a fault at operation `k` for every
//! `k ∈ 1..=T` in both fault modes:
//!
//! * [`FaultMode::Error`] — operation `k` fails once (transient error).
//!   The mutation must return an error that leaves no `*.tmp` litter
//!   behind, or succeed (when the failed operation was best-effort
//!   cleanup), and the directory must remain fully consistent.
//! * [`FaultMode::Crash`] — operation `k` and everything after it fail
//!   (process death). Reopening the directory with the real filesystem
//!   must recover: the complete old or the complete new state, search
//!   results identical to a sequential scan, and no `*.tmp` files after
//!   recovery.
//!
//! Nothing here may panic, whatever `k` is.

use std::path::Path;
use std::sync::Arc;

use warptree_core::categorize::Alphabet;
use warptree_core::search::{
    run_query, seq_scan, QueryRequest, SearchParams, SearchStats, SeqScanMode,
};
use warptree_core::sequence::SequenceStore;
use warptree_disk::{
    append_to_index_dir_with, build_dir_with, load_corpus, recover_dir_with, resolve_dir_with,
    verify_dir_with, DiskError, DiskTree, FaultMode, FaultVfs, RealVfs, TreeKind, Vfs,
};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn initial_store() -> SequenceStore {
    SequenceStore::from_values(vec![vec![1.0, 5.0, 3.0, 5.0, 1.0], vec![4.0, 4.0, 2.0]])
}

fn extra_store() -> SequenceStore {
    SequenceStore::from_values(vec![vec![0.0, 9.0, 5.0, 5.0]])
}

fn combined_store() -> SequenceStore {
    SequenceStore::from_values(vec![
        vec![1.0, 5.0, 3.0, 5.0, 1.0],
        vec![4.0, 4.0, 2.0],
        vec![0.0, 9.0, 5.0, 5.0],
    ])
}

fn stores_equal(a: &SequenceStore, b: &SequenceStore) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|((_, x), (_, y))| x.values() == y.values())
}

fn no_tmp_files(dir: &Path) -> bool {
    std::fs::read_dir(dir)
        .unwrap()
        .all(|e| !e.unwrap().file_name().to_string_lossy().ends_with(".tmp"))
}

/// Builds a committed (generation 1) index directory with the real
/// filesystem; the fixture every append/rebuild sweep starts from.
fn committed_base(dir: &Path, store: &SequenceStore) {
    let alphabet = Alphabet::max_entropy(store, 6).unwrap();
    build_dir_with(
        warptree_disk::real_vfs(),
        store,
        &alphabet,
        TreeKind::Full,
        1,
        1,
        None,
        dir,
    )
    .unwrap();
}

/// Asserts the directory recovers to one of `expected` complete states:
/// it resolves, sweeps clean, verifies, and answers every probe query
/// exactly like a sequential scan over whichever store it holds.
fn assert_recovers_to_one_of(dir: &Path, expected: &[&SequenceStore], context: &str) {
    let (resolved, _report) = recover_dir_with(&RealVfs, dir)
        .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
    assert!(no_tmp_files(dir), "{context}: *.tmp left after recovery");
    let (store, alphabet, cat) = load_corpus(&resolved.corpus_path)
        .unwrap_or_else(|e| panic!("{context}: corpus unreadable after recovery: {e}"));
    assert!(
        expected.iter().any(|e| stores_equal(&store, e)),
        "{context}: recovered store ({} sequences) is neither old nor new",
        store.len()
    );
    let verify =
        verify_dir_with(&RealVfs, dir).unwrap_or_else(|e| panic!("{context}: verify errored: {e}"));
    assert!(verify.is_ok(), "{context}: verify failed:\n{verify}");
    let tree = DiskTree::open(&resolved.index_path, cat, 32, 256)
        .unwrap_or_else(|e| panic!("{context}: tree unreadable after recovery: {e}"));
    for q in [vec![5.0, 5.0], vec![3.0], vec![9.0, 5.0]] {
        let params = SearchParams::with_epsilon(1.0);
        let (got, _) = run_query(
            &tree,
            &alphabet,
            &store,
            &QueryRequest::threshold_params(&q, params.clone()),
        )
        .unwrap();
        let got = got.into_answer_set();
        let mut stats = SearchStats::default();
        let want = seq_scan(&store, &q, &params, SeqScanMode::Full, &mut stats);
        assert_eq!(
            got.occurrence_set(),
            want.occurrence_set(),
            "{context}: search diverges from seq_scan for q={q:?}"
        );
    }
}

/// Runs one fresh build attempt through `vfs`, returning whether it
/// reported success.
fn try_build(vfs: Arc<dyn Vfs>, store: &SequenceStore, dir: &Path) -> Result<(), DiskError> {
    let alphabet = Alphabet::max_entropy(store, 6).unwrap();
    build_dir_with(vfs, store, &alphabet, TreeKind::Full, 1, 1, None, dir).map(|_| ())
}

/// Operations a fresh build of `initial_store` performs.
fn count_build_ops(dir: &Path) -> u64 {
    let vfs = FaultVfs::new(u64::MAX, FaultMode::Error);
    try_build(vfs.clone(), &initial_store(), dir).unwrap();
    vfs.ops()
}

#[test]
fn build_fault_sweep() {
    let probe_dir = tmpdir("build-probe");
    let total = count_build_ops(&probe_dir);
    std::fs::remove_dir_all(&probe_dir).unwrap();
    assert!(total > 10, "implausibly few operations counted: {total}");

    let store = initial_store();
    for mode in [FaultMode::Error, FaultMode::Crash] {
        for k in 1..=total {
            let context = format!("build {mode:?} k={k}");
            let dir = tmpdir("build-sweep");
            let vfs = FaultVfs::new(k, mode);
            let result = try_build(vfs, &store, &dir);
            match result {
                // Success despite the fault: it hit a best-effort
                // operation. The directory must be fully committed.
                Ok(()) => assert_recovers_to_one_of(&dir, &[&store], &context),
                Err(_) => match resolve_dir_with(&RealVfs, &dir) {
                    // Committed before the fault surfaced.
                    Ok(_) => assert_recovers_to_one_of(&dir, &[&store], &context),
                    // Nothing committed: acceptable for a fresh build —
                    // "the old state" of a fresh directory is empty. A
                    // retry with a healthy filesystem must succeed.
                    Err(DiskError::NotAnIndexDir(_)) => {
                        if mode == FaultMode::Error {
                            assert!(no_tmp_files(&dir), "{context}: *.tmp after error");
                        }
                        try_build(warptree_disk::real_vfs(), &store, &dir)
                            .unwrap_or_else(|e| panic!("{context}: retry failed: {e}"));
                        assert_recovers_to_one_of(&dir, &[&store], &context);
                    }
                    Err(e) => panic!("{context}: directory unrecoverable: {e}"),
                },
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn append_fault_sweep() {
    // Count operations of one full append (including its recovery scan).
    let probe_dir = tmpdir("append-probe");
    committed_base(&probe_dir, &initial_store());
    let counter = FaultVfs::new(u64::MAX, FaultMode::Error);
    append_to_index_dir_with(counter.as_ref(), &probe_dir, &extra_store()).unwrap();
    let total = counter.ops();
    std::fs::remove_dir_all(&probe_dir).unwrap();
    assert!(total > 10, "implausibly few operations counted: {total}");

    let old = initial_store();
    let new = combined_store();
    for mode in [FaultMode::Error, FaultMode::Crash] {
        for k in 1..=total {
            let context = format!("append {mode:?} k={k}");
            let dir = tmpdir("append-sweep");
            committed_base(&dir, &old);
            let vfs = FaultVfs::new(k, mode);
            let result = append_to_index_dir_with(vfs.as_ref(), &dir, &extra_store());
            if mode == FaultMode::Error && result.is_err() {
                // A transient error must have cleaned up after itself
                // already — before any recovery pass.
                assert!(no_tmp_files(&dir), "{context}: error path leaked *.tmp");
            }
            // Whatever happened, the directory must reopen to the
            // complete old or complete new state.
            assert_recovers_to_one_of(&dir, &[&old, &new], &context);
            if result.is_ok() {
                let resolved = resolve_dir_with(&RealVfs, &dir).unwrap();
                let (store, _, _) = load_corpus(&resolved.corpus_path).unwrap();
                assert!(
                    stores_equal(&store, &new),
                    "{context}: append reported success but holds the old state"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn rebuild_fault_sweep() {
    // Rebuilding over a committed directory must preserve the old index
    // until the commit point: the directory is never unresolvable.
    let old = initial_store();
    let new = combined_store();
    let new_alphabet = Alphabet::max_entropy(&new, 6).unwrap();

    let probe_dir = tmpdir("rebuild-probe");
    committed_base(&probe_dir, &old);
    let counter = FaultVfs::new(u64::MAX, FaultMode::Error);
    build_dir_with(
        counter.clone(),
        &new,
        &new_alphabet,
        TreeKind::Full,
        1,
        1,
        None,
        &probe_dir,
    )
    .unwrap();
    let total = counter.ops();
    std::fs::remove_dir_all(&probe_dir).unwrap();

    for mode in [FaultMode::Error, FaultMode::Crash] {
        for k in 1..=total {
            let context = format!("rebuild {mode:?} k={k}");
            let dir = tmpdir("rebuild-sweep");
            committed_base(&dir, &old);
            let vfs = FaultVfs::new(k, mode);
            let result = build_dir_with(vfs, &new, &new_alphabet, TreeKind::Full, 1, 1, None, &dir);
            assert_recovers_to_one_of(&dir, &[&old, &new], &context);
            if result.is_ok() {
                let resolved = resolve_dir_with(&RealVfs, &dir).unwrap();
                let (store, _, _) = load_corpus(&resolved.corpus_path).unwrap();
                assert!(
                    stores_equal(&store, &new),
                    "{context}: rebuild reported success but holds the old state"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn appended_dir_survives_crash_then_appends_again() {
    // End-to-end: crash mid-append, recover, append again for real; the
    // final index must contain everything.
    let dir = tmpdir("crash-then-append");
    committed_base(&dir, &initial_store());
    let vfs = FaultVfs::new(25, FaultMode::Crash);
    let _ = append_to_index_dir_with(vfs.as_ref(), &dir, &extra_store());
    assert_recovers_to_one_of(&dir, &[&initial_store(), &combined_store()], "mid");
    // The retry must succeed regardless of which state survived; append
    // again only if the first one was lost.
    let resolved = resolve_dir_with(&RealVfs, &dir).unwrap();
    let (store, _, _) = load_corpus(&resolved.corpus_path).unwrap();
    if stores_equal(&store, &initial_store()) {
        append_to_index_dir_with(&RealVfs, &dir, &extra_store()).unwrap();
    }
    assert_recovers_to_one_of(&dir, &[&combined_store()], "final");
    std::fs::remove_dir_all(&dir).unwrap();
}
