//! Model-based property tests for the storage layer: the paged file
//! against a plain byte vector, the LRU cache against a naive reference,
//! and concurrent disk-tree queries.

use proptest::prelude::*;
use std::sync::Arc;
use warptree_core::search::{run_query, QueryRequest, SearchParams, IndexBackend};
use warptree_core::sequence::SequenceStore;
use warptree_disk::lru::LruCache;
use warptree_disk::{write_tree, DiskTree, PagedReader, PagedWriter};

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("warptree-propstore-{}-{tag}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever chunk pattern is written, every read range returns the
    /// model bytes — including ranges spanning page boundaries.
    #[test]
    fn paged_file_equals_byte_model(
        chunks in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..5000),
            1..8,
        ),
        reads in prop::collection::vec((0usize..20000, 0usize..4000), 1..10),
        case in 0u64..1_000_000,
    ) {
        let model: Vec<u8> = chunks.concat();
        let path = tmp(&format!("pf-{case}"));
        let mut w = PagedWriter::create(&path).unwrap();
        for c in &chunks {
            w.write(c).unwrap();
        }
        let len = w.finish(&[]).unwrap();
        prop_assert_eq!(len as usize, model.len());
        let r = PagedReader::open(&path, 3).unwrap();
        for &(start, rlen) in &reads {
            if model.is_empty() {
                break;
            }
            let start = start % model.len();
            let rlen = rlen.min(model.len() - start);
            let mut buf = vec![0u8; rlen];
            r.read_exact_at(start as u64, &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &model[start..start + rlen]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Patches applied at finish time overwrite exactly the model range.
    #[test]
    fn patches_match_model(
        base in prop::collection::vec(any::<u8>(), 100..20000),
        patches in prop::collection::vec(
            (0usize..20000, prop::collection::vec(any::<u8>(), 1..64)),
            0..5,
        ),
        case in 0u64..1_000_000,
    ) {
        let mut model = base.clone();
        let path = tmp(&format!("patch-{case}"));
        let mut w = PagedWriter::create(&path).unwrap();
        w.write(&base).unwrap();
        let mut applied = Vec::new();
        for (off, bytes) in &patches {
            let off = off % base.len();
            let take = bytes.len().min(base.len() - off);
            model[off..off + take].copy_from_slice(&bytes[..take]);
            applied.push((off as u64, bytes[..take].to_vec()));
        }
        w.finish(&applied).unwrap();
        let r = PagedReader::open(&path, 4).unwrap();
        let mut buf = vec![0u8; model.len()];
        r.read_exact_at(0, &mut buf).unwrap();
        prop_assert_eq!(buf, model);
        std::fs::remove_file(&path).unwrap();
    }

    /// The LRU cache behaves exactly like a reference implementation
    /// (ordered vector with move-to-front).
    #[test]
    fn lru_matches_reference(
        capacity in 1usize..6,
        ops in prop::collection::vec((0u8..2, 0u32..12, 0u32..100), 1..200),
    ) {
        let mut lru: LruCache<u32, u32> = LruCache::new(capacity);
        // Reference: front = most recently used.
        let mut model: Vec<(u32, u32)> = Vec::new();
        for &(op, key, value) in &ops {
            match op {
                0 => {
                    // insert
                    lru.insert(key, value);
                    if let Some(pos) =
                        model.iter().position(|&(k, _)| k == key)
                    {
                        model.remove(pos);
                    }
                    model.insert(0, (key, value));
                    model.truncate(capacity);
                }
                _ => {
                    // get
                    let got = lru.get(&key).copied();
                    let expect = model
                        .iter()
                        .position(|&(k, _)| k == key)
                        .map(|pos| {
                            let e = model.remove(pos);
                            model.insert(0, e);
                            e.1
                        });
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(lru.len(), model.len());
        }
    }
}

/// Concurrent queries over one shared `DiskTree` return the same answers
/// as sequential queries (the buffer pool is behind a lock; results must
/// be independent of interleaving).
#[test]
fn concurrent_disk_queries_agree() {
    let store = SequenceStore::from_values(
        (0..24)
            .map(|i| {
                (0..60)
                    .map(|j| ((i * 31 + j * 7) % 23) as f64)
                    .collect::<Vec<f64>>()
            })
            .collect::<Vec<_>>(),
    );
    let alphabet = warptree_core::categorize::Alphabet::max_entropy(&store, 6).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let tree = warptree_suffix::build_sparse(cat.clone());
    let path = tmp("conc");
    write_tree(&tree, &path).unwrap();
    // Tiny caches to force heavy concurrent pool churn.
    let disk = DiskTree::open(&path, cat, 2, 4).unwrap();
    assert!(disk.suffix_count() > 0);

    let queries: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            store
                .get(warptree_core::sequence::SeqId(i))
                .subseq(3, 6)
                .to_vec()
        })
        .collect();
    let params = SearchParams::with_epsilon(4.0);
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| {
            run_query(
                &disk,
                &alphabet,
                &store,
                &QueryRequest::threshold_params(q, params.clone()),
            )
            .unwrap()
            .0
            .into_answer_set()
            .occurrence_set()
        })
        .collect();

    let concurrent: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let disk = &disk;
                let alphabet = &alphabet;
                let store = &store;
                let params = &params;
                scope.spawn(move || {
                    run_query(
                        disk,
                        alphabet,
                        store,
                        &QueryRequest::threshold_params(q, params.clone()),
                    )
                    .unwrap()
                    .0
                    .into_answer_set()
                    .occurrence_set()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(sequential, concurrent);
    std::fs::remove_file(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Corpus files round-trip arbitrary stores and every categorization
    /// method, reproducing identical categorized sequences.
    #[test]
    fn corpus_roundtrip_all_methods(
        db in prop::collection::vec(
            prop::collection::vec(
                (-1000i32..1000).prop_map(|v| v as f64 * 0.125),
                1..24,
            ),
            1..6,
        ),
        c in 1usize..8,
        method in 0usize..4,
        case in 0u64..1_000_000,
    ) {
        use warptree_core::categorize::Alphabet;
        use warptree_disk::{load_corpus, save_corpus};
        let store = SequenceStore::from_values(db);
        let alphabet = match method {
            0 => Alphabet::equal_length(&store, c).unwrap(),
            1 => Alphabet::max_entropy(&store, c).unwrap(),
            2 => Alphabet::singleton(&store).unwrap(),
            _ => Alphabet::kmeans(&store, c, 50).unwrap(),
        };
        let cat = alphabet.encode_store(&store);
        let path = tmp(&format!("corpus-{case}"));
        save_corpus(&store, &alphabet, &path).unwrap();
        let (s2, a2, c2) = load_corpus(&path).unwrap();
        prop_assert_eq!(s2.len(), store.len());
        for (id, s) in store.iter() {
            prop_assert_eq!(s2.get(id).values(), s.values());
        }
        prop_assert_eq!(a2.method(), alphabet.method());
        prop_assert_eq!(a2.len(), alphabet.len());
        prop_assert_eq!(c2.seqs(), cat.seqs());
        std::fs::remove_file(&path).unwrap();
    }
}
