//! Corpus file: persistent storage of the sequence database and its
//! categorization.
//!
//! A corpus file holds the original numeric sequences plus the alphabet
//! (category boundaries and observed bounds) so an index can be reopened
//! without re-deriving the categorization. The stored boundaries are
//! *authoritative* — the alphabet is reconstructed directly from them,
//! never re-derived from the data, so appending sequences later (which
//! would shift e.g. maximum-entropy quantiles) cannot invalidate an
//! existing index. The categorized symbol sequences are not stored; they
//! are re-encoded deterministically from the boundaries on load.
//!
//! ```text
//! paged stream:
//!   magic   [u8;8] = "WARPCORP", version u32 = 1
//!   method  u32    (0 EL, 1 ME, 2 singleton, 3 k-means)
//!   n_categories u32
//!   n_sequences  u32
//!   n_categories × { lo f64, hi f64, lb f64, ub f64 }
//!   n_sequences  × { name_len u32, name_len × u8 (UTF-8; 0 = unnamed),
//!                    len u32, len × f64 }
//! ```
//!
//! Version 1 files (no name fields) are still readable.

use std::path::Path;
use std::sync::Arc;

use warptree_core::categorize::{Alphabet, CatStore, CategorizationMethod};
use warptree_core::sequence::{Sequence, SequenceStore};

use crate::error::{DiskError, Result};
use crate::pager::{PagedReader, PagedWriter};
use crate::vfs::{RealVfs, Vfs};

const MAGIC: &[u8; 8] = b"WARPCORP";
const VERSION: u32 = 2;

fn method_code(m: CategorizationMethod) -> u32 {
    match m {
        CategorizationMethod::EqualLength => 0,
        CategorizationMethod::MaxEntropy => 1,
        CategorizationMethod::Singleton => 2,
        CategorizationMethod::KMeans => 3,
    }
}

fn method_from_code(code: u32) -> Result<CategorizationMethod> {
    Ok(match code {
        0 => CategorizationMethod::EqualLength,
        1 => CategorizationMethod::MaxEntropy,
        2 => CategorizationMethod::Singleton,
        3 => CategorizationMethod::KMeans,
        m => {
            return Err(DiskError::BadHeader(format!(
                "unknown categorization method {m}"
            )))
        }
    })
}

/// Saves the store and alphabet to `path`, returning the file's logical
/// size in bytes.
pub fn save_corpus(store: &SequenceStore, alphabet: &Alphabet, path: &Path) -> Result<u64> {
    save_corpus_with(&RealVfs, store, alphabet, path)
}

/// [`save_corpus`] through an explicit [`Vfs`].
pub fn save_corpus_with(
    vfs: &dyn Vfs,
    store: &SequenceStore,
    alphabet: &Alphabet,
    path: &Path,
) -> Result<u64> {
    let mut w = PagedWriter::create_with(vfs, path)?;
    w.write(MAGIC)?;
    w.write(&VERSION.to_le_bytes())?;
    w.write(&method_code(alphabet.method()).to_le_bytes())?;
    w.write(&(alphabet.len() as u32).to_le_bytes())?;
    w.write(&(store.len() as u32).to_le_bytes())?;
    for c in alphabet.categories() {
        for v in [c.lo, c.hi, c.lb, c.ub] {
            w.write(&v.to_le_bytes())?;
        }
    }
    for (id, s) in store.iter() {
        let name = store.name(id).unwrap_or("");
        w.write(&(name.len() as u32).to_le_bytes())?;
        w.write(name.as_bytes())?;
        w.write(&(s.len() as u32).to_le_bytes())?;
        for &v in s.values() {
            w.write(&v.to_le_bytes())?;
        }
    }
    w.finish(&[])
}

/// A reader cursor over the logical byte space.
struct Cursor<'a> {
    r: &'a PagedReader,
    pos: u64,
}

impl Cursor<'_> {
    fn u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.r.read_exact_at(self.pos, &mut b)?;
        self.pos += 4;
        Ok(u32::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64> {
        let mut b = [0u8; 8];
        self.r.read_exact_at(self.pos, &mut b)?;
        self.pos += 8;
        Ok(f64::from_le_bytes(b))
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>> {
        let mut raw = vec![0u8; n];
        self.r.read_exact_at(self.pos, &mut raw)?;
        self.pos += n as u64;
        Ok(raw)
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>> {
        let mut raw = vec![0u8; 8 * n];
        self.r.read_exact_at(self.pos, &mut raw)?;
        self.pos += 8 * n as u64;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Loads a corpus file: the sequence store, the alphabet, and the
/// re-derived categorized store.
pub fn load_corpus(path: &Path) -> Result<(SequenceStore, Alphabet, Arc<CatStore>)> {
    load_corpus_with(&RealVfs, path)
}

/// [`load_corpus`] through an explicit [`Vfs`].
pub fn load_corpus_with(
    vfs: &dyn Vfs,
    path: &Path,
) -> Result<(SequenceStore, Alphabet, Arc<CatStore>)> {
    let r = PagedReader::open_with(vfs, path, 16)?;
    let mut magic = [0u8; 8];
    r.read_exact_at(0, &mut magic)?;
    if &magic != MAGIC {
        return Err(DiskError::BadHeader("not a corpus file".into()));
    }
    let mut cur = Cursor { r: &r, pos: 8 };
    let version = cur.u32()?;
    if version != 1 && version != VERSION {
        return Err(DiskError::BadHeader(format!(
            "unsupported corpus version {version}"
        )));
    }
    let method = cur.u32()?;
    let n_cats = cur.u32()? as usize;
    let n_seqs = cur.u32()? as usize;
    let mut boundaries = Vec::with_capacity(n_cats);
    for _ in 0..n_cats {
        let lo = cur.f64()?;
        let hi = cur.f64()?;
        let lb = cur.f64()?;
        let ub = cur.f64()?;
        boundaries.push((lo, hi, lb, ub));
    }
    let mut store = SequenceStore::new();
    for _ in 0..n_seqs {
        let name = if version >= 2 {
            let name_len = cur.u32()? as usize;
            if name_len > 4096 {
                return Err(DiskError::BadRecord(
                    "implausible sequence name length".into(),
                ));
            }
            let raw = cur.bytes(name_len)?;
            let text = String::from_utf8(raw)
                .map_err(|_| DiskError::BadRecord("sequence name is not UTF-8".into()))?;
            if text.is_empty() {
                None
            } else {
                Some(text)
            }
        } else {
            None
        };
        let len = cur.u32()? as usize;
        let values = cur.f64s(len)?;
        if values.iter().any(|v| !v.is_finite()) {
            return Err(DiskError::BadRecord("non-finite value in corpus".into()));
        }
        match name {
            Some(n) => store.push_named(Sequence::new(values), n),
            None => store.push(Sequence::new(values)),
        };
    }
    let method = method_from_code(method)?;
    let categories: Vec<warptree_core::categorize::Category> = boundaries
        .iter()
        .map(|&(lo, hi, lb, ub)| warptree_core::categorize::Category { lo, hi, lb, ub })
        .collect();
    for c in &categories {
        if !(c.lo <= c.hi && c.lb <= c.ub) {
            return Err(DiskError::BadRecord("category bounds out of order".into()));
        }
    }
    for w in categories.windows(2) {
        if w[0].lo > w[1].lo {
            return Err(DiskError::BadRecord("categories not ordered".into()));
        }
    }
    let alphabet = Alphabet::from_parts(categories, method);
    let cat = Arc::new(alphabet.encode_store(&store));
    Ok((store, alphabet, cat))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("warptree-corpus-{}-{}", std::process::id(), name))
    }

    #[test]
    fn roundtrip_equal_length() {
        let store = SequenceStore::from_values(vec![vec![1.0, 5.0, 9.0, 2.5], vec![3.0, 3.0]]);
        let alpha = Alphabet::equal_length(&store, 4).unwrap();
        let cat = alpha.encode_store(&store);
        let path = tmp("el");
        save_corpus(&store, &alpha, &path).unwrap();
        let (s2, a2, c2) = load_corpus(&path).unwrap();
        assert_eq!(s2.len(), store.len());
        for (id, s) in store.iter() {
            assert_eq!(s2.get(id).values(), s.values());
        }
        assert_eq!(a2.len(), alpha.len());
        assert_eq!(a2.method(), alpha.method());
        assert_eq!(c2.seqs(), cat.seqs());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn roundtrip_all_methods() {
        let store = SequenceStore::from_values(vec![(0..40)
            .map(|i| (i as f64 * 1.37).sin() * 10.0)
            .collect()]);
        for alpha in [
            Alphabet::equal_length(&store, 5).unwrap(),
            Alphabet::max_entropy(&store, 5).unwrap(),
            Alphabet::singleton(&store).unwrap(),
            Alphabet::kmeans(&store, 5, 50).unwrap(),
        ] {
            let path = tmp(&format!("method-{}", alpha.method()));
            save_corpus(&store, &alpha, &path).unwrap();
            let (_, a2, c2) = load_corpus(&path).unwrap();
            assert_eq!(a2.method(), alpha.method());
            assert_eq!(c2.seqs(), alpha.encode_store(&store).seqs());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn names_roundtrip() {
        let mut store = SequenceStore::new();
        store.push_named(Sequence::new(vec![1.0, 2.0]), "AAPL");
        store.push(Sequence::new(vec![3.0]));
        let alpha = Alphabet::equal_length(&store, 2).unwrap();
        let path = tmp("names");
        save_corpus(&store, &alpha, &path).unwrap();
        let (s2, _, _) = load_corpus(&path).unwrap();
        use warptree_core::sequence::SeqId;
        assert_eq!(s2.name(SeqId(0)), Some("AAPL"));
        assert_eq!(s2.name(SeqId(1)), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_non_corpus_file() {
        let path = tmp("garbage");
        let mut w = PagedWriter::create(&path).unwrap();
        w.write(b"NOTACORP").unwrap();
        w.finish(&[]).unwrap();
        assert!(matches!(load_corpus(&path), Err(DiskError::BadHeader(_))));
        std::fs::remove_file(&path).unwrap();
    }
}
