//! On-disk suffix-tree file format.
//!
//! A tree file is a paged stream (see [`pager`](crate::pager)) holding a
//! fixed-size header followed by node records written in post-order —
//! children always precede their parent, so the file is produced in a
//! single sequential pass and the root is the last record, back-patched
//! into the header.
//!
//! ```text
//! header (64 bytes, logical offset 0):
//!   magic   [u8;8] = "WARPTREE"
//!   version u32    = 1
//!   flags   u32      bit 0: sparse tree
//!   alpha   u32      alphabet length the symbols were drawn from
//!   node_count   u64
//!   suffix_count u64
//!   root_offset  u64
//!   depth_limit  u32  (0 = untruncated; see paper §8)
//!   reserved     [u8;16] (zero)
//!
//! node record:
//!   label_seq u32, label_start u32, label_len u32   (edge entering node)
//!   suffix_count u64                                (at or below)
//!   max_lead_run u32                                (at or below)
//!   n_suffixes u32, n_children u32
//!   n_suffixes × { seq u32, start u32, lead_run u32 }
//!   n_children × { first_symbol u32, offset u64 }   (sorted by symbol)
//! ```
//!
//! All integers are little-endian. Every page carries a CRC-32, so
//! corruption anywhere in the file is detected on first touch.

use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use warptree_core::categorize::{CatStore, Symbol};
use warptree_core::search::IndexBackend;
use warptree_core::sequence::SeqId;

use crate::error::{DiskError, Result};
use crate::lru::LruCache;
use crate::pager::{IoStats, PagedReader};
use crate::vfs::{RealVfs, Vfs};

/// Size of the file header in logical bytes.
pub const HEADER_SIZE: u64 = 64;
/// Header magic bytes.
pub const MAGIC: &[u8; 8] = b"WARPTREE";
/// Current format version.
pub const VERSION: u32 = 1;

/// Decoded file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// `true` when the tree stores only the §6.1 suffix subset.
    pub sparse: bool,
    /// Alphabet length the symbols were drawn from.
    pub alphabet_len: u32,
    /// Total node records in the file.
    pub node_count: u64,
    /// Total stored suffixes.
    pub suffix_count: u64,
    /// Logical offset of the root node record.
    pub root_offset: u64,
    /// Answer-length cap of a §8-truncated tree (`None` = full).
    pub depth_limit: Option<u32>,
}

impl Header {
    /// Serializes the header into its 64-byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_SIZE as usize);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sparse as u32).to_le_bytes());
        out.extend_from_slice(&self.alphabet_len.to_le_bytes());
        out.extend_from_slice(&self.node_count.to_le_bytes());
        out.extend_from_slice(&self.suffix_count.to_le_bytes());
        out.extend_from_slice(&self.root_offset.to_le_bytes());
        out.extend_from_slice(&self.depth_limit.unwrap_or(0).to_le_bytes());
        out.resize(HEADER_SIZE as usize, 0);
        out
    }

    /// Parses and validates a 64-byte header.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < HEADER_SIZE as usize {
            return Err(DiskError::BadHeader("truncated header".into()));
        }
        if &buf[0..8] != MAGIC {
            if &buf[0..8] == crate::esa::ESA_MAGIC {
                // A tree-only code path opened a file committed by the
                // esa backend: name the mismatch instead of "bad magic"
                // so callers (and operators) see what happened.
                return Err(DiskError::UnsupportedBackend {
                    found: "esa".into(),
                });
            }
            return Err(DiskError::BadHeader("bad magic".into()));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(DiskError::BadHeader(format!(
                "unsupported version {version}"
            )));
        }
        let flags = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        Ok(Header {
            sparse: flags & 1 != 0,
            alphabet_len: u32::from_le_bytes(buf[16..20].try_into().unwrap()),
            node_count: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
            suffix_count: u64::from_le_bytes(buf[28..36].try_into().unwrap()),
            root_offset: u64::from_le_bytes(buf[36..44].try_into().unwrap()),
            depth_limit: match u32::from_le_bytes(buf[44..48].try_into().unwrap()) {
                0 => None,
                d => Some(d),
            },
        })
    }
}

/// A node record decoded from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskNode {
    /// Edge label entering this node: `(seq, start, len)`.
    pub label: (SeqId, u32, u32),
    /// Stored suffixes at or below this node.
    pub suffix_count: u64,
    /// Maximum leading-run length at or below this node.
    pub max_lead_run: u32,
    /// Suffix labels attached to this node: `(seq, start, lead_run)`.
    pub suffixes: Vec<(SeqId, u32, u32)>,
    /// Children as `(first_symbol, node_offset)`, sorted by symbol.
    pub children: Vec<(Symbol, u64)>,
}

/// Fixed-size prefix of a node record.
const NODE_HEAD: usize = 32;

/// Serializes a node record.
pub fn encode_node(node: &DiskNode) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(NODE_HEAD + 12 * node.suffixes.len() + 12 * node.children.len());
    out.extend_from_slice(&node.label.0 .0.to_le_bytes());
    out.extend_from_slice(&node.label.1.to_le_bytes());
    out.extend_from_slice(&node.label.2.to_le_bytes());
    out.extend_from_slice(&node.suffix_count.to_le_bytes());
    out.extend_from_slice(&node.max_lead_run.to_le_bytes());
    out.extend_from_slice(&(node.suffixes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(node.children.len() as u32).to_le_bytes());
    for (seq, start, run) in &node.suffixes {
        out.extend_from_slice(&seq.0.to_le_bytes());
        out.extend_from_slice(&start.to_le_bytes());
        out.extend_from_slice(&run.to_le_bytes());
    }
    for (first, offset) in &node.children {
        out.extend_from_slice(&first.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
    }
    out
}

/// Panic payload used to abort a tree traversal on an unreadable node.
///
/// The [`IndexBackend`] trait's walk callbacks are infallible, so a
/// mid-traversal read failure cannot return an `Err` through them.
/// Instead the failing [`DiskTree`] records the typed error (see
/// [`DiskTree::take_read_error`]) and unwinds with this marker; the
/// fan-out layer catches the unwind (`std::panic::catch_unwind`),
/// downcasts to `TreeReadAbort`, and turns the recorded error into a
/// quarantine + degraded answer instead of a crash.
pub struct TreeReadAbort;

/// A disk-resident suffix tree, query-ready through
/// [`IndexBackend`]. Decoded nodes are cached in an LRU keyed by
/// offset; all reads verify page CRCs.
pub struct DiskTree {
    reader: PagedReader,
    cat: Arc<CatStore>,
    header: Header,
    nodes: Mutex<LruCache<u64, Arc<DiskNode>>>,
    /// File name this tree was opened from — the segment identity used
    /// in [`DiskError::CorruptionDetected`].
    source: String,
    /// First read failure observed during a traversal (set by
    /// [`must_read`](Self::must_read) before unwinding).
    read_error: Mutex<Option<DiskError>>,
}

impl DiskTree {
    /// Opens a tree file against the categorized store its labels
    /// reference. `cache_pages` sizes the page buffer pool;
    /// `cache_nodes` the decoded-node cache.
    pub fn open(
        path: &Path,
        cat: Arc<CatStore>,
        cache_pages: usize,
        cache_nodes: usize,
    ) -> Result<Self> {
        Self::open_with(&RealVfs, path, cat, cache_pages, cache_nodes)
    }

    /// [`open`](Self::open) through an explicit [`Vfs`].
    pub fn open_with(
        vfs: &dyn Vfs,
        path: &Path,
        cat: Arc<CatStore>,
        cache_pages: usize,
        cache_nodes: usize,
    ) -> Result<Self> {
        let reader = PagedReader::open_with(vfs, path, cache_pages)?;
        let mut buf = vec![0u8; HEADER_SIZE as usize];
        reader.read_exact_at(0, &mut buf)?;
        let header = Header::decode(&buf)?;
        if header.alphabet_len != cat.alphabet_len() {
            return Err(DiskError::BadHeader(format!(
                "alphabet mismatch: file {} vs store {}",
                header.alphabet_len,
                cat.alphabet_len()
            )));
        }
        Ok(Self {
            reader,
            cat,
            header,
            nodes: Mutex::new(LruCache::new(cache_nodes.max(1))),
            source: path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            read_error: Mutex::new(None),
        })
    }

    /// The file name this tree was opened from (its segment identity).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Takes the read failure recorded by an aborted traversal, if any.
    /// `CorruptPage` failures arrive here already labelled as
    /// [`DiskError::CorruptionDetected`] with this tree's file name.
    pub fn take_read_error(&self) -> Option<DiskError> {
        self.read_error.lock().take()
    }

    /// Reads a node or aborts the traversal: the error is recorded on
    /// this tree (CRC failures typed as `CorruptionDetected`) and the
    /// stack unwinds with [`TreeReadAbort`] for the fan-out layer to
    /// catch.
    fn must_read(&self, offset: u64) -> Arc<DiskNode> {
        match self.read_node(offset) {
            Ok(n) => n,
            Err(e) => {
                let e = match e {
                    DiskError::CorruptPage { page } => DiskError::CorruptionDetected {
                        segment: self.source.clone(),
                        page,
                    },
                    other => other,
                };
                let mut slot = self.read_error.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
                drop(slot);
                std::panic::panic_any(TreeReadAbort);
            }
        }
    }

    /// Walks every physical page of the file through the CRC check,
    /// bypassing the page cache (the scrub / `verify --deep` primitive).
    /// Returns the page count, or the first corruption typed with this
    /// tree's file name.
    pub fn verify_pages(&self) -> Result<u64> {
        for p in 0..self.reader.page_count() {
            self.reader.verify_page(p).map_err(|e| match e {
                DiskError::CorruptPage { page } => DiskError::CorruptionDetected {
                    segment: self.source.clone(),
                    page,
                },
                other => other,
            })?;
        }
        Ok(self.reader.page_count())
    }

    /// The file header.
    pub fn header(&self) -> Header {
        self.header
    }

    /// The categorized store the labels reference.
    pub fn cat(&self) -> &Arc<CatStore> {
        &self.cat
    }

    /// Page-level I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.reader.io_stats()
    }

    /// Logical length of the file in bytes (the paper's "index size").
    pub fn logical_len(&self) -> u64 {
        self.reader.logical_len()
    }

    /// Decoded-node cache hit/miss totals, `(hits, misses)`.
    pub fn node_cache_stats(&self) -> (u64, u64) {
        let nodes = self.nodes.lock();
        (nodes.hits(), nodes.misses())
    }

    /// Routes this tree's cache counters into `reg`: the decoded-node
    /// cache as `disk.node_cache.{hits,misses}` and the page buffer
    /// pool as `disk.page_cache.{hits,misses}`. Counts accumulated
    /// before the call are not carried over.
    pub fn instrument(&self, reg: &warptree_obs::MetricsRegistry) {
        self.nodes.lock().set_counters(
            reg.counter("disk.node_cache.hits"),
            reg.counter("disk.node_cache.misses"),
        );
        self.reader
            .meter_cache(reg, "disk.page_cache.hits", "disk.page_cache.misses");
        self.reader.meter_crc_failures(reg, "disk.read_crc_fail");
    }

    /// Reads (or re-uses) the node record at `offset`.
    pub fn read_node(&self, offset: u64) -> Result<Arc<DiskNode>> {
        if let Some(n) = self.nodes.lock().get(&offset) {
            return Ok(n.clone());
        }
        let mut head = [0u8; NODE_HEAD];
        self.reader.read_exact_at(offset, &mut head)?;
        let label = (
            SeqId(u32::from_le_bytes(head[0..4].try_into().unwrap())),
            u32::from_le_bytes(head[4..8].try_into().unwrap()),
            u32::from_le_bytes(head[8..12].try_into().unwrap()),
        );
        let suffix_count = u64::from_le_bytes(head[12..20].try_into().unwrap());
        let max_lead_run = u32::from_le_bytes(head[20..24].try_into().unwrap());
        let n_suffixes = u32::from_le_bytes(head[24..28].try_into().unwrap()) as usize;
        let n_children = u32::from_le_bytes(head[28..32].try_into().unwrap()) as usize;
        // Sanity-bound the counts before allocating.
        let body_len = 12 * n_suffixes + 12 * n_children;
        if offset + (NODE_HEAD + body_len) as u64 > self.reader.logical_len() {
            return Err(DiskError::BadRecord(format!(
                "node at {offset} overruns the file"
            )));
        }
        let mut body = vec![0u8; body_len];
        self.reader
            .read_exact_at(offset + NODE_HEAD as u64, &mut body)?;
        let mut suffixes = Vec::with_capacity(n_suffixes);
        for i in 0..n_suffixes {
            let b = &body[12 * i..12 * i + 12];
            suffixes.push((
                SeqId(u32::from_le_bytes(b[0..4].try_into().unwrap())),
                u32::from_le_bytes(b[4..8].try_into().unwrap()),
                u32::from_le_bytes(b[8..12].try_into().unwrap()),
            ));
        }
        let mut children = Vec::with_capacity(n_children);
        let cbase = 12 * n_suffixes;
        for i in 0..n_children {
            let b = &body[cbase + 12 * i..cbase + 12 * i + 12];
            children.push((
                u32::from_le_bytes(b[0..4].try_into().unwrap()),
                u64::from_le_bytes(b[4..12].try_into().unwrap()),
            ));
        }
        let node = Arc::new(DiskNode {
            label,
            suffix_count,
            max_lead_run,
            suffixes,
            children,
        });
        self.nodes.lock().insert(offset, node.clone());
        Ok(node)
    }

    /// Materializes the whole file back into an in-memory
    /// [`warptree_suffix::SuffixTree`] (testing / migration utility).
    pub fn to_mem(&self) -> Result<warptree_suffix::SuffixTree> {
        use warptree_suffix::{LabelRef, SuffixLabel, SuffixTree, ROOT};
        let mut tree = SuffixTree::empty(self.cat.clone(), self.header.sparse);
        if let Some(limit) = self.header.depth_limit {
            tree.set_depth_limit(limit);
        }
        // (disk offset, mem parent)
        let mut stack = vec![(self.header.root_offset, ROOT)];
        let mut first = true;
        while let Some((off, parent)) = stack.pop() {
            let dn = self.read_node(off)?;
            let mem = if first {
                first = false;
                ROOT
            } else {
                let id = tree.alloc(LabelRef {
                    seq: dn.label.0,
                    start: dn.label.1,
                    len: dn.label.2,
                });
                tree.attach(parent, id);
                id
            };
            for &(seq, start, run) in &dn.suffixes {
                tree.node_mut(mem).suffixes.push(SuffixLabel {
                    seq,
                    start,
                    lead_run: run,
                });
            }
            for &(_, coff) in &dn.children {
                stack.push((coff, mem));
            }
        }
        tree.finalize();
        Ok(tree)
    }
}

impl IndexBackend for DiskTree {
    type Node = u64;

    fn root(&self) -> u64 {
        self.header.root_offset
    }

    fn for_each_child(&self, n: u64, f: &mut dyn FnMut(u64)) {
        let node = self.must_read(n);
        for &(_, off) in &node.children {
            f(off);
        }
    }

    fn edge_label(&self, n: u64, out: &mut Vec<Symbol>) {
        let node = self.must_read(n);
        let (seq, start, len) = node.label;
        let s = self.cat.seq(seq);
        out.extend_from_slice(&s[start as usize..(start + len) as usize]);
    }

    fn for_each_suffix_below(&self, n: u64, f: &mut dyn FnMut(SeqId, u32, u32)) {
        let mut stack = vec![n];
        while let Some(off) = stack.pop() {
            let node = self.must_read(off);
            for &(seq, start, run) in &node.suffixes {
                f(seq, start, run);
            }
            for &(_, coff) in &node.children {
                stack.push(coff);
            }
        }
    }

    fn max_lead_run(&self, n: u64) -> u32 {
        self.must_read(n).max_lead_run
    }

    fn is_sparse(&self) -> bool {
        self.header.sparse
    }

    fn suffix_count(&self) -> u64 {
        self.header.suffix_count
    }

    fn depth_limit(&self) -> Option<u32> {
        self.header.depth_limit
    }

    fn suffix_count_below(&self, n: u64) -> Option<u64> {
        // Every node record stores its subtree suffix count, and the
        // record is (re)read through the node cache, so this is one
        // cached lookup — cheap enough for per-edge `R_d` metering.
        Some(self.must_read(n).suffix_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            sparse: true,
            alphabet_len: 42,
            node_count: 7,
            suffix_count: 5,
            root_offset: 4096,
            depth_limit: Some(17),
        };
        let enc = h.encode();
        assert_eq!(enc.len(), HEADER_SIZE as usize);
        assert_eq!(Header::decode(&enc).unwrap(), h);
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let h = Header {
            sparse: false,
            alphabet_len: 1,
            node_count: 1,
            suffix_count: 0,
            root_offset: HEADER_SIZE,
            depth_limit: None,
        };
        let mut enc = h.encode();
        enc[0] = b'X';
        assert!(matches!(Header::decode(&enc), Err(DiskError::BadHeader(_))));
        let mut enc2 = h.encode();
        enc2[8] = 99;
        assert!(matches!(
            Header::decode(&enc2),
            Err(DiskError::BadHeader(_))
        ));
        assert!(matches!(
            Header::decode(&enc2[..10]),
            Err(DiskError::BadHeader(_))
        ));
    }

    #[test]
    fn node_record_roundtrip_via_encode() {
        let node = DiskNode {
            label: (SeqId(3), 7, 5),
            suffix_count: 9,
            max_lead_run: 4,
            suffixes: vec![(SeqId(3), 7, 2), (SeqId(1), 0, 1)],
            children: vec![(0, 64), (5, 128)],
        };
        let enc = encode_node(&node);
        assert_eq!(enc.len(), 32 + 12 * 2 + 12 * 2);
        // Decoding is exercised end-to-end by the writer tests; here we
        // just check the head fields lay out as documented.
        assert_eq!(u32::from_le_bytes(enc[0..4].try_into().unwrap()), 3);
        assert_eq!(u32::from_le_bytes(enc[8..12].try_into().unwrap()), 5);
        assert_eq!(u64::from_le_bytes(enc[12..20].try_into().unwrap()), 9);
        assert_eq!(u32::from_le_bytes(enc[24..28].try_into().unwrap()), 2);
        assert_eq!(u32::from_le_bytes(enc[28..32].try_into().unwrap()), 2);
    }
}
