#![warn(missing_docs)]

//! # warptree-disk
//!
//! Disk-based suffix-tree storage for the Park et al. (ICDE 2000) index:
//!
//! * [`pager`] — paged files with per-page CRC-32 and an LRU buffer pool;
//! * [`format`](mod@format) / [`writer`] — the tree file format, written post-order in
//!   one sequential pass; [`DiskTree`] serves queries straight from disk
//!   through the same [`IndexBackend`](warptree_core::search::IndexBackend)
//!   trait the in-memory tree implements;
//! * [`merge`] — binary merge of tree files and the [`IncrementalBuilder`]
//!   that constructs a large index batch-by-batch in limited memory
//!   (paper §4.1, after Bieganski et al.);
//! * [`corpus`] — persistence for the sequence database and its
//!   categorization;
//! * [`manifest`] — atomic directory commits (temp file + rename +
//!   directory fsync + CRC-protected `MANIFEST`), recovery on open, and
//!   offline verification;
//! * [`segment`] — LSM-style online ingest: appends commit as small
//!   tail segments over just the new suffixes, and a compactor folds
//!   segments back together with the binary merge, one manifest
//!   generation per step;
//! * [`snapshot`] — non-mutating reopen of the committed generation
//!   (including tail segments, with fan-out querying) and a cheap
//!   manifest poll, the reload primitives of a live server;
//! * [`vfs`] — the injectable filesystem every write path goes through,
//!   with a fault-injecting implementation for crash-consistency tests;
//! * [`esa`](mod@esa) / [`any`] — the enhanced-suffix-array file format
//!   (an alternative [`IndexBackend`](warptree_core::search::IndexBackend)
//!   with identical traversal semantics) and the [`AnyIndex`] dispatch
//!   value the layers above use to stay backend-agnostic.

pub mod any;
pub mod append;
pub mod corpus;
pub mod crc;
pub mod error;
pub mod esa;
pub mod format;
pub mod lru;
pub mod manifest;
pub mod merge;
pub mod pager;
pub mod segment;
pub mod shard;
pub mod snapshot;
pub mod vfs;
pub mod writer;

pub use any::{AnyIndex, AnyNode};
pub use append::{append_to_index_dir, append_to_index_dir_with};
pub use corpus::{load_corpus, load_corpus_with, save_corpus, save_corpus_with};
pub use error::{DiskError, Result};
pub use esa::{write_esa, write_esa_with, DiskEsa, EsaHeader};
pub use format::{DiskNode, DiskTree, Header, TreeReadAbort};
pub use manifest::{
    build_dir_backend_with, build_dir_metered, build_dir_with, commit_dir_backend_with,
    commit_dir_with, commit_update_with, quarantine_segment_with, recover_dir_with,
    resolve_dir_with, segment_file_name, verify_dir_deep_with, verify_dir_with, FileCheck,
    Manifest, RecoveryReport, ResolvedDir, SegmentMeta, VerifyReport, MANIFEST_NAME,
};
pub use merge::{merge_trees, merge_trees_with, IncrementalBuilder, TreeKind};
pub use pager::{IoStats, PagedReader, PagedWriter, PAGE_DATA, PAGE_SIZE};
pub use segment::{
    append_segment, append_segment_with, compact_all_with, compact_once, compact_once_with,
    heal_segment_with, scrub_dir_with, ScrubReport,
};
pub use shard::{
    read_shard_manifest, read_shard_manifest_with, write_shard_manifest, write_shard_manifest_with,
    ShardManifest, ShardMeta, SHARD_MANIFEST_NAME,
};
pub use snapshot::{
    committed_generation_with, open_dir_snapshot_with, DegradedError, DegradedQuery, DirSnapshot,
};
pub use vfs::{real_vfs, FaultMode, FaultVfs, MeteredVfs, RealVfs, TempGuard, Vfs, VfsFile};
pub use writer::{write_tree, write_tree_with};
