#![warn(missing_docs)]

//! # warptree-disk
//!
//! Disk-based suffix-tree storage for the Park et al. (ICDE 2000) index:
//!
//! * [`pager`] — paged files with per-page CRC-32 and an LRU buffer pool;
//! * [`format`](mod@format) / [`writer`] — the tree file format, written post-order in
//!   one sequential pass; [`DiskTree`] serves queries straight from disk
//!   through the same [`SuffixTreeIndex`](warptree_core::search::SuffixTreeIndex)
//!   trait the in-memory tree implements;
//! * [`merge`] — binary merge of tree files and the [`IncrementalBuilder`]
//!   that constructs a large index batch-by-batch in limited memory
//!   (paper §4.1, after Bieganski et al.);
//! * [`corpus`] — persistence for the sequence database and its
//!   categorization.

pub mod append;
pub mod corpus;
pub mod crc;
pub mod error;
pub mod format;
pub mod lru;
pub mod merge;
pub mod pager;
pub mod writer;

pub use append::append_to_index_dir;
pub use corpus::{load_corpus, save_corpus};
pub use error::{DiskError, Result};
pub use format::{DiskNode, DiskTree, Header};
pub use merge::{merge_trees, IncrementalBuilder, TreeKind};
pub use pager::{IoStats, PagedReader, PagedWriter, PAGE_DATA, PAGE_SIZE};
pub use writer::write_tree;
