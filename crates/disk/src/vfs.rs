//! Injectable filesystem abstraction for crash-consistency testing.
//!
//! Every mutating I/O operation the disk layer performs — file creation,
//! positioned writes, fsync, rename, removal, directory fsync — goes
//! through a [`Vfs`]. Production code uses [`RealVfs`] (plain `std::fs`);
//! the crash-consistency test suite uses [`FaultVfs`], which fails or
//! "kills the process" after the Nth operation, so every intermediate
//! on-disk state of `build`/`append`/merge can be exercised and the
//! recovery path in [`manifest`](crate::manifest) verified against it.
//!
//! The fault model is **fail-stop**: an injected fault makes the Nth and
//! (in [`FaultMode::Crash`]) every later operation return an error, and
//! the test then reopens whatever the real filesystem holds. Writes that
//! completed before the fault are considered durable.

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use warptree_obs::{Counter, MetricsRegistry};

/// An open file handle behind the [`Vfs`] abstraction.
///
/// All access is positioned (`read_at`/`write_at`); sequential callers
/// track their own cursor. Reads take `&self` so a reader can be shared
/// behind a lock-free handle the way [`PagedReader`](crate::PagedReader)
/// shares its buffer pool.
pub trait VfsFile: Send + Sync {
    /// Reads exactly `buf.len()` bytes at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Writes all of `buf` at `offset`.
    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()>;
    /// Flushes file data and metadata to stable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Current physical file length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// Whether the file is currently empty.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// The filesystem operations the disk layer performs.
pub trait Vfs: Send + Sync {
    /// Creates (truncating) `path` for read + write.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens `path` read-only.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically renames `from` to `to` (replacing `to`).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs the directory itself, making renames/removals durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Lists the plain files in `dir`.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Creates `dir` and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Physical length of the file at `path`.
    fn metadata_len(&self, path: &Path) -> io::Result<u64>;
}

/// The production [`Vfs`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

/// A real open file.
struct RealFile {
    file: File,
}

#[cfg(unix)]
fn read_at_impl(file: &File, offset: u64, buf: &mut [u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_at_impl(file: &File, offset: u64, buf: &mut [u8]) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    // Positioned read via a cloned handle (keeps &self).
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

#[cfg(unix)]
fn write_at_impl(file: &File, offset: u64, buf: &[u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
fn write_at_impl(file: &File, offset: u64, buf: &[u8]) -> io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(buf)
}

impl VfsFile for RealFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        read_at_impl(&self.file, offset, buf)
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        write_at_impl(&self.file, offset, buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile { file }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile {
            file: File::open(path)?,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    #[cfg(unix)]
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    #[cfg(not(unix))]
    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        // Directory handles cannot be fsynced portably off unix.
        Ok(())
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn metadata_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
}

/// The default production VFS handle.
pub fn real_vfs() -> Arc<dyn Vfs> {
    Arc::new(RealVfs)
}

/// What an injected fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The Nth operation fails once; later operations succeed. Models a
    /// transient I/O error — error paths must clean up and leave the old
    /// committed state behind.
    Error,
    /// The Nth and every subsequent operation fail. Models process death
    /// — nothing after the fault reaches the disk, and a later reopen
    /// must recover.
    Crash,
}

struct FaultState {
    ops: AtomicU64,
    fail_at: AtomicU64,
    mode: FaultMode,
    crashed: AtomicBool,
}

impl FaultState {
    fn injected() -> io::Error {
        io::Error::other("injected fault")
    }

    /// Accounts one operation; errors at/after the injection point.
    fn check(&self) -> io::Result<()> {
        if self.crashed.load(Ordering::SeqCst) {
            return Err(Self::injected());
        }
        let n = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.fail_at.load(Ordering::SeqCst) {
            if self.mode == FaultMode::Crash {
                self.crashed.store(true, Ordering::SeqCst);
            }
            return Err(Self::injected());
        }
        Ok(())
    }
}

/// A [`Vfs`] that delegates to [`RealVfs`] but fails (or "crashes") at
/// the Nth operation. Count a run first with `fail_at = u64::MAX`, then
/// sweep the injection point over `1..=ops()`.
pub struct FaultVfs {
    inner: RealVfs,
    state: Arc<FaultState>,
}

impl FaultVfs {
    /// A fault VFS failing at operation `fail_at` (1-based); pass
    /// `u64::MAX` to only count.
    pub fn new(fail_at: u64, mode: FaultMode) -> Arc<Self> {
        Arc::new(Self {
            inner: RealVfs,
            state: Arc::new(FaultState {
                ops: AtomicU64::new(0),
                fail_at: AtomicU64::new(fail_at),
                mode,
                crashed: AtomicBool::new(false),
            }),
        })
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Whether the simulated crash has triggered.
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::SeqCst)
    }
}

/// A file handle that charges every access against the fault budget.
struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<FaultState>,
}

impl VfsFile for FaultFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.state.check()?;
        self.inner.read_at(offset, buf)
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.state.check()?;
        self.inner.write_at(offset, buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.state.check()?;
        self.inner.sync()
    }

    fn len(&self) -> io::Result<u64> {
        self.state.check()?;
        self.inner.len()
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.state.check()?;
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            state: self.state.clone(),
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.state.check()?;
        Ok(Box::new(FaultFile {
            inner: self.inner.open(path)?,
            state: self.state.clone(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.state.check()?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.state.check()?;
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.state.check()?;
        self.inner.sync_dir(dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.state.check()?;
        self.inner.read_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.state.check()?;
        self.inner.create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        // Existence probes are metadata-only and cannot tear state; they
        // are not charged, but a crashed VFS reports pessimistically.
        if self.state.crashed.load(Ordering::SeqCst) {
            return false;
        }
        self.inner.exists(path)
    }

    fn metadata_len(&self, path: &Path) -> io::Result<u64> {
        self.state.check()?;
        self.inner.metadata_len(path)
    }
}

/// The counters a [`MeteredVfs`] charges. Cloning shares the underlying
/// cells, so the VFS and every file handle it opens report to the same
/// registry entries.
#[derive(Clone)]
struct VfsCounters {
    reads: Counter,
    writes: Counter,
    syncs: Counter,
    read_bytes: Counter,
    write_bytes: Counter,
}

/// A [`Vfs`] wrapper that meters every operation into a
/// [`MetricsRegistry`] under the `disk.vfs.*` namespace:
///
/// | counter                | meaning                                   |
/// |------------------------|-------------------------------------------|
/// | `disk.vfs.reads`       | positioned reads issued                   |
/// | `disk.vfs.writes`      | positioned writes issued                  |
/// | `disk.vfs.syncs`       | file and directory fsyncs                 |
/// | `disk.vfs.read_bytes`  | bytes requested by reads                  |
/// | `disk.vfs.write_bytes` | bytes submitted by writes                 |
///
/// Counting happens before delegation, so a failing operation is still
/// charged — the profile reflects I/O *attempted*, which is what a
/// cost model cares about. With a no-op registry every counter is a
/// no-op and the wrapper adds only the virtual-dispatch hop the `Vfs`
/// trait already imposes.
pub struct MeteredVfs {
    inner: Arc<dyn Vfs>,
    io: VfsCounters,
}

impl MeteredVfs {
    /// Wraps `inner`, registering the `disk.vfs.*` counters on `reg`.
    pub fn new(inner: Arc<dyn Vfs>, reg: &MetricsRegistry) -> Arc<Self> {
        Arc::new(Self {
            inner,
            io: VfsCounters {
                reads: reg.counter("disk.vfs.reads"),
                writes: reg.counter("disk.vfs.writes"),
                syncs: reg.counter("disk.vfs.syncs"),
                read_bytes: reg.counter("disk.vfs.read_bytes"),
                write_bytes: reg.counter("disk.vfs.write_bytes"),
            },
        })
    }
}

/// A file handle that charges reads/writes/syncs to shared counters.
struct MeteredFile {
    inner: Box<dyn VfsFile>,
    io: VfsCounters,
}

impl VfsFile for MeteredFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.io.reads.incr();
        self.io.read_bytes.add(buf.len() as u64);
        self.inner.read_at(offset, buf)
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.io.writes.incr();
        self.io.write_bytes.add(buf.len() as u64);
        self.inner.write_at(offset, buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.io.syncs.incr();
        self.inner.sync()
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }
}

impl Vfs for MeteredVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(MeteredFile {
            inner: self.inner.create(path)?,
            io: self.io.clone(),
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(MeteredFile {
            inner: self.inner.open(path)?,
            io: self.io.clone(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.io.syncs.incr();
        self.inner.sync_dir(dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn metadata_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.metadata_len(path)
    }
}

/// Removes a set of scratch files when dropped, unless defused.
///
/// Every multi-file operation (append, directory commit) arms one of
/// these over its temporaries and the not-yet-committed generation files
/// it renames into place, then defuses it at the commit point — so an
/// early return on *any* error path leaves no `*.tmp` litter and no
/// half-installed generation behind. Removal is best-effort: on a
/// simulated crash the removals themselves fail, and the recovery sweep
/// at next open picks the files up instead.
pub struct TempGuard<'v> {
    vfs: &'v dyn Vfs,
    paths: Vec<PathBuf>,
    armed: bool,
}

impl<'v> TempGuard<'v> {
    /// A guard removing `paths` on drop.
    pub fn new(vfs: &'v dyn Vfs, paths: Vec<PathBuf>) -> Self {
        Self {
            vfs,
            paths,
            armed: true,
        }
    }

    /// Adds another path to remove on drop.
    pub fn add(&mut self, path: PathBuf) {
        self.paths.push(path);
    }

    /// Commits: the files stay.
    pub fn defuse(&mut self) {
        self.armed = false;
    }
}

impl Drop for TempGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for p in &self.paths {
            if self.vfs.exists(p) {
                let _ = self.vfs.remove_file(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("warptree-vfs-{}-{}", std::process::id(), name))
    }

    #[test]
    fn real_vfs_roundtrip() {
        let path = tmp("roundtrip");
        let vfs = RealVfs;
        let mut f = vfs.create(&path).unwrap();
        f.write_at(0, b"hello").unwrap();
        f.write_at(5, b" world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.len().unwrap(), 11);
        drop(f);
        let r = vfs.open(&path).unwrap();
        let mut buf = [0u8; 11];
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        vfs.remove_file(&path).unwrap();
        assert!(!vfs.exists(&path));
    }

    #[test]
    fn fault_error_mode_fails_once() {
        let path = tmp("fault-once");
        let vfs = FaultVfs::new(2, FaultMode::Error);
        let mut f = vfs.create(&path).unwrap(); // op 1
        assert!(f.write_at(0, b"x").is_err()); // op 2: injected
        f.write_at(0, b"x").unwrap(); // op 3: recovered
        assert!(!vfs.crashed());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fault_crash_mode_is_permanent() {
        let path = tmp("fault-crash");
        let vfs = FaultVfs::new(2, FaultMode::Crash);
        let mut f = vfs.create(&path).unwrap();
        assert!(f.write_at(0, b"x").is_err());
        assert!(f.write_at(0, b"x").is_err());
        assert!(vfs.rename(&path, &tmp("fault-crash2")).is_err());
        assert!(vfs.crashed());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn metered_vfs_counts_io() {
        let path = tmp("metered");
        let reg = MetricsRegistry::new();
        let vfs = MeteredVfs::new(real_vfs(), &reg);
        let mut f = vfs.create(&path).unwrap();
        f.write_at(0, b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        let r = vfs.open(&path).unwrap();
        let mut buf = [0u8; 5];
        r.read_at(0, &mut buf).unwrap();
        drop(r);
        vfs.sync_dir(&std::env::temp_dir()).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["disk.vfs.writes"], 1);
        assert_eq!(snap.counters["disk.vfs.write_bytes"], 5);
        assert_eq!(snap.counters["disk.vfs.reads"], 1);
        assert_eq!(snap.counters["disk.vfs.read_bytes"], 5);
        assert_eq!(snap.counters["disk.vfs.syncs"], 2);
        vfs.remove_file(&path).unwrap();
    }

    #[test]
    fn metered_vfs_noop_registry_is_silent() {
        let path = tmp("metered-noop");
        let reg = MetricsRegistry::noop();
        let vfs = MeteredVfs::new(real_vfs(), &reg);
        let mut f = vfs.create(&path).unwrap();
        f.write_at(0, b"x").unwrap();
        drop(f);
        assert!(reg.snapshot().is_empty());
        vfs.remove_file(&path).unwrap();
    }

    #[test]
    fn temp_guard_removes_unless_defused() {
        let vfs = RealVfs;
        let (a, b) = (tmp("guard-a"), tmp("guard-b"));
        std::fs::write(&a, b"x").unwrap();
        std::fs::write(&b, b"y").unwrap();
        {
            let _g = TempGuard::new(&vfs, vec![a.clone()]);
        }
        assert!(!a.exists());
        {
            let mut g = TempGuard::new(&vfs, vec![b.clone()]);
            g.defuse();
        }
        assert!(b.exists());
        std::fs::remove_file(&b).unwrap();
    }
}
