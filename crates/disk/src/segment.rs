//! The LSM-style segment subsystem: online ingest and background
//! compaction of an index directory.
//!
//! [`append_to_index_dir`](crate::append_to_index_dir) merges every
//! append into the monolithic tree — correct, but each append pays for
//! rewriting the whole index. [`append_segment_with`] instead commits
//! the new sequences as a small *tail segment*: a suffix tree over just
//! the appended suffixes, recorded in the manifest next to the base
//! tree. Queries fan the segments out through
//! [`SegmentedIndex`](warptree_core::search::SegmentedIndex) (results
//! are byte-identical to a monolithic build — see that module's
//! equivalence contract), and [`compact_once_with`] folds segments back
//! together pairwise with the paper's §4.1 binary merge, each
//! compaction committed as a new MANIFEST generation so hot reload,
//! crash recovery and `warptree verify` keep working unchanged.
//!
//! The soundness argument for appending is the same as for the merge
//! append (boundaries never move, observed bounds only widen, the
//! corpus is rewritten with widened bounds); the difference is purely
//! *where* the new suffixes live. Every mutation here follows the
//! commit protocol of [`manifest`](crate::manifest): temporaries,
//! renames, manifest flip, best-effort removal — a torn compaction or
//! append leaves the previous complete state in force.

use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

use warptree_core::categorize::CatStore;
use warptree_core::search::{BackendKind, IndexBackend};
use warptree_core::sequence::SequenceStore;

use crate::any::AnyIndex;
use crate::corpus::{load_corpus_with, save_corpus_with};
use crate::error::{DiskError, Result};
use crate::esa::write_esa_with;
use crate::format::DiskTree;
use crate::manifest::{
    commit_update_with, corpus_file_name, index_file_name, recover_dir_with, segment_file_name,
    Manifest, SegmentMeta,
};
use crate::merge::merge_trees_with;
use crate::vfs::{RealVfs, TempGuard, Vfs};
use crate::writer::write_tree_with;

/// Builds the index file for the suffixes of `range` under `backend`
/// and writes it at `path` — the one primitive every segment mutation
/// (append, heal, ESA compaction) reduces to.
fn write_range_index(
    vfs: &dyn Vfs,
    backend: BackendKind,
    cat: Arc<CatStore>,
    range: Range<usize>,
    sparse: bool,
    path: &Path,
) -> Result<()> {
    match backend {
        BackendKind::Tree => {
            let tail = if sparse {
                warptree_suffix::build_sparse_range(cat, range)
            } else {
                warptree_suffix::build_full_range(cat, range)
            };
            write_tree_with(vfs, &tail, path)?;
        }
        BackendKind::Esa => {
            let esa = warptree_esa::EsaIndex::build_range(cat, range, sparse);
            write_esa_with(vfs, &esa, path)?;
        }
    }
    Ok(())
}

/// One entry of the uniform segment view used by compaction: the base
/// tree and every tail presented alike.
struct SegView {
    file: String,
    file_len: u64,
}

/// Appends `new_sequences` as a new tail segment of the index directory
/// (O(new data) work — the existing trees are carried forward
/// untouched), committing the widened corpus plus the segment tree as
/// the directory's next generation. Returns the committed manifest.
///
/// The directory must resolve to a committed index. Truncated (§8)
/// indexes are rejected, exactly as for the merge append.
pub fn append_segment(dir: &Path, new_sequences: &SequenceStore) -> Result<Manifest> {
    append_segment_with(&RealVfs, dir, new_sequences)
}

/// [`append_segment`] through an explicit [`Vfs`].
pub fn append_segment_with(
    vfs: &dyn Vfs,
    dir: &Path,
    new_sequences: &SequenceStore,
) -> Result<Manifest> {
    if new_sequences.is_empty() {
        return Err(DiskError::BadRecord("nothing to append".into()));
    }
    let (resolved, _recovery) = recover_dir_with(vfs, dir)?;
    let backend = resolved.backend();
    let (mut store, mut alphabet, _) = load_corpus_with(vfs, &resolved.corpus_path)?;
    let probe = AnyIndex::open_with(
        vfs,
        &resolved.index_path,
        // Temporary encode just to read the base index's shape; replaced
        // below.
        Arc::new(alphabet.encode_store(&store)),
        backend,
        16,
        16,
    )?;
    if probe.depth_limit().is_some() {
        return Err(DiskError::BadRecord(
            "cannot append to a truncated (§8) index".into(),
        ));
    }
    let sparse = probe.is_sparse();
    drop(probe);

    // Admit the new values: widen observed bounds, extend the store.
    // Old symbols are unchanged — only lb/ub widen — so the base tree
    // and every existing tail stay valid over the re-encoded corpus.
    alphabet.widen(new_sequences);
    let first_new = store.len();
    for (_, s) in new_sequences.iter() {
        store.push(s.clone());
    }
    let last = store.len();
    let cat = Arc::new(alphabet.encode_store(&store));

    let old_manifest = resolved.manifest.clone();
    let generation = resolved.generation + 1;
    let corpus_name = corpus_file_name(generation);
    let ordinal = old_manifest.as_ref().map_or(0, |m| m.segments.len()) as u32;
    let segment_name = segment_file_name(generation, ordinal);
    let corpus_tmp = dir.join(format!("{corpus_name}.tmp"));
    let segment_tmp = dir.join(format!("{segment_name}.tmp"));

    let mut guard = TempGuard::new(vfs, vec![corpus_tmp.clone(), segment_tmp.clone()]);
    save_corpus_with(vfs, &store, &alphabet, &corpus_tmp)?;
    // The tail indexes only the new suffixes, with corpus-global
    // sequence ids, and must match the base index's backend and kind.
    write_range_index(
        vfs,
        backend,
        cat.clone(),
        first_new..last,
        sparse,
        &segment_tmp,
    )?;

    let index_name = resolved
        .index_path
        .file_name()
        .and_then(|n| n.to_str())
        .expect("resolved index path has a name")
        .to_string();
    let mut segments = old_manifest
        .as_ref()
        .map_or(Vec::new(), |m| m.segments.clone());
    segments.push(SegmentMeta {
        file: segment_name.clone(),
        file_len: vfs.metadata_len(&segment_tmp)?,
        start_seq: first_new as u32,
        seq_count: (last - first_new) as u32,
        quarantined: false,
    });
    let manifest = Manifest {
        generation,
        corpus: corpus_name,
        index: index_name,
        corpus_len: vfs.metadata_len(&corpus_tmp)?,
        index_len: match &old_manifest {
            Some(m) => m.index_len,
            None => vfs.metadata_len(&resolved.index_path)?,
        },
        segments,
        backend,
    };
    // Only the corpus is superseded; the base tree and old tails are
    // carried forward by reference.
    commit_update_with(
        vfs,
        dir,
        &[
            (corpus_tmp, dir.join(&manifest.corpus)),
            (segment_tmp, dir.join(&segment_name)),
        ],
        &manifest,
        std::slice::from_ref(&resolved.corpus_path),
    )?;
    guard.defuse();
    Ok(manifest)
}

/// Runs one compaction step: merges the adjacent pair of segments with
/// the smallest combined file size (the base tree counts as segment 0)
/// using the paper's binary merge, and commits the result as the next
/// generation. Returns `Ok(None)` when the directory has no tail
/// segments — i.e. is already fully compacted.
///
/// Compaction never touches the corpus and never changes query results;
/// it only reduces the segment count by one. Interrupting it at any
/// point leaves the previous generation in force (the next recovery
/// sweep removes the torn merge's leftovers).
pub fn compact_once(dir: &Path) -> Result<Option<Manifest>> {
    compact_once_with(&RealVfs, dir, &warptree_obs::MetricsRegistry::noop())
}

/// [`compact_once`] through an explicit [`Vfs`], metering
/// `compaction.runs` / `compaction.ns` and the `index.segments` gauge
/// into `reg`.
pub fn compact_once_with(
    vfs: &dyn Vfs,
    dir: &Path,
    reg: &warptree_obs::MetricsRegistry,
) -> Result<Option<Manifest>> {
    let (resolved, _recovery) = recover_dir_with(vfs, dir)?;
    let Some(old) = resolved.manifest.clone() else {
        return Ok(None); // legacy single-tree directory
    };
    if old.segments.is_empty() {
        return Ok(None);
    }
    // A quarantined segment cannot be merged (its file is known-bad) and
    // merging around it would reorder the sequence ranges the coverage
    // accounting relies on. Heal first, then compact.
    if old.segments.iter().any(|s| s.quarantined) {
        return Ok(None);
    }
    let hist = reg.histogram("compaction.ns");
    let timer = hist.span();

    let (_, _, cat) = load_corpus_with(vfs, &resolved.corpus_path)?;

    // Uniform view: base first, then the tails, in sequence order.
    let mut view = vec![SegView {
        file: old.index.clone(),
        file_len: old.index_len,
    }];
    view.extend(old.segments.iter().map(|s| SegView {
        file: s.file.clone(),
        file_len: s.file_len,
    }));

    // Cheapest adjacent pair first, ties to the right (file sizes are
    // page-quantized, so ties are common): small tails coalesce among
    // themselves before anything pays for rewriting the base, which is
    // what keeps total merge work O(n log n).
    let pick = (0..view.len() - 1)
        .rev()
        .min_by_key(|&i| view[i].file_len + view[i + 1].file_len)
        .expect("at least one adjacent pair");

    let generation = old.generation + 1;
    let merged_name = if pick == 0 {
        index_file_name(generation)
    } else {
        segment_file_name(generation, (pick - 1) as u32)
    };
    let merged_tmp = dir.join(format!("{merged_name}.tmp"));
    let mut guard = TempGuard::new(vfs, vec![merged_tmp.clone()]);

    let left_path = dir.join(&view[pick].file);
    let right_path = dir.join(&view[pick + 1].file);
    match old.backend {
        BackendKind::Tree => {
            // The paper's §4.1 binary merge: one sequential pass over
            // the two tree files.
            let left = DiskTree::open_with(vfs, &left_path, cat.clone(), 256, 2048)?;
            let right = DiskTree::open_with(vfs, &right_path, cat.clone(), 256, 2048)?;
            merge_trees_with(vfs, &left, &right, &cat, &merged_tmp)?;
        }
        BackendKind::Esa => {
            // No binary merge exists for the ESA's flat arrays; the
            // merged segment is rebuilt canonically from the corpus
            // over the union of the two sequence ranges — which also
            // guarantees it is byte-identical to a from-scratch build.
            let base = AnyIndex::open_with(
                vfs,
                &resolved.index_path,
                cat.clone(),
                BackendKind::Esa,
                16,
                16,
            )?;
            let sparse = base.is_sparse();
            drop(base);
            let range = if pick == 0 {
                let s = &old.segments[0];
                0..(s.start_seq + s.seq_count) as usize
            } else {
                let (l, r) = (&old.segments[pick - 1], &old.segments[pick]);
                l.start_seq as usize..(l.start_seq + l.seq_count + r.seq_count) as usize
            };
            write_range_index(vfs, BackendKind::Esa, cat.clone(), range, sparse, &merged_tmp)?;
        }
    }
    let merged_len = vfs.metadata_len(&merged_tmp)?;

    let mut manifest = Manifest {
        generation,
        corpus: old.corpus.clone(),
        index: old.index.clone(),
        corpus_len: old.corpus_len,
        index_len: old.index_len,
        segments: old.segments.clone(),
        backend: old.backend,
    };
    if pick == 0 {
        // Base absorbed the first tail.
        manifest.index = merged_name.clone();
        manifest.index_len = merged_len;
        manifest.segments.remove(0);
    } else {
        // Two adjacent tails became one.
        let left_meta = manifest.segments[pick - 1].clone();
        let right_meta = manifest.segments.remove(pick);
        manifest.segments[pick - 1] = SegmentMeta {
            file: merged_name.clone(),
            file_len: merged_len,
            start_seq: left_meta.start_seq,
            seq_count: left_meta.seq_count + right_meta.seq_count,
            quarantined: false,
        };
    }
    commit_update_with(
        vfs,
        dir,
        &[(merged_tmp, dir.join(&merged_name))],
        &manifest,
        &[left_path, right_path],
    )?;
    guard.defuse();
    timer.end();
    reg.counter("compaction.runs").incr();
    reg.set_gauge("index.segments", (manifest.segments.len() + 1) as f64);
    Ok(Some(manifest))
}

/// Heals a quarantined tail segment by rebuilding its tree from the
/// (intact) corpus — the suffixes of a tail segment are fully derivable
/// from its `start_seq..start_seq+seq_count` sequence range, so the
/// corrupt file is replaced by a freshly built one and the quarantine
/// flag cleared, all as one new manifest generation. The tombstone file
/// is removed only after the replacement is committed.
pub fn heal_segment_with(vfs: &dyn Vfs, dir: &Path, segment: &str) -> Result<Manifest> {
    let (resolved, _recovery) = recover_dir_with(vfs, dir)?;
    let Some(old) = resolved.manifest.clone() else {
        return Err(DiskError::BadManifest(
            "cannot heal in a manifest-less directory".into(),
        ));
    };
    let idx = old
        .segments
        .iter()
        .position(|s| s.file == segment && s.quarantined)
        .ok_or_else(|| DiskError::BadManifest(format!("no quarantined segment named {segment}")))?;
    let meta = old.segments[idx].clone();
    let (store, alphabet, _) = load_corpus_with(vfs, &resolved.corpus_path)?;
    let cat = Arc::new(alphabet.encode_store(&store));
    let probe = AnyIndex::open_with(vfs, &resolved.index_path, cat.clone(), old.backend, 16, 16)?;
    let sparse = probe.is_sparse();
    drop(probe);
    let first = meta.start_seq as usize;
    let last = first + meta.seq_count as usize;
    if last > store.len() {
        return Err(DiskError::BadManifest(format!(
            "segment {segment} covers sequences beyond the corpus"
        )));
    }
    let generation = old.generation + 1;
    let new_name = segment_file_name(generation, idx as u32);
    let tmp = dir.join(format!("{new_name}.tmp"));
    let mut guard = TempGuard::new(vfs, vec![tmp.clone()]);
    write_range_index(vfs, old.backend, cat, first..last, sparse, &tmp)?;
    let mut manifest = old.clone();
    manifest.generation = generation;
    manifest.segments[idx] = SegmentMeta {
        file: new_name.clone(),
        file_len: vfs.metadata_len(&tmp)?,
        start_seq: meta.start_seq,
        seq_count: meta.seq_count,
        quarantined: false,
    };
    commit_update_with(
        vfs,
        dir,
        &[(tmp, dir.join(&new_name))],
        &manifest,
        &[dir.join(&meta.file)],
    )?;
    guard.defuse();
    Ok(manifest)
}

/// What one scrub pass found and did.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Committed generation after the pass (quarantines and heals each
    /// commit a new one).
    pub generation: u64,
    /// Pages verified through the CRC-checked path across all files.
    pub pages: u64,
    /// Segments this pass detected corrupt and quarantined.
    pub newly_quarantined: Vec<String>,
    /// Previously quarantined segments this pass rebuilt from the
    /// corpus.
    pub healed: Vec<String>,
    /// Corruption in a file quarantine cannot cover (the corpus or the
    /// base tree) — serving is compromised until a rebuild.
    pub unrecoverable: Option<String>,
}

impl ScrubReport {
    /// Whether the directory is fully healthy after the pass.
    pub fn is_clean(&self) -> bool {
        self.newly_quarantined.is_empty() && self.unrecoverable.is_none()
    }
}

impl std::fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "generation {}: {} pages verified",
            self.generation, self.pages
        )?;
        for s in &self.newly_quarantined {
            write!(f, "\n  quarantined {s}")?;
        }
        for s in &self.healed {
            write!(f, "\n  healed {s}")?;
        }
        if let Some(e) = &self.unrecoverable {
            write!(f, "\n  UNRECOVERABLE: {e}")?;
        }
        Ok(())
    }
}

/// One scrub pass over an index directory: walks every page of the
/// corpus, the base tree and every live tail segment through the
/// CRC-checked pager path (bypassing caches), quarantines tail segments
/// found corrupt, and — when `heal` is set — rebuilds every quarantined
/// segment from the corpus. Corruption of the corpus or base tree is
/// reported as unrecoverable (nothing to rebuild them from) and aborts
/// the pass without mutating the directory.
pub fn scrub_dir_with(
    vfs: &dyn Vfs,
    dir: &Path,
    heal: bool,
    reg: &warptree_obs::MetricsRegistry,
) -> Result<ScrubReport> {
    let resolved = crate::manifest::resolve_dir_with(vfs, dir)?;
    let mut report = ScrubReport {
        generation: resolved.generation,
        ..Default::default()
    };

    // The corpus is the source of truth every heal rebuilds from; check
    // it first, uncached, via a throwaway reader.
    let corpus_reader = crate::pager::PagedReader::open_with(vfs, &resolved.corpus_path, 2)?;
    corpus_reader.meter_crc_failures(reg, "disk.read_crc_fail");
    for p in 0..corpus_reader.page_count() {
        if let Err(e) = corpus_reader.verify_page(p) {
            report.unrecoverable = Some(format!(
                "corpus {}: {e}",
                resolved
                    .corpus_path
                    .file_name()
                    .unwrap_or_default()
                    .to_string_lossy()
            ));
            return Ok(report);
        }
        report.pages += 1;
    }
    drop(corpus_reader);

    let (_, _, cat) = load_corpus_with(vfs, &resolved.corpus_path)?;

    // Base index: corruption here is unrecoverable by quarantine.
    let backend = resolved.backend();
    match AnyIndex::open_with(vfs, &resolved.index_path, cat.clone(), backend, 2, 1) {
        Ok(index) => {
            index.instrument(reg);
            match index.verify_pages() {
                Ok(pages) => report.pages += pages,
                Err(e) => {
                    report.unrecoverable = Some(e.to_string());
                    return Ok(report);
                }
            }
        }
        Err(e) => {
            report.unrecoverable = Some(e.to_string());
            return Ok(report);
        }
    }

    // Live tail segments: a failure here is what quarantine is for.
    let segments: Vec<SegmentMeta> = resolved
        .manifest
        .as_ref()
        .map(|m| m.segments.clone())
        .unwrap_or_default();
    for meta in segments.iter().filter(|s| !s.quarantined) {
        let path = dir.join(&meta.file);
        let failed = match AnyIndex::open_with(vfs, &path, cat.clone(), backend, 2, 1) {
            Ok(index) => {
                index.instrument(reg);
                match index.verify_pages() {
                    Ok(pages) => {
                        report.pages += pages;
                        false
                    }
                    Err(_) => true,
                }
            }
            Err(_) => true,
        };
        if failed {
            crate::manifest::quarantine_segment_with(vfs, dir, &meta.file)?;
            report.newly_quarantined.push(meta.file.clone());
        }
    }

    if heal {
        let quarantined: Vec<String> = crate::manifest::read_manifest_with(vfs, dir)?
            .map(|m| m.quarantined_segments().map(|s| s.file.clone()).collect())
            .unwrap_or_default();
        for name in quarantined {
            heal_segment_with(vfs, dir, &name)?;
            report.healed.push(name);
        }
    }

    if let Some(m) = crate::manifest::read_manifest_with(vfs, dir)? {
        report.generation = m.generation;
    }
    reg.counter("scrub.runs").incr();
    reg.counter("scrub.pages").add(report.pages);
    Ok(report)
}

/// Compacts until a single tree remains, returning the number of merge
/// steps performed and the final manifest (when any step ran).
pub fn compact_all_with(
    vfs: &dyn Vfs,
    dir: &Path,
    reg: &warptree_obs::MetricsRegistry,
) -> Result<(u64, Option<Manifest>)> {
    let mut runs = 0;
    let mut last = None;
    while let Some(m) = compact_once_with(vfs, dir, reg)? {
        runs += 1;
        last = Some(m);
    }
    Ok((runs, last))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{resolve_dir_with, verify_dir_with};
    use crate::snapshot::open_dir_snapshot_with;
    use warptree_core::categorize::Alphabet;
    use warptree_core::search::{QueryRequest, SearchParams};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("warptree-segment-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn build_initial(dir: &Path, sparse: bool) -> SequenceStore {
        let store =
            SequenceStore::from_values(vec![vec![1.0, 5.0, 3.0, 5.0, 1.0], vec![4.0, 4.0, 2.0]]);
        let alphabet = Alphabet::max_entropy(&store, 6).unwrap();
        crate::manifest::build_dir_with(
            crate::vfs::real_vfs(),
            &store,
            &alphabet,
            if sparse {
                crate::merge::TreeKind::Sparse
            } else {
                crate::merge::TreeKind::Full
            },
            1,
            1,
            None,
            dir,
        )
        .unwrap();
        store
    }

    #[test]
    fn segment_append_then_full_compaction_round_trip() {
        for sparse in [false, true] {
            let dir = tmpdir(&format!("roundtrip-{sparse}"));
            build_initial(&dir, sparse);
            // Two appends leave two tail segments; values outside the
            // old range exercise the widening path.
            append_segment(&dir, &SequenceStore::from_values(vec![vec![0.0, 9.0, 5.0]])).unwrap();
            let m = append_segment(
                &dir,
                &SequenceStore::from_values(vec![vec![3.0, 3.0, 3.0], vec![5.0, 1.0]]),
            )
            .unwrap();
            assert_eq!(m.segments.len(), 2);
            assert_eq!(m.segments[0].start_seq, 2);
            assert_eq!(m.segments[1].start_seq, 3);
            assert_eq!(m.segments[1].seq_count, 2);
            assert!(verify_dir_with(&RealVfs, &dir).unwrap().is_ok());

            // Queries over the segmented snapshot agree with brute force.
            let snap = open_dir_snapshot_with(&RealVfs, &dir, 64, 256).unwrap();
            let req = QueryRequest::threshold_params(&[5.0, 1.0], SearchParams::with_epsilon(0.75));
            let (got, _) = snap.run_query(&req).unwrap();
            let mut stats = warptree_core::search::SearchStats::default();
            let expected = warptree_core::search::seq_scan(
                &snap.store,
                &[5.0, 1.0],
                &SearchParams::with_epsilon(0.75),
                warptree_core::search::SeqScanMode::Full,
                &mut stats,
            );
            assert_eq!(
                got.into_answer_set().occurrence_set(),
                expected.occurrence_set(),
                "sparse={sparse}"
            );

            // Compact to a single tree; results must not change.
            let reg = warptree_obs::MetricsRegistry::new();
            let (runs, last) = compact_all_with(&RealVfs, &dir, &reg).unwrap();
            assert_eq!(runs, 2);
            assert!(last.unwrap().segments.is_empty());
            assert_eq!(reg.counter("compaction.runs").get(), 2);
            assert!(verify_dir_with(&RealVfs, &dir).unwrap().is_ok());
            let snap2 = open_dir_snapshot_with(&RealVfs, &dir, 64, 256).unwrap();
            assert_eq!(snap2.segments.len(), 0);
            let (got2, _) = snap2.run_query(&req).unwrap();
            assert_eq!(
                got2.into_answer_set().occurrence_set(),
                expected.occurrence_set()
            );
            // No data files beyond the committed pair remain.
            assert!(compact_once(&dir).unwrap().is_none());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn compaction_prefers_cheapest_adjacent_pair() {
        let dir = tmpdir("pick");
        build_initial(&dir, false);
        // Two small tails: their combined size is far below base+tail,
        // so one compaction merges the tails, leaving the base alone.
        append_segment(&dir, &SequenceStore::from_values(vec![vec![2.0, 2.5]])).unwrap();
        append_segment(&dir, &SequenceStore::from_values(vec![vec![4.5, 4.0]])).unwrap();
        let before = resolve_dir_with(&RealVfs, &dir).unwrap();
        let m = compact_once(&dir).unwrap().unwrap();
        assert_eq!(m.segments.len(), 1);
        assert_eq!(
            m.index,
            before.manifest.as_ref().unwrap().index,
            "base untouched"
        );
        assert_eq!(m.segments[0].start_seq, 2);
        assert_eq!(m.segments[0].seq_count, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_to_truncated_index_is_rejected() {
        let dir = tmpdir("truncated");
        let store = SequenceStore::from_values(vec![vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]);
        let alphabet = Alphabet::max_entropy(&store, 4).unwrap();
        crate::manifest::build_dir_with(
            crate::vfs::real_vfs(),
            &store,
            &alphabet,
            crate::merge::TreeKind::Full,
            1,
            1,
            Some(warptree_suffix::TruncateSpec {
                max_answer_len: 3,
                min_answer_len: 1,
            }),
            &dir,
        )
        .unwrap();
        let err = append_segment(&dir, &SequenceStore::from_values(vec![vec![1.0]]));
        assert!(matches!(err, Err(DiskError::BadRecord(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
