//! Error type for the disk layer.

use std::fmt;

/// Errors raised by the paged storage and tree file formats.
#[derive(Debug)]
pub enum DiskError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A page failed its CRC check.
    CorruptPage {
        /// Index of the bad page.
        page: u64,
    },
    /// The file is not a warptree file or has an unsupported version.
    BadHeader(String),
    /// A read past the logical end of the file.
    OutOfBounds {
        /// Requested logical offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Logical file size.
        size: u64,
    },
    /// A structurally invalid record was encountered.
    BadRecord(String),
    /// The directory's `MANIFEST` file is missing, unreadable, or
    /// references files that do not exist.
    BadManifest(String),
    /// The path does not hold a committed index directory (no manifest
    /// and no legacy `corpus.wc` + `index.wt` pair).
    NotAnIndexDir(String),
    /// A page failed its CRC check while serving a read from a known
    /// segment file — the read-path integrity signal that drives
    /// quarantine and degraded (partial-result) serving.
    CorruptionDetected {
        /// Manifest file name of the corrupt segment.
        segment: String,
        /// Index of the bad page inside that file.
        page: u64,
    },
    /// The directory (or file) is committed under an index backend this
    /// code path cannot serve — e.g. an older tree-only binary opening
    /// a manifest that records the `esa` backend, or a backend id this
    /// build does not know.
    UnsupportedBackend {
        /// What the manifest or file header recorded.
        found: String,
    },
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "i/o error: {e}"),
            DiskError::CorruptPage { page } => {
                write!(f, "page {page} failed its CRC check")
            }
            DiskError::BadHeader(m) => write!(f, "bad file header: {m}"),
            DiskError::OutOfBounds { offset, len, size } => write!(
                f,
                "read of {len} bytes at logical offset {offset} exceeds \
                 file size {size}"
            ),
            DiskError::BadRecord(m) => write!(f, "bad record: {m}"),
            DiskError::BadManifest(m) => write!(f, "bad manifest: {m}"),
            DiskError::NotAnIndexDir(m) => {
                write!(f, "not an index directory: {m}")
            }
            DiskError::CorruptionDetected { segment, page } => {
                write!(f, "corruption detected in segment {segment} (page {page})")
            }
            DiskError::UnsupportedBackend { found } => {
                write!(
                    f,
                    "unsupported index backend {found}: this code path only \
                     serves indexes it was built to read"
                )
            }
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> Self {
        DiskError::Io(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, DiskError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DiskError::CorruptPage { page: 3 }
            .to_string()
            .contains("page 3"));
        assert!(DiskError::BadHeader("x".into()).to_string().contains("x"));
        let e = DiskError::OutOfBounds {
            offset: 1,
            len: 2,
            size: 3,
        };
        assert!(e.to_string().contains("exceeds"));
        let io: DiskError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        let c = DiskError::CorruptionDetected {
            segment: "segment-000003-00.wt".into(),
            page: 7,
        };
        assert!(c.to_string().contains("segment-000003-00.wt"));
        assert!(c.to_string().contains("page 7"));
        let b = DiskError::UnsupportedBackend { found: "esa".into() };
        assert!(b.to_string().contains("esa"));
    }
}
