//! On-disk enhanced-suffix-array file format.
//!
//! An ESA file persists the three flat arrays of a
//! [`warptree_esa::EsaIndex`] — SA entries, LCP-interval records, and
//! the packed child table — through the same CRC'd pager as the tree
//! format, so `verify`, scrub, quarantine and the commit protocol
//! compose unchanged. Unlike the tree format there is no node heap to
//! page in lazily: the arrays are compact (12 bytes per suffix, 28 per
//! interval, 4 per child edge), so [`DiskEsa::open_with`] loads them
//! eagerly through the CRC-checked read path and serves queries from
//! memory. Corruption therefore surfaces at *open* time as a typed
//! [`DiskError`], which the scrub/quarantine machinery already treats
//! exactly like a mid-query CRC failure.
//!
//! ```text
//! header (64 bytes, logical offset 0):
//!   magic   [u8;8] = "WARPESA\0"
//!   version u32    = 1
//!   flags   u32      bit 0: sparse index
//!   alpha   u32      alphabet length the symbols were drawn from
//!   entry_count u64  stored suffixes (SA entries)
//!   rec_count   u64  LCP-interval records
//!   child_count u64  packed child-table slots
//!   root        u32  index of the root interval record
//!   reserved    [u8;12] (zero)
//!
//! body (sequential, little-endian):
//!   entry_count × { seq u32, start u32, lead u32 }
//!   rec_count   × { lo u32, hi u32, depth u32, child_off u32,
//!                   child_count u32, attached u32, max_run u32 }
//!   child_count × { tag u32 }   (high bit = leaf entry index)
//! ```
//!
//! Every page carries a CRC-32, so corruption anywhere in the file is
//! detected on first touch.

use std::path::Path;
use std::sync::Arc;

use warptree_core::categorize::{CatStore, Symbol};
use warptree_core::search::{BackendKind, IndexBackend};
use warptree_core::sequence::SeqId;
use warptree_esa::{Entry, EsaIndex, EsaNode, IntervalRec};

use crate::error::{DiskError, Result};
use crate::pager::{IoStats, PagedReader, PagedWriter};
use crate::vfs::{RealVfs, Vfs};

/// Size of the ESA file header in logical bytes.
pub const ESA_HEADER_SIZE: u64 = 64;
/// ESA header magic bytes.
pub const ESA_MAGIC: &[u8; 8] = b"WARPESA\0";
/// Current ESA format version.
pub const ESA_VERSION: u32 = 1;

const ENTRY_BYTES: u64 = 12;
const REC_BYTES: u64 = 28;
const CHILD_BYTES: u64 = 4;

/// Decoded ESA file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EsaHeader {
    /// `true` when only the §6.1 suffix subset is stored.
    pub sparse: bool,
    /// Alphabet length the symbols were drawn from.
    pub alphabet_len: u32,
    /// Stored suffixes (SA entries).
    pub entry_count: u64,
    /// LCP-interval records.
    pub rec_count: u64,
    /// Packed child-table slots.
    pub child_count: u64,
    /// Index of the root interval record.
    pub root: u32,
}

impl EsaHeader {
    /// Serializes the header into its 64-byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ESA_HEADER_SIZE as usize);
        out.extend_from_slice(ESA_MAGIC);
        out.extend_from_slice(&ESA_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sparse as u32).to_le_bytes());
        out.extend_from_slice(&self.alphabet_len.to_le_bytes());
        out.extend_from_slice(&self.entry_count.to_le_bytes());
        out.extend_from_slice(&self.rec_count.to_le_bytes());
        out.extend_from_slice(&self.child_count.to_le_bytes());
        out.extend_from_slice(&self.root.to_le_bytes());
        out.resize(ESA_HEADER_SIZE as usize, 0);
        out
    }

    /// Parses and validates a 64-byte header.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < ESA_HEADER_SIZE as usize {
            return Err(DiskError::BadHeader("truncated header".into()));
        }
        if &buf[0..8] != ESA_MAGIC {
            if &buf[0..8] == crate::format::MAGIC {
                return Err(DiskError::UnsupportedBackend {
                    found: "tree".into(),
                });
            }
            return Err(DiskError::BadHeader("bad magic".into()));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != ESA_VERSION {
            return Err(DiskError::BadHeader(format!(
                "unsupported esa version {version}"
            )));
        }
        let flags = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        Ok(EsaHeader {
            sparse: flags & 1 != 0,
            alphabet_len: u32::from_le_bytes(buf[16..20].try_into().unwrap()),
            entry_count: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
            rec_count: u64::from_le_bytes(buf[28..36].try_into().unwrap()),
            child_count: u64::from_le_bytes(buf[36..44].try_into().unwrap()),
            root: u32::from_le_bytes(buf[44..48].try_into().unwrap()),
        })
    }
}

/// Serializes `esa` to `path` through the CRC'd pager, returning the
/// logical file length in bytes.
pub fn write_esa(esa: &EsaIndex, path: &Path) -> Result<u64> {
    write_esa_with(&RealVfs, esa, path)
}

/// [`write_esa`] through an explicit [`Vfs`].
pub fn write_esa_with(vfs: &dyn Vfs, esa: &EsaIndex, path: &Path) -> Result<u64> {
    let raw = esa.raw();
    let header = EsaHeader {
        sparse: raw.sparse,
        alphabet_len: esa.cat().alphabet_len(),
        entry_count: raw.entries.len() as u64,
        rec_count: raw.recs.len() as u64,
        child_count: raw.children.len() as u64,
        root: raw.root,
    };
    let mut w = PagedWriter::create_with(vfs, path)?;
    w.write(&header.encode())?;
    let mut buf = Vec::with_capacity(64 * 1024);
    for e in raw.entries {
        buf.extend_from_slice(&e.seq.0.to_le_bytes());
        buf.extend_from_slice(&e.start.to_le_bytes());
        buf.extend_from_slice(&e.lead.to_le_bytes());
        if buf.len() >= 64 * 1024 {
            w.write(&buf)?;
            buf.clear();
        }
    }
    for r in raw.recs {
        for v in [
            r.lo,
            r.hi,
            r.depth,
            r.child_off,
            r.child_count,
            r.attached,
            r.max_run,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        if buf.len() >= 64 * 1024 {
            w.write(&buf)?;
            buf.clear();
        }
    }
    for &c in raw.children {
        buf.extend_from_slice(&c.to_le_bytes());
        if buf.len() >= 64 * 1024 {
            w.write(&buf)?;
            buf.clear();
        }
    }
    w.write(&buf)?;
    w.finish(&[])
}

/// A disk-resident enhanced suffix array, query-ready through
/// [`IndexBackend`]. The flat arrays are loaded eagerly through the
/// CRC-checked pager at open; the reader is kept only for
/// [`verify_pages`](Self::verify_pages) and I/O accounting.
pub struct DiskEsa {
    reader: PagedReader,
    header: EsaHeader,
    esa: EsaIndex,
    /// File name this index was opened from (its segment identity).
    source: String,
}

impl DiskEsa {
    /// Opens an ESA file against the categorized store its entries
    /// reference. `cache_pages` sizes the page buffer pool used for the
    /// eager load and later page verification.
    pub fn open(path: &Path, cat: Arc<CatStore>, cache_pages: usize) -> Result<Self> {
        Self::open_with(&RealVfs, path, cat, cache_pages)
    }

    /// [`open`](Self::open) through an explicit [`Vfs`].
    pub fn open_with(
        vfs: &dyn Vfs,
        path: &Path,
        cat: Arc<CatStore>,
        cache_pages: usize,
    ) -> Result<Self> {
        let reader = PagedReader::open_with(vfs, path, cache_pages.max(2))?;
        let mut buf = vec![0u8; ESA_HEADER_SIZE as usize];
        reader.read_exact_at(0, &mut buf)?;
        let header = EsaHeader::decode(&buf)?;
        if header.alphabet_len != cat.alphabet_len() {
            return Err(DiskError::BadHeader(format!(
                "alphabet mismatch: file {} vs store {}",
                header.alphabet_len,
                cat.alphabet_len()
            )));
        }
        let body = header.entry_count * ENTRY_BYTES
            + header.rec_count * REC_BYTES
            + header.child_count * CHILD_BYTES;
        if ESA_HEADER_SIZE + body > reader.logical_len() {
            return Err(DiskError::BadRecord(
                "esa arrays overrun the file".into(),
            ));
        }
        if header.rec_count == 0 || header.root as u64 >= header.rec_count {
            return Err(DiskError::BadRecord(format!(
                "esa root {} outside {} records",
                header.root, header.rec_count
            )));
        }

        let mut off = ESA_HEADER_SIZE;
        let mut entries = Vec::with_capacity(header.entry_count as usize);
        let mut raw = vec![0u8; (header.entry_count * ENTRY_BYTES) as usize];
        reader.read_exact_at(off, &mut raw)?;
        for c in raw.chunks_exact(ENTRY_BYTES as usize) {
            entries.push(Entry {
                seq: SeqId(u32::from_le_bytes(c[0..4].try_into().unwrap())),
                start: u32::from_le_bytes(c[4..8].try_into().unwrap()),
                lead: u32::from_le_bytes(c[8..12].try_into().unwrap()),
            });
        }
        off += header.entry_count * ENTRY_BYTES;

        let mut recs = Vec::with_capacity(header.rec_count as usize);
        let mut raw = vec![0u8; (header.rec_count * REC_BYTES) as usize];
        reader.read_exact_at(off, &mut raw)?;
        for c in raw.chunks_exact(REC_BYTES as usize) {
            let w = |i: usize| u32::from_le_bytes(c[4 * i..4 * i + 4].try_into().unwrap());
            recs.push(IntervalRec {
                lo: w(0),
                hi: w(1),
                depth: w(2),
                child_off: w(3),
                child_count: w(4),
                attached: w(5),
                max_run: w(6),
            });
        }
        off += header.rec_count * REC_BYTES;

        let mut children = Vec::with_capacity(header.child_count as usize);
        let mut raw = vec![0u8; (header.child_count * CHILD_BYTES) as usize];
        reader.read_exact_at(off, &mut raw)?;
        for c in raw.chunks_exact(CHILD_BYTES as usize) {
            children.push(u32::from_le_bytes(c.try_into().unwrap()));
        }

        let esa = EsaIndex::from_raw(cat, header.sparse, entries, recs, children, header.root);
        Ok(Self {
            reader,
            header,
            esa,
            source: path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
        })
    }

    /// The file header.
    pub fn header(&self) -> EsaHeader {
        self.header
    }

    /// The file name this index was opened from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The in-memory index serving queries.
    pub fn esa(&self) -> &EsaIndex {
        &self.esa
    }

    /// The categorized store the entries reference.
    pub fn cat(&self) -> &Arc<CatStore> {
        self.esa.cat()
    }

    /// Page-level I/O counters (accumulated at open and verify time —
    /// queries are served from memory).
    pub fn io_stats(&self) -> IoStats {
        self.reader.io_stats()
    }

    /// Resident bytes of the loaded index arrays (the backend-race
    /// metric; excludes the shared corpus).
    pub fn resident_bytes(&self) -> u64 {
        self.esa.resident_bytes()
    }

    /// Walks every physical page of the file through the CRC check,
    /// bypassing the page cache (the scrub / `verify --deep` primitive).
    /// Returns the page count, or the first corruption typed with this
    /// file's name.
    pub fn verify_pages(&self) -> Result<u64> {
        for p in 0..self.reader.page_count() {
            self.reader.verify_page(p).map_err(|e| match e {
                DiskError::CorruptPage { page } => DiskError::CorruptionDetected {
                    segment: self.source.clone(),
                    page,
                },
                other => other,
            })?;
        }
        Ok(self.reader.page_count())
    }

    /// Routes this file's CRC-failure counter into `reg` (the ESA has
    /// no lazily decoded node cache to meter).
    pub fn instrument(&self, reg: &warptree_obs::MetricsRegistry) {
        self.reader
            .meter_cache(reg, "disk.page_cache.hits", "disk.page_cache.misses");
        self.reader.meter_crc_failures(reg, "disk.read_crc_fail");
    }
}

impl IndexBackend for DiskEsa {
    type Node = EsaNode;

    fn root(&self) -> EsaNode {
        self.esa.root()
    }

    fn for_each_child(&self, n: EsaNode, f: &mut dyn FnMut(EsaNode)) {
        self.esa.for_each_child(n, f)
    }

    fn edge_label(&self, n: EsaNode, out: &mut Vec<Symbol>) {
        self.esa.edge_label(n, out)
    }

    fn for_each_suffix_below(&self, n: EsaNode, f: &mut dyn FnMut(SeqId, u32, u32)) {
        self.esa.for_each_suffix_below(n, f)
    }

    fn max_lead_run(&self, n: EsaNode) -> u32 {
        self.esa.max_lead_run(n)
    }

    fn is_sparse(&self) -> bool {
        self.esa.is_sparse()
    }

    fn suffix_count(&self) -> u64 {
        self.esa.suffix_count()
    }

    fn backend_kind(&self) -> BackendKind {
        BackendKind::Esa
    }

    fn suffix_count_below(&self, n: EsaNode) -> Option<u64> {
        self.esa.suffix_count_below(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warptree_core::categorize::CatStore;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("warptree-esa-{}-{}", std::process::id(), name));
        p
    }

    fn sample_cat() -> Arc<CatStore> {
        Arc::new(CatStore::from_symbols(
            vec![vec![0, 1, 2, 1, 2, 1], vec![2, 2, 0], vec![1, 1, 1, 1]],
            3,
        ))
    }

    #[test]
    fn esa_header_roundtrip() {
        let h = EsaHeader {
            sparse: true,
            alphabet_len: 42,
            entry_count: 9,
            rec_count: 5,
            child_count: 11,
            root: 4,
        };
        let enc = h.encode();
        assert_eq!(enc.len(), ESA_HEADER_SIZE as usize);
        assert_eq!(EsaHeader::decode(&enc).unwrap(), h);
        let mut bad = enc.clone();
        bad[0] = b'X';
        assert!(matches!(
            EsaHeader::decode(&bad),
            Err(DiskError::BadHeader(_))
        ));
        let mut wrong_version = enc;
        wrong_version[8] = 99;
        assert!(matches!(
            EsaHeader::decode(&wrong_version),
            Err(DiskError::BadHeader(_))
        ));
    }

    #[test]
    fn esa_header_names_a_tree_file_as_a_backend_mismatch() {
        let tree_header = crate::format::Header {
            sparse: false,
            alphabet_len: 3,
            node_count: 1,
            suffix_count: 1,
            root_offset: 64,
            depth_limit: None,
        };
        let err = EsaHeader::decode(&tree_header.encode()).unwrap_err();
        assert!(matches!(
            err,
            DiskError::UnsupportedBackend { ref found } if found == "tree"
        ));
    }

    #[test]
    fn write_open_roundtrip_preserves_traversal() {
        for sparse in [false, true] {
            let cat = sample_cat();
            let esa = EsaIndex::build(cat.clone(), sparse);
            let path = tmp(&format!("roundtrip-{sparse}"));
            let len = write_esa(&esa, &path).unwrap();
            assert!(len > ESA_HEADER_SIZE);
            let disk = DiskEsa::open(&path, cat, 8).unwrap();
            assert_eq!(disk.is_sparse(), sparse);
            assert_eq!(disk.suffix_count(), esa.suffix_count());
            assert_eq!(disk.backend_kind(), BackendKind::Esa);
            disk.esa().check_invariants();
            // Identical suffix enumeration order end to end.
            let mut mem = Vec::new();
            esa.for_each_suffix_below(esa.root(), &mut |s, p, r| mem.push((s, p, r)));
            let mut back = Vec::new();
            disk.for_each_suffix_below(disk.root(), &mut |s, p, r| back.push((s, p, r)));
            assert_eq!(mem, back);
            assert_eq!(disk.resident_bytes(), esa.resident_bytes());
            assert_eq!(disk.verify_pages().unwrap(), 1);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let cat = sample_cat();
        let esa = EsaIndex::build(cat, false);
        let path = tmp("alpha");
        write_esa(&esa, &path).unwrap();
        let other = Arc::new(CatStore::from_symbols(vec![vec![0, 1]], 7));
        assert!(DiskEsa::open(&path, other, 8).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_page_detected_at_open() {
        let cat = sample_cat();
        let esa = EsaIndex::build(cat.clone(), false);
        let path = tmp("corrupt");
        write_esa(&esa, &path).unwrap();
        // Flip a byte inside the array region: the eager CRC-checked
        // load must refuse the file.
        let mut raw = std::fs::read(&path).unwrap();
        let mid = 128;
        raw[mid] ^= 0x5a;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            DiskEsa::open(&path, cat, 8),
            Err(DiskError::CorruptPage { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
