//! The shard manifest: a CRC'd, generational record of how a corpus is
//! partitioned across shard index directories.
//!
//! Sharding assigns each sequence to exactly one shard by **contiguous
//! global ranges**: shard *i* owns global sequence ids
//! `[start_seq, start_seq + seq_count)`, and a shard's local id `j`
//! names global sequence `start_seq + j`. The coordinator only needs
//! this offset to translate shard answers back into corpus-wide ids,
//! which keeps the cross-shard merge identical to the in-process
//! segment merge (`SegmentMeta` uses the same `{start_seq, seq_count}`
//! idiom for tail segments inside one directory).
//!
//! The `SHARDS` file follows the `MANIFEST` format discipline: magic,
//! version, little-endian fields, length-prefixed strings, and a CRC32
//! tail; commits go through `SHARDS.tmp` → fsync → rename → directory
//! fsync, so a crash leaves either the old or the new manifest in
//! force, never a torn one.

use std::path::Path;

use crate::crc::crc32;
use crate::error::{DiskError, Result};
use crate::vfs::{TempGuard, Vfs};

/// File name of the shard manifest inside the sharding root directory.
pub const SHARD_MANIFEST_NAME: &str = "SHARDS";

const SHARD_MAGIC: &[u8; 8] = b"WARPSHRD";
const SHARD_VERSION: u32 = 1;

/// One shard's slice of the corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Subdirectory (relative to the sharding root) holding the
    /// shard's index directory.
    pub dir: String,
    /// First global sequence id owned by this shard.
    pub start_seq: u32,
    /// Number of sequences assigned at partition time.
    pub seq_count: u32,
    /// Total values (suffix positions) assigned at partition time —
    /// the coordinator's fallback for `suffixes_total` when a shard is
    /// down before it was ever polled.
    pub values: u64,
}

/// The committed shard layout of a corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Bumped on every layout change (initial partition = 1).
    pub generation: u64,
    /// Shards in global sequence order.
    pub shards: Vec<ShardMeta>,
}

impl ShardManifest {
    /// Validates the invariants the coordinator's merge relies on:
    /// at least one shard, and shard ranges that tile the global id
    /// space contiguously from 0 with no gaps, overlaps, or empty
    /// shards.
    pub fn validate(&self) -> Result<()> {
        let bad = |m: String| DiskError::BadManifest(m);
        if self.shards.is_empty() {
            return Err(bad("shard manifest has no shards".into()));
        }
        let mut next = 0u32;
        for (i, s) in self.shards.iter().enumerate() {
            if s.seq_count == 0 {
                return Err(bad(format!("shard {i} ({}) is empty", s.dir)));
            }
            if s.start_seq != next {
                return Err(bad(format!(
                    "shard {i} ({}) starts at {} but the previous shard ends at {next}",
                    s.dir, s.start_seq
                )));
            }
            next = next
                .checked_add(s.seq_count)
                .ok_or_else(|| bad(format!("shard {i} ({}) overflows sequence ids", s.dir)))?;
        }
        Ok(())
    }

    /// Total sequences across all shards.
    pub fn total_sequences(&self) -> u64 {
        self.shards.iter().map(|s| s.seq_count as u64).sum()
    }

    /// Total values across all shards at partition time.
    pub fn total_values(&self) -> u64 {
        self.shards.iter().map(|s| s.values).sum()
    }

    /// The shard owning global sequence `seq`, when any.
    pub fn owner_of(&self, seq: u32) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| seq >= s.start_seq && (seq - s.start_seq) < s.seq_count)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(SHARD_MAGIC);
        out.extend_from_slice(&SHARD_VERSION.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for s in &self.shards {
            out.extend_from_slice(&(s.dir.len() as u32).to_le_bytes());
            out.extend_from_slice(s.dir.as_bytes());
            out.extend_from_slice(&s.start_seq.to_le_bytes());
            out.extend_from_slice(&s.seq_count.to_le_bytes());
            out.extend_from_slice(&s.values.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(raw: &[u8]) -> Result<Self> {
        let bad = |m: &str| DiskError::BadManifest(m.into());
        if raw.len() < 4 {
            return Err(bad("truncated"));
        }
        let (body, tail) = raw.split_at(raw.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().unwrap());
        if crc32(body) != stored {
            return Err(bad("checksum mismatch"));
        }
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8]> {
            if pos + n > body.len() {
                return Err(bad("truncated"));
            }
            let s = &body[pos..pos + n];
            pos += n;
            Ok(s)
        };
        if take(8)? != SHARD_MAGIC {
            return Err(bad("not a shard manifest"));
        }
        let version = u32::from_le_bytes(take(4)?.try_into().unwrap());
        if version != SHARD_VERSION {
            return Err(bad(&format!(
                "unsupported shard manifest version {version}"
            )));
        }
        let generation = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let count = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        if count > 4096 {
            return Err(bad("implausible shard count"));
        }
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            if len > 4096 {
                return Err(bad("implausible directory name length"));
            }
            let dir = std::str::from_utf8(take(len)?)
                .map_err(|_| bad("directory name is not UTF-8"))?
                .to_string();
            let start_seq = u32::from_le_bytes(take(4)?.try_into().unwrap());
            let seq_count = u32::from_le_bytes(take(4)?.try_into().unwrap());
            let values = u64::from_le_bytes(take(8)?.try_into().unwrap());
            shards.push(ShardMeta {
                dir,
                start_seq,
                seq_count,
                values,
            });
        }
        if pos != body.len() {
            return Err(bad("trailing bytes"));
        }
        let m = Self { generation, shards };
        m.validate()?;
        Ok(m)
    }
}

/// Reads the shard manifest under `dir`; `Ok(None)` when none exists.
pub fn read_shard_manifest_with(vfs: &dyn Vfs, dir: &Path) -> Result<Option<ShardManifest>> {
    let path = dir.join(SHARD_MANIFEST_NAME);
    if !vfs.exists(&path) {
        return Ok(None);
    }
    let file = vfs.open(&path)?;
    let len = file.len()?;
    if len > 64 * 1024 {
        return Err(DiskError::BadManifest("implausibly large".into()));
    }
    let mut raw = vec![0u8; len as usize];
    file.read_at(0, &mut raw)?;
    ShardManifest::decode(&raw).map(Some)
}

/// [`read_shard_manifest_with`] over the real filesystem.
pub fn read_shard_manifest(dir: &Path) -> Result<Option<ShardManifest>> {
    read_shard_manifest_with(&crate::vfs::RealVfs, dir)
}

/// Writes `m` as the directory's shard manifest: `SHARDS.tmp`, fsync,
/// rename, directory fsync. The rename is the commit point. Rejects
/// layouts that fail [`ShardManifest::validate`] before touching disk.
pub fn write_shard_manifest_with(vfs: &dyn Vfs, dir: &Path, m: &ShardManifest) -> Result<()> {
    m.validate()?;
    let tmp = dir.join(format!("{SHARD_MANIFEST_NAME}.tmp"));
    let mut guard = TempGuard::new(vfs, vec![tmp.clone()]);
    let mut file = vfs.create(&tmp)?;
    file.write_at(0, &m.encode())?;
    file.sync()?;
    drop(file);
    vfs.rename(&tmp, &dir.join(SHARD_MANIFEST_NAME))?;
    guard.defuse();
    vfs.sync_dir(dir)?;
    Ok(())
}

/// [`write_shard_manifest_with`] over the real filesystem.
pub fn write_shard_manifest(dir: &Path, m: &ShardManifest) -> Result<()> {
    write_shard_manifest_with(&crate::vfs::RealVfs, dir, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealVfs;

    fn sample() -> ShardManifest {
        ShardManifest {
            generation: 1,
            shards: vec![
                ShardMeta {
                    dir: "shard-0000".into(),
                    start_seq: 0,
                    seq_count: 3,
                    values: 120,
                },
                ShardMeta {
                    dir: "shard-0001".into(),
                    start_seq: 3,
                    seq_count: 2,
                    values: 81,
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_encode_decode() {
        let m = sample();
        assert_eq!(ShardManifest::decode(&m.encode()).unwrap(), m);
        assert_eq!(m.total_sequences(), 5);
        assert_eq!(m.total_values(), 201);
        assert_eq!(m.owner_of(0), Some(0));
        assert_eq!(m.owner_of(2), Some(0));
        assert_eq!(m.owner_of(3), Some(1));
        assert_eq!(m.owner_of(4), Some(1));
        assert_eq!(m.owner_of(5), None);
    }

    #[test]
    fn detects_corruption_via_crc() {
        let mut raw = sample().encode();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        assert!(matches!(
            ShardManifest::decode(&raw),
            Err(DiskError::BadManifest(_))
        ));
        // Truncation is also caught.
        let good = sample().encode();
        assert!(ShardManifest::decode(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn validation_rejects_broken_layouts() {
        let mut gap = sample();
        gap.shards[1].start_seq = 4;
        assert!(gap.validate().is_err());
        let mut overlap = sample();
        overlap.shards[1].start_seq = 2;
        assert!(overlap.validate().is_err());
        let mut empty_shard = sample();
        empty_shard.shards[1].seq_count = 0;
        assert!(empty_shard.validate().is_err());
        let none = ShardManifest {
            generation: 1,
            shards: Vec::new(),
        };
        assert!(none.validate().is_err());
        let mut hole_at_zero = sample();
        hole_at_zero.shards[0].start_seq = 1;
        assert!(hole_at_zero.validate().is_err());
    }

    #[test]
    fn commits_atomically_through_tmp_rename() {
        let dir = std::env::temp_dir().join(format!("warpshard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        write_shard_manifest_with(&RealVfs, &dir, &m).unwrap();
        // No tmp file survives a successful commit.
        assert!(!dir.join("SHARDS.tmp").exists());
        let back = read_shard_manifest_with(&RealVfs, &dir).unwrap().unwrap();
        assert_eq!(back, m);
        // Overwrite with a newer generation; the reader sees it.
        let mut newer = m.clone();
        newer.generation = 2;
        write_shard_manifest_with(&RealVfs, &dir, &newer).unwrap();
        let back = read_shard_manifest_with(&RealVfs, &dir).unwrap().unwrap();
        assert_eq!(back.generation, 2);
        // Missing manifest reads as None, not an error.
        let empty = dir.join("nope");
        std::fs::create_dir_all(&empty).unwrap();
        assert_eq!(read_shard_manifest_with(&RealVfs, &empty).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
