//! A small, allocation-friendly LRU cache used for page frames and
//! decoded node records.
//!
//! Implemented as a `HashMap` keyed by `K` plus an intrusive doubly-linked
//! list threaded through a slab of entries — `O(1)` get/insert/evict, no
//! per-operation allocation once warm.

use std::collections::HashMap;
use std::hash::Hash;

use warptree_obs::Counter;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// An LRU cache holding at most `capacity` entries.
///
/// ```
/// use warptree_disk::lru::LruCache;
/// let mut c = LruCache::new(2);
/// c.insert("a", 1);
/// c.insert("b", 2);
/// c.get(&"a");            // refresh "a"
/// c.insert("c", 3);       // evicts "b", the least recently used
/// assert_eq!(c.get(&"b"), None);
/// assert_eq!(c.get(&"a"), Some(&1));
/// ```
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: Counter,
    misses: Counter,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache with the given capacity (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            hits: Counter::active(),
            misses: Counter::active(),
        }
    }

    /// Rebinds the hit/miss counters — typically to registry-backed
    /// handles so the cache meters into a shared
    /// [`MetricsRegistry`](warptree_obs::MetricsRegistry). Counts
    /// recorded before the swap stay with the old counters.
    pub fn set_counters(&mut self, hits: Counter, misses: Counter) {
        self.hits = hits;
        self.misses = misses;
    }

    /// Total lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Total lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most-recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits.incr();
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                Some(&self.slab[idx].value)
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Inserts `key -> value`, evicting the least-recently-used entry if
    /// full. Replaces the value if the key is present.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        let idx = if self.slab.len() < self.capacity {
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        } else {
            // Evict the tail.
            let idx = self.tail;
            self.unlink(idx);
            let old_key = std::mem::replace(&mut self.slab[idx].key, key.clone());
            self.map.remove(&old_key);
            self.slab[idx].value = value;
            idx
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Drops all entries, keeping the counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn counters_can_meter_into_a_registry() {
        let reg = warptree_obs::MetricsRegistry::new();
        let mut c = LruCache::new(2);
        c.set_counters(reg.counter("cache.hits"), reg.counter("cache.misses"));
        c.insert(1, "a");
        c.get(&1);
        c.get(&2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["cache.hits"], 1);
        assert_eq!(snap.counters["cache.misses"], 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(&1); // 2 is now LRU
        c.insert(3, 30);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh 1; 2 becomes LRU
        c.insert(3, 30);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        c.insert('a', 1);
        c.insert('b', 2);
        assert_eq!(c.get(&'a'), None);
        assert_eq!(c.get(&'b'), Some(&2));
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.insert(i, i * 2);
        }
        assert_eq!(c.len(), 8);
        for i in 992..1000 {
            assert_eq!(c.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        c.insert(1, 1);
        c.clear();
        assert!(c.is_empty());
        c.insert(2, 2);
        assert_eq!(c.get(&2), Some(&2));
    }
}
