//! Backend dispatch for disk-resident indexes.
//!
//! The manifest records which [`BackendKind`] a directory was committed
//! under; [`AnyIndex`] is the runtime counterpart — one value that holds
//! either a [`DiskTree`] or a [`DiskEsa`] and serves queries through
//! [`IndexBackend`] by dispatching per call. Every layer above the file
//! formats (snapshots, segment fan-out, the scrubber, the facade, the
//! server) works with `AnyIndex` and stays backend-agnostic; the match
//! lives here, once.
//!
//! Traversal-visible behavior is identical across variants — that is
//! the ESA's isomorphism contract (see `warptree-esa`) — so the
//! dispatch changes *where* bytes live, never *what* a query answers.

use std::path::Path;
use std::sync::Arc;

use warptree_core::categorize::{CatStore, Symbol};
use warptree_core::search::{BackendKind, IndexBackend};
use warptree_core::sequence::SeqId;
use warptree_esa::EsaNode;

use crate::error::{DiskError, Result};
use crate::esa::DiskEsa;
use crate::format::{DiskTree, Header};
use crate::pager::IoStats;
use crate::vfs::Vfs;

/// A disk-resident index of either backend, opened per the manifest's
/// recorded [`BackendKind`].
pub enum AnyIndex {
    /// The suffix-tree file format (`WARPTREE`).
    Tree(DiskTree),
    /// The enhanced-suffix-array file format (`WARPESA`).
    Esa(DiskEsa),
}

impl std::fmt::Debug for AnyIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnyIndex")
            .field("kind", &self.kind().as_str())
            .field("source", &self.source())
            .finish()
    }
}

/// Node handle of [`AnyIndex`]: tags which backend it came from.
/// Mixing handles across backends is a logic error and panics.
#[derive(Debug, Clone, Copy)]
pub enum AnyNode {
    /// A tree node (file offset of its record).
    Tree(u64),
    /// An ESA node (interval record or leaf entry).
    Esa(EsaNode),
}

impl AnyNode {
    fn tree(self) -> u64 {
        match self {
            AnyNode::Tree(n) => n,
            AnyNode::Esa(_) => unreachable!("esa node handle passed to a tree backend"),
        }
    }

    fn esa(self) -> EsaNode {
        match self {
            AnyNode::Esa(n) => n,
            AnyNode::Tree(_) => unreachable!("tree node handle passed to an esa backend"),
        }
    }
}

impl AnyIndex {
    /// Opens `path` as `backend`, against the categorized store its
    /// labels reference. `cache_pages` sizes the page buffer pool;
    /// `cache_nodes` the tree's decoded-node cache (unused by the ESA,
    /// which loads eagerly).
    pub fn open_with(
        vfs: &dyn Vfs,
        path: &Path,
        cat: Arc<CatStore>,
        backend: BackendKind,
        cache_pages: usize,
        cache_nodes: usize,
    ) -> Result<Self> {
        match backend {
            BackendKind::Tree => Ok(AnyIndex::Tree(DiskTree::open_with(
                vfs,
                path,
                cat,
                cache_pages,
                cache_nodes,
            )?)),
            BackendKind::Esa => Ok(AnyIndex::Esa(DiskEsa::open_with(
                vfs,
                path,
                cat,
                cache_pages,
            )?)),
        }
    }

    /// The backend this index was opened as.
    pub fn kind(&self) -> BackendKind {
        match self {
            AnyIndex::Tree(_) => BackendKind::Tree,
            AnyIndex::Esa(_) => BackendKind::Esa,
        }
    }

    /// The underlying tree, when this is the tree backend.
    pub fn as_tree(&self) -> Option<&DiskTree> {
        match self {
            AnyIndex::Tree(t) => Some(t),
            AnyIndex::Esa(_) => None,
        }
    }

    /// The underlying ESA, when this is the esa backend.
    pub fn as_esa(&self) -> Option<&DiskEsa> {
        match self {
            AnyIndex::Tree(_) => None,
            AnyIndex::Esa(e) => Some(e),
        }
    }

    /// The tree file header, when this is the tree backend.
    pub fn tree_header(&self) -> Option<Header> {
        self.as_tree().map(|t| t.header())
    }

    /// The file name this index was opened from (its segment identity).
    pub fn source(&self) -> &str {
        match self {
            AnyIndex::Tree(t) => t.source(),
            AnyIndex::Esa(e) => e.source(),
        }
    }

    /// The categorized store the labels reference.
    pub fn cat(&self) -> &Arc<CatStore> {
        match self {
            AnyIndex::Tree(t) => t.cat(),
            AnyIndex::Esa(e) => e.cat(),
        }
    }

    /// Page-level I/O counters.
    pub fn io_stats(&self) -> IoStats {
        match self {
            AnyIndex::Tree(t) => t.io_stats(),
            AnyIndex::Esa(e) => e.io_stats(),
        }
    }

    /// Decoded-node cache `(hits, misses)`. The ESA has no node cache
    /// (its records live decoded in memory), so it reports zeros.
    pub fn node_cache_stats(&self) -> (u64, u64) {
        match self {
            AnyIndex::Tree(t) => t.node_cache_stats(),
            AnyIndex::Esa(_) => (0, 0),
        }
    }

    /// Takes the read failure recorded by an aborted traversal, if any.
    /// The ESA serves queries from memory (its CRC checks run at open),
    /// so only the tree backend can record one.
    pub fn take_read_error(&self) -> Option<DiskError> {
        match self {
            AnyIndex::Tree(t) => t.take_read_error(),
            AnyIndex::Esa(_) => None,
        }
    }

    /// Walks every physical page of the file through the CRC check,
    /// bypassing caches (the scrub / `verify --deep` primitive).
    pub fn verify_pages(&self) -> Result<u64> {
        match self {
            AnyIndex::Tree(t) => t.verify_pages(),
            AnyIndex::Esa(e) => e.verify_pages(),
        }
    }

    /// Routes the index's cache/CRC counters into `reg`.
    pub fn instrument(&self, reg: &warptree_obs::MetricsRegistry) {
        match self {
            AnyIndex::Tree(t) => t.instrument(reg),
            AnyIndex::Esa(e) => e.instrument(reg),
        }
    }

    /// Internal record count: tree node records, or ESA interval
    /// records (the structural size stat `info --deep` reports).
    pub fn record_count(&self) -> u64 {
        match self {
            AnyIndex::Tree(t) => t.header().node_count,
            AnyIndex::Esa(e) => e.header().rec_count,
        }
    }

    /// Resident bytes the index needs to serve queries: the tree pages
    /// its node heap on demand, so its logical file length is the bound;
    /// the ESA holds exactly its three flat arrays.
    pub fn resident_bytes(&self) -> u64 {
        match self {
            AnyIndex::Tree(t) => t.logical_len(),
            AnyIndex::Esa(e) => e.resident_bytes(),
        }
    }
}

impl IndexBackend for AnyIndex {
    type Node = AnyNode;

    fn root(&self) -> AnyNode {
        match self {
            AnyIndex::Tree(t) => AnyNode::Tree(t.root()),
            AnyIndex::Esa(e) => AnyNode::Esa(e.root()),
        }
    }

    fn for_each_child(&self, n: AnyNode, f: &mut dyn FnMut(AnyNode)) {
        match self {
            AnyIndex::Tree(t) => t.for_each_child(n.tree(), &mut |c| f(AnyNode::Tree(c))),
            AnyIndex::Esa(e) => e.for_each_child(n.esa(), &mut |c| f(AnyNode::Esa(c))),
        }
    }

    fn edge_label(&self, n: AnyNode, out: &mut Vec<Symbol>) {
        match self {
            AnyIndex::Tree(t) => t.edge_label(n.tree(), out),
            AnyIndex::Esa(e) => e.edge_label(n.esa(), out),
        }
    }

    fn for_each_suffix_below(&self, n: AnyNode, f: &mut dyn FnMut(SeqId, u32, u32)) {
        match self {
            AnyIndex::Tree(t) => t.for_each_suffix_below(n.tree(), f),
            AnyIndex::Esa(e) => e.for_each_suffix_below(n.esa(), f),
        }
    }

    fn max_lead_run(&self, n: AnyNode) -> u32 {
        match self {
            AnyIndex::Tree(t) => t.max_lead_run(n.tree()),
            AnyIndex::Esa(e) => e.max_lead_run(n.esa()),
        }
    }

    fn is_sparse(&self) -> bool {
        match self {
            AnyIndex::Tree(t) => t.is_sparse(),
            AnyIndex::Esa(e) => e.is_sparse(),
        }
    }

    fn suffix_count(&self) -> u64 {
        match self {
            AnyIndex::Tree(t) => IndexBackend::suffix_count(t),
            AnyIndex::Esa(e) => e.suffix_count(),
        }
    }

    fn backend_kind(&self) -> BackendKind {
        self.kind()
    }

    fn depth_limit(&self) -> Option<u32> {
        match self {
            AnyIndex::Tree(t) => t.depth_limit(),
            AnyIndex::Esa(e) => e.depth_limit(),
        }
    }

    fn suffix_count_below(&self, n: AnyNode) -> Option<u64> {
        match self {
            AnyIndex::Tree(t) => t.suffix_count_below(n.tree()),
            AnyIndex::Esa(e) => e.suffix_count_below(n.esa()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::esa::write_esa_with;
    use crate::vfs::RealVfs;
    use crate::writer::write_tree_with;
    use warptree_esa::EsaIndex;
    use warptree_suffix::build_full;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("warptree-any-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn dispatch_presents_identical_traversals() {
        let cat = Arc::new(CatStore::from_symbols(
            vec![vec![0, 1, 0, 1, 1], vec![1, 0, 0]],
            2,
        ));
        let tree_path = tmp("tree");
        write_tree_with(&RealVfs, &build_full(cat.clone()), &tree_path).unwrap();
        let esa_path = tmp("esa");
        write_esa_with(&RealVfs, &EsaIndex::build(cat.clone(), false), &esa_path).unwrap();

        let tree = AnyIndex::open_with(
            &RealVfs,
            &tree_path,
            cat.clone(),
            BackendKind::Tree,
            8,
            64,
        )
        .unwrap();
        let esa =
            AnyIndex::open_with(&RealVfs, &esa_path, cat, BackendKind::Esa, 8, 64).unwrap();
        assert_eq!(tree.kind(), BackendKind::Tree);
        assert_eq!(esa.kind(), BackendKind::Esa);
        assert!(tree.as_tree().is_some() && tree.as_esa().is_none());
        assert!(esa.as_esa().is_some() && esa.as_tree().is_none());

        let mut a = Vec::new();
        tree.for_each_suffix_below(tree.root(), &mut |s, p, r| a.push((s, p, r)));
        let mut b = Vec::new();
        esa.for_each_suffix_below(esa.root(), &mut |s, p, r| b.push((s, p, r)));
        assert_eq!(a, b, "suffix enumeration order must match across backends");
        assert_eq!(
            IndexBackend::suffix_count(&tree),
            IndexBackend::suffix_count(&esa)
        );
        assert!(esa.resident_bytes() > 0);
        assert!(esa.verify_pages().unwrap() >= 1);

        std::fs::remove_file(&tree_path).unwrap();
        std::fs::remove_file(&esa_path).unwrap();
    }

    #[test]
    fn opening_a_file_as_the_wrong_backend_is_typed() {
        let cat = Arc::new(CatStore::from_symbols(vec![vec![0, 1]], 2));
        let esa_path = tmp("wrongway");
        write_esa_with(&RealVfs, &EsaIndex::build(cat.clone(), false), &esa_path).unwrap();
        let err =
            AnyIndex::open_with(&RealVfs, &esa_path, cat, BackendKind::Tree, 4, 16).unwrap_err();
        assert!(matches!(
            err,
            DiskError::UnsupportedBackend { ref found } if found == "esa"
        ));
        std::fs::remove_file(&esa_path).unwrap();
    }
}
