//! Writing an in-memory suffix tree to the disk format.
//!
//! Nodes are emitted in post-order (children before parents) so every
//! child offset is known when its parent record is serialized; the file
//! is produced in one sequential pass, and the root offset is
//! back-patched into the header at the end.

use std::path::Path;

use warptree_suffix::{NodeId, SuffixTree, ROOT};

use crate::error::Result;
use crate::format::{encode_node, DiskNode, Header, HEADER_SIZE};
use crate::pager::PagedWriter;
use crate::vfs::{RealVfs, Vfs};

/// Serializes `tree` to `path`, returning the logical file length in
/// bytes (the paper's "index size").
pub fn write_tree(tree: &SuffixTree, path: &Path) -> Result<u64> {
    write_tree_with(&RealVfs, tree, path)
}

/// [`write_tree`] through an explicit [`Vfs`].
pub fn write_tree_with(vfs: &dyn Vfs, tree: &SuffixTree, path: &Path) -> Result<u64> {
    assert!(
        tree.is_finalized(),
        "finalize() must run before writing a tree"
    );
    let mut w = PagedWriter::create_with(vfs, path)?;
    // Reserve the header; the real one is patched in at finish.
    w.write(&vec![0u8; HEADER_SIZE as usize])?;

    // Iterative post-order: each frame is (node, next child index,
    // offsets of already-written children).
    type Frame = (NodeId, usize, Vec<(u32, u64)>);
    let mut node_count: u64 = 0;
    let mut root_offset: u64 = 0;
    let mut stack: Vec<Frame> = vec![(ROOT, 0, Vec::new())];
    while let Some((node, child_idx, mut child_offsets)) = stack.pop() {
        let n = tree.node(node);
        if child_idx < n.children.len() {
            let child = n.children[child_idx];
            stack.push((node, child_idx + 1, child_offsets));
            stack.push((child, 0, Vec::new()));
            continue;
        }
        // All children written: children offsets arrive in order because
        // each completed child pushes onto its parent's frame below.
        child_offsets.sort_by_key(|&(sym, _)| sym);
        let record = DiskNode {
            label: (n.label.seq, n.label.start, n.label.len),
            suffix_count: n.suffix_count,
            max_lead_run: n.max_lead_run,
            suffixes: n
                .suffixes
                .iter()
                .map(|s| (s.seq, s.start, s.lead_run))
                .collect(),
            children: child_offsets,
        };
        let offset = w.position();
        w.write(&encode_node(&record))?;
        node_count += 1;
        if node == ROOT {
            root_offset = offset;
        } else if let Some(parent) = stack.last_mut() {
            let first = tree.node(node).first;
            parent.2.push((first, offset));
        }
    }

    let header = Header {
        sparse: tree.is_sparse(),
        alphabet_len: tree.cat().alphabet_len(),
        node_count,
        suffix_count: tree.suffix_count(),
        root_offset,
        depth_limit: tree.depth_limit(),
    };
    let len = w.finish(&[(0, header.encode())])?;
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::DiskTree;
    use std::sync::Arc;
    use warptree_core::categorize::CatStore;
    use warptree_core::search::IndexBackend;
    use warptree_suffix::{build_full, build_sparse};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("warptree-writer-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn write_open_roundtrip_full() {
        let cat = Arc::new(CatStore::from_symbols(
            vec![vec![0, 1, 2, 1, 2, 1], vec![2, 2, 0]],
            3,
        ));
        let tree = build_full(cat.clone());
        let path = tmp("full");
        let size = write_tree(&tree, &path).unwrap();
        assert!(size > HEADER_SIZE);
        let disk = DiskTree::open(&path, cat, 8, 64).unwrap();
        assert_eq!(disk.header().node_count, tree.node_count() as u64);
        assert_eq!(disk.suffix_count(), tree.suffix_count());
        assert!(!disk.is_sparse());
        // Structural equality through the materialization path.
        let back = disk.to_mem().unwrap();
        back.check_invariants();
        assert_eq!(back.canonical(), tree.canonical());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_open_roundtrip_sparse() {
        let cat = Arc::new(CatStore::from_symbols(vec![vec![0, 0, 0, 1, 1, 2]], 3));
        let tree = build_sparse(cat.clone());
        let path = tmp("sparse");
        write_tree(&tree, &path).unwrap();
        let disk = DiskTree::open(&path, cat, 8, 64).unwrap();
        assert!(disk.is_sparse());
        assert_eq!(disk.suffix_count(), 3);
        assert_eq!(disk.max_lead_run(disk.root()), tree.node(ROOT).max_lead_run);
        let back = disk.to_mem().unwrap();
        assert_eq!(back.canonical(), tree.canonical());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let cat = Arc::new(CatStore::from_symbols(vec![vec![0, 1]], 2));
        let tree = build_full(cat.clone());
        let path = tmp("alpha");
        write_tree(&tree, &path).unwrap();
        let other = Arc::new(CatStore::from_symbols(vec![vec![0, 1]], 5));
        assert!(DiskTree::open(&path, other, 8, 64).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trait_traversal_matches_mem() {
        let cat = Arc::new(CatStore::from_symbols(
            vec![vec![0, 1, 0, 1, 1], vec![1, 0, 0]],
            2,
        ));
        let tree = build_full(cat.clone());
        let path = tmp("trav");
        write_tree(&tree, &path).unwrap();
        let disk = DiskTree::open(&path, cat, 8, 64).unwrap();
        // Same multiset of suffixes below the root.
        let mut mem_suffixes = Vec::new();
        tree.for_each_suffix_below(ROOT, &mut |s, p, r| mem_suffixes.push((s, p, r)));
        let mut disk_suffixes = Vec::new();
        disk.for_each_suffix_below(disk.root(), &mut |s, p, r| disk_suffixes.push((s, p, r)));
        mem_suffixes.sort();
        disk_suffixes.sort();
        assert_eq!(mem_suffixes, disk_suffixes);
        std::fs::remove_file(&path).unwrap();
    }
}
