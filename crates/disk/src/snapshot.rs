//! Read-only snapshot reopening for live serving.
//!
//! A long-running reader (the `warptree-server` query process) must be
//! able to (a) *cheaply* poll an index directory for a newer committed
//! generation and (b) reopen the directory **without mutating it** —
//! the recovery sweep of [`recover_dir_with`](crate::recover_dir_with)
//! deletes files the manifest does not reference, which is exactly
//! wrong while a concurrent writer is mid-commit (its staged next
//! generation would be swept away). This module provides both halves:
//!
//! * [`committed_generation_with`] — one small `MANIFEST` read, no
//!   directory listing, no cleanup; cheap enough for sub-second polls.
//! * [`open_dir_snapshot_with`] — resolve + load the committed corpus
//!   and tree as an immutable [`DirSnapshot`], touching nothing else.
//!
//! The commit protocol (see [`manifest`](crate::manifest)) guarantees a
//! reopened generation is complete: data files are fully written and
//! fsynced *before* the manifest rename publishes them, so a reader
//! that observes generation `N` in the manifest can open generation
//! `N`'s files. The narrow race — a *second* commit superseding `N` and
//! unlinking its files between the poll and the open — surfaces as an
//! open error the caller simply retries (the next poll sees `N+1`).

use std::path::Path;

use crate::any::AnyIndex;
use crate::corpus::load_corpus_with;
use crate::error::{DiskError, Result};
use crate::manifest::{read_manifest_with, resolve_dir_with, SegmentMeta};
use crate::vfs::Vfs;

use std::sync::Arc;
use warptree_core::categorize::{Alphabet, CatStore};
use warptree_core::error::CoreError;
use warptree_core::search::{
    run_query_with, Coverage, QueryOutput, QueryRequest, SearchMetrics, SearchStats, SegmentedIndex,
};
use warptree_core::sequence::{SeqId, SequenceStore};

/// The committed generation a poll observes, read from `MANIFEST`
/// alone. Legacy manifest-less directories (a bare `corpus.wc` +
/// `index.wt` pair) report generation 0; a missing or unreadable
/// manifest in a non-legacy directory is an error.
///
/// This never lists the directory and never removes anything, so it is
/// safe to call at any frequency while writers are active.
pub fn committed_generation_with(vfs: &dyn Vfs, dir: &Path) -> Result<u64> {
    match read_manifest_with(vfs, dir)? {
        Some(m) => Ok(m.generation),
        None => Ok(0),
    }
}

/// An immutable, query-ready view of one committed generation of an
/// index directory: the loaded corpus, its categorization, and the
/// disk-resident tree.
///
/// All parts are safe for concurrent readers (`&self` search through
/// internally synchronized caches), so one snapshot behind an `Arc`
/// serves any number of worker threads; swapping the `Arc` for a newer
/// generation retires the old snapshot once its last in-flight query
/// drops it.
pub struct DirSnapshot {
    /// The sequence database of this generation.
    pub store: SequenceStore,
    /// The categorization alphabet.
    pub alphabet: Alphabet,
    /// The categorized corpus shared with the tree.
    pub cat: Arc<CatStore>,
    /// The disk-resident base index, of whichever backend the manifest
    /// records.
    pub tree: AnyIndex,
    /// The committed *live* tail segments (see
    /// [`segment`](crate::segment)), in manifest order — empty for a
    /// fully compacted directory. Quarantined segments are never
    /// loaded; their metadata is kept in
    /// [`quarantined`](DirSnapshot::quarantined) for coverage
    /// accounting.
    pub segments: Vec<AnyIndex>,
    /// Manifest metadata for each loaded tail segment, parallel to
    /// [`segments`](DirSnapshot::segments). Empty for legacy
    /// manifest-less directories.
    pub segment_metas: Vec<SegmentMeta>,
    /// Manifest metadata for segments excluded at open because they are
    /// quarantined (tombstoned after a failed CRC check).
    pub quarantined: Vec<SegmentMeta>,
    /// The committed generation this snapshot materializes.
    pub generation: u64,
}

/// Why a degraded query could not produce an answer at all.
#[derive(Debug)]
pub enum DegradedError {
    /// The request itself was invalid — the caller's fault.
    Rejected(CoreError),
    /// A CRC failure in the base tree (which every query needs) left no
    /// healthy subset to answer from.
    Corrupt(DiskError),
}

impl std::fmt::Display for DegradedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedError::Rejected(e) => e.fmt(f),
            DegradedError::Corrupt(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for DegradedError {}

/// The outcome of [`DirSnapshot::run_query_degraded`]: the answers
/// (possibly partial, with coverage attached), the stats snapshot, and
/// the names of segments whose corruption this very query detected —
/// the caller is responsible for tombstoning those in the manifest (see
/// [`quarantine_segment_with`](crate::quarantine_segment_with)).
#[derive(Debug)]
pub struct DegradedQuery {
    /// The answers; `output.coverage` is `Some` iff any segment was
    /// excluded (pre-quarantined or newly detected).
    pub output: QueryOutput,
    /// Search statistics for the attempt that succeeded.
    pub stats: SearchStats,
    /// Segment file names that failed a CRC check *during this query*
    /// and are not yet tombstoned in the manifest.
    pub detected: Vec<String>,
}

impl DirSnapshot {
    /// Total number of live trees: the base plus every tail segment.
    pub fn segment_count(&self) -> usize {
        1 + self.segments.len()
    }

    /// The index backend this snapshot's generation was committed under.
    pub fn backend(&self) -> warptree_core::search::BackendKind {
        self.tree.kind()
    }

    /// Runs a typed query against this snapshot, fanning out across the
    /// base tree and every tail segment. Results are byte-identical to
    /// a fully compacted (single-tree) index over the same corpus — see
    /// [`SegmentedIndex`]'s equivalence contract. A snapshot with no
    /// tail segments queries the base tree directly.
    pub fn run_query(
        &self,
        req: &QueryRequest,
    ) -> std::result::Result<(QueryOutput, SearchStats), CoreError> {
        let metrics = SearchMetrics::new();
        let out = self.run_query_with(req, &metrics)?;
        let mut stats = metrics.snapshot();
        if matches!(req.kind, warptree_core::search::QueryKind::Knn(_)) {
            stats.answers = out.len() as u64;
        }
        Ok((out, stats))
    }

    /// [`run_query`](DirSnapshot::run_query) recording into an external
    /// [`SearchMetrics`] (no stats snapshot).
    ///
    /// When `metrics` carries an active trace, the query additionally
    /// attaches a `pager.io` span attributing page reads and buffer-pool
    /// hits to each live tree (base + tail segments) over the query's
    /// lifetime — deltas of the trees' cumulative I/O counters, so they
    /// are per-query even though the pager accumulates per tree. Other
    /// concurrent queries over the same snapshot bleed into the deltas;
    /// attribution is exact only for the common one-query-per-snapshot
    /// tracing setup.
    pub fn run_query_with(
        &self,
        req: &QueryRequest,
        metrics: &SearchMetrics,
    ) -> std::result::Result<QueryOutput, CoreError> {
        if !metrics.trace.is_active() {
            return self.run_query_untraced(req, metrics);
        }
        let before = self.live_trees_io();
        let out = self.run_query_untraced(req, metrics);
        self.attach_io_span(metrics, &before);
        out
    }

    fn live_trees_io(&self) -> Vec<crate::pager::IoStats> {
        std::iter::once(&self.tree)
            .chain(self.segments.iter())
            .map(|t| t.io_stats())
            .collect()
    }

    /// Closes the pager-attribution loop: a `pager.io` span whose attrs
    /// are the per-tree (and total) deltas of page reads / buffer-pool
    /// hits since `before` was sampled.
    fn attach_io_span(&self, metrics: &SearchMetrics, before: &[crate::pager::IoStats]) {
        let span = metrics.trace_span("pager.io");
        let after = self.live_trees_io();
        let (mut pages, mut hits) = (0u64, 0u64);
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            let (p, h) = (
                a.pages_read.saturating_sub(b.pages_read),
                a.cache_hits.saturating_sub(b.cache_hits),
            );
            let label = if i == 0 {
                "base".to_string()
            } else {
                format!("seg{}", i - 1)
            };
            span.attr_u64(&format!("{label}_pages_read"), p);
            span.attr_u64(&format!("{label}_cache_hits"), h);
            pages += p;
            hits += h;
        }
        span.attr_u64("pages_read", pages);
        span.attr_u64("cache_hits", hits);
    }

    fn run_query_untraced(
        &self,
        req: &QueryRequest,
        metrics: &SearchMetrics,
    ) -> std::result::Result<QueryOutput, CoreError> {
        if self.segments.is_empty() {
            run_query_with(&self.tree, &self.alphabet, &self.store, req, metrics)
        } else {
            let mut trees: Vec<&AnyIndex> = Vec::with_capacity(1 + self.segments.len());
            trees.push(&self.tree);
            trees.extend(self.segments.iter());
            let fanned = SegmentedIndex::new(trees);
            run_query_with(&fanned, &self.alphabet, &self.store, req, metrics)
        }
    }

    /// Runs a typed query with degraded-mode handling: a CRC failure in
    /// a tail segment excludes that segment and retries over the
    /// remaining live trees instead of failing the query, returning an
    /// honestly-labeled partial answer ([`Coverage`] attached) plus the
    /// names of the segments it newly detected as corrupt. A CRC
    /// failure in the base tree is unrecoverable here and comes back as
    /// [`DegradedError::Corrupt`].
    ///
    /// Answers over the surviving segment subset are byte-identical to
    /// a clean index over that subset's sequences — corruption can only
    /// *remove* coverage, never corrupt an answer that is returned.
    pub fn run_query_degraded(
        &self,
        req: &QueryRequest,
    ) -> std::result::Result<DegradedQuery, DegradedError> {
        self.run_query_degraded_traced(req, &warptree_obs::Trace::noop())
    }

    /// [`run_query_degraded`](DirSnapshot::run_query_degraded) with the
    /// query's work recorded into `trace`: each attempt's stage spans
    /// (filter / postprocess / per-segment fan-out) plus a `pager.io`
    /// attribution span land in the trace. An inactive (noop) trace
    /// makes this identical to the untraced path.
    pub fn run_query_degraded_traced(
        &self,
        req: &QueryRequest,
        trace: &warptree_obs::Trace,
    ) -> std::result::Result<DegradedQuery, DegradedError> {
        let mut detected: Vec<String> = Vec::new();
        loop {
            let metrics = SearchMetrics::new().with_trace(trace.clone());
            let io_before = if trace.is_active() {
                Some(self.live_trees_io())
            } else {
                None
            };
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut trees: Vec<&AnyIndex> = Vec::with_capacity(1 + self.segments.len());
                trees.push(&self.tree);
                trees.extend(
                    self.segments
                        .iter()
                        .filter(|t| !detected.iter().any(|d| d == t.source())),
                );
                if trees.len() == 1 {
                    run_query_with(&self.tree, &self.alphabet, &self.store, req, &metrics)
                } else {
                    let fanned = SegmentedIndex::new(trees);
                    run_query_with(&fanned, &self.alphabet, &self.store, req, &metrics)
                }
            }));
            match attempt {
                Ok(Ok(mut output)) => {
                    if let Some(before) = &io_before {
                        self.attach_io_span(&metrics, before);
                    }
                    let mut stats = metrics.snapshot();
                    if matches!(req.kind, warptree_core::search::QueryKind::Knn(_)) {
                        stats.answers = output.len() as u64;
                    }
                    if !detected.is_empty() || !self.quarantined.is_empty() {
                        output = output.with_coverage(self.coverage(&detected));
                    }
                    return Ok(DegradedQuery {
                        output,
                        stats,
                        detected,
                    });
                }
                Ok(Err(e)) => return Err(DegradedError::Rejected(e)),
                Err(payload) => {
                    // A read failed its CRC check mid-query. The failing
                    // tree recorded a typed error before unwinding (the
                    // panic payload itself may be a worker-join message,
                    // so the error cells are the source of truth).
                    if let Some(e) = self.tree.take_read_error() {
                        return Err(DegradedError::Corrupt(e));
                    }
                    let before = detected.len();
                    for t in &self.segments {
                        if t.take_read_error().is_some() {
                            let name = t.source().to_string();
                            if !detected.contains(&name) {
                                detected.push(name);
                            }
                        }
                    }
                    if detected.len() == before {
                        // Not a corruption unwind — propagate.
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    }

    /// Coverage accounting for this snapshot with `detected` segment
    /// file names additionally excluded: suffix counts are derived from
    /// the (intact) corpus via each excluded segment's sequence range,
    /// so they are exact even though the excluded trees are unreadable.
    pub fn coverage(&self, detected: &[String]) -> Coverage {
        let excluded = self
            .segment_metas
            .iter()
            .filter(|m| detected.contains(&m.file))
            .count();
        let segments_total = 1 + self.segments.len() + self.quarantined.len();
        let mut missing = 0u64;
        for m in self.quarantined.iter().chain(
            self.segment_metas
                .iter()
                .filter(|m| detected.contains(&m.file)),
        ) {
            missing += self.range_suffixes(m);
        }
        let suffixes_total = self.store.total_len();
        Coverage {
            segments_total,
            segments_answered: 1 + self.segments.len() - excluded,
            segments_quarantined: self.quarantined.len() + excluded,
            suffixes_total,
            suffixes_answered: suffixes_total.saturating_sub(missing),
        }
    }

    /// Number of corpus suffixes (positions) inside a segment's
    /// sequence range, computed from the corpus rather than the
    /// (possibly unreadable) segment tree.
    fn range_suffixes(&self, m: &SegmentMeta) -> u64 {
        (m.start_seq..m.start_seq.saturating_add(m.seq_count))
            .filter(|&i| (i as usize) < self.store.len())
            .map(|i| self.store.get(SeqId(i)).len() as u64)
            .sum()
    }
}

/// Opens the committed generation of `dir` as a [`DirSnapshot`]
/// **without mutating the directory** — no recovery sweep, no file
/// removal — so it is safe to run concurrently with a writer committing
/// the next generation. `cache_pages` sizes the tree's page buffer
/// pool, `cache_nodes` its decoded-node cache.
pub fn open_dir_snapshot_with(
    vfs: &dyn Vfs,
    dir: &Path,
    cache_pages: usize,
    cache_nodes: usize,
) -> Result<DirSnapshot> {
    let resolved = resolve_dir_with(vfs, dir)?;
    let backend = resolved.backend();
    let (store, alphabet, cat) = load_corpus_with(vfs, &resolved.corpus_path)?;
    let tree = AnyIndex::open_with(
        vfs,
        &resolved.index_path,
        cat.clone(),
        backend,
        cache_pages,
        cache_nodes,
    )?;
    let metas: Vec<SegmentMeta> = resolved
        .manifest
        .as_ref()
        .map(|m| m.segments.clone())
        .unwrap_or_default();
    let mut segments = Vec::with_capacity(resolved.segment_paths.len());
    let mut segment_metas = Vec::new();
    let mut quarantined = Vec::new();
    for (path, meta) in resolved.segment_paths.iter().zip(metas) {
        if meta.quarantined {
            quarantined.push(meta);
            continue;
        }
        segments.push(AnyIndex::open_with(
            vfs,
            path,
            cat.clone(),
            backend,
            cache_pages,
            cache_nodes,
        )?);
        segment_metas.push(meta);
    }
    Ok(DirSnapshot {
        store,
        alphabet,
        cat,
        tree,
        segments,
        segment_metas,
        quarantined,
        generation: resolved.generation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::build_dir_with;
    use crate::merge::TreeKind;
    use crate::vfs::{real_vfs, RealVfs};
    use std::path::PathBuf;
    use warptree_core::categorize::Alphabet;
    use warptree_core::search::SearchParams;
    use warptree_core::sequence::SequenceStore;

    fn tmpdir(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("warptree-snapshot-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn build(dir: &Path, values: Vec<Vec<f64>>) -> SequenceStore {
        let store = SequenceStore::from_values(values);
        let alphabet = Alphabet::equal_length(&store, 4).unwrap();
        build_dir_with(
            real_vfs(),
            &store,
            &alphabet,
            TreeKind::Full,
            1,
            1,
            None,
            dir,
        )
        .unwrap();
        store
    }

    #[test]
    fn snapshot_reopen_tracks_generations() {
        let dir = tmpdir("generations");
        let store = build(&dir, vec![vec![1.0, 5.0, 3.0, 5.0, 1.0], vec![4.0, 4.0]]);
        assert_eq!(committed_generation_with(&RealVfs, &dir).unwrap(), 1);
        let snap = open_dir_snapshot_with(&RealVfs, &dir, 8, 32).unwrap();
        assert_eq!(snap.generation, 1);
        assert_eq!(snap.store.len(), store.len());
        let (answers, _) = snap
            .run_query(&QueryRequest::threshold_params(
                &[1.0, 5.0],
                SearchParams::with_epsilon(0.5),
            ))
            .unwrap();
        assert!(!answers.is_empty());
        // A rebuild bumps the generation; the poll and the reopen both
        // observe it.
        build(&dir, vec![vec![9.0, 9.0, 9.0], vec![2.0, 2.0]]);
        assert_eq!(committed_generation_with(&RealVfs, &dir).unwrap(), 2);
        let snap2 = open_dir_snapshot_with(&RealVfs, &dir, 8, 32).unwrap();
        assert_eq!(snap2.generation, 2);
        assert_eq!(snap2.store.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_open_does_not_sweep_staged_files() {
        // A concurrent writer's staged (uncommitted) files must survive
        // a snapshot reopen — only `recover_dir_with` may clean them.
        let dir = tmpdir("nosweep");
        build(&dir, vec![vec![1.0, 2.0, 3.0], vec![2.0, 1.0]]);
        let staged = dir.join("corpus-000002.wc.tmp");
        let installed = dir.join("index-000002.wt");
        std::fs::write(&staged, b"writer in flight").unwrap();
        std::fs::write(&installed, b"writer in flight").unwrap();
        let snap = open_dir_snapshot_with(&RealVfs, &dir, 4, 16).unwrap();
        assert_eq!(snap.generation, 1);
        assert!(staged.exists(), "snapshot reopen must not remove staging");
        assert!(
            installed.exists(),
            "snapshot reopen must not remove staging"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_generation_reports_legacy_as_zero() {
        let dir = tmpdir("legacy");
        assert_eq!(committed_generation_with(&RealVfs, &dir).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_contract_is_send_sync() {
        // Compile-time statement of the concurrent-read contract the
        // server relies on: a snapshot is shared across worker threads
        // behind an `Arc` with no external locking.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DirSnapshot>();
        assert_send_sync::<AnyIndex>();
    }
}
