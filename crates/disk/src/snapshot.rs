//! Read-only snapshot reopening for live serving.
//!
//! A long-running reader (the `warptree-server` query process) must be
//! able to (a) *cheaply* poll an index directory for a newer committed
//! generation and (b) reopen the directory **without mutating it** —
//! the recovery sweep of [`recover_dir_with`](crate::recover_dir_with)
//! deletes files the manifest does not reference, which is exactly
//! wrong while a concurrent writer is mid-commit (its staged next
//! generation would be swept away). This module provides both halves:
//!
//! * [`committed_generation_with`] — one small `MANIFEST` read, no
//!   directory listing, no cleanup; cheap enough for sub-second polls.
//! * [`open_dir_snapshot_with`] — resolve + load the committed corpus
//!   and tree as an immutable [`DirSnapshot`], touching nothing else.
//!
//! The commit protocol (see [`manifest`](crate::manifest)) guarantees a
//! reopened generation is complete: data files are fully written and
//! fsynced *before* the manifest rename publishes them, so a reader
//! that observes generation `N` in the manifest can open generation
//! `N`'s files. The narrow race — a *second* commit superseding `N` and
//! unlinking its files between the poll and the open — surfaces as an
//! open error the caller simply retries (the next poll sees `N+1`).

use std::path::Path;

use crate::corpus::load_corpus_with;
use crate::error::Result;
use crate::format::DiskTree;
use crate::manifest::{read_manifest_with, resolve_dir_with};
use crate::vfs::Vfs;

use std::sync::Arc;
use warptree_core::categorize::{Alphabet, CatStore};
use warptree_core::error::CoreError;
use warptree_core::search::{
    run_query_with, QueryOutput, QueryRequest, SearchMetrics, SearchStats, SegmentedIndex,
};
use warptree_core::sequence::SequenceStore;

/// The committed generation a poll observes, read from `MANIFEST`
/// alone. Legacy manifest-less directories (a bare `corpus.wc` +
/// `index.wt` pair) report generation 0; a missing or unreadable
/// manifest in a non-legacy directory is an error.
///
/// This never lists the directory and never removes anything, so it is
/// safe to call at any frequency while writers are active.
pub fn committed_generation_with(vfs: &dyn Vfs, dir: &Path) -> Result<u64> {
    match read_manifest_with(vfs, dir)? {
        Some(m) => Ok(m.generation),
        None => Ok(0),
    }
}

/// An immutable, query-ready view of one committed generation of an
/// index directory: the loaded corpus, its categorization, and the
/// disk-resident tree.
///
/// All parts are safe for concurrent readers (`&self` search through
/// internally synchronized caches), so one snapshot behind an `Arc`
/// serves any number of worker threads; swapping the `Arc` for a newer
/// generation retires the old snapshot once its last in-flight query
/// drops it.
pub struct DirSnapshot {
    /// The sequence database of this generation.
    pub store: SequenceStore,
    /// The categorization alphabet.
    pub alphabet: Alphabet,
    /// The categorized corpus shared with the tree.
    pub cat: Arc<CatStore>,
    /// The disk-resident base suffix tree.
    pub tree: DiskTree,
    /// The committed tail segments (see [`segment`](crate::segment)),
    /// in manifest order — empty for a fully compacted directory.
    pub segments: Vec<DiskTree>,
    /// The committed generation this snapshot materializes.
    pub generation: u64,
}

impl DirSnapshot {
    /// Total number of live trees: the base plus every tail segment.
    pub fn segment_count(&self) -> usize {
        1 + self.segments.len()
    }

    /// Runs a typed query against this snapshot, fanning out across the
    /// base tree and every tail segment. Results are byte-identical to
    /// a fully compacted (single-tree) index over the same corpus — see
    /// [`SegmentedIndex`]'s equivalence contract. A snapshot with no
    /// tail segments queries the base tree directly.
    pub fn run_query(
        &self,
        req: &QueryRequest,
    ) -> std::result::Result<(QueryOutput, SearchStats), CoreError> {
        let metrics = SearchMetrics::new();
        let out = self.run_query_with(req, &metrics)?;
        let mut stats = metrics.snapshot();
        if matches!(req.kind, warptree_core::search::QueryKind::Knn(_)) {
            stats.answers = out.len() as u64;
        }
        Ok((out, stats))
    }

    /// [`run_query`](DirSnapshot::run_query) recording into an external
    /// [`SearchMetrics`] (no stats snapshot).
    pub fn run_query_with(
        &self,
        req: &QueryRequest,
        metrics: &SearchMetrics,
    ) -> std::result::Result<QueryOutput, CoreError> {
        if self.segments.is_empty() {
            run_query_with(&self.tree, &self.alphabet, &self.store, req, metrics)
        } else {
            let mut trees: Vec<&DiskTree> = Vec::with_capacity(1 + self.segments.len());
            trees.push(&self.tree);
            trees.extend(self.segments.iter());
            let fanned = SegmentedIndex::new(trees);
            run_query_with(&fanned, &self.alphabet, &self.store, req, metrics)
        }
    }
}

/// Opens the committed generation of `dir` as a [`DirSnapshot`]
/// **without mutating the directory** — no recovery sweep, no file
/// removal — so it is safe to run concurrently with a writer committing
/// the next generation. `cache_pages` sizes the tree's page buffer
/// pool, `cache_nodes` its decoded-node cache.
pub fn open_dir_snapshot_with(
    vfs: &dyn Vfs,
    dir: &Path,
    cache_pages: usize,
    cache_nodes: usize,
) -> Result<DirSnapshot> {
    let resolved = resolve_dir_with(vfs, dir)?;
    let (store, alphabet, cat) = load_corpus_with(vfs, &resolved.corpus_path)?;
    let tree = DiskTree::open_with(
        vfs,
        &resolved.index_path,
        cat.clone(),
        cache_pages,
        cache_nodes,
    )?;
    let mut segments = Vec::with_capacity(resolved.segment_paths.len());
    for path in &resolved.segment_paths {
        segments.push(DiskTree::open_with(
            vfs,
            path,
            cat.clone(),
            cache_pages,
            cache_nodes,
        )?);
    }
    Ok(DirSnapshot {
        store,
        alphabet,
        cat,
        tree,
        segments,
        generation: resolved.generation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::build_dir_with;
    use crate::merge::TreeKind;
    use crate::vfs::{real_vfs, RealVfs};
    use std::path::PathBuf;
    use warptree_core::categorize::Alphabet;
    use warptree_core::search::SearchParams;
    use warptree_core::sequence::SequenceStore;

    fn tmpdir(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("warptree-snapshot-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn build(dir: &Path, values: Vec<Vec<f64>>) -> SequenceStore {
        let store = SequenceStore::from_values(values);
        let alphabet = Alphabet::equal_length(&store, 4).unwrap();
        build_dir_with(
            real_vfs(),
            &store,
            &alphabet,
            TreeKind::Full,
            1,
            1,
            None,
            dir,
        )
        .unwrap();
        store
    }

    #[test]
    fn snapshot_reopen_tracks_generations() {
        let dir = tmpdir("generations");
        let store = build(&dir, vec![vec![1.0, 5.0, 3.0, 5.0, 1.0], vec![4.0, 4.0]]);
        assert_eq!(committed_generation_with(&RealVfs, &dir).unwrap(), 1);
        let snap = open_dir_snapshot_with(&RealVfs, &dir, 8, 32).unwrap();
        assert_eq!(snap.generation, 1);
        assert_eq!(snap.store.len(), store.len());
        let (answers, _) = snap
            .run_query(&QueryRequest::threshold_params(
                &[1.0, 5.0],
                SearchParams::with_epsilon(0.5),
            ))
            .unwrap();
        assert!(!answers.is_empty());
        // A rebuild bumps the generation; the poll and the reopen both
        // observe it.
        build(&dir, vec![vec![9.0, 9.0, 9.0], vec![2.0, 2.0]]);
        assert_eq!(committed_generation_with(&RealVfs, &dir).unwrap(), 2);
        let snap2 = open_dir_snapshot_with(&RealVfs, &dir, 8, 32).unwrap();
        assert_eq!(snap2.generation, 2);
        assert_eq!(snap2.store.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_open_does_not_sweep_staged_files() {
        // A concurrent writer's staged (uncommitted) files must survive
        // a snapshot reopen — only `recover_dir_with` may clean them.
        let dir = tmpdir("nosweep");
        build(&dir, vec![vec![1.0, 2.0, 3.0], vec![2.0, 1.0]]);
        let staged = dir.join("corpus-000002.wc.tmp");
        let installed = dir.join("index-000002.wt");
        std::fs::write(&staged, b"writer in flight").unwrap();
        std::fs::write(&installed, b"writer in flight").unwrap();
        let snap = open_dir_snapshot_with(&RealVfs, &dir, 4, 16).unwrap();
        assert_eq!(snap.generation, 1);
        assert!(staged.exists(), "snapshot reopen must not remove staging");
        assert!(
            installed.exists(),
            "snapshot reopen must not remove staging"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_generation_reports_legacy_as_zero() {
        let dir = tmpdir("legacy");
        assert_eq!(committed_generation_with(&RealVfs, &dir).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_contract_is_send_sync() {
        // Compile-time statement of the concurrent-read contract the
        // server relies on: a snapshot is shared across worker threads
        // behind an `Arc` with no external locking.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DirSnapshot>();
        assert_send_sync::<DiskTree>();
    }
}
