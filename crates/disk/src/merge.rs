//! Binary merge of disk-resident suffix trees (paper §4.1).
//!
//! Following Bieganski et al., a suffix tree for a large sequence set is
//! built incrementally: partial trees over disjoint subsets of the
//! sequences are constructed in memory, flushed to disk, and pairwise
//! merged. [`merge_trees`] performs one binary merge in a simultaneous
//! pre-order traversal of both inputs, combining paths with common label
//! prefixes and copying disjoint subtrees verbatim; the output is written
//! post-order in a single sequential pass. Both inputs must reference the
//! same [`CatStore`] (they index disjoint *suffix* sets of one database).
//!
//! [`IncrementalBuilder`] drives the whole paper pipeline: batch →
//! in-memory build → flush → level-by-level binary merges of trees of
//! increasing size.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use warptree_core::categorize::{CatStore, Symbol};
use warptree_core::sequence::SeqId;
use warptree_obs::{Counter, Histogram, MetricsRegistry};

use crate::error::Result;
use crate::format::{encode_node, DiskNode, DiskTree, Header, HEADER_SIZE};
use crate::pager::PagedWriter;
use crate::vfs::{real_vfs, Vfs};
use crate::writer::write_tree_with;

/// Which input tree a cursor points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    A,
    B,
}

/// A node of an input tree with `skip` leading label symbols already
/// consumed (the "rest of an edge" after a conceptual split).
#[derive(Debug, Clone, Copy)]
struct VNode {
    side: Side,
    offset: u64,
    skip: u32,
}

/// Aggregate facts about a written output node, needed by its parent.
#[derive(Debug, Clone, Copy)]
struct Written {
    first: Symbol,
    offset: u64,
    suffix_count: u64,
    max_run: u32,
}

struct MergeCtx<'t> {
    a: &'t DiskTree,
    b: &'t DiskTree,
    cat: &'t CatStore,
    w: PagedWriter,
    node_count: u64,
}

impl<'t> MergeCtx<'t> {
    fn tree(&self, side: Side) -> &'t DiskTree {
        match side {
            Side::A => self.a,
            Side::B => self.b,
        }
    }

    /// Remaining label symbols of a vnode.
    fn label(&self, v: VNode) -> Result<&'t [Symbol]> {
        let node = self.tree(v.side).read_node(v.offset)?;
        let (seq, start, len) = node.label;
        let s = self.cat.seq(seq);
        Ok(&s[(start + v.skip) as usize..(start + len) as usize])
    }

    /// Children of a vnode's underlying node, as fresh vnodes.
    fn children(&self, v: VNode) -> Result<Vec<(Symbol, VNode)>> {
        let node = self.tree(v.side).read_node(v.offset)?;
        Ok(node
            .children
            .iter()
            .map(|&(sym, off)| {
                (
                    sym,
                    VNode {
                        side: v.side,
                        offset: off,
                        skip: 0,
                    },
                )
            })
            .collect())
    }

    /// Writes one output node, returning its aggregate.
    fn emit(
        &mut self,
        label: (SeqId, u32, u32),
        suffixes: Vec<(SeqId, u32, u32)>,
        children: Vec<Written>,
    ) -> Result<Written> {
        let first = if label.2 == 0 {
            0
        } else {
            self.cat.seq(label.0)[label.1 as usize]
        };
        let mut suffix_count = suffixes.len() as u64;
        let mut max_run = suffixes.iter().map(|&(_, _, r)| r).max().unwrap_or(0);
        let mut child_entries = Vec::with_capacity(children.len());
        for c in &children {
            suffix_count += c.suffix_count;
            max_run = max_run.max(c.max_run);
            child_entries.push((c.first, c.offset));
        }
        child_entries.sort_by_key(|&(s, _)| s);
        let record = DiskNode {
            label,
            suffix_count,
            max_lead_run: max_run,
            suffixes,
            children: child_entries,
        };
        let offset = self.w.position();
        self.w.write(&encode_node(&record))?;
        self.node_count += 1;
        Ok(Written {
            first,
            offset,
            suffix_count,
            max_run,
        })
    }

    /// Copies the subtree rooted at `v` verbatim (label trimmed by
    /// `v.skip` at the top).
    fn copy_subtree(&mut self, v: VNode) -> Result<Written> {
        let node = self.tree(v.side).read_node(v.offset)?;
        let mut out_children = Vec::with_capacity(node.children.len());
        for &(_, off) in &node.children {
            out_children.push(self.copy_subtree(VNode {
                side: v.side,
                offset: off,
                skip: 0,
            })?);
        }
        let (seq, start, len) = node.label;
        self.emit(
            (seq, start + v.skip, len - v.skip),
            node.suffixes.clone(),
            out_children,
        )
    }

    /// Merges two vnodes whose remaining labels start with the same
    /// symbol (or are both empty, for the roots).
    fn merge_nodes(&mut self, va: VNode, vb: VNode) -> Result<Written> {
        let la = self.label(va)?;
        let lb = self.label(vb)?;
        let common = la.iter().zip(lb.iter()).take_while(|(x, y)| x == y).count() as u32;
        let (alen, blen) = (la.len() as u32, lb.len() as u32);
        if common == alen && common == blen {
            // Same edge: merge suffix labels and child lists.
            let na = self.tree(Side::A).read_node(va.offset)?;
            let nb = self.tree(Side::B).read_node(vb.offset)?;
            let mut suffixes = na.suffixes.clone();
            suffixes.extend_from_slice(&nb.suffixes);
            let children = self.merge_child_lists(self.children(va)?, self.children(vb)?)?;
            let (seq, start, len) = na.label;
            self.emit((seq, start + va.skip, len - va.skip), suffixes, children)
        } else if common == alen {
            // A's edge is a proper prefix of B's: B continues below A's
            // node as one extra (virtual) child.
            let na = self.tree(Side::A).read_node(va.offset)?;
            let b_rest = VNode {
                side: Side::B,
                offset: vb.offset,
                skip: vb.skip + common,
            };
            let b_first = self.label(b_rest)?[0];
            let children = self.merge_child_lists(self.children(va)?, vec![(b_first, b_rest)])?;
            let (seq, start, len) = na.label;
            self.emit(
                (seq, start + va.skip, len - va.skip),
                na.suffixes.clone(),
                children,
            )
        } else if common == blen {
            let nb = self.tree(Side::B).read_node(vb.offset)?;
            let a_rest = VNode {
                side: Side::A,
                offset: va.offset,
                skip: va.skip + common,
            };
            let a_first = self.label(a_rest)?[0];
            let children = self.merge_child_lists(vec![(a_first, a_rest)], self.children(vb)?)?;
            let (seq, start, len) = nb.label;
            self.emit(
                (seq, start + vb.skip, len - vb.skip),
                nb.suffixes.clone(),
                children,
            )
        } else {
            // Labels diverge inside both edges: fresh internal node for
            // the common prefix, the two rests become its children.
            let na = self.tree(Side::A).read_node(va.offset)?;
            let a_rest = self.copy_subtree(VNode {
                side: Side::A,
                offset: va.offset,
                skip: va.skip + common,
            })?;
            let b_rest = self.copy_subtree(VNode {
                side: Side::B,
                offset: vb.offset,
                skip: vb.skip + common,
            })?;
            let (seq, start, _) = na.label;
            self.emit(
                (seq, start + va.skip, common),
                Vec::new(),
                vec![a_rest, b_rest],
            )
        }
    }

    /// Two-pointer merge of child lists sorted by first symbol; children
    /// sharing a first symbol are merged recursively.
    fn merge_child_lists(
        &mut self,
        a: Vec<(Symbol, VNode)>,
        b: Vec<(Symbol, VNode)>,
    ) -> Result<Vec<Written>> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(self.copy_subtree(a[i].1)?);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(self.copy_subtree(b[j].1)?);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.merge_nodes(a[i].1, b[j].1)?);
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(_, v) in &a[i..] {
            out.push(self.copy_subtree(v)?);
        }
        for &(_, v) in &b[j..] {
            out.push(self.copy_subtree(v)?);
        }
        Ok(out)
    }
}

/// Merges the trees in files `a` and `b` (both over `cat`, storing
/// disjoint suffix sets) into a new tree file at `out`. Returns the
/// output file's logical size in bytes.
pub fn merge_trees(a: &DiskTree, b: &DiskTree, cat: &CatStore, out: &Path) -> Result<u64> {
    merge_trees_with(&crate::vfs::RealVfs, a, b, cat, out)
}

/// [`merge_trees`] through an explicit [`Vfs`].
pub fn merge_trees_with(
    vfs: &dyn Vfs,
    a: &DiskTree,
    b: &DiskTree,
    cat: &CatStore,
    out: &Path,
) -> Result<u64> {
    assert_eq!(
        a.is_sparse_flag(),
        b.is_sparse_flag(),
        "cannot merge sparse with non-sparse trees"
    );
    assert_eq!(
        a.header().depth_limit,
        b.header().depth_limit,
        "cannot merge trees with different depth limits"
    );
    let mut ctx = MergeCtx {
        a,
        b,
        cat,
        w: PagedWriter::create_with(vfs, out)?,
        node_count: 0,
    };
    ctx.w.write(&vec![0u8; HEADER_SIZE as usize])?;
    let root = ctx.merge_nodes(
        VNode {
            side: Side::A,
            offset: a.header().root_offset,
            skip: 0,
        },
        VNode {
            side: Side::B,
            offset: b.header().root_offset,
            skip: 0,
        },
    )?;
    let header = Header {
        sparse: a.is_sparse_flag(),
        alphabet_len: cat.alphabet_len(),
        node_count: ctx.node_count,
        suffix_count: root.suffix_count,
        root_offset: root.offset,
        depth_limit: a.header().depth_limit,
    };
    ctx.w.finish(&[(0, header.encode())])
}

/// How partial trees are built by the [`IncrementalBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// Full generalized suffix tree (`ST` / `ST_C`).
    Full,
    /// Sparse suffix tree (`SST_C`, paper §6).
    Sparse,
}

/// Build-pipeline instrumentation: one counter and one wall-time
/// histogram per phase. All handles are shared-cell clones, so workers
/// on different threads report into the same registry entries.
#[derive(Clone)]
struct BuildMetrics {
    batches: Counter,
    merges: Counter,
    batch_ns: Histogram,
    merge_ns: Histogram,
}

impl BuildMetrics {
    fn noop() -> Self {
        Self {
            batches: Counter::noop(),
            merges: Counter::noop(),
            batch_ns: Histogram::noop(),
            merge_ns: Histogram::noop(),
        }
    }

    fn register(reg: &MetricsRegistry) -> Self {
        Self {
            batches: reg.counter("build.batches"),
            merges: reg.counter("build.merges"),
            batch_ns: reg.histogram("build.batch_ns"),
            merge_ns: reg.histogram("build.merge_ns"),
        }
    }
}

/// Incremental disk-based index construction (paper §4.1): sequences are
/// processed in batches; each batch's tree is built in memory with
/// Ukkonen (or sparse insertion) and flushed, then files are merged
/// pairwise, level by level, so each merge combines trees of similar
/// (increasing) size.
pub struct IncrementalBuilder {
    cat: Arc<CatStore>,
    kind: TreeKind,
    batch_size: usize,
    work_dir: PathBuf,
    truncate: Option<warptree_suffix::TruncateSpec>,
    threads: usize,
    vfs: Arc<dyn Vfs>,
    metrics: BuildMetrics,
}

impl IncrementalBuilder {
    /// Creates a builder writing temporaries into `work_dir`.
    pub fn new(cat: Arc<CatStore>, kind: TreeKind, batch_size: usize, work_dir: PathBuf) -> Self {
        Self {
            cat,
            kind,
            batch_size: batch_size.max(1),
            work_dir,
            truncate: None,
            threads: 1,
            vfs: real_vfs(),
            metrics: BuildMetrics::noop(),
        }
    }

    /// Routes all I/O through `vfs` (fault injection in tests).
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    /// Publishes build-pipeline metrics on `reg`: `build.batches` /
    /// `build.merges` counters and `build.batch_ns` / `build.merge_ns`
    /// wall-time histograms (one sample per batch flushed / per binary
    /// merge performed).
    pub fn with_metrics(mut self, reg: &MetricsRegistry) -> Self {
        self.metrics = BuildMetrics::register(reg);
        self
    }

    /// Builds batch trees and performs each merge level on up to
    /// `threads` worker threads (batches and same-level merges are
    /// independent).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builds §8-truncated partial trees (and a truncated final index):
    /// per-suffix prefixes only up to the spec's maximum answer length.
    pub fn with_truncation(mut self, spec: warptree_suffix::TruncateSpec) -> Self {
        self.truncate = Some(spec);
        self
    }

    /// Builds the index for all sequences of the store into `out`,
    /// returning the final file size in bytes.
    ///
    /// Work files are named `merge-<level>-<i>.wt.tmp` inside the work
    /// directory; on any error they are removed (best-effort) before the
    /// error propagates, and the recovery sweep at next open catches
    /// whatever a simulated crash left behind.
    pub fn build(&self, out: &Path) -> Result<u64> {
        let result = self.build_inner(out);
        if result.is_err() {
            self.cleanup_work_files();
        }
        result
    }

    fn build_inner(&self, out: &Path) -> Result<u64> {
        self.vfs.create_dir_all(&self.work_dir)?;
        // Level 0: one file per batch, built in parallel.
        let mut ranges: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        let n = self.cat.len();
        let mut start = 0usize;
        while start < n {
            let end = (start + self.batch_size).min(n);
            ranges.push((ranges.len(), start..end));
            start = end;
        }
        let level: Vec<PathBuf> = self.parallel_map(&ranges, |(idx, range)| {
            let span = self.metrics.batch_ns.span();
            let tree = self.build_batch(range.clone());
            let path = self.tmp_path(0, *idx);
            write_tree_with(self.vfs.as_ref(), &tree, &path)?;
            drop(span);
            self.metrics.batches.incr();
            Ok(path)
        })?;
        if level.is_empty() {
            // Empty database: a root-only tree.
            let mut t =
                warptree_suffix::SuffixTree::empty(self.cat.clone(), self.kind == TreeKind::Sparse);
            if let Some(spec) = self.truncate {
                t.set_depth_limit(spec.max_answer_len);
            }
            t.finalize();
            return write_tree_with(self.vfs.as_ref(), &t, out);
        }
        // Merge level by level (binary merges of increasing size);
        // merges within a level run in parallel.
        let mut level = level;
        let mut depth = 1usize;
        while level.len() > 1 {
            let pairs: Vec<(usize, Vec<PathBuf>)> = level
                .chunks(2)
                .enumerate()
                .map(|(i, pair)| (i, pair.to_vec()))
                .collect();
            level = self.parallel_map(&pairs, |(i, pair)| {
                if pair.len() == 1 {
                    return Ok(pair[0].clone());
                }
                let span = self.metrics.merge_ns.span();
                let ta =
                    DiskTree::open_with(self.vfs.as_ref(), &pair[0], self.cat.clone(), 64, 1024)?;
                let tb =
                    DiskTree::open_with(self.vfs.as_ref(), &pair[1], self.cat.clone(), 64, 1024)?;
                let path = self.tmp_path(depth, *i);
                merge_trees_with(self.vfs.as_ref(), &ta, &tb, &self.cat, &path)?;
                self.vfs.remove_file(&pair[0])?;
                self.vfs.remove_file(&pair[1])?;
                drop(span);
                self.metrics.merges.incr();
                Ok(path)
            })?;
            depth += 1;
        }
        self.vfs.rename(&level[0], out)?;
        // Report physical size (logical is page-rounded away).
        Ok(self.vfs.metadata_len(out)?)
    }

    /// Best-effort removal of leftover `merge-*.wt.tmp` work files.
    fn cleanup_work_files(&self) {
        let Ok(entries) = self.vfs.read_dir(&self.work_dir) else {
            return;
        };
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("merge-") && name.ends_with(".wt.tmp") {
                let _ = self.vfs.remove_file(&path);
            }
        }
    }

    /// Builds one batch's in-memory tree per the configured kind/spec.
    fn build_batch(&self, range: std::ops::Range<usize>) -> warptree_suffix::SuffixTree {
        match (self.kind, self.truncate) {
            (TreeKind::Full, None) => {
                warptree_suffix::ukkonen::build_full_range(self.cat.clone(), range)
            }
            (TreeKind::Sparse, None) => {
                warptree_suffix::build::build_sparse_range(self.cat.clone(), range)
            }
            (kind, Some(spec)) => {
                // The truncated builders have no range form; build over a
                // range by filtering at insertion. Small batches keep
                // this cheap.
                use warptree_core::sequence::SeqId;
                use warptree_suffix::insert_suffix_prefix;
                let sparse = kind == TreeKind::Sparse;
                let mut tree = warptree_suffix::SuffixTree::empty(self.cat.clone(), sparse);
                for i in range {
                    let seq = SeqId(i as u32);
                    let s = &self.cat.seqs()[i];
                    for start in 0..s.len() as u32 {
                        if s.len() as u32 - start < spec.min_answer_len {
                            if sparse {
                                continue;
                            }
                            break;
                        }
                        let keep = if sparse {
                            if !self.cat.is_stored_suffix(seq, start) {
                                continue;
                            }
                            spec.max_answer_len + self.cat.run_len(seq, start) - 1
                        } else {
                            spec.max_answer_len
                        };
                        insert_suffix_prefix(&mut tree, seq, start, keep);
                    }
                }
                tree.set_depth_limit(spec.max_answer_len);
                tree.finalize();
                tree
            }
        }
    }

    /// Applies `f` to every item, using up to `self.threads` workers,
    /// preserving input order. Sequential when `threads == 1`.
    fn parallel_map<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> Result<R> + Sync,
    ) -> Result<Vec<R>> {
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().map(&f).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<parking_lot::Mutex<Option<Result<R>>>> = items
            .iter()
            .map(|_| parking_lot::Mutex::new(None))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(items.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    *slots[i].lock() = Some(f(&items[i]));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("worker filled every slot"))
            .collect()
    }

    fn tmp_path(&self, depth: usize, idx: usize) -> PathBuf {
        // The `.tmp` suffix puts work files inside the recovery sweep.
        self.work_dir.join(format!("merge-{depth}-{idx}.wt.tmp"))
    }
}

impl DiskTree {
    /// The sparse flag from the header (internal helper for merging).
    pub fn is_sparse_flag(&self) -> bool {
        self.header().sparse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_tree;
    use warptree_suffix::ukkonen::build_full_range;
    use warptree_suffix::{build_full, build_sparse};

    fn tmpdir(name: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("warptree-merge-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn cat(seqs: Vec<Vec<Symbol>>, alpha: u32) -> Arc<CatStore> {
        Arc::new(CatStore::from_symbols(seqs, alpha))
    }

    #[test]
    fn merge_two_halves_equals_direct_build() {
        let c = cat(
            vec![
                vec![0, 1, 2, 1, 2, 1],
                vec![2, 2, 0, 1],
                vec![1, 1, 1],
                vec![0, 2, 0, 2],
            ],
            3,
        );
        let dir = tmpdir("halves");
        let t1 = build_full_range(c.clone(), 0..2);
        let t2 = build_full_range(c.clone(), 2..4);
        let (p1, p2, pm) = (dir.join("a.wt"), dir.join("b.wt"), dir.join("m.wt"));
        write_tree(&t1, &p1).unwrap();
        write_tree(&t2, &p2).unwrap();
        let da = DiskTree::open(&p1, c.clone(), 8, 64).unwrap();
        let db = DiskTree::open(&p2, c.clone(), 8, 64).unwrap();
        merge_trees(&da, &db, &c, &pm).unwrap();
        let merged = DiskTree::open(&pm, c.clone(), 8, 64).unwrap();
        let direct = build_full(c);
        assert_eq!(merged.to_mem().unwrap().canonical(), direct.canonical());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_builder_matches_direct_full() {
        let c = cat(
            vec![
                vec![0, 0, 1, 2],
                vec![2, 1, 0],
                vec![1, 1],
                vec![0, 2, 2, 2, 1],
                vec![2],
            ],
            3,
        );
        let dir = tmpdir("incr-full");
        let out = dir.join("index.wt");
        let b = IncrementalBuilder::new(c.clone(), TreeKind::Full, 2, dir.clone());
        b.build(&out).unwrap();
        let disk = DiskTree::open(&out, c.clone(), 8, 64).unwrap();
        let direct = build_full(c);
        assert_eq!(disk.to_mem().unwrap().canonical(), direct.canonical());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_builder_matches_direct_sparse() {
        let c = cat(vec![vec![0, 0, 0, 1, 1], vec![1, 0, 0], vec![2, 2, 2]], 3);
        let dir = tmpdir("incr-sparse");
        let out = dir.join("index.wt");
        let b = IncrementalBuilder::new(c.clone(), TreeKind::Sparse, 1, dir.clone());
        b.build(&out).unwrap();
        let disk = DiskTree::open(&out, c.clone(), 8, 64).unwrap();
        assert!(disk.is_sparse_flag());
        let direct = build_sparse(c);
        assert_eq!(disk.to_mem().unwrap().canonical(), direct.canonical());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_build_equals_sequential() {
        let c = cat(
            (0..12)
                .map(|i| (0..10).map(|j| ((i * 3 + j) % 4) as Symbol).collect())
                .collect(),
            4,
        );
        let dir = tmpdir("parallel");
        let (seq_out, par_out) = (dir.join("seq.wt"), dir.join("par.wt"));
        IncrementalBuilder::new(c.clone(), TreeKind::Full, 3, dir.clone())
            .build(&seq_out)
            .unwrap();
        IncrementalBuilder::new(c.clone(), TreeKind::Full, 3, dir.clone())
            .with_threads(4)
            .build(&par_out)
            .unwrap();
        let a = DiskTree::open(&seq_out, c.clone(), 8, 64).unwrap();
        let b = DiskTree::open(&par_out, c.clone(), 8, 64).unwrap();
        assert_eq!(
            a.to_mem().unwrap().canonical(),
            b.to_mem().unwrap().canonical()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_truncated_matches_direct() {
        let c = cat(
            vec![vec![0, 0, 1, 2, 1, 0], vec![2, 1, 0, 0], vec![1, 1, 1, 2]],
            3,
        );
        let spec = warptree_suffix::TruncateSpec {
            max_answer_len: 3,
            min_answer_len: 1,
        };
        for kind in [TreeKind::Full, TreeKind::Sparse] {
            let dir = tmpdir(&format!("incr-trunc-{kind:?}"));
            let out = dir.join("index.wt");
            IncrementalBuilder::new(c.clone(), kind, 1, dir.clone())
                .with_truncation(spec)
                .build(&out)
                .unwrap();
            let disk = DiskTree::open(&out, c.clone(), 8, 64).unwrap();
            assert_eq!(disk.header().depth_limit, Some(3));
            let direct = match kind {
                TreeKind::Full => warptree_suffix::build_full_truncated(c.clone(), spec),
                TreeKind::Sparse => warptree_suffix::build_sparse_truncated(c.clone(), spec),
            };
            assert_eq!(disk.to_mem().unwrap().canonical(), direct.canonical());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn builder_metrics_count_batches_and_merges() {
        let c = cat(
            vec![vec![0, 0, 1, 2], vec![2, 1, 0], vec![1, 1], vec![0, 2]],
            3,
        );
        let dir = tmpdir("metrics");
        let out = dir.join("index.wt");
        let reg = MetricsRegistry::new();
        IncrementalBuilder::new(c.clone(), TreeKind::Full, 1, dir.clone())
            .with_metrics(&reg)
            .build(&out)
            .unwrap();
        let snap = reg.snapshot();
        // 4 sequences at batch size 1 → 4 batches, merged 4→2→1 = 3 merges.
        assert_eq!(snap.counters["build.batches"], 4);
        assert_eq!(snap.counters["build.merges"], 3);
        assert_eq!(snap.histograms["build.batch_ns"].count, 4);
        assert_eq!(snap.histograms["build.merge_ns"].count, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_with_empty_tree_is_identity() {
        let c = cat(vec![vec![0, 1, 0], vec![]], 2);
        let dir = tmpdir("empty");
        let t1 = build_full_range(c.clone(), 0..1);
        let t2 = build_full_range(c.clone(), 1..2); // empty sequence
        let (p1, p2, pm) = (dir.join("a.wt"), dir.join("b.wt"), dir.join("m.wt"));
        write_tree(&t1, &p1).unwrap();
        write_tree(&t2, &p2).unwrap();
        let da = DiskTree::open(&p1, c.clone(), 8, 64).unwrap();
        let db = DiskTree::open(&p2, c.clone(), 8, 64).unwrap();
        merge_trees(&da, &db, &c, &pm).unwrap();
        let merged = DiskTree::open(&pm, c.clone(), 8, 64).unwrap();
        assert_eq!(merged.to_mem().unwrap().canonical(), t1.canonical());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
