//! Atomic index-directory commits, recovery on open, and verification.
//!
//! An index directory is a pair of paged files — the corpus and the tree
//! — plus a small `MANIFEST` naming the committed *generation* of each.
//! Every mutation of the directory (initial build, rebuild, append)
//! follows one protocol:
//!
//! 1. the next generation's files are written to `*.tmp` names and
//!    fsynced;
//! 2. each is renamed to its final generational name
//!    (`corpus-NNNNNN.wc`, `index-NNNNNN.wt`) and the directory is
//!    fsynced;
//! 3. a new manifest is written to `MANIFEST.tmp`, fsynced, and renamed
//!    over `MANIFEST` — **this rename is the commit point**;
//! 4. the directory is fsynced again and the previous generation's files
//!    are removed (best-effort — recovery sweeps leftovers).
//!
//! A crash anywhere before step 3 leaves the old manifest (and hence the
//! old, complete state) in force; a crash anywhere after it leaves the
//! new state in force. [`recover_dir_with`] makes either outcome clean:
//! it resolves the committed generation, then removes stale `*.tmp`
//! files and generation files the manifest does not reference.
//!
//! Directories created by older builds — a bare `corpus.wc` + `index.wt`
//! pair with no manifest — are still readable; they resolve as
//! *generation 0* and are upgraded to the manifest scheme by the first
//! append or rebuild.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use warptree_core::categorize::Alphabet;
use warptree_core::search::BackendKind;
use warptree_core::sequence::SequenceStore;

use crate::any::AnyIndex;
use crate::corpus::load_corpus_with;
use crate::crc::crc32;
use crate::error::{DiskError, Result};
use crate::pager::{PagedReader, PAGE_DATA};
use crate::vfs::{TempGuard, Vfs};

/// File name of the commit manifest.
pub const MANIFEST_NAME: &str = "MANIFEST";

const MANIFEST_MAGIC: &[u8; 8] = b"WARPMANF";
/// Version 1: base corpus + index pair. Version 2 appends the tail
/// segment list. Version 3 adds a per-segment flags word (bit 0:
/// quarantined). Version 4 appends the index backend id. The encoder
/// always emits the *minimum* version the manifest's content needs —
/// a tree-backed directory with no tail segments is byte-identical to
/// what version-1 builds produced, so older binaries keep reading every
/// directory they could before; only an `esa`-backed directory promotes
/// to version 4, which older binaries reject instead of misreading.
const MANIFEST_VERSION: u32 = 1;
const MANIFEST_VERSION_SEGMENTS: u32 = 2;
const MANIFEST_VERSION_QUARANTINE: u32 = 3;
const MANIFEST_VERSION_BACKEND: u32 = 4;

/// Backend ids as recorded in a version-4 manifest.
const BACKEND_ID_TREE: u32 = 0;
const BACKEND_ID_ESA: u32 = 1;

/// Segment flag bit: the segment is quarantined (tombstoned).
const SEG_FLAG_QUARANTINED: u32 = 1;

/// A committed tail segment: a suffix tree over the suffixes of a
/// contiguous run of appended sequences (the base `index` file covers
/// every sequence before the first tail segment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name of the segment's tree inside the directory.
    pub file: String,
    /// Physical size of the segment file at commit time.
    pub file_len: u64,
    /// Corpus-global id of the first sequence this segment indexes.
    pub start_seq: u32,
    /// Number of consecutive sequences it indexes.
    pub seq_count: u32,
    /// Whether the segment is quarantined: detected corrupt, kept on
    /// disk as a tombstone (never silently deleted), excluded from
    /// queries until a scrub heals it by rebuilding from the corpus.
    pub quarantined: bool,
}

/// The committed state of an index directory: which generation of the
/// corpus and tree files is current, their physical sizes, and any tail
/// segments awaiting compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Commit generation (monotonically increasing; 0 is reserved for
    /// legacy manifest-less directories and never appears in a file).
    pub generation: u64,
    /// File name of the committed corpus.
    pub corpus: String,
    /// File name of the committed (base) tree.
    pub index: String,
    /// Physical size of the corpus file at commit time.
    pub corpus_len: u64,
    /// Physical size of the tree file at commit time.
    pub index_len: u64,
    /// Tail segments, in ascending `start_seq` order (empty for a
    /// fully compacted — i.e. ordinary single-tree — directory).
    pub segments: Vec<SegmentMeta>,
    /// The index backend every data file of this generation was
    /// committed under ([`BackendKind::Tree`] for all manifests written
    /// before version 4).
    pub backend: BackendKind,
}

/// Generational corpus file name (`corpus.wc` for the legacy gen 0).
pub fn corpus_file_name(generation: u64) -> String {
    if generation == 0 {
        "corpus.wc".into()
    } else {
        format!("corpus-{generation:06}.wc")
    }
}

/// Generational tree file name (`index.wt` for the legacy gen 0).
pub fn index_file_name(generation: u64) -> String {
    if generation == 0 {
        "index.wt".into()
    } else {
        format!("index-{generation:06}.wt")
    }
}

/// Tail-segment tree file name: the generation that committed it plus
/// an ordinal distinguishing segments born in the same commit.
pub fn segment_file_name(generation: u64, ordinal: u32) -> String {
    format!("segment-{generation:06}-{ordinal:03}.wt")
}

/// Whether `name` follows an index-directory data-file pattern (legacy
/// fixed, generational, or tail segment). Such files belong to the
/// commit protocol and are fair game for the recovery sweep when
/// unreferenced.
fn is_generation_file(name: &str) -> bool {
    name == "corpus.wc"
        || name == "index.wt"
        || (name.starts_with("corpus-") && name.ends_with(".wc"))
        || (name.starts_with("index-") && name.ends_with(".wt"))
        || (name.starts_with("segment-") && name.ends_with(".wt"))
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let version = if self.backend != BackendKind::Tree {
            MANIFEST_VERSION_BACKEND
        } else if self.segments.is_empty() {
            MANIFEST_VERSION
        } else if self.segments.iter().any(|s| s.quarantined) {
            MANIFEST_VERSION_QUARANTINE
        } else {
            MANIFEST_VERSION_SEGMENTS
        };
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        for name in [&self.corpus, &self.index] {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        out.extend_from_slice(&self.corpus_len.to_le_bytes());
        out.extend_from_slice(&self.index_len.to_le_bytes());
        if version >= MANIFEST_VERSION_SEGMENTS {
            out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
            for seg in &self.segments {
                out.extend_from_slice(&(seg.file.len() as u32).to_le_bytes());
                out.extend_from_slice(seg.file.as_bytes());
                out.extend_from_slice(&seg.file_len.to_le_bytes());
                out.extend_from_slice(&seg.start_seq.to_le_bytes());
                out.extend_from_slice(&seg.seq_count.to_le_bytes());
                if version >= MANIFEST_VERSION_QUARANTINE {
                    let flags = if seg.quarantined {
                        SEG_FLAG_QUARANTINED
                    } else {
                        0
                    };
                    out.extend_from_slice(&flags.to_le_bytes());
                }
            }
        }
        if version >= MANIFEST_VERSION_BACKEND {
            let id = match self.backend {
                BackendKind::Tree => BACKEND_ID_TREE,
                BackendKind::Esa => BACKEND_ID_ESA,
            };
            out.extend_from_slice(&id.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(raw: &[u8]) -> Result<Self> {
        let bad = |m: &str| DiskError::BadManifest(m.into());
        if raw.len() < 4 {
            return Err(bad("truncated"));
        }
        let (body, tail) = raw.split_at(raw.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().unwrap());
        if crc32(body) != stored {
            return Err(bad("checksum mismatch"));
        }
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8]> {
            if pos + n > body.len() {
                return Err(bad("truncated"));
            }
            let s = &body[pos..pos + n];
            pos += n;
            Ok(s)
        };
        if take(8)? != MANIFEST_MAGIC {
            return Err(bad("not a manifest file"));
        }
        let version = u32::from_le_bytes(take(4)?.try_into().unwrap());
        if !(MANIFEST_VERSION..=MANIFEST_VERSION_BACKEND).contains(&version) {
            return Err(bad(&format!("unsupported manifest version {version}")));
        }
        let generation = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let mut names = Vec::with_capacity(2);
        for _ in 0..2 {
            let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            if len > 4096 {
                return Err(bad("implausible file name length"));
            }
            let name = std::str::from_utf8(take(len)?)
                .map_err(|_| bad("file name is not UTF-8"))?
                .to_string();
            names.push(name);
        }
        let corpus_len = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let index_len = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let mut segments = Vec::new();
        if version >= MANIFEST_VERSION_SEGMENTS {
            let count = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            if count > 4096 {
                return Err(bad("implausible segment count"));
            }
            for _ in 0..count {
                let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
                if len > 4096 {
                    return Err(bad("implausible file name length"));
                }
                let file = std::str::from_utf8(take(len)?)
                    .map_err(|_| bad("file name is not UTF-8"))?
                    .to_string();
                let file_len = u64::from_le_bytes(take(8)?.try_into().unwrap());
                let start_seq = u32::from_le_bytes(take(4)?.try_into().unwrap());
                let seq_count = u32::from_le_bytes(take(4)?.try_into().unwrap());
                let flags = if version >= MANIFEST_VERSION_QUARANTINE {
                    u32::from_le_bytes(take(4)?.try_into().unwrap())
                } else {
                    0
                };
                segments.push(SegmentMeta {
                    file,
                    file_len,
                    start_seq,
                    seq_count,
                    quarantined: flags & SEG_FLAG_QUARANTINED != 0,
                });
            }
        }
        let backend = if version >= MANIFEST_VERSION_BACKEND {
            match u32::from_le_bytes(take(4)?.try_into().unwrap()) {
                BACKEND_ID_TREE => BackendKind::Tree,
                BACKEND_ID_ESA => BackendKind::Esa,
                other => {
                    // A backend this build does not know: a typed error
                    // rather than `BadManifest`, so callers can tell "a
                    // newer format I must not touch" from corruption.
                    return Err(DiskError::UnsupportedBackend {
                        found: format!("manifest backend id {other}"),
                    });
                }
            }
        } else {
            BackendKind::Tree
        };
        let index = names.pop().unwrap();
        let corpus = names.pop().unwrap();
        Ok(Self {
            generation,
            corpus,
            index,
            corpus_len,
            index_len,
            segments,
            backend,
        })
    }

    /// Tail segments currently serving queries (not quarantined).
    pub fn live_segments(&self) -> impl Iterator<Item = &SegmentMeta> {
        self.segments.iter().filter(|s| !s.quarantined)
    }

    /// Quarantined (tombstoned) tail segments.
    pub fn quarantined_segments(&self) -> impl Iterator<Item = &SegmentMeta> {
        self.segments.iter().filter(|s| s.quarantined)
    }
}

/// Reads the directory's manifest; `Ok(None)` when none exists.
pub fn read_manifest_with(vfs: &dyn Vfs, dir: &Path) -> Result<Option<Manifest>> {
    let path = dir.join(MANIFEST_NAME);
    if !vfs.exists(&path) {
        return Ok(None);
    }
    let file = vfs.open(&path)?;
    let len = file.len()?;
    if len > 64 * 1024 {
        return Err(DiskError::BadManifest("implausibly large".into()));
    }
    let mut raw = vec![0u8; len as usize];
    file.read_at(0, &mut raw)?;
    Manifest::decode(&raw).map(Some)
}

/// Writes `m` as the directory's manifest: `MANIFEST.tmp`, fsync,
/// rename, directory fsync. The rename is the caller's commit point.
pub fn write_manifest_with(vfs: &dyn Vfs, dir: &Path, m: &Manifest) -> Result<()> {
    let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
    let mut guard = TempGuard::new(vfs, vec![tmp.clone()]);
    let mut file = vfs.create(&tmp)?;
    file.write_at(0, &m.encode())?;
    file.sync()?;
    drop(file);
    vfs.rename(&tmp, &dir.join(MANIFEST_NAME))?;
    guard.defuse();
    vfs.sync_dir(dir)?;
    Ok(())
}

/// The committed files of a resolved index directory.
#[derive(Debug, Clone)]
pub struct ResolvedDir {
    /// Committed generation (0 for a legacy manifest-less directory).
    pub generation: u64,
    /// Absolute path of the committed corpus file.
    pub corpus_path: PathBuf,
    /// Absolute path of the committed (base) tree file.
    pub index_path: PathBuf,
    /// Absolute paths of the committed tail segments, in manifest order.
    pub segment_paths: Vec<PathBuf>,
    /// The manifest, when one exists.
    pub manifest: Option<Manifest>,
}

impl ResolvedDir {
    /// Every committed data file: corpus, base tree, tail segments.
    fn keep_list(&self) -> Vec<&Path> {
        let mut keep = vec![self.corpus_path.as_path(), self.index_path.as_path()];
        keep.extend(self.segment_paths.iter().map(|p| p.as_path()));
        keep
    }

    /// The backend the committed generation was built under — what the
    /// manifest records, or [`BackendKind::Tree`] for legacy
    /// manifest-less directories.
    pub fn backend(&self) -> BackendKind {
        self.manifest
            .as_ref()
            .map(|m| m.backend)
            .unwrap_or(BackendKind::Tree)
    }
}

/// Resolves the committed state of `dir` without touching anything:
/// the manifest's generation when one exists, else the legacy
/// `corpus.wc` + `index.wt` pair as generation 0.
pub fn resolve_dir_with(vfs: &dyn Vfs, dir: &Path) -> Result<ResolvedDir> {
    if let Some(m) = read_manifest_with(vfs, dir)? {
        let corpus_path = dir.join(&m.corpus);
        let index_path = dir.join(&m.index);
        let segment_paths: Vec<PathBuf> = m.segments.iter().map(|s| dir.join(&s.file)).collect();
        let names = [&m.corpus, &m.index]
            .into_iter()
            .chain(m.segments.iter().map(|s| &s.file));
        for (path, name) in [&corpus_path, &index_path]
            .into_iter()
            .chain(segment_paths.iter())
            .zip(names)
        {
            if !vfs.exists(path) {
                return Err(DiskError::BadManifest(format!(
                    "references missing file {name}"
                )));
            }
        }
        return Ok(ResolvedDir {
            generation: m.generation,
            corpus_path,
            index_path,
            segment_paths,
            manifest: Some(m),
        });
    }
    let corpus_path = dir.join(corpus_file_name(0));
    let index_path = dir.join(index_file_name(0));
    if vfs.exists(&corpus_path) && vfs.exists(&index_path) {
        return Ok(ResolvedDir {
            generation: 0,
            corpus_path,
            index_path,
            segment_paths: Vec::new(),
            manifest: None,
        });
    }
    Err(DiskError::NotAnIndexDir(format!(
        "{}: no MANIFEST and no corpus.wc + index.wt pair",
        dir.display()
    )))
}

/// What a recovery sweep cleaned out of a directory.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Stale `*.tmp` files removed.
    pub removed_tmp: Vec<PathBuf>,
    /// Data files of uncommitted or superseded generations removed.
    pub removed_orphans: Vec<PathBuf>,
}

impl RecoveryReport {
    /// Whether the sweep found nothing to clean.
    pub fn is_clean(&self) -> bool {
        self.removed_tmp.is_empty() && self.removed_orphans.is_empty()
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "directory clean, nothing recovered");
        }
        let mut first = true;
        for p in &self.removed_tmp {
            if !first {
                writeln!(f)?;
            }
            write!(f, "removed stale temporary {}", p.display())?;
            first = false;
        }
        for p in &self.removed_orphans {
            if !first {
                writeln!(f)?;
            }
            write!(f, "removed uncommitted file {}", p.display())?;
            first = false;
        }
        Ok(())
    }
}

/// Removes every `*.tmp` file and every generation-pattern data file of
/// `dir` not listed in `keep`. Fsyncs the directory when anything was
/// removed.
fn sweep_dir_with(vfs: &dyn Vfs, dir: &Path, keep: &[&Path]) -> Result<RecoveryReport> {
    let mut report = RecoveryReport::default();
    for path in vfs.read_dir(dir)? {
        if keep.iter().any(|k| *k == path) {
            continue;
        }
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.ends_with(".tmp") {
            vfs.remove_file(&path)?;
            report.removed_tmp.push(path);
        } else if is_generation_file(name) {
            vfs.remove_file(&path)?;
            report.removed_orphans.push(path);
        }
    }
    if !report.is_clean() {
        vfs.sync_dir(dir)?;
    }
    Ok(report)
}

/// Resolves the committed state of `dir` and cleans up everything a
/// crashed or failed mutation may have left behind: stale `*.tmp` files
/// and data files outside the committed generation.
pub fn recover_dir_with(vfs: &dyn Vfs, dir: &Path) -> Result<(ResolvedDir, RecoveryReport)> {
    let resolved = resolve_dir_with(vfs, dir)?;
    let report = sweep_dir_with(vfs, dir, &resolved.keep_list())?;
    Ok((resolved, report))
}

/// Commits a manifest update atomically: installs each `staged`
/// `(tmp, final)` file pair under its final name, flips the manifest by
/// the rename protocol, then best-effort removes the `remove_after`
/// files the update superseded. The staged temporaries must already be
/// written and fsynced.
///
/// This is the generic form of the commit protocol used by the
/// segment subsystem (append and compaction), where arbitrary subsets
/// of the previous generation's files are carried forward unchanged —
/// unlike [`commit_dir_with`], which always supersedes the whole
/// generation.
pub fn commit_update_with(
    vfs: &dyn Vfs,
    dir: &Path,
    staged: &[(PathBuf, PathBuf)],
    manifest: &Manifest,
    remove_after: &[PathBuf],
) -> Result<()> {
    let mut guard = TempGuard::new(vfs, Vec::new());
    for (tmp, final_path) in staged {
        guard.add(final_path.clone());
        vfs.rename(tmp, final_path)?;
    }
    if !staged.is_empty() {
        vfs.sync_dir(dir)?;
    }
    let manifest_tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
    guard.add(manifest_tmp.clone());
    let mut file = vfs.create(&manifest_tmp)?;
    file.write_at(0, &manifest.encode())?;
    file.sync()?;
    drop(file);
    vfs.rename(&manifest_tmp, &dir.join(MANIFEST_NAME))?;
    // Committed: from here on the new state must survive any error.
    guard.defuse();
    vfs.sync_dir(dir)?;
    for old in remove_after {
        if vfs.exists(old) {
            let _ = vfs.remove_file(old);
        }
    }
    let _ = vfs.sync_dir(dir);
    Ok(())
}

/// Quarantines a tail segment: flips its manifest flag as a new
/// generation under the ordinary commit protocol. The segment file is
/// an atomic tombstone — it stays on disk, referenced by the manifest
/// (so recovery sweeps keep it and [`resolve_dir_with`] still demands
/// its presence) but excluded from queries until a scrub heals it.
///
/// Idempotent: quarantining an already-quarantined segment returns the
/// current manifest without committing a new generation. Unknown
/// segment names are a [`DiskError::BadManifest`].
pub fn quarantine_segment_with(vfs: &dyn Vfs, dir: &Path, segment: &str) -> Result<Manifest> {
    let mut m = read_manifest_with(vfs, dir)?.ok_or_else(|| {
        DiskError::BadManifest("cannot quarantine in a manifest-less directory".into())
    })?;
    let seg = m
        .segments
        .iter_mut()
        .find(|s| s.file == segment)
        .ok_or_else(|| DiskError::BadManifest(format!("no segment named {segment}")))?;
    if seg.quarantined {
        return Ok(m);
    }
    seg.quarantined = true;
    m.generation += 1;
    commit_update_with(vfs, dir, &[], &m, &[])?;
    Ok(m)
}

/// Commits the next generation of `dir` atomically. `write_corpus` and
/// `write_index` each receive the temporary path they must produce their
/// file at (fsynced — [`crate::PagedWriter::finish`] already does this);
/// everything else — generational naming, renames, directory fsyncs, the
/// manifest, cleanup of the superseded generation — is handled here.
///
/// On error, no trace of the attempted generation survives (temporaries
/// and half-installed files are removed); after a crash, the recovery
/// sweep at next open removes them instead. The old generation stays
/// committed until the manifest rename, which is the atomic flip.
pub fn commit_dir_with<C, I>(
    vfs: &dyn Vfs,
    dir: &Path,
    current_generation: u64,
    write_corpus: C,
    write_index: I,
) -> Result<Manifest>
where
    C: FnOnce(&Path) -> Result<()>,
    I: FnOnce(&Path) -> Result<()>,
{
    commit_dir_backend_with(
        vfs,
        dir,
        current_generation,
        BackendKind::Tree,
        write_corpus,
        write_index,
    )
}

/// [`commit_dir_with`] recording an explicit index [`BackendKind`] in
/// the committed manifest — `write_index` must produce a file of that
/// backend's format.
pub fn commit_dir_backend_with<C, I>(
    vfs: &dyn Vfs,
    dir: &Path,
    current_generation: u64,
    backend: BackendKind,
    write_corpus: C,
    write_index: I,
) -> Result<Manifest>
where
    C: FnOnce(&Path) -> Result<()>,
    I: FnOnce(&Path) -> Result<()>,
{
    vfs.create_dir_all(dir)?;
    // The whole previous generation is superseded — including any tail
    // segments its manifest carried (a monolithic rebuild re-indexes
    // everything).
    let mut remove_after = vec![
        dir.join(corpus_file_name(current_generation)),
        dir.join(index_file_name(current_generation)),
    ];
    if let Ok(Some(old)) = read_manifest_with(vfs, dir) {
        remove_after.extend(old.segments.iter().map(|s| dir.join(&s.file)));
    }

    let generation = current_generation + 1;
    let corpus_name = corpus_file_name(generation);
    let index_name = index_file_name(generation);
    let corpus_final = dir.join(&corpus_name);
    let index_final = dir.join(&index_name);
    let corpus_tmp = dir.join(format!("{corpus_name}.tmp"));
    let index_tmp = dir.join(format!("{index_name}.tmp"));

    let mut guard = TempGuard::new(vfs, vec![corpus_tmp.clone(), index_tmp.clone()]);
    write_corpus(&corpus_tmp)?;
    write_index(&index_tmp)?;

    let manifest = Manifest {
        generation,
        corpus: corpus_name,
        index: index_name,
        corpus_len: vfs.metadata_len(&corpus_tmp)?,
        index_len: vfs.metadata_len(&index_tmp)?,
        segments: Vec::new(),
        backend,
    };
    // Until the manifest flips inside commit_update_with, readers still
    // resolve the old generation, so the renames are invisible; on
    // failure the temporaries (or half-installed finals) are removed.
    commit_update_with(
        vfs,
        dir,
        &[(corpus_tmp, corpus_final), (index_tmp, index_final)],
        &manifest,
        &remove_after,
    )?;
    guard.defuse();
    Ok(manifest)
}

/// Builds (or rebuilds) an index directory for `store` under the commit
/// protocol: sweeps leftovers of earlier attempts, writes the corpus and
/// an incrementally merged tree as the next generation, and commits them
/// with a manifest. Returns the committed manifest.
#[allow(clippy::too_many_arguments)]
pub fn build_dir_with(
    vfs: Arc<dyn Vfs>,
    store: &SequenceStore,
    alphabet: &Alphabet,
    kind: crate::merge::TreeKind,
    batch: usize,
    threads: usize,
    truncate: Option<warptree_suffix::TruncateSpec>,
    dir: &Path,
) -> Result<Manifest> {
    build_dir_metered(
        vfs,
        store,
        alphabet,
        kind,
        batch,
        threads,
        truncate,
        BackendKind::Tree,
        dir,
        &warptree_obs::MetricsRegistry::noop(),
    )
}

/// [`build_dir_with`] committing under an explicit index
/// [`BackendKind`]: the tree backend runs the incremental merge
/// builder; the `esa` backend constructs the enhanced suffix array over
/// the categorized corpus in one linear pass (`TreeKind` still selects
/// full vs. §6.1 sparse suffix storage, and `batch`/`threads` are
/// ignored — the DC3 build is single-pass). §8 depth truncation is a
/// tree-only feature and is rejected for the `esa` backend.
#[allow(clippy::too_many_arguments)]
pub fn build_dir_backend_with(
    vfs: Arc<dyn Vfs>,
    store: &SequenceStore,
    alphabet: &Alphabet,
    kind: crate::merge::TreeKind,
    batch: usize,
    threads: usize,
    truncate: Option<warptree_suffix::TruncateSpec>,
    backend: BackendKind,
    dir: &Path,
) -> Result<Manifest> {
    build_dir_metered(
        vfs,
        store,
        alphabet,
        kind,
        batch,
        threads,
        truncate,
        backend,
        dir,
        &warptree_obs::MetricsRegistry::noop(),
    )
}

/// [`build_dir_with`] with build-pipeline metrics: the incremental
/// builder publishes its `build.*` counters and timing histograms on
/// `reg`. Callers wanting I/O profiles too should pass a
/// [`MeteredVfs`](crate::MeteredVfs)-wrapped `vfs` metered into the
/// same registry.
#[allow(clippy::too_many_arguments)]
pub fn build_dir_metered(
    vfs: Arc<dyn Vfs>,
    store: &SequenceStore,
    alphabet: &Alphabet,
    kind: crate::merge::TreeKind,
    batch: usize,
    threads: usize,
    truncate: Option<warptree_suffix::TruncateSpec>,
    backend: BackendKind,
    dir: &Path,
    reg: &warptree_obs::MetricsRegistry,
) -> Result<Manifest> {
    if backend == BackendKind::Esa && truncate.is_some() {
        return Err(DiskError::BadRecord(
            "§8 depth truncation is not supported by the esa backend".into(),
        ));
    }
    vfs.create_dir_all(dir)?;
    // Rebuilds bump the committed generation; fresh builds start at 1.
    // Leftovers of a crashed earlier attempt are swept first so stale
    // merge work files cannot outlive this build.
    let current = match resolve_dir_with(vfs.as_ref(), dir) {
        Ok(resolved) => {
            sweep_dir_with(vfs.as_ref(), dir, &resolved.keep_list())?;
            resolved.generation
        }
        Err(DiskError::NotAnIndexDir(_)) => {
            sweep_dir_with(vfs.as_ref(), dir, &[])?;
            0
        }
        Err(e) => return Err(e),
    };
    let cat = Arc::new(alphabet.encode_store(store));
    commit_dir_backend_with(
        vfs.as_ref(),
        dir,
        current,
        backend,
        |corpus_tmp| {
            crate::corpus::save_corpus_with(vfs.as_ref(), store, alphabet, corpus_tmp).map(|_| ())
        },
        |index_tmp| match backend {
            BackendKind::Tree => {
                let mut builder = crate::merge::IncrementalBuilder::new(
                    cat.clone(),
                    kind,
                    batch,
                    dir.to_path_buf(),
                )
                .with_vfs(vfs.clone())
                .with_threads(threads)
                .with_metrics(reg);
                if let Some(spec) = truncate {
                    builder = builder.with_truncation(spec);
                }
                builder.build(index_tmp).map(|_| ())
            }
            BackendKind::Esa => {
                let hist = reg.histogram("build.ns");
                let timer = hist.span();
                let sparse = matches!(kind, crate::merge::TreeKind::Sparse);
                let esa = warptree_esa::EsaIndex::build(cat.clone(), sparse);
                let written =
                    crate::esa::write_esa_with(vfs.as_ref(), &esa, index_tmp).map(|_| ());
                timer.end();
                reg.counter("build.batches").incr();
                written
            }
        },
    )
}

/// Per-file outcome of [`verify_dir_with`].
#[derive(Debug, Clone)]
pub struct FileCheck {
    /// File name inside the directory.
    pub name: String,
    /// Pages scanned before an error (all of them when `error` is none).
    pub pages: u64,
    /// First problem found, if any.
    pub error: Option<String>,
    /// Whether the manifest has this file quarantined (tombstoned).
    pub quarantined: bool,
}

/// Result of a full directory verification.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Committed generation that was checked.
    pub generation: u64,
    /// Per-file page-scan and parse outcomes.
    pub files: Vec<FileCheck>,
    /// Stale `*.tmp` / orphaned generation files present (not removed —
    /// verification never mutates the directory).
    pub stale: Vec<String>,
}

impl VerifyReport {
    /// Whether every non-quarantined check passed (a quarantined
    /// segment is *expected* to be corrupt; its failure does not make
    /// the directory unhealthy — the manifest already accounts for it).
    pub fn is_ok(&self) -> bool {
        self.files
            .iter()
            .all(|f| f.error.is_none() || f.quarantined)
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "generation {}", self.generation)?;
        for check in &self.files {
            let tag = if check.quarantined {
                " [quarantined]"
            } else {
                ""
            };
            match &check.error {
                None => writeln!(f, "  {}: ok ({} pages){tag}", check.name, check.pages)?,
                Some(e) => writeln!(
                    f,
                    "  {}: FAILED after {} pages: {e}{tag}",
                    check.name, check.pages
                )?,
            }
        }
        for s in &self.stale {
            writeln!(f, "  {s}: stale (removed at next open)")?;
        }
        match self.is_ok() {
            true => write!(f, "ok"),
            false => write!(f, "CORRUPT"),
        }
    }
}

/// Scans every page of `path`, returning the page count or the first
/// CRC/size failure.
fn scan_pages(vfs: &dyn Vfs, path: &Path) -> (u64, Option<String>) {
    let reader = match PagedReader::open_with(vfs, path, 2) {
        Ok(r) => r,
        Err(e) => return (0, Some(e.to_string())),
    };
    let pages = reader.logical_len() / PAGE_DATA as u64;
    let mut buf = vec![0u8; PAGE_DATA];
    for page in 0..pages {
        if let Err(e) = reader.read_exact_at(page * PAGE_DATA as u64, &mut buf) {
            return (page, Some(e.to_string()));
        }
    }
    (pages, None)
}

/// Verifies an index directory without modifying it: resolves the
/// committed generation, checks every page CRC of the corpus and tree
/// files, cross-checks their sizes against the manifest, and parses
/// both files end to end (corpus decode + tree open). Stale files that
/// the next open would sweep are reported, not removed.
pub fn verify_dir_with(vfs: &dyn Vfs, dir: &Path) -> Result<VerifyReport> {
    let resolved = resolve_dir_with(vfs, dir)?;
    let mut report = VerifyReport {
        generation: resolved.generation,
        ..Default::default()
    };

    let file_name = |p: &Path| {
        p.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string()
    };

    // Page-level CRC scan plus manifest size cross-check: the corpus,
    // the base tree, then every tail segment.
    let mut checks: Vec<(&Path, Option<u64>, bool)> = vec![
        (
            &resolved.corpus_path,
            resolved.manifest.as_ref().map(|m| m.corpus_len),
            false,
        ),
        (
            &resolved.index_path,
            resolved.manifest.as_ref().map(|m| m.index_len),
            false,
        ),
    ];
    if let Some(m) = &resolved.manifest {
        for (path, seg) in resolved.segment_paths.iter().zip(&m.segments) {
            checks.push((path, Some(seg.file_len), seg.quarantined));
        }
    }
    for (path, expect_len, quarantined) in checks {
        let (pages, mut error) = scan_pages(vfs, path);
        if error.is_none() {
            if let Some(expect) = expect_len {
                let actual = vfs.metadata_len(path)?;
                if actual != expect {
                    error = Some(format!("size {actual} does not match manifest ({expect})"));
                }
            }
        }
        report.files.push(FileCheck {
            name: file_name(path),
            pages,
            error,
            quarantined,
        });
    }

    // Semantic parse: the corpus must decode, every healthy tree must
    // open against the decoded alphabet (quarantined segments are
    // already known-bad; opening them would just repeat the scan error).
    if report.is_ok() {
        match load_corpus_with(vfs, &resolved.corpus_path) {
            Err(e) => {
                report.files[0].error = Some(format!("parse failed: {e}"));
            }
            Ok((_, _, cat)) => {
                let trees = std::iter::once(&resolved.index_path).chain(&resolved.segment_paths);
                for (i, path) in trees.enumerate() {
                    if report.files[i + 1].quarantined {
                        continue;
                    }
                    if let Err(e) =
                        AnyIndex::open_with(vfs, path, cat.clone(), resolved.backend(), 4, 16)
                    {
                        report.files[i + 1].error = Some(format!("parse failed: {e}"));
                    }
                }
            }
        }
    }

    for path in vfs.read_dir(dir)? {
        if path == resolved.corpus_path
            || path == resolved.index_path
            || resolved.segment_paths.contains(&path)
        {
            continue;
        }
        let name = file_name(&path);
        if name.ends_with(".tmp") || is_generation_file(&name) {
            report.stale.push(name);
        }
    }
    Ok(report)
}

/// Deep verification: every index file (base and every tail segment,
/// quarantined ones included) is opened as the manifest's backend and
/// walked page by page through [`AnyIndex::verify_pages`] — exactly the
/// CRC-checked, cache-bypassing routine the background scrubber uses —
/// plus a page scan of the corpus. Never mutates the directory.
pub fn verify_dir_deep_with(vfs: &dyn Vfs, dir: &Path) -> Result<VerifyReport> {
    let resolved = resolve_dir_with(vfs, dir)?;
    let mut report = VerifyReport {
        generation: resolved.generation,
        ..Default::default()
    };
    let file_name = |p: &Path| {
        p.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string()
    };
    let (corpus_pages, corpus_err) = scan_pages(vfs, &resolved.corpus_path);
    report.files.push(FileCheck {
        name: file_name(&resolved.corpus_path),
        pages: corpus_pages,
        error: corpus_err,
        quarantined: false,
    });
    let cat = match load_corpus_with(vfs, &resolved.corpus_path) {
        Ok((_, _, cat)) => cat,
        Err(e) => {
            if report.files[0].error.is_none() {
                report.files[0].error = Some(format!("parse failed: {e}"));
            }
            return Ok(report);
        }
    };
    let quarantined_names: Vec<&str> = resolved
        .manifest
        .as_ref()
        .map(|m| m.quarantined_segments().map(|s| s.file.as_str()).collect())
        .unwrap_or_default();
    for path in std::iter::once(&resolved.index_path).chain(&resolved.segment_paths) {
        let name = file_name(path);
        let quarantined = quarantined_names.iter().any(|q| *q == name);
        let (pages, error) =
            match AnyIndex::open_with(vfs, path, cat.clone(), resolved.backend(), 2, 1) {
                Ok(index) => match index.verify_pages() {
                    Ok(pages) => (pages, None),
                    Err(e) => (0, Some(e.to_string())),
                },
                Err(e) => (0, Some(e.to_string())),
            };
        report.files.push(FileCheck {
            name,
            pages,
            error,
            quarantined,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealVfs;
    use warptree_core::categorize::Alphabet;

    fn tmpdir(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("warptree-manifest-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_store() -> SequenceStore {
        SequenceStore::from_values(vec![vec![1.0, 5.0, 3.0, 5.0, 1.0], vec![4.0, 4.0, 2.0]])
    }

    #[test]
    fn manifest_roundtrip() {
        let m = Manifest {
            generation: 7,
            corpus: corpus_file_name(7),
            index: index_file_name(7),
            corpus_len: 8192,
            index_len: 16384,
            segments: Vec::new(),
            backend: BackendKind::Tree,
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        // With tail segments the manifest round-trips as version 2.
        let seg = Manifest {
            segments: vec![
                SegmentMeta {
                    file: segment_file_name(8, 0),
                    file_len: 4096,
                    start_seq: 2,
                    seq_count: 3,
                    quarantined: false,
                },
                SegmentMeta {
                    file: segment_file_name(9, 1),
                    file_len: 12288,
                    start_seq: 5,
                    seq_count: 1,
                    quarantined: false,
                },
            ],
            ..m.clone()
        };
        assert_eq!(Manifest::decode(&seg.encode()).unwrap(), seg);
        // Quarantine-free manifests stay at the version-2 byte layout.
        assert_eq!(&seg.encode()[8..12], &2u32.to_le_bytes());
        // A quarantined segment promotes the encoding to version 3 and
        // the flag survives the round trip.
        let mut tomb = seg.clone();
        tomb.segments[1].quarantined = true;
        let raw = tomb.encode();
        assert_eq!(&raw[8..12], &3u32.to_le_bytes());
        assert_eq!(Manifest::decode(&raw).unwrap(), tomb);
        assert_eq!(tomb.live_segments().count(), 1);
        assert_eq!(tomb.quarantined_segments().count(), 1);
    }

    #[test]
    fn esa_manifest_promotes_to_version_4_and_round_trips() {
        let m = Manifest {
            generation: 2,
            corpus: corpus_file_name(2),
            index: index_file_name(2),
            corpus_len: 512,
            index_len: 1024,
            segments: Vec::new(),
            backend: BackendKind::Esa,
        };
        let raw = m.encode();
        assert_eq!(&raw[8..12], &MANIFEST_VERSION_BACKEND.to_le_bytes());
        assert_eq!(Manifest::decode(&raw).unwrap(), m);
    }

    #[test]
    fn unknown_backend_id_is_a_typed_rejection() {
        // Splice an unknown backend id into a valid v4 encoding and
        // re-seal the CRC: the decoder must name the id, not claim
        // corruption.
        let m = Manifest {
            generation: 2,
            corpus: corpus_file_name(2),
            index: index_file_name(2),
            corpus_len: 512,
            index_len: 1024,
            segments: Vec::new(),
            backend: BackendKind::Esa,
        };
        let mut raw = m.encode();
        let body_end = raw.len() - 4;
        raw[body_end - 4..body_end].copy_from_slice(&7u32.to_le_bytes());
        let crc = crate::crc::crc32(&raw[..body_end]);
        raw[body_end..].copy_from_slice(&crc.to_le_bytes());
        match Manifest::decode(&raw) {
            Err(DiskError::UnsupportedBackend { found }) => {
                assert!(found.contains('7'), "{found}")
            }
            other => panic!("expected UnsupportedBackend, got {other:?}"),
        }
    }

    #[test]
    fn segmentless_manifest_encoding_is_version_1() {
        // A fully compacted directory must stay readable by pre-segment
        // builds: no tail segments -> the exact version-1 byte layout.
        let m = Manifest {
            generation: 3,
            corpus: corpus_file_name(3),
            index: index_file_name(3),
            corpus_len: 100,
            index_len: 200,
            segments: Vec::new(),
            backend: BackendKind::Tree,
        };
        let raw = m.encode();
        assert_eq!(&raw[8..12], &1u32.to_le_bytes());
        // version(4) is followed by generation/names/lens and nothing
        // else before the CRC tail.
        let expected_len = 8 + 4 + 8 + (4 + m.corpus.len()) + (4 + m.index.len()) + 8 + 8 + 4;
        assert_eq!(raw.len(), expected_len);
    }

    #[test]
    fn manifest_rejects_corruption() {
        let m = Manifest {
            generation: 1,
            corpus: "corpus-000001.wc".into(),
            index: "index-000001.wt".into(),
            corpus_len: 1,
            index_len: 2,
            segments: vec![SegmentMeta {
                file: segment_file_name(1, 0),
                file_len: 3,
                start_seq: 1,
                seq_count: 1,
                quarantined: true,
            }],
            backend: BackendKind::Tree,
        };
        let mut raw = m.encode();
        for i in (0..raw.len()).step_by(3) {
            raw[i] ^= 0x40;
            assert!(
                matches!(Manifest::decode(&raw), Err(DiskError::BadManifest(_))),
                "flip at byte {i} undetected"
            );
            raw[i] ^= 0x40;
        }
        assert!(Manifest::decode(&raw[..raw.len() - 2]).is_err());
    }

    #[test]
    fn build_commit_resolve_roundtrip() {
        let dir = tmpdir("build");
        let store = sample_store();
        let alphabet = Alphabet::equal_length(&store, 4).unwrap();
        let m = build_dir_with(
            crate::vfs::real_vfs(),
            &store,
            &alphabet,
            crate::merge::TreeKind::Full,
            1,
            1,
            None,
            &dir,
        )
        .unwrap();
        assert_eq!(m.generation, 1);
        let (resolved, report) = recover_dir_with(&RealVfs, &dir).unwrap();
        assert_eq!(resolved.generation, 1);
        assert!(report.is_clean(), "{report}");
        let verify = verify_dir_with(&RealVfs, &dir).unwrap();
        assert!(verify.is_ok(), "{verify}");
        // Rebuild bumps the generation and removes the old files.
        let m2 = build_dir_with(
            crate::vfs::real_vfs(),
            &store,
            &alphabet,
            crate::merge::TreeKind::Sparse,
            1,
            1,
            None,
            &dir,
        )
        .unwrap();
        assert_eq!(m2.generation, 2);
        assert!(!dir.join(corpus_file_name(1)).exists());
        assert!(dir.join(corpus_file_name(2)).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_pair_resolves_as_generation_zero() {
        let dir = tmpdir("legacy");
        let store = sample_store();
        let alphabet = Alphabet::equal_length(&store, 4).unwrap();
        let cat = Arc::new(alphabet.encode_store(&store));
        crate::corpus::save_corpus(&store, &alphabet, &dir.join("corpus.wc")).unwrap();
        let tree = warptree_suffix::build_full(cat);
        crate::writer::write_tree(&tree, &dir.join("index.wt")).unwrap();
        let resolved = resolve_dir_with(&RealVfs, &dir).unwrap();
        assert_eq!(resolved.generation, 0);
        assert!(resolved.manifest.is_none());
        assert!(verify_dir_with(&RealVfs, &dir).unwrap().is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_sweeps_stale_files() {
        let dir = tmpdir("sweep");
        let store = sample_store();
        let alphabet = Alphabet::equal_length(&store, 4).unwrap();
        build_dir_with(
            crate::vfs::real_vfs(),
            &store,
            &alphabet,
            crate::merge::TreeKind::Full,
            1,
            1,
            None,
            &dir,
        )
        .unwrap();
        // Plant the kinds of litter a crash can leave behind.
        std::fs::write(dir.join("corpus-000002.wc.tmp"), b"junk").unwrap();
        std::fs::write(dir.join("merge-0-0.wt.tmp"), b"junk").unwrap();
        std::fs::write(dir.join("index-000002.wt"), b"junk").unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
        let verify = verify_dir_with(&RealVfs, &dir).unwrap();
        assert_eq!(verify.stale.len(), 3);
        let (resolved, report) = recover_dir_with(&RealVfs, &dir).unwrap();
        assert_eq!(resolved.generation, 1);
        assert_eq!(report.removed_tmp.len(), 2);
        assert_eq!(report.removed_orphans.len(), 1);
        assert!(!dir.join("corpus-000002.wc.tmp").exists());
        assert!(!dir.join("merge-0-0.wt.tmp").exists());
        assert!(!dir.join("index-000002.wt").exists());
        assert!(dir.join("unrelated.txt").exists());
        assert!(recover_dir_with(&RealVfs, &dir).unwrap().1.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_referencing_missing_file_is_rejected() {
        let dir = tmpdir("missing");
        let m = Manifest {
            generation: 3,
            corpus: corpus_file_name(3),
            index: index_file_name(3),
            corpus_len: 0,
            index_len: 0,
            segments: Vec::new(),
            backend: BackendKind::Tree,
        };
        write_manifest_with(&RealVfs, &dir, &m).unwrap();
        assert!(matches!(
            resolve_dir_with(&RealVfs, &dir),
            Err(DiskError::BadManifest(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_is_not_an_index_dir() {
        let dir = tmpdir("empty");
        assert!(matches!(
            resolve_dir_with(&RealVfs, &dir),
            Err(DiskError::NotAnIndexDir(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
