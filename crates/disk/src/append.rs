//! Appending sequences to an existing index directory.
//!
//! The binary-merge machinery (paper §4.1) makes the index naturally
//! *appendable*: new sequences are categorized with the **existing**
//! boundaries, built into a partial tree in memory, and merged with the
//! on-disk tree — no rebuild of the old data.
//!
//! Two soundness details:
//!
//! * **Boundaries never move.** Re-deriving e.g. maximum-entropy
//!   quantiles over the extended data would re-label old symbols and
//!   invalidate the existing tree. The stored boundaries are
//!   authoritative (see [`corpus`](crate::corpus)).
//! * **Observed bounds only widen.** New values may fall outside a
//!   category's previously observed `lb..ub`. Widening those bounds
//!   keeps `D_base-lb` a valid lower bound for *all* members, old and
//!   new (a wider interval only decreases point-to-interval distances),
//!   so the no-false-dismissal guarantee is preserved. The corpus file
//!   is rewritten with the widened bounds.
//!
//! The append is **crash-safe**: the widened corpus and the merged tree
//! are written as a new generation and committed atomically through
//! [`commit_dir_with`](crate::manifest::commit_dir_with). A failure or
//! crash at any point leaves the directory resolvable to the complete
//! old or complete new state, with no stray `*.tmp` files after the
//! error path (or after the next recovery sweep, for a crash).

use std::path::Path;
use std::sync::Arc;

use warptree_core::search::{BackendKind, IndexBackend};
use warptree_core::sequence::SequenceStore;

use crate::any::AnyIndex;
use crate::corpus::{load_corpus_with, save_corpus_with};
use crate::error::{DiskError, Result};
use crate::format::DiskTree;
use crate::manifest::{commit_dir_backend_with, recover_dir_with};
use crate::merge::merge_trees_with;
use crate::vfs::{RealVfs, TempGuard, Vfs};
use crate::writer::write_tree_with;

/// Appends `new_sequences` to the index directory `dir` (as produced by
/// the incremental builder / `warptree build`), committing an updated
/// corpus and tree as the directory's next generation. Returns the new
/// index file size in bytes.
///
/// The directory must resolve to a committed index (a `MANIFEST`, or the
/// legacy `corpus.wc` + `index.wt` pair). Truncated (§8) indexes are
/// rejected — their per-suffix prefix lengths depend on build-time
/// parameters this function does not know.
pub fn append_to_index_dir(dir: &Path, new_sequences: &SequenceStore) -> Result<u64> {
    append_to_index_dir_with(&RealVfs, dir, new_sequences)
}

/// [`append_to_index_dir`] through an explicit [`Vfs`].
pub fn append_to_index_dir_with(
    vfs: &dyn Vfs,
    dir: &Path,
    new_sequences: &SequenceStore,
) -> Result<u64> {
    let (resolved, _recovery) = recover_dir_with(vfs, dir)?;
    let backend = resolved.backend();
    let (mut store, mut alphabet, _) = load_corpus_with(vfs, &resolved.corpus_path)?;
    let probe = AnyIndex::open_with(
        vfs,
        &resolved.index_path,
        // Temporary encode just to read the base index's shape; replaced
        // below.
        Arc::new(alphabet.encode_store(&store)),
        backend,
        16,
        16,
    )?;
    if probe.depth_limit().is_some() {
        return Err(DiskError::BadRecord(
            "cannot append to a truncated (§8) index".into(),
        ));
    }
    let sparse = probe.is_sparse();
    drop(probe);

    // Admit the new values: widen observed bounds, extend the store.
    alphabet.widen(new_sequences);
    let first_new = store.len();
    for (_, s) in new_sequences.iter() {
        store.push(s.clone());
    }
    let last = store.len();

    // Re-encode everything against the (fixed) boundaries. Old symbols
    // are unchanged — only lb/ub widened — so the existing tree stays
    // valid over the new CatStore.
    let cat = Arc::new(alphabet.encode_store(&store));

    // For the tree backend, build a batch tree over just the new
    // sequences and binary-merge it with the base. The guard removes
    // the batch file on every exit path — including success, where the
    // removal is merely best-effort (a failure there leaves a `*.tmp`
    // for the next recovery sweep, never a wrong answer). The ESA has
    // no binary merge: its append is a canonical rebuild over the
    // widened corpus, so no batch file exists.
    let batch_path = dir.join("append-batch.wt.tmp");
    let _batch_guard = TempGuard::new(vfs, vec![batch_path.clone()]);
    if backend == BackendKind::Tree {
        let batch = if sparse {
            warptree_suffix::build_sparse_range(cat.clone(), first_new..last)
        } else {
            warptree_suffix::build_full_range(cat.clone(), first_new..last)
        };
        write_tree_with(vfs, &batch, &batch_path)?;
    }

    // Commit the widened corpus and the merged (or rebuilt) index as
    // one atomic generation flip; the merge streams directly into the
    // new generation's temporary, so no separate merge scratch file
    // exists.
    let manifest = commit_dir_backend_with(
        vfs,
        dir,
        resolved.generation,
        backend,
        |corpus_tmp| save_corpus_with(vfs, &store, &alphabet, corpus_tmp).map(|_| ()),
        |index_tmp| match backend {
            BackendKind::Tree => {
                let old = DiskTree::open_with(vfs, &resolved.index_path, cat.clone(), 256, 2048)?;
                let new = DiskTree::open_with(vfs, &batch_path, cat.clone(), 256, 2048)?;
                merge_trees_with(vfs, &old, &new, &cat, index_tmp).map(|_| ())
            }
            BackendKind::Esa => {
                let esa = warptree_esa::EsaIndex::build(cat.clone(), sparse);
                crate::esa::write_esa_with(vfs, &esa, index_tmp).map(|_| ())
            }
        },
    )?;
    Ok(manifest.index_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::save_corpus;
    use crate::manifest::resolve_dir_with;
    use crate::writer::write_tree;
    use warptree_core::categorize::Alphabet;
    use warptree_core::search::{
        run_query, seq_scan, QueryRequest, SearchParams, SearchStats, SeqScanMode,
    };

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("warptree-append-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn build_dir(dir: &Path, store: &SequenceStore, sparse: bool) -> Alphabet {
        let alphabet = Alphabet::max_entropy(store, 6).unwrap();
        let cat = Arc::new(alphabet.encode_store(store));
        save_corpus(store, &alphabet, &dir.join("corpus.wc")).unwrap();
        let tree = if sparse {
            warptree_suffix::build_sparse(cat)
        } else {
            warptree_suffix::build_full(cat)
        };
        write_tree(&tree, &dir.join("index.wt")).unwrap();
        alphabet
    }

    fn open_committed(
        dir: &Path,
    ) -> (
        SequenceStore,
        Alphabet,
        Arc<warptree_core::categorize::CatStore>,
        DiskTree,
    ) {
        let resolved = resolve_dir_with(&RealVfs, dir).unwrap();
        let (store, alphabet, cat) = crate::corpus::load_corpus(&resolved.corpus_path).unwrap();
        let tree = DiskTree::open(&resolved.index_path, cat.clone(), 32, 256).unwrap();
        (store, alphabet, cat, tree)
    }

    #[test]
    fn append_preserves_exactness() {
        for sparse in [false, true] {
            let dir = tmpdir(&format!("exact-{sparse}"));
            let initial = SequenceStore::from_values(vec![
                vec![1.0, 5.0, 3.0, 5.0, 1.0],
                vec![4.0, 4.0, 2.0],
            ]);
            build_dir(&dir, &initial, sparse);
            // New data includes values OUTSIDE the old range (0.0, 9.0):
            // the widening path must keep the bounds sound.
            let extra = SequenceStore::from_values(vec![
                vec![0.0, 9.0, 5.0, 5.0],
                vec![3.0, 3.0, 3.0, 3.0, 3.0],
            ]);
            append_to_index_dir(&dir, &extra).unwrap();

            let (store, alphabet, _, tree) = open_committed(&dir);
            assert_eq!(store.len(), 4);
            // A full tree stores one suffix per element of old + new.
            if !sparse {
                assert_eq!(
                    warptree_core::search::IndexBackend::suffix_count(&tree),
                    store.total_len()
                );
            }
            // Every search equals the exact scan over the merged store.
            for q in [vec![5.0, 5.0], vec![0.0, 9.0], vec![3.0]] {
                let params = SearchParams::with_epsilon(1.0);
                let (got, _) = run_query(
                    &tree,
                    &alphabet,
                    &store,
                    &QueryRequest::threshold_params(&q, params.clone()),
                )
                .unwrap();
                let got = got.into_answer_set();
                let mut stats = SearchStats::default();
                let expected = seq_scan(&store, &q, &params, SeqScanMode::Full, &mut stats);
                assert_eq!(
                    got.occurrence_set(),
                    expected.occurrence_set(),
                    "sparse={sparse} q={q:?}"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn repeated_appends_accumulate() {
        let dir = tmpdir("repeat");
        let initial = SequenceStore::from_values(vec![vec![2.0, 4.0, 6.0, 8.0]]);
        build_dir(&dir, &initial, true);
        for round in 0..3 {
            let extra =
                SequenceStore::from_values(vec![vec![2.0 + round as f64, 4.0, 6.0 - round as f64]]);
            append_to_index_dir(&dir, &extra).unwrap();
        }
        // Three appends over a legacy (gen 0) directory leave gen 3.
        let resolved = resolve_dir_with(&RealVfs, &dir).unwrap();
        assert_eq!(resolved.generation, 3);
        let (store, alphabet, _, tree) = open_committed(&dir);
        assert_eq!(store.len(), 4);
        let params = SearchParams::with_epsilon(0.5);
        let q = [4.0, 6.0];
        let (got, _) = run_query(
            &tree,
            &alphabet,
            &store,
            &QueryRequest::threshold_params(&q, params.clone()),
        )
        .unwrap();
        let got = got.into_answer_set();
        let mut stats = SearchStats::default();
        let expected = seq_scan(&store, &q, &params, SeqScanMode::Full, &mut stats);
        assert_eq!(got.occurrence_set(), expected.occurrence_set());
        assert!(!got.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_upgrades_legacy_dir_and_leaves_no_tmp() {
        let dir = tmpdir("upgrade");
        let initial = SequenceStore::from_values(vec![vec![1.0, 2.0, 3.0]]);
        build_dir(&dir, &initial, false);
        let extra = SequenceStore::from_values(vec![vec![2.0, 3.0, 4.0]]);
        append_to_index_dir(&dir, &extra).unwrap();
        // Legacy fixed-name files are superseded and removed; the new
        // generation plus MANIFEST is all that remains.
        assert!(!dir.join("corpus.wc").exists());
        assert!(!dir.join("index.wt").exists());
        assert!(dir.join("MANIFEST").exists());
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "stray temp file {name:?}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
