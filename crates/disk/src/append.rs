//! Appending sequences to an existing index directory.
//!
//! The binary-merge machinery (paper §4.1) makes the index naturally
//! *appendable*: new sequences are categorized with the **existing**
//! boundaries, built into a partial tree in memory, and merged with the
//! on-disk tree — no rebuild of the old data.
//!
//! Two soundness details:
//!
//! * **Boundaries never move.** Re-deriving e.g. maximum-entropy
//!   quantiles over the extended data would re-label old symbols and
//!   invalidate the existing tree. The stored boundaries are
//!   authoritative (see [`corpus`](crate::corpus)).
//! * **Observed bounds only widen.** New values may fall outside a
//!   category's previously observed `lb..ub`. Widening those bounds
//!   keeps `D_base-lb` a valid lower bound for *all* members, old and
//!   new (a wider interval only decreases point-to-interval distances),
//!   so the no-false-dismissal guarantee is preserved. The corpus file
//!   is rewritten with the widened bounds.

use std::path::Path;
use std::sync::Arc;

use warptree_core::sequence::SequenceStore;

use crate::corpus::{load_corpus, save_corpus};
use crate::error::{DiskError, Result};
use crate::format::DiskTree;
use crate::merge::merge_trees;
use crate::writer::write_tree;

/// Appends `new_sequences` to the index directory `dir` (as produced by
/// the incremental builder / `warptree build`), updating both the corpus
/// and the tree file in place. Returns the new index file size in bytes.
///
/// The directory must contain `corpus.wc` and `index.wt`. Truncated
/// (§8) indexes are rejected — their per-suffix prefix lengths depend on
/// build-time parameters this function does not know.
pub fn append_to_index_dir(dir: &Path, new_sequences: &SequenceStore) -> Result<u64> {
    let corpus_path = dir.join("corpus.wc");
    let index_path = dir.join("index.wt");
    let (mut store, mut alphabet, _) = load_corpus(&corpus_path)?;
    let old_tree_probe = DiskTree::open(
        &index_path,
        // Temporary encode just to read the header; replaced below.
        Arc::new(alphabet.encode_store(&store)),
        16,
        16,
    )?;
    let header = old_tree_probe.header();
    if header.depth_limit.is_some() {
        return Err(DiskError::BadRecord(
            "cannot append to a truncated (§8) index".into(),
        ));
    }
    drop(old_tree_probe);

    // Admit the new values: widen observed bounds, extend the store.
    alphabet.widen(new_sequences);
    let first_new = store.len();
    for (_, s) in new_sequences.iter() {
        store.push(s.clone());
    }
    let last = store.len();

    // Re-encode everything against the (fixed) boundaries. Old symbols
    // are unchanged — only lb/ub widened — so the existing tree stays
    // valid over the new CatStore.
    let cat = Arc::new(alphabet.encode_store(&store));

    // Build the batch tree over just the new sequences and merge.
    let batch = if header.sparse {
        warptree_suffix::build_sparse_range(cat.clone(), first_new..last)
    } else {
        warptree_suffix::build_full_range(cat.clone(), first_new..last)
    };
    let batch_path = dir.join("append-batch.wt.tmp");
    let merged_path = dir.join("append-merged.wt.tmp");
    write_tree(&batch, &batch_path)?;
    let old = DiskTree::open(&index_path, cat.clone(), 256, 2048)?;
    let new = DiskTree::open(&batch_path, cat.clone(), 256, 2048)?;
    merge_trees(&old, &new, &cat, &merged_path)?;
    drop((old, new));

    // Commit: corpus first (widened bounds are backwards-compatible with
    // the old tree), then atomically swap the tree.
    save_corpus(&store, &alphabet, &corpus_path)?;
    std::fs::rename(&merged_path, &index_path)?;
    std::fs::remove_file(&batch_path)?;
    Ok(std::fs::metadata(&index_path)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use warptree_core::categorize::Alphabet;
    use warptree_core::search::{seq_scan, sim_search, SearchParams, SearchStats, SeqScanMode};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("warptree-append-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn build_dir(dir: &Path, store: &SequenceStore, sparse: bool) -> Alphabet {
        let alphabet = Alphabet::max_entropy(store, 6).unwrap();
        let cat = Arc::new(alphabet.encode_store(store));
        save_corpus(store, &alphabet, &dir.join("corpus.wc")).unwrap();
        let tree = if sparse {
            warptree_suffix::build_sparse(cat)
        } else {
            warptree_suffix::build_full(cat)
        };
        write_tree(&tree, &dir.join("index.wt")).unwrap();
        alphabet
    }

    #[test]
    fn append_preserves_exactness() {
        for sparse in [false, true] {
            let dir = tmpdir(&format!("exact-{sparse}"));
            let initial = SequenceStore::from_values(vec![
                vec![1.0, 5.0, 3.0, 5.0, 1.0],
                vec![4.0, 4.0, 2.0],
            ]);
            build_dir(&dir, &initial, sparse);
            // New data includes values OUTSIDE the old range (0.0, 9.0):
            // the widening path must keep the bounds sound.
            let extra = SequenceStore::from_values(vec![
                vec![0.0, 9.0, 5.0, 5.0],
                vec![3.0, 3.0, 3.0, 3.0, 3.0],
            ]);
            append_to_index_dir(&dir, &extra).unwrap();

            let (store, alphabet, cat) = load_corpus(&dir.join("corpus.wc")).unwrap();
            assert_eq!(store.len(), 4);
            let tree = DiskTree::open(&dir.join("index.wt"), cat, 32, 256).unwrap();
            // A full tree stores one suffix per element of old + new.
            if !sparse {
                assert_eq!(
                    warptree_core::search::SuffixTreeIndex::suffix_count(&tree),
                    store.total_len()
                );
            }
            // Every search equals the exact scan over the merged store.
            for q in [vec![5.0, 5.0], vec![0.0, 9.0], vec![3.0]] {
                let params = SearchParams::with_epsilon(1.0);
                let (got, _) = sim_search(&tree, &alphabet, &store, &q, &params);
                let mut stats = SearchStats::default();
                let expected = seq_scan(&store, &q, &params, SeqScanMode::Full, &mut stats);
                assert_eq!(
                    got.occurrence_set(),
                    expected.occurrence_set(),
                    "sparse={sparse} q={q:?}"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn repeated_appends_accumulate() {
        let dir = tmpdir("repeat");
        let initial = SequenceStore::from_values(vec![vec![2.0, 4.0, 6.0, 8.0]]);
        build_dir(&dir, &initial, true);
        for round in 0..3 {
            let extra =
                SequenceStore::from_values(vec![vec![2.0 + round as f64, 4.0, 6.0 - round as f64]]);
            append_to_index_dir(&dir, &extra).unwrap();
        }
        let (store, alphabet, cat) = load_corpus(&dir.join("corpus.wc")).unwrap();
        assert_eq!(store.len(), 4);
        let tree = DiskTree::open(&dir.join("index.wt"), cat, 32, 256).unwrap();
        let params = SearchParams::with_epsilon(0.5);
        let q = [4.0, 6.0];
        let (got, _) = sim_search(&tree, &alphabet, &store, &q, &params);
        let mut stats = SearchStats::default();
        let expected = seq_scan(&store, &q, &params, SeqScanMode::Full, &mut stats);
        assert_eq!(got.occurrence_set(), expected.occurrence_set());
        assert!(!got.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
