//! Paged file storage with per-page CRC and an LRU buffer pool.
//!
//! Files are a sequence of fixed-size pages; each page holds
//! [`PAGE_DATA`] payload bytes followed by a CRC-32 of that payload.
//! Callers address a contiguous *logical* byte space — the concatenation
//! of all payloads — and never see page boundaries, so records may span
//! pages freely.
//!
//! * [`PagedWriter`] writes the logical stream sequentially (buffered, one
//!   page at a time) and can patch already-written ranges at `finish`
//!   time (used to back-patch file headers once the root offset is
//!   known).
//! * [`PagedReader`] serves random reads through a [`LruCache`] of
//!   verified pages; a failed CRC surfaces as
//!   [`DiskError::CorruptPage`].

use std::path::Path;

use parking_lot::Mutex;

use crate::crc::crc32;
use crate::error::{DiskError, Result};
use crate::lru::LruCache;
use crate::vfs::{RealVfs, Vfs, VfsFile};

/// Physical page size in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Payload bytes per page (the tail 4 bytes hold the CRC).
pub const PAGE_DATA: usize = PAGE_SIZE - 4;

/// Sequential writer over the logical byte space.
pub struct PagedWriter {
    file: Box<dyn VfsFile>,
    /// Payload buffer of the page currently being filled.
    buf: Vec<u8>,
    /// Logical offset of the first byte of `buf`.
    page_base: u64,
}

impl PagedWriter {
    /// Creates (truncates) `path` and returns a writer positioned at
    /// logical offset 0.
    pub fn create(path: &Path) -> Result<Self> {
        Self::create_with(&RealVfs, path)
    }

    /// [`create`](Self::create) through an explicit [`Vfs`].
    pub fn create_with(vfs: &dyn Vfs, path: &Path) -> Result<Self> {
        let file = vfs.create(path)?;
        Ok(Self {
            file,
            buf: Vec::with_capacity(PAGE_DATA),
            page_base: 0,
        })
    }

    /// The logical offset the next write lands at.
    pub fn position(&self) -> u64 {
        self.page_base + self.buf.len() as u64
    }

    /// Appends `data` to the logical stream.
    pub fn write(&mut self, mut data: &[u8]) -> Result<()> {
        while !data.is_empty() {
            let room = PAGE_DATA - self.buf.len();
            let take = room.min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.buf.len() == PAGE_DATA {
                self.flush_page()?;
            }
        }
        Ok(())
    }

    fn flush_page(&mut self) -> Result<()> {
        // Pad the final (partial) page with zeros.
        let mut page = [0u8; PAGE_SIZE];
        page[..self.buf.len()].copy_from_slice(&self.buf);
        let crc = crc32(&page[..PAGE_DATA]);
        page[PAGE_DATA..].copy_from_slice(&crc.to_le_bytes());
        let physical = self.page_base / PAGE_DATA as u64 * PAGE_SIZE as u64;
        self.file.write_at(physical, &page)?;
        self.page_base += PAGE_DATA as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the trailing partial page and fsyncs, then applies
    /// `patches` — `(logical_offset, bytes)` pairs rewriting
    /// already-written ranges (page CRCs are recomputed). Returns the
    /// logical length of the stream.
    pub fn finish(mut self, patches: &[(u64, Vec<u8>)]) -> Result<u64> {
        let logical_len = self.position();
        if !self.buf.is_empty() {
            self.flush_page()?;
        }
        for (offset, bytes) in patches {
            assert!(
                offset + bytes.len() as u64 <= logical_len,
                "patch outside the written range"
            );
            patch(self.file.as_mut(), *offset, bytes)?;
        }
        self.file.sync()?;
        Ok(logical_len)
    }
}

/// Rewrites `bytes` at `logical_offset` in an already-written paged file,
/// recomputing affected page CRCs.
fn patch(file: &mut dyn VfsFile, logical_offset: u64, bytes: &[u8]) -> Result<()> {
    let mut written = 0usize;
    while written < bytes.len() {
        let logical = logical_offset + written as u64;
        let page_idx = logical / PAGE_DATA as u64;
        let in_page = (logical % PAGE_DATA as u64) as usize;
        let take = (PAGE_DATA - in_page).min(bytes.len() - written);
        let mut page = [0u8; PAGE_SIZE];
        file.read_at(page_idx * PAGE_SIZE as u64, &mut page)?;
        page[in_page..in_page + take].copy_from_slice(&bytes[written..written + take]);
        let crc = crc32(&page[..PAGE_DATA]);
        page[PAGE_DATA..].copy_from_slice(&crc.to_le_bytes());
        file.write_at(page_idx * PAGE_SIZE as u64, &page)?;
        written += take;
    }
    Ok(())
}

/// Counters describing a reader's I/O behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests that missed the buffer pool (each one is a disk
    /// page fetch).
    pub pages_read: u64,
    /// Page requests served from the buffer pool.
    pub cache_hits: u64,
}

impl IoStats {
    /// Buffer-pool hit rate in `[0, 1]` (0 when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.pages_read + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

struct ReaderInner {
    cache: LruCache<u64, Box<[u8]>>,
    /// Charged once per failed page CRC on the read path (noop until
    /// [`PagedReader::meter_crc_failures`] wires a registry counter).
    crc_fail: warptree_obs::Counter,
}

/// Random-access reader over the logical byte space with an LRU buffer
/// pool. Cheap to share: all mutability is behind a lock, so `&self`
/// methods suffice (concurrent queries share the pool).
pub struct PagedReader {
    file: Box<dyn VfsFile>,
    logical_len: u64,
    pages: u64,
    inner: Mutex<ReaderInner>,
}

impl PagedReader {
    /// Opens `path` with a buffer pool of `cache_pages` pages.
    pub fn open(path: &Path, cache_pages: usize) -> Result<Self> {
        Self::open_with(&RealVfs, path, cache_pages)
    }

    /// [`open`](Self::open) through an explicit [`Vfs`].
    pub fn open_with(vfs: &dyn Vfs, path: &Path, cache_pages: usize) -> Result<Self> {
        let file = vfs.open(path)?;
        let physical = file.len()?;
        if physical % PAGE_SIZE as u64 != 0 {
            return Err(DiskError::BadHeader(format!(
                "file size {physical} is not page-aligned"
            )));
        }
        let pages = physical / PAGE_SIZE as u64;
        Ok(Self {
            file,
            logical_len: pages * PAGE_DATA as u64,
            pages,
            inner: Mutex::new(ReaderInner {
                cache: LruCache::new(cache_pages),
                crc_fail: warptree_obs::Counter::noop(),
            }),
        })
    }

    /// Logical byte length (includes the final page's zero padding).
    pub fn logical_len(&self) -> u64 {
        self.logical_len
    }

    /// A snapshot of the I/O counters (derived from the buffer pool's
    /// hit/miss counters — there is no second set of plumbing).
    pub fn io_stats(&self) -> IoStats {
        let inner = self.inner.lock();
        IoStats {
            pages_read: inner.cache.misses(),
            cache_hits: inner.cache.hits(),
        }
    }

    /// Meters the buffer pool into `reg` under the given counter names
    /// (e.g. `disk.page_cache.hits` / `disk.page_cache.misses`).
    /// Multiple readers may share the same names; their counts sum.
    pub fn meter_cache(&self, reg: &warptree_obs::MetricsRegistry, hits: &str, misses: &str) {
        self.inner
            .lock()
            .cache
            .set_counters(reg.counter(hits), reg.counter(misses));
    }

    /// Meters read-path CRC failures into `reg` under `name` (e.g.
    /// `disk.read_crc_fail`). Multiple readers may share the name;
    /// their counts sum.
    pub fn meter_crc_failures(&self, reg: &warptree_obs::MetricsRegistry, name: &str) {
        self.inner.lock().crc_fail = reg.counter(name);
    }

    /// Number of physical pages in the file.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Re-reads page `page_idx` from disk and verifies its CRC,
    /// bypassing the buffer pool — the scrub/deep-verify primitive: a
    /// cached (already verified) page must not mask on-disk rot.
    pub fn verify_page(&self, page_idx: u64) -> Result<()> {
        if page_idx >= self.pages {
            return Err(DiskError::OutOfBounds {
                offset: page_idx * PAGE_DATA as u64,
                len: PAGE_DATA as u64,
                size: self.logical_len,
            });
        }
        let mut raw = vec![0u8; PAGE_SIZE];
        self.file.read_at(page_idx * PAGE_SIZE as u64, &mut raw)?;
        let stored = u32::from_le_bytes(raw[PAGE_DATA..].try_into().unwrap());
        if crc32(&raw[..PAGE_DATA]) != stored {
            self.inner.lock().crc_fail.incr();
            return Err(DiskError::CorruptPage { page: page_idx });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at `logical` into `buf`.
    pub fn read_exact_at(&self, logical: u64, buf: &mut [u8]) -> Result<()> {
        if logical + buf.len() as u64 > self.logical_len {
            return Err(DiskError::OutOfBounds {
                offset: logical,
                len: buf.len() as u64,
                size: self.logical_len,
            });
        }
        let mut done = 0usize;
        while done < buf.len() {
            let pos = logical + done as u64;
            let page_idx = pos / PAGE_DATA as u64;
            let in_page = (pos % PAGE_DATA as u64) as usize;
            let take = (PAGE_DATA - in_page).min(buf.len() - done);
            self.with_page(page_idx, |page| {
                buf[done..done + take].copy_from_slice(&page[in_page..in_page + take]);
            })?;
            done += take;
        }
        Ok(())
    }

    /// Runs `f` over the verified payload of page `page_idx`.
    fn with_page(&self, page_idx: u64, f: impl FnOnce(&[u8])) -> Result<()> {
        debug_assert!(page_idx < self.pages);
        let mut inner = self.inner.lock();
        if let Some(page) = inner.cache.get(&page_idx) {
            f(page);
            return Ok(());
        }
        let mut raw = vec![0u8; PAGE_SIZE];
        self.file.read_at(page_idx * PAGE_SIZE as u64, &mut raw)?;
        let stored = u32::from_le_bytes(raw[PAGE_DATA..].try_into().unwrap());
        if crc32(&raw[..PAGE_DATA]) != stored {
            inner.crc_fail.incr();
            return Err(DiskError::CorruptPage { page: page_idx });
        }
        raw.truncate(PAGE_DATA);
        let page: Box<[u8]> = raw.into_boxed_slice();
        f(&page);
        inner.cache.insert(page_idx, page);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("warptree-pager-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_small() {
        let path = tmp("small");
        let mut w = PagedWriter::create(&path).unwrap();
        w.write(b"hello ").unwrap();
        w.write(b"world").unwrap();
        assert_eq!(w.position(), 11);
        let len = w.finish(&[]).unwrap();
        assert_eq!(len, 11);
        let r = PagedReader::open(&path, 4).unwrap();
        let mut buf = [0u8; 11];
        r.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn roundtrip_spanning_pages() {
        let path = tmp("span");
        let data: Vec<u8> = (0..3 * PAGE_DATA + 1234)
            .map(|i| (i * 31 % 251) as u8)
            .collect();
        let mut w = PagedWriter::create(&path).unwrap();
        w.write(&data).unwrap();
        w.finish(&[]).unwrap();
        let r = PagedReader::open(&path, 2).unwrap();
        // Read a range crossing two page boundaries.
        let start = PAGE_DATA - 100;
        let mut buf = vec![0u8; PAGE_DATA + 200];
        r.read_exact_at(start as u64, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[start..start + buf.len()]);
        // And the whole stream.
        let mut all = vec![0u8; data.len()];
        r.read_exact_at(0, &mut all).unwrap();
        assert_eq!(all, data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn patch_rewrites_and_recrcs() {
        let path = tmp("patch");
        let mut w = PagedWriter::create(&path).unwrap();
        w.write(&vec![0u8; 2 * PAGE_DATA]).unwrap();
        // Patch across the page boundary.
        let off = (PAGE_DATA - 2) as u64;
        w.finish(&[(off, b"ABCD".to_vec())]).unwrap();
        let r = PagedReader::open(&path, 4).unwrap();
        let mut buf = [0u8; 4];
        r.read_exact_at(off, &mut buf).unwrap();
        assert_eq!(&buf, b"ABCD");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let path = tmp("corrupt");
        let mut w = PagedWriter::create(&path).unwrap();
        w.write(&[7u8; 100]).unwrap();
        w.finish(&[]).unwrap();
        // Flip a payload byte directly in the physical file.
        let mut raw = std::fs::read(&path).unwrap();
        raw[50] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let r = PagedReader::open(&path, 4).unwrap();
        let mut buf = [0u8; 100];
        match r.read_exact_at(0, &mut buf) {
            Err(DiskError::CorruptPage { page: 0 }) => {}
            other => panic!("expected CorruptPage, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let path = tmp("oob");
        let w = PagedWriter::create(&path).unwrap();
        w.finish(&[]).unwrap();
        let r = PagedReader::open(&path, 4).unwrap();
        let mut buf = [0u8; 1];
        assert!(matches!(
            r.read_exact_at(0, &mut buf),
            Err(DiskError::OutOfBounds { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cache_hits_accumulate() {
        let path = tmp("cache");
        let mut w = PagedWriter::create(&path).unwrap();
        w.write(&[1u8; 10]).unwrap();
        w.finish(&[]).unwrap();
        let r = PagedReader::open(&path, 4).unwrap();
        let mut buf = [0u8; 1];
        for _ in 0..5 {
            r.read_exact_at(3, &mut buf).unwrap();
        }
        let s = r.io_stats();
        assert_eq!(s.pages_read, 1);
        assert_eq!(s.cache_hits, 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn misaligned_file_rejected() {
        let path = tmp("misaligned");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 7]).unwrap();
        assert!(matches!(
            PagedReader::open(&path, 4),
            Err(DiskError::BadHeader(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
