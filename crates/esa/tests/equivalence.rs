//! Structural equivalence of the ESA and tree backends.
//!
//! The contract under test: on any categorized corpus, full or sparse,
//! the enhanced suffix array presents the *identical logical tree* as
//! the suffix-tree builders — same nodes in the same deterministic
//! child order, same edge labels, same per-node annotations, and the
//! same suffix-enumeration order. This is what makes merge tie-breaks
//! and parallel splits byte-stable across backends.

use proptest::prelude::*;
use std::sync::Arc;
use warptree_core::categorize::{CatStore, Symbol};
use warptree_core::search::IndexBackend;
use warptree_esa::EsaIndex;
use warptree_suffix::{build_full, build_full_naive, build_sparse};

/// A full deterministic traversal fingerprint of any backend: node
/// events in DFS child order (edge label + annotations) plus the exact
/// root suffix-enumeration order.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    /// Per node, in DFS order (children in `for_each_child` order):
    /// (edge label, subtree suffix count, max lead run, child count).
    nodes: Vec<(Vec<Symbol>, u64, u32, usize)>,
    /// `for_each_suffix_below(root)` in emission order.
    suffixes: Vec<(u32, u32, u32)>,
}

fn fingerprint<T: IndexBackend>(idx: &T) -> Fingerprint {
    let mut nodes = Vec::new();
    fn walk<T: IndexBackend>(
        idx: &T,
        n: T::Node,
        is_root: bool,
        out: &mut Vec<(Vec<Symbol>, u64, u32, usize)>,
    ) {
        let mut label = Vec::new();
        if !is_root {
            idx.edge_label(n, &mut label);
        }
        let mut kids = Vec::new();
        idx.for_each_child(n, &mut |c| kids.push(c));
        out.push((
            label,
            idx.suffix_count_below(n).expect("both backends count"),
            idx.max_lead_run(n),
            kids.len(),
        ));
        for c in kids {
            walk(idx, c, false, out);
        }
    }
    walk(idx, idx.root(), true, &mut nodes);
    let mut suffixes = Vec::new();
    idx.for_each_suffix_below(idx.root(), &mut |s, st, lead| suffixes.push((s.0, st, lead)));
    Fingerprint { nodes, suffixes }
}

/// Random categorized corpora: up to 5 sequences of up to 24 symbols
/// from small alphabets (small alphabets maximize shared prefixes and
/// runs — the structurally interesting cases).
fn corpus() -> impl Strategy<Value = (Vec<Vec<Symbol>>, u32)> {
    (1u32..4).prop_flat_map(|alpha| {
        (
            prop::collection::vec(prop::collection::vec(0..alpha, 1..24), 1..5),
            Just(alpha),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Full-index traversal is node-for-node identical to both tree
    /// builders: same DFS shape, labels, annotations, and the same
    /// suffix-enumeration order (the candidate-order contract).
    #[test]
    fn esa_traversal_matches_full_tree((seqs, alpha) in corpus()) {
        let cat = Arc::new(CatStore::from_symbols(seqs, alpha));
        let esa = EsaIndex::build(cat.clone(), false);
        esa.check_invariants();
        let tree = build_full(cat.clone());
        prop_assert_eq!(fingerprint(&esa), fingerprint(&tree));
        let naive = build_full_naive(cat);
        prop_assert_eq!(fingerprint(&esa), fingerprint(&naive));
        prop_assert_eq!(esa.suffix_count(), tree.suffix_count());
    }

    /// Sparse-index traversal matches the sparse tree the same way.
    #[test]
    fn esa_traversal_matches_sparse_tree((seqs, alpha) in corpus()) {
        let cat = Arc::new(CatStore::from_symbols(seqs, alpha));
        let esa = EsaIndex::build(cat.clone(), true);
        esa.check_invariants();
        prop_assert!(esa.is_sparse());
        let tree = build_sparse(cat);
        prop_assert_eq!(fingerprint(&esa), fingerprint(&tree));
    }

    /// Range builds agree with range-built trees (the segment path).
    #[test]
    fn esa_range_builds_match_range_trees((seqs, alpha) in corpus()) {
        let cut = seqs.len() / 2;
        let cat = Arc::new(CatStore::from_symbols(seqs, alpha));
        let n = cat.len();
        for (lo, hi) in [(0, cut), (cut, n)] {
            let esa = EsaIndex::build_range(cat.clone(), lo..hi, false);
            esa.check_invariants();
            let tree = warptree_suffix::build_full_range(cat.clone(), lo..hi);
            prop_assert_eq!(fingerprint(&esa), fingerprint(&tree));
        }
    }
}
