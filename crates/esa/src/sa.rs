//! Linear-time suffix-array and LCP-array construction.
//!
//! [`suffix_array`] is the skew (DC3) algorithm of Kärkkäinen & Sanders:
//! recursively sort the mod-1/mod-2 suffixes via radix-sorted triples,
//! derive the mod-0 order, and merge — O(n) over an integer alphabet.
//! [`lcp_array`] is Kasai's O(n) longest-common-prefix construction.
//!
//! Both operate on `u32` texts with every value `>= 1`; zero is reserved
//! internally as DC3's padding symbol.

/// Suffix array of `text` (all values `>= 1`): the start positions of
/// the suffixes of `text` in ascending lexicographic order.
pub fn suffix_array(text: &[u32]) -> Vec<u32> {
    let n = text.len();
    match n {
        0 => return Vec::new(),
        1 => return vec![0],
        _ => {}
    }
    debug_assert!(text.iter().all(|&c| c >= 1), "symbol 0 is DC3 padding");
    let mut s: Vec<usize> = text.iter().map(|&c| c as usize).collect();
    let k = *s.iter().max().unwrap();
    s.extend_from_slice(&[0, 0, 0]);
    let mut sa = vec![0usize; n + 3];
    skew(&s, &mut sa, n, k);
    sa[..n].iter().map(|&p| p as u32).collect()
}

/// One stable counting-sort pass: sorts the indices of `a` into `b` by
/// the key `r[a[i]]`, keys in `0..=k`.
fn radix_pass(a: &[usize], b: &mut [usize], r: &[usize], n: usize, k: usize) {
    let mut c = vec![0usize; k + 1];
    for &x in &a[..n] {
        c[r[x]] += 1;
    }
    let mut sum = 0;
    for ci in c.iter_mut() {
        let t = *ci;
        *ci = sum;
        sum += t;
    }
    for &x in &a[..n] {
        b[c[r[x]]] = x;
        c[r[x]] += 1;
    }
}

fn leq2(a1: usize, a2: usize, b1: usize, b2: usize) -> bool {
    a1 < b1 || (a1 == b1 && a2 <= b2)
}

fn leq3(a1: usize, a2: usize, a3: usize, b1: usize, b2: usize, b3: usize) -> bool {
    a1 < b1 || (a1 == b1 && leq2(a2, a3, b2, b3))
}

/// The recursive skew step. Requires `n >= 2`, `s[n] == s[n+1] ==
/// s[n+2] == 0`, and all of `s[..n]` in `1..=k`.
fn skew(s: &[usize], sa: &mut [usize], n: usize, k: usize) {
    let n0 = (n + 2) / 3;
    let n1 = (n + 1) / 3;
    let n2 = n / 3;
    // When n % 3 == 1 a dummy mod-1 suffix keeps the halves balanced.
    let n02 = n0 + n2;
    let mut s12 = vec![0usize; n02 + 3];
    let mut sa12 = vec![0usize; n02 + 3];
    let mut s0 = vec![0usize; n0];
    let mut sa0 = vec![0usize; n0];

    let mut j = 0;
    for i in 0..n + (n0 - n1) {
        if i % 3 != 0 {
            s12[j] = i;
            j += 1;
        }
    }

    // LSB-first radix sort of the mod-1/mod-2 triples.
    radix_pass(&s12, &mut sa12, &s[2..], n02, k);
    radix_pass(&sa12, &mut s12, &s[1..], n02, k);
    radix_pass(&s12, &mut sa12, s, n02, k);

    // Name the triples by rank.
    let mut name = 0usize;
    let (mut c0, mut c1, mut c2) = (usize::MAX, usize::MAX, usize::MAX);
    for i in 0..n02 {
        let p = sa12[i];
        if s[p] != c0 || s[p + 1] != c1 || s[p + 2] != c2 {
            name += 1;
            c0 = s[p];
            c1 = s[p + 1];
            c2 = s[p + 2];
        }
        if p % 3 == 1 {
            s12[p / 3] = name;
        } else {
            s12[p / 3 + n0] = name;
        }
    }

    if name < n02 {
        // Ranks collide: recurse on the half-length renamed string.
        skew(&s12, &mut sa12, n02, name);
        for i in 0..n02 {
            s12[sa12[i]] = i + 1;
        }
    } else {
        // Ranks are already unique: invert them directly.
        for i in 0..n02 {
            sa12[s12[i] - 1] = i;
        }
    }

    // Sort mod-0 suffixes by (first char, rank of following mod-1).
    j = 0;
    for i in 0..n02 {
        if sa12[i] < n0 {
            s0[j] = 3 * sa12[i];
            j += 1;
        }
    }
    radix_pass(&s0, &mut sa0, s, n0, k);

    // Merge the two sorted halves.
    let mut p = 0usize;
    let mut t = n0 - n1;
    let mut out = 0usize;
    let get_i = |t: usize, sa12: &[usize]| {
        if sa12[t] < n0 {
            sa12[t] * 3 + 1
        } else {
            (sa12[t] - n0) * 3 + 2
        }
    };
    while out < n {
        let i = get_i(t, &sa12);
        let j0 = sa0[p];
        let take12 = if sa12[t] < n0 {
            leq2(s[i], s12[sa12[t] + n0], s[j0], s12[j0 / 3])
        } else {
            leq3(
                s[i],
                s[i + 1],
                s12[sa12[t] - n0 + 1],
                s[j0],
                s[j0 + 1],
                s12[j0 / 3 + n0],
            )
        };
        if take12 {
            sa[out] = i;
            t += 1;
            out += 1;
            if t == n02 {
                while p < n0 {
                    sa[out] = sa0[p];
                    p += 1;
                    out += 1;
                }
            }
        } else {
            sa[out] = j0;
            p += 1;
            out += 1;
            if p == n0 {
                while t < n02 {
                    sa[out] = get_i(t, &sa12);
                    t += 1;
                    out += 1;
                }
            }
        }
    }
}

/// Kasai's algorithm: `lcp[i]` is the length of the longest common
/// prefix of the suffixes at `sa[i-1]` and `sa[i]` (`lcp[0] == 0`).
pub fn lcp_array(text: &[u32], sa: &[u32]) -> Vec<u32> {
    let n = sa.len();
    let mut rank = vec![0u32; n];
    for (i, &p) in sa.iter().enumerate() {
        rank[p as usize] = i as u32;
    }
    let mut lcp = vec![0u32; n];
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r == 0 {
            h = 0;
            continue;
        }
        let j = sa[r - 1] as usize;
        while i + h < n && j + h < n && text[i + h] == text[j + h] {
            h += 1;
        }
        lcp[r] = h as u32;
        h = h.saturating_sub(1);
    }
    lcp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sa(text: &[u32]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..text.len() as u32).collect();
        sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        sa
    }

    fn naive_lcp(text: &[u32], sa: &[u32]) -> Vec<u32> {
        let mut lcp = vec![0u32; sa.len()];
        for i in 1..sa.len() {
            let a = &text[sa[i - 1] as usize..];
            let b = &text[sa[i] as usize..];
            lcp[i] = a.iter().zip(b).take_while(|(x, y)| x == y).count() as u32;
        }
        lcp
    }

    #[test]
    fn dc3_matches_naive_on_edge_cases() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![5],
            vec![2, 1],
            vec![1, 2],
            vec![1, 1],
            vec![1, 1, 1, 1, 1],
            vec![3, 1, 4, 1, 5, 9, 2, 6],
            vec![2, 2, 1, 2, 2, 1, 2, 2, 1],
            vec![1, 2, 3, 1, 2, 3, 1, 2],
        ];
        for text in cases {
            assert_eq!(suffix_array(&text), naive_sa(&text), "text {text:?}");
        }
    }

    #[test]
    fn dc3_and_kasai_match_naive_on_pseudorandom_texts() {
        // xorshift-driven sweep: many lengths × small alphabets (small
        // alphabets maximize repeats, the structurally hard case).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in 0..48u64 {
            for alpha in 1..5u64 {
                let text: Vec<u32> =
                    (0..len).map(|_| 1 + (next() % alpha) as u32).collect();
                let sa = suffix_array(&text);
                assert_eq!(sa, naive_sa(&text), "text {text:?}");
                assert_eq!(lcp_array(&text, &sa), naive_lcp(&text, &sa), "text {text:?}");
            }
        }
    }

    #[test]
    fn kasai_on_known_text() {
        // "banana" over integers: b=3 a=1 n=4.
        let text = vec![3, 1, 4, 1, 4, 1];
        let sa = suffix_array(&text);
        assert_eq!(sa, vec![5, 3, 1, 0, 4, 2]);
        assert_eq!(lcp_array(&text, &sa), vec![0, 1, 3, 0, 0, 2]);
    }
}
