//! The categorized enhanced suffix array index: SA + LCP-interval tree
//! presenting exactly the suffix tree's logical shape.
//!
//! # Isomorphism to the suffix tree (DESIGN.md §18)
//!
//! The generalized suffix tree over categorized sequences is a
//! compacted trie of the stored suffixes with **no terminators**: a
//! suffix that is a proper prefix of another is *attached* at the
//! internal node its path ends on. The ESA reconstructs that exact tree
//! from sorted order alone:
//!
//! * Sequences are concatenated with per-sequence sentinels that are
//!   **smaller than every symbol** and **ascend with sequence id**, so
//!   (a) a suffix sorts immediately before every suffix it is a proper
//!   prefix of, and (b) equal suffix strings from different sequences
//!   tie-break in ascending sequence order — the suffix tree's
//!   insertion order.
//! * A *tree node* is an **LCP interval** `[lo, hi)` at depth `d`: a
//!   maximal run of SA entries sharing a length-`d` prefix with some
//!   adjacent LCP equal to `d`. Such an interval exists exactly where
//!   the tree has a branching point or an attachment point.
//! * An *edge label* is an **LCP delta**: the symbols of any member
//!   suffix between the parent's depth and the child's depth.
//! * *Attached suffixes* are the interval's leading entries whose
//!   logical length equals `d` (the sentinel sorts them first).
//!
//! Traversal therefore visits identical nodes, in identical child
//! order, with identical suffix enumeration order, as the tree backend
//! — which is what carries Theorem-1 pruning, `D_tw-lb`, and
//! byte-identical answers across backends.

use std::ops::Range;
use std::sync::Arc;

use warptree_core::categorize::{CatStore, Symbol};
use warptree_core::search::{BackendKind, IndexBackend};
use warptree_core::sequence::SeqId;

use crate::sa::{lcp_array, suffix_array};

/// High bit of a packed child / node tag: set for leaf entries
/// (payload = SA entry index), clear for interval records.
const LEAF_BIT: u32 = 1 << 31;

/// One stored suffix, in suffix-array order. Its logical length is
/// derivable from the corpus (`seq.len() - start`), so it is not stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The sequence this suffix belongs to.
    pub seq: SeqId,
    /// 0-based start offset within the sequence.
    pub start: u32,
    /// Length of the leading run of equal symbols (`N` in Definition 4).
    pub lead: u32,
}

/// One internal node of the LCP-interval tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalRec {
    /// First SA entry of the interval.
    pub lo: u32,
    /// One past the last SA entry of the interval.
    pub hi: u32,
    /// Node depth: length of the common prefix spelled by the path.
    pub depth: u32,
    /// Offset of this node's children in the packed child table.
    pub child_off: u32,
    /// Number of children.
    pub child_count: u32,
    /// Number of suffixes attached *at* this node (leading entries whose
    /// logical length equals `depth`).
    pub attached: u32,
    /// Maximum leading-run length among all suffixes in the interval.
    pub max_run: u32,
}

/// A borrowed view of the index's flat arrays, for serialization.
#[derive(Debug, Clone, Copy)]
pub struct RawEsa<'a> {
    /// SA entries in sorted order.
    pub entries: &'a [Entry],
    /// Interval records; `root` indexes into this.
    pub recs: &'a [IntervalRec],
    /// Packed children (high bit = leaf, payload = entry or rec index).
    pub children: &'a [u32],
    /// Index of the root record.
    pub root: u32,
    /// Whether only the §6.1 sparse subset is stored.
    pub sparse: bool,
}

/// Node handle: which logical node (interval record or single-entry
/// leaf) plus the depth its incoming edge starts at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EsaNode {
    tag: u32,
    edge_start: u32,
}

/// The in-memory categorized enhanced suffix array.
///
/// Implements [`IndexBackend`] with a traversal isomorphic to the
/// suffix-tree backends (see the module docs), so every filter
/// algorithm runs over it unchanged.
pub struct EsaIndex {
    cat: Arc<CatStore>,
    sparse: bool,
    entries: Vec<Entry>,
    recs: Vec<IntervalRec>,
    children: Vec<u32>,
    root: u32,
}

impl EsaIndex {
    /// Builds the index over every sequence of `cat`. Sparse mode stores
    /// only the paper's §6.1 suffix subset.
    pub fn build(cat: Arc<CatStore>, sparse: bool) -> Self {
        let n = cat.len();
        Self::build_range(cat, 0..n, sparse)
    }

    /// Builds the index over the sequences `range` (global sequence ids
    /// are preserved), e.g. one tail segment of a segmented directory.
    pub fn build_range(cat: Arc<CatStore>, range: Range<usize>, sparse: bool) -> Self {
        let (entries, lcp) = sorted_entries(&cat, range, sparse);
        let (recs, children, root) = build_intervals(&cat, &entries, &lcp);
        EsaIndex {
            cat,
            sparse,
            entries,
            recs,
            children,
            root,
        }
    }

    /// Reassembles an index from arrays produced by [`raw`](Self::raw)
    /// (the disk loader's path). The arrays are trusted; use
    /// [`check_invariants`](Self::check_invariants) to validate.
    pub fn from_raw(
        cat: Arc<CatStore>,
        sparse: bool,
        entries: Vec<Entry>,
        recs: Vec<IntervalRec>,
        children: Vec<u32>,
        root: u32,
    ) -> Self {
        EsaIndex {
            cat,
            sparse,
            entries,
            recs,
            children,
            root,
        }
    }

    /// Borrows the flat arrays for serialization.
    pub fn raw(&self) -> RawEsa<'_> {
        RawEsa {
            entries: &self.entries,
            recs: &self.recs,
            children: &self.children,
            root: self.root,
            sparse: self.sparse,
        }
    }

    /// The categorized corpus the index reads labels from.
    pub fn cat(&self) -> &Arc<CatStore> {
        &self.cat
    }

    /// Number of interval records (internal nodes).
    pub fn rec_count(&self) -> usize {
        self.recs.len()
    }

    /// Resident bytes of the index structure proper (arrays, not the
    /// shared corpus).
    pub fn resident_bytes(&self) -> u64 {
        (self.entries.len() * std::mem::size_of::<Entry>()
            + self.recs.len() * std::mem::size_of::<IntervalRec>()
            + self.children.len() * std::mem::size_of::<u32>()) as u64
    }

    /// Logical length of entry `i`'s suffix.
    fn entry_len(&self, i: u32) -> u32 {
        let e = self.entries[i as usize];
        self.cat.seq(e.seq).len() as u32 - e.start
    }

    /// Structural self-check for tests: interval nesting, child order,
    /// attachment placement, and run annotations.
    pub fn check_invariants(&self) {
        let root = &self.recs[self.root as usize];
        assert_eq!(root.depth, 0, "root must sit at depth 0");
        assert_eq!(root.lo, 0);
        assert_eq!(root.hi as usize, self.entries.len());
        for (ri, rec) in self.recs.iter().enumerate() {
            assert!(rec.lo <= rec.hi, "rec {ri} interval inverted");
            for a in 0..rec.attached {
                assert_eq!(
                    self.entry_len(rec.lo + a),
                    rec.depth,
                    "rec {ri}: attached entry length must equal node depth"
                );
            }
            let kids =
                &self.children[rec.child_off as usize..(rec.child_off + rec.child_count) as usize];
            let mut cursor = rec.lo + rec.attached;
            let mut prev_first: Option<Symbol> = None;
            for &kid in kids {
                let (lo, hi, first) = if kid & LEAF_BIT != 0 {
                    let e = kid & !LEAF_BIT;
                    let ent = self.entries[e as usize];
                    assert!(
                        self.entry_len(e) > rec.depth,
                        "rec {ri}: leaf child must extend past the node"
                    );
                    (e, e + 1, self.cat.seq(ent.seq)[(ent.start + rec.depth) as usize])
                } else {
                    let c = &self.recs[kid as usize];
                    assert!(c.depth > rec.depth, "rec {ri}: child depth must grow");
                    let ent = self.entries[c.lo as usize];
                    (c.lo, c.hi, self.cat.seq(ent.seq)[(ent.start + rec.depth) as usize])
                };
                assert_eq!(lo, cursor, "rec {ri}: children must tile the interval");
                cursor = hi;
                if let Some(p) = prev_first {
                    assert!(p < first, "rec {ri}: children must ascend by first symbol");
                }
                prev_first = Some(first);
            }
            assert_eq!(cursor, rec.hi, "rec {ri}: children must cover the interval");
            let mut max_run = 0;
            for i in rec.lo..rec.hi {
                max_run = max_run.max(self.entries[i as usize].lead);
            }
            assert_eq!(rec.max_run, max_run, "rec {ri}: max_run annotation wrong");
        }
    }
}

/// Builds the filtered, sorted entry list plus adjacent logical LCPs.
///
/// The text layout is `seq₀ · $₀ · seq₁ · $₁ · …` with sentinel
/// `$ₖ = 1 + k` and symbols remapped to `nseq + 1 + sym`: sentinels are
/// smaller than every symbol (shorter-prefix suffixes sort first) and
/// ascend with sequence order (equal strings tie-break seq-ascending,
/// matching the tree builders' insertion order). Sentinels are unique,
/// so Kasai LCPs never cross one — each adjacent LCP is exactly the
/// *logical* LCP, capped at both suffixes' logical lengths.
fn sorted_entries(
    cat: &CatStore,
    range: Range<usize>,
    sparse: bool,
) -> (Vec<Entry>, Vec<u32>) {
    let nseq = range.len();
    let sym_base = nseq as u32 + 1;
    let mut text = Vec::new();
    // Per text position: (global seq id, local offset, logical suffix
    // length); sentinel positions get length 0.
    let mut by_pos: Vec<(u32, u32, u32)> = Vec::new();
    for (k, gid) in range.clone().enumerate() {
        let syms = cat.seq(SeqId(gid as u32));
        let len = syms.len() as u32;
        for (off, &s) in syms.iter().enumerate() {
            text.push(sym_base + s);
            by_pos.push((gid as u32, off as u32, len - off as u32));
        }
        text.push(1 + k as u32);
        by_pos.push((gid as u32, len, 0));
    }
    let sa = suffix_array(&text);
    let lcp = lcp_array(&text, &sa);

    let mut entries = Vec::new();
    let mut out_lcp = Vec::new();
    let mut gap_min = u32::MAX;
    for (i, &p) in sa.iter().enumerate() {
        if i > 0 {
            gap_min = gap_min.min(lcp[i]);
        }
        let (gid, off, len) = by_pos[p as usize];
        if len == 0 {
            continue; // sentinel position
        }
        let seq = SeqId(gid);
        if sparse && !cat.is_stored_suffix(seq, off) {
            continue;
        }
        out_lcp.push(if entries.is_empty() { 0 } else { gap_min });
        entries.push(Entry {
            seq,
            start: off,
            lead: cat.run_len(seq, off),
        });
        gap_min = u32::MAX;
    }
    (entries, out_lcp)
}

/// An open interval node during bottom-up construction.
struct Frame {
    depth: u32,
    lo: u32,
    kids: Vec<u32>,
}

/// Builds the LCP-interval tree bottom-up in one O(n) stack pass,
/// peeling attached suffixes and packing children as each interval
/// closes.
fn build_intervals(
    cat: &CatStore,
    entries: &[Entry],
    lcp: &[u32],
) -> (Vec<IntervalRec>, Vec<u32>, u32) {
    let n = entries.len();
    let mut recs: Vec<IntervalRec> = Vec::new();
    let mut children: Vec<u32> = Vec::new();

    let entry_len =
        |i: u32| cat.seq(entries[i as usize].seq).len() as u32 - entries[i as usize].start;
    let finalize = |frame: Frame, hi: u32, recs: &mut Vec<IntervalRec>, children: &mut Vec<u32>| -> u32 {
        let mut attached = 0u32;
        for &kid in &frame.kids {
            if kid & LEAF_BIT != 0 && entry_len(kid & !LEAF_BIT) == frame.depth {
                attached += 1;
            } else {
                break;
            }
        }
        let mut max_run = 0u32;
        for &kid in &frame.kids {
            max_run = max_run.max(if kid & LEAF_BIT != 0 {
                entries[(kid & !LEAF_BIT) as usize].lead
            } else {
                recs[kid as usize].max_run
            });
        }
        let child_off = children.len() as u32;
        children.extend_from_slice(&frame.kids[attached as usize..]);
        recs.push(IntervalRec {
            lo: frame.lo,
            hi,
            depth: frame.depth,
            child_off,
            child_count: frame.kids.len() as u32 - attached,
            attached,
            max_run,
        });
        recs.len() as u32 - 1
    };

    let mut stack = vec![Frame {
        depth: 0,
        lo: 0,
        kids: Vec::new(),
    }];
    for i in 1..=n {
        let boundary = if i < n { lcp[i] } else { 0 };
        let mut pending = LEAF_BIT | (i as u32 - 1);
        let mut lo = i as u32 - 1;
        while stack.last().unwrap().depth > boundary {
            let mut frame = stack.pop().unwrap();
            frame.kids.push(pending);
            lo = frame.lo;
            pending = finalize(frame, i as u32, &mut recs, &mut children);
        }
        let top = stack.last_mut().unwrap();
        if top.depth == boundary {
            top.kids.push(pending);
        } else {
            stack.push(Frame {
                depth: boundary,
                lo,
                kids: vec![pending],
            });
        }
    }
    let root_frame = stack.pop().unwrap();
    debug_assert!(stack.is_empty(), "only the root survives the final pop");
    let root = finalize(root_frame, n as u32, &mut recs, &mut children);
    (recs, children, root)
}

impl IndexBackend for EsaIndex {
    type Node = EsaNode;

    fn root(&self) -> EsaNode {
        EsaNode {
            tag: self.root,
            edge_start: 0,
        }
    }

    fn for_each_child(&self, n: EsaNode, f: &mut dyn FnMut(EsaNode)) {
        if n.tag & LEAF_BIT != 0 {
            return;
        }
        let rec = self.recs[n.tag as usize];
        let kids = &self.children[rec.child_off as usize..(rec.child_off + rec.child_count) as usize];
        for &kid in kids {
            f(EsaNode {
                tag: kid,
                edge_start: rec.depth,
            });
        }
    }

    fn edge_label(&self, n: EsaNode, out: &mut Vec<Symbol>) {
        let (entry, depth) = if n.tag & LEAF_BIT != 0 {
            let e = n.tag & !LEAF_BIT;
            (self.entries[e as usize], self.entry_len(e))
        } else {
            let rec = self.recs[n.tag as usize];
            (self.entries[rec.lo as usize], rec.depth)
        };
        let syms = self.cat.seq(entry.seq);
        out.extend_from_slice(
            &syms[(entry.start + n.edge_start) as usize..(entry.start + depth) as usize],
        );
    }

    fn for_each_suffix_below(&self, n: EsaNode, f: &mut dyn FnMut(SeqId, u32, u32)) {
        // Same stack discipline as the tree backends: a node's attached
        // suffixes first, then its subtrees rightmost-first — candidate
        // order is part of the cross-backend equivalence contract.
        let mut stack = vec![n.tag];
        while let Some(tag) = stack.pop() {
            if tag & LEAF_BIT != 0 {
                let e = self.entries[(tag & !LEAF_BIT) as usize];
                f(e.seq, e.start, e.lead);
                continue;
            }
            let rec = self.recs[tag as usize];
            for i in rec.lo..rec.lo + rec.attached {
                let e = self.entries[i as usize];
                f(e.seq, e.start, e.lead);
            }
            stack.extend_from_slice(
                &self.children
                    [rec.child_off as usize..(rec.child_off + rec.child_count) as usize],
            );
        }
    }

    fn max_lead_run(&self, n: EsaNode) -> u32 {
        if n.tag & LEAF_BIT != 0 {
            self.entries[(n.tag & !LEAF_BIT) as usize].lead
        } else {
            self.recs[n.tag as usize].max_run
        }
    }

    fn is_sparse(&self) -> bool {
        self.sparse
    }

    fn suffix_count(&self) -> u64 {
        self.entries.len() as u64
    }

    fn backend_kind(&self) -> BackendKind {
        BackendKind::Esa
    }

    fn suffix_count_below(&self, n: EsaNode) -> Option<u64> {
        Some(if n.tag & LEAF_BIT != 0 {
            1
        } else {
            let rec = self.recs[n.tag as usize];
            (rec.hi - rec.lo) as u64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(seqs: Vec<Vec<Symbol>>, alpha: u32, sparse: bool) -> EsaIndex {
        EsaIndex::build(Arc::new(CatStore::from_symbols(seqs, alpha)), sparse)
    }

    #[test]
    fn full_index_stores_every_suffix() {
        let e = idx(vec![vec![0, 0, 1, 2], vec![1, 1, 1]], 3, false);
        e.check_invariants();
        assert_eq!(e.suffix_count(), 7);
        assert!(!e.is_sparse());
        assert_eq!(e.backend_kind(), BackendKind::Esa);
        let mut count = 0;
        e.for_each_suffix_below(e.root(), &mut |_, _, _| count += 1);
        assert_eq!(count, 7);
        assert_eq!(e.max_lead_run(e.root()), 3);
        assert_eq!(e.suffix_count_below(e.root()), Some(7));
    }

    #[test]
    fn sparse_index_stores_the_stored_subset() {
        let e = idx(vec![vec![0, 0, 0, 1]], 2, true);
        e.check_invariants();
        assert!(e.is_sparse());
        assert_eq!(e.suffix_count(), 2); // suffixes at 0 and 3
        assert_eq!(e.max_lead_run(e.root()), 3);
    }

    #[test]
    fn proper_prefix_suffixes_attach_at_internal_nodes() {
        // "aba": suffixes "aba", "ba", "a" — "a" is a proper prefix of
        // "aba", so the tree has node "a" {attached: (0,2)} with leaf
        // child "ba" holding (0,0).
        let e = idx(vec![vec![0, 1, 0]], 2, false);
        e.check_invariants();
        let mut kids = Vec::new();
        e.for_each_child(e.root(), &mut |n| kids.push(n));
        assert_eq!(kids.len(), 2, "root children: 'a…' and 'ba'");
        let mut label = Vec::new();
        e.edge_label(kids[0], &mut label);
        assert_eq!(label, vec![0], "node 'a' edge");
        // Node 'a' enumerates its attached suffix (0,2) before its
        // subtree.
        let mut seen = Vec::new();
        e.for_each_suffix_below(kids[0], &mut |s, st, _| seen.push((s.0, st)));
        assert_eq!(seen, vec![(0, 2), (0, 0)]);
    }

    #[test]
    fn duplicate_suffixes_order_by_sequence_id() {
        // Both sequences end with the suffix "b": the duplicates share
        // one node and enumerate in ascending sequence order.
        let e = idx(vec![vec![0, 1], vec![1]], 2, false);
        e.check_invariants();
        let mut kids = Vec::new();
        e.for_each_child(e.root(), &mut |n| kids.push(n));
        let mut label = Vec::new();
        e.edge_label(kids[1], &mut label);
        assert_eq!(label, vec![1]);
        let mut seen = Vec::new();
        e.for_each_suffix_below(kids[1], &mut |s, st, _| seen.push((s.0, st)));
        assert_eq!(seen, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn range_build_keeps_global_sequence_ids() {
        let cat = Arc::new(CatStore::from_symbols(
            vec![vec![0, 1], vec![1, 0], vec![0, 0]],
            2,
        ));
        let e = EsaIndex::build_range(cat, 1..3, false);
        e.check_invariants();
        assert_eq!(e.suffix_count(), 4);
        let mut seqs = Vec::new();
        e.for_each_suffix_below(e.root(), &mut |s, _, _| seqs.push(s.0));
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 1, 2, 2]);
    }

    #[test]
    fn raw_round_trip_rebuilds_the_same_index() {
        let e = idx(vec![vec![0, 0, 1, 2], vec![1, 1, 1]], 3, false);
        let raw = e.raw();
        let rebuilt = EsaIndex::from_raw(
            e.cat().clone(),
            raw.sparse,
            raw.entries.to_vec(),
            raw.recs.to_vec(),
            raw.children.to_vec(),
            raw.root,
        );
        rebuilt.check_invariants();
        assert_eq!(rebuilt.suffix_count(), e.suffix_count());
        assert!(rebuilt.resident_bytes() > 0);
    }

    #[test]
    fn empty_and_singleton_corpora() {
        let e = idx(vec![vec![0]], 1, false);
        e.check_invariants();
        assert_eq!(e.suffix_count(), 1);
        let mut kids = Vec::new();
        e.for_each_child(e.root(), &mut |n| kids.push(n));
        assert_eq!(kids.len(), 1);
    }
}
