//! `warptree-esa`: the enhanced-suffix-array index backend.
//!
//! A categorized enhanced suffix array — suffix array + LCP array +
//! child-interval table (Abouelhoda, Kurtz & Ohlebusch) — whose
//! LCP-interval tree presents the *same logical tree* as the
//! suffix-tree backends, node for node, child for child, suffix for
//! suffix. The core filter algorithms therefore run over it unchanged
//! through [`IndexBackend`](warptree_core::search::IndexBackend), with
//! byte-identical answers, at a fraction of the tree's resident memory
//! (three flat arrays instead of a node heap).
//!
//! Construction is O(n): the skew (DC3) suffix-array algorithm over the
//! sentinel-concatenated categorized corpus, Kasai's LCP pass, and one
//! bottom-up stack pass building the interval records. See
//! [`index`] for the isomorphism argument and DESIGN.md §18 for the
//! paper-concept mapping.

pub mod index;
pub mod sa;

pub use index::{Entry, EsaIndex, EsaNode, IntervalRec, RawEsa};
pub use sa::{lcp_array, suffix_array};
