//! Property-based validation of the suffix-tree builders.

use proptest::prelude::*;
use std::sync::Arc;
use warptree_core::categorize::{CatStore, Symbol};
use warptree_core::sequence::SeqId;
use warptree_suffix::{build_full, build_full_naive, build_sparse, compaction_ratio};

/// Random categorized corpora: up to 5 sequences of up to 24 symbols from
/// small alphabets (small alphabets maximize shared prefixes and runs —
/// the structurally interesting cases).
fn corpus() -> impl Strategy<Value = (Vec<Vec<Symbol>>, u32)> {
    (1u32..4).prop_flat_map(|alpha| {
        (
            prop::collection::vec(prop::collection::vec(0..alpha, 1..24), 1..5),
            Just(alpha),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Ukkonen and the naive builder produce structurally identical trees.
    #[test]
    fn ukkonen_equals_naive((seqs, alpha) in corpus()) {
        let cat = Arc::new(CatStore::from_symbols(seqs, alpha));
        let ukk = build_full(cat.clone());
        let naive = build_full_naive(cat);
        ukk.check_invariants();
        naive.check_invariants();
        prop_assert_eq!(ukk.canonical(), naive.canonical());
    }

    /// The full tree stores exactly one label per suffix, each locatable
    /// by walking its symbols from the root.
    #[test]
    fn full_tree_stores_every_suffix((seqs, alpha) in corpus()) {
        let cat = Arc::new(CatStore::from_symbols(seqs.clone(), alpha));
        let tree = build_full(cat);
        prop_assert_eq!(
            tree.suffix_count(),
            seqs.iter().map(|s| s.len() as u64).sum::<u64>()
        );
        for (i, s) in seqs.iter().enumerate() {
            for start in 0..s.len() {
                let loc = tree.locate(&s[start..]);
                prop_assert!(loc.is_some(), "suffix ({i},{start}) missing");
                let (node, rem) = loc.unwrap();
                prop_assert_eq!(rem, 0);
                prop_assert!(tree.node(node).suffixes.iter().any(
                    |l| l.seq == SeqId(i as u32) && l.start == start as u32
                ));
            }
        }
    }

    /// The sparse tree stores exactly the §6.1 subset, and its suffix
    /// count matches the compaction ratio.
    #[test]
    fn sparse_tree_stores_exact_subset((seqs, alpha) in corpus()) {
        let cat = Arc::new(CatStore::from_symbols(seqs.clone(), alpha));
        let tree = build_sparse(cat.clone());
        tree.check_invariants();
        let mut expected: Vec<(u32, u32)> = Vec::new();
        for (i, s) in seqs.iter().enumerate() {
            for start in 0..s.len() {
                if start == 0 || s[start] != s[start - 1] {
                    expected.push((i as u32, start as u32));
                }
            }
        }
        let mut actual: Vec<(u32, u32)> = tree
            .suffixes_below(warptree_suffix::ROOT)
            .iter()
            .map(|l| (l.seq.0, l.start))
            .collect();
        actual.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(actual, expected.clone());
        let total: u64 = seqs.iter().map(|s| s.len() as u64).sum();
        let r = compaction_ratio(&cat);
        prop_assert!(
            ((total - expected.len() as u64) as f64 / total as f64 - r).abs()
                < 1e-12
        );
    }

    /// Structural suffix-tree property: every unlabeled internal node
    /// branches, and node count is linear in input size.
    #[test]
    fn structural_bounds((seqs, alpha) in corpus()) {
        let cat = Arc::new(CatStore::from_symbols(seqs.clone(), alpha));
        let tree = build_full(cat);
        let total: u64 = seqs.iter().map(|s| s.len() as u64).sum();
        prop_assert!(tree.node_count() as u64 <= 2 * total + 1);
        for id in 1..tree.node_count() as u32 {
            let n = tree.node(id);
            if n.suffixes.is_empty() {
                prop_assert!(n.children.len() >= 2);
            }
        }
    }
}

/// Larger-alphabet, longer-sequence stress for the Ukkonen builder
/// (fewer cases, bigger inputs).
fn big_corpus() -> impl Strategy<Value = (Vec<Vec<Symbol>>, u32)> {
    (2u32..24).prop_flat_map(|alpha| {
        (
            prop::collection::vec(prop::collection::vec(0..alpha, 1..120), 1..4),
            Just(alpha),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ukkonen_equals_naive_large((seqs, alpha) in big_corpus()) {
        let cat = Arc::new(CatStore::from_symbols(seqs, alpha));
        let ukk = build_full(cat.clone());
        let naive = build_full_naive(cat);
        ukk.check_invariants();
        prop_assert_eq!(ukk.canonical(), naive.canonical());
    }

    /// Merging arbitrary splits of a corpus equals the direct build
    /// (exercises every merge-case combination at scale).
    #[test]
    fn arbitrary_splits_merge_equal((seqs, alpha) in big_corpus(), cut_seed in any::<u64>()) {
        let cat = Arc::new(CatStore::from_symbols(seqs.clone(), alpha));
        let cut = (cut_seed as usize) % (seqs.len() + 1);
        let left = warptree_suffix::build_full_range(cat.clone(), 0..cut);
        let right =
            warptree_suffix::build_full_range(cat.clone(), cut..seqs.len());
        // Merge IN MEMORY via the disk layer is covered elsewhere; here,
        // verify the range builders partition the suffix set exactly.
        prop_assert_eq!(
            left.suffix_count() + right.suffix_count(),
            cat.total_len()
        );
        left.check_invariants();
        right.check_invariants();
    }
}
