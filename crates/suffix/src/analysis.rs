//! Sequence-mining utilities on top of the suffix tree.
//!
//! The paper motivates the index with downstream mining: *"the
//! subsequences found by similarity searches can be used for
//! predictions, hypothesis testing, clustering and rule discovery"*
//! (§8). A generalized suffix tree answers several such questions
//! directly — these helpers expose them over full (non-sparse) trees:
//!
//! * [`longest_repeated`] — the longest categorized subsequence that
//!   occurs at least `min_count` times;
//! * [`top_motifs`] — the most frequent categorized subsequences of a
//!   given length (shape motifs);
//! * [`distinct_subsequence_count`] — how many distinct categorized
//!   subsequences the database contains (the classic Σ-label-length
//!   suffix-tree identity).

use warptree_core::categorize::Symbol;
use warptree_core::sequence::SeqId;

use crate::tree::{NodeId, SuffixTree, ROOT};

/// A repeated categorized subsequence and where it occurs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Motif {
    /// The motif's symbol string.
    pub symbols: Vec<Symbol>,
    /// Number of occurrences in the database.
    pub count: u64,
    /// Occurrence positions `(seq, start)`.
    pub occurrences: Vec<(SeqId, u32)>,
}

fn assert_analyzable(tree: &SuffixTree) {
    assert!(
        !tree.is_sparse() && tree.depth_limit().is_none(),
        "analysis requires a full, untruncated suffix tree"
    );
    assert!(tree.is_finalized(), "finalize() must run before analysis");
}

/// The longest categorized subsequence occurring at least `min_count`
/// (≥ 2) times, with its occurrences. Ties resolve to the
/// lexicographically smallest traversal. Returns `None` when nothing
/// repeats.
pub fn longest_repeated(tree: &SuffixTree, min_count: u64) -> Option<Motif> {
    assert_analyzable(tree);
    let min_count = min_count.max(2);
    // Deepest (by symbol depth) position whose subtree holds >= min_count
    // suffixes. Internal positions inherit the node's suffix_count, and
    // any prefix of an edge has the same count as the edge's child node,
    // so it suffices to inspect nodes (full edges).
    let mut best: Option<(usize, NodeId)> = None;
    let mut stack: Vec<(NodeId, usize)> = vec![(ROOT, 0)];
    while let Some((n, depth)) = stack.pop() {
        for &c in &tree.node(n).children {
            let child = tree.node(c);
            if child.suffix_count < min_count {
                continue;
            }
            let cdepth = depth + child.label.len as usize;
            if best.is_none_or(|(d, _)| cdepth > d) {
                best = Some((cdepth, c));
            }
            stack.push((c, cdepth));
        }
    }
    let (_, node) = best?;
    let symbols = path_symbols(tree, node);
    let occurrences = occurrences_below(tree, node);
    Some(Motif {
        count: occurrences.len() as u64,
        symbols,
        occurrences,
    })
}

/// The `k` most frequent categorized subsequences of exactly `len`
/// symbols, ordered by descending count (ties by symbol string).
///
/// ```
/// use std::sync::Arc;
/// use warptree_core::categorize::CatStore;
/// use warptree_suffix::{build_full, top_motifs};
/// // "banana" (b=0, a=1, n=2): the most frequent pair is "an".
/// let cat = Arc::new(CatStore::from_symbols(vec![vec![0, 1, 2, 1, 2, 1]], 3));
/// let tree = build_full(cat);
/// let motifs = top_motifs(&tree, 2, 1);
/// assert_eq!(motifs[0].symbols, vec![1, 2]);
/// assert_eq!(motifs[0].count, 2);
/// ```
pub fn top_motifs(tree: &SuffixTree, len: u32, k: usize) -> Vec<Motif> {
    assert_analyzable(tree);
    assert!(len >= 1);
    // Every distinct length-`len` subsequence is a unique depth-`len`
    // position in the tree; its count is the subtree's suffix count.
    let mut found: Vec<(u64, Vec<Symbol>, NodeId)> = Vec::new();
    let mut stack: Vec<(NodeId, u32)> = vec![(ROOT, 0)];
    while let Some((n, depth)) = stack.pop() {
        for &c in &tree.node(n).children {
            let child = tree.node(c);
            let cdepth = depth + child.label.len;
            if cdepth >= len {
                // The depth-`len` prefix of this edge's path.
                let mut symbols = path_symbols(tree, c);
                symbols.truncate(len as usize);
                found.push((child.suffix_count, symbols, c));
            } else {
                stack.push((c, cdepth));
            }
        }
    }
    found.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    found
        .into_iter()
        .take(k)
        .map(|(count, symbols, node)| {
            let mut occurrences = occurrences_below(tree, node);
            occurrences.sort_unstable_by_key(|&(s, p)| (s, p));
            Motif {
                symbols,
                count,
                occurrences,
            }
        })
        .collect()
}

/// Number of distinct categorized subsequences in the database — the
/// classic suffix-tree identity: the sum of all edge-label lengths.
pub fn distinct_subsequence_count(tree: &SuffixTree) -> u64 {
    assert_analyzable(tree);
    (0..tree.node_count() as NodeId)
        .map(|id| tree.node(id).label.len as u64)
        .sum()
}

/// Concatenated edge labels from the root to `node`.
fn path_symbols(tree: &SuffixTree, node: NodeId) -> Vec<Symbol> {
    // Parent pointers are not stored; rebuild by walking down with
    // locate-style search using any suffix below.
    let below = tree.suffixes_below(node);
    let probe = below.first().expect("non-empty subtree");
    let full = tree.cat().seq(probe.seq);
    // The path is a prefix of the probe suffix; its length is the symbol
    // depth of `node`, recovered by walking from the root.
    let mut depth = 0usize;
    let mut cur = ROOT;
    'walk: while cur != node {
        let next_sym = full[probe.start as usize + depth];
        let child = tree
            .child_by_symbol(cur, next_sym)
            .expect("path must exist");
        depth += tree.node(child).label.len as usize;
        cur = child;
        if depth > full.len() {
            break 'walk;
        }
    }
    full[probe.start as usize..probe.start as usize + depth].to_vec()
}

/// All `(seq, start)` occurrences of the path ending at `node`.
fn occurrences_below(tree: &SuffixTree, node: NodeId) -> Vec<(SeqId, u32)> {
    tree.suffixes_below(node)
        .iter()
        .map(|l| (l.seq, l.start))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_full_naive;
    use crate::ukkonen::build_full;
    use std::collections::HashMap;
    use std::sync::Arc;
    use warptree_core::categorize::CatStore;

    fn cat(seqs: Vec<Vec<Symbol>>, alpha: u32) -> Arc<CatStore> {
        Arc::new(CatStore::from_symbols(seqs, alpha))
    }

    /// Brute-force counts of all subsequences of a given length.
    fn brute_counts(seqs: &[Vec<Symbol>], len: usize) -> HashMap<Vec<Symbol>, u64> {
        let mut m = HashMap::new();
        for s in seqs {
            for w in s.windows(len) {
                *m.entry(w.to_vec()).or_insert(0) += 1;
            }
        }
        m
    }

    #[test]
    fn longest_repeated_banana() {
        // banana: b=0 a=1 n=2; longest repeat is "ana".
        let c = cat(vec![vec![0, 1, 2, 1, 2, 1]], 3);
        let tree = build_full(c);
        let motif = longest_repeated(&tree, 2).expect("repeats exist");
        assert_eq!(motif.symbols, vec![1, 2, 1]);
        assert_eq!(motif.count, 2);
        let mut starts: Vec<u32> = motif.occurrences.iter().map(|&(_, p)| p).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![1, 3]);
    }

    #[test]
    fn longest_repeated_across_sequences() {
        let c = cat(vec![vec![0, 1, 2, 3], vec![9 % 4, 1, 2, 3]], 4);
        let tree = build_full(c);
        let motif = longest_repeated(&tree, 2).unwrap();
        assert_eq!(motif.symbols, vec![1, 2, 3]);
        assert_eq!(motif.count, 2);
    }

    #[test]
    fn no_repeats_returns_none() {
        let c = cat(vec![vec![0, 1, 2, 3]], 4);
        let tree = build_full(c);
        assert!(longest_repeated(&tree, 2).is_none());
    }

    #[test]
    fn top_motifs_match_brute_force() {
        let seqs: Vec<Vec<Symbol>> = vec![
            vec![0, 1, 0, 1, 2, 0, 1, 0],
            vec![1, 0, 1, 2, 2, 0],
            vec![2, 0, 1, 0, 1],
        ];
        let c = cat(seqs.clone(), 3);
        let tree = build_full(c);
        for len in 1..=4usize {
            let brute = brute_counts(&seqs, len);
            let motifs = top_motifs(&tree, len as u32, 100);
            // Same number of distinct subsequences of this length.
            assert_eq!(motifs.len(), brute.len(), "len {len}");
            for m in &motifs {
                assert_eq!(
                    m.count, brute[&m.symbols],
                    "count mismatch for {:?}",
                    m.symbols
                );
                assert_eq!(m.occurrences.len() as u64, m.count);
                // Every reported occurrence actually spells the motif.
                for &(seq, start) in &m.occurrences {
                    let s = &seqs[seq.0 as usize];
                    assert_eq!(&s[start as usize..start as usize + len], &m.symbols[..]);
                }
            }
            // Descending counts.
            for w in motifs.windows(2) {
                assert!(w[0].count >= w[1].count);
            }
        }
    }

    #[test]
    fn distinct_count_matches_brute_force() {
        let seqs: Vec<Vec<Symbol>> = vec![vec![0, 1, 0, 1, 2], vec![1, 1, 0]];
        let c = cat(seqs.clone(), 3);
        for tree in [build_full(c.clone()), build_full_naive(c)] {
            let mut distinct = std::collections::HashSet::<Vec<Symbol>>::new();
            for s in &seqs {
                for start in 0..s.len() {
                    for end in start + 1..=s.len() {
                        distinct.insert(s[start..end].to_vec());
                    }
                }
            }
            assert_eq!(distinct_subsequence_count(&tree), distinct.len() as u64);
        }
    }

    #[test]
    #[should_panic(expected = "full, untruncated")]
    fn sparse_tree_rejected() {
        let c = cat(vec![vec![0, 0, 1]], 2);
        let tree = crate::build::build_sparse(c);
        let _ = longest_repeated(&tree, 2);
    }
}
