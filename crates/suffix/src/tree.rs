//! The in-memory generalized suffix tree over categorized sequences.
//!
//! Nodes live in a flat arena indexed by [`NodeId`]. Edge labels are
//! references `(seq, start, len)` into the shared [`CatStore`] — the tree
//! never copies symbol data. Stored suffixes are recorded as
//! [`SuffixLabel`]s attached to the node their path ends at; in a sparse
//! tree (paper §6) a suffix label may sit on an internal node when the
//! suffix is a prefix of another stored suffix.
//!
//! After construction, [`SuffixTree::finalize`] computes the per-node
//! annotations the search algorithms need: the number of stored suffixes
//! below each node and the maximum leading-run length below (Definition 4
//! of the paper).

use std::sync::Arc;
use warptree_core::categorize::{CatStore, Symbol};
use warptree_core::sequence::SeqId;

/// Index of a node in the tree arena.
pub type NodeId = u32;

/// The root is always node 0.
pub const ROOT: NodeId = 0;

/// A reference to a symbol range of a categorized sequence — an edge
/// label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelRef {
    /// Sequence the label symbols come from.
    pub seq: SeqId,
    /// 0-based offset of the first label symbol.
    pub start: u32,
    /// Number of symbols.
    pub len: u32,
}

impl LabelRef {
    /// An empty label (used for the root).
    pub const EMPTY: LabelRef = LabelRef {
        seq: SeqId(0),
        start: 0,
        len: 0,
    };
}

/// One stored suffix: `CS_seq[start..]`, with the length of its leading
/// run of equal symbols (`N` in Definition 4) cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuffixLabel {
    /// Sequence the suffix belongs to.
    pub seq: SeqId,
    /// 0-based offset where the suffix starts.
    pub start: u32,
    /// Leading-run length of the suffix.
    pub lead_run: u32,
}

/// One tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Label of the edge entering this node (empty for the root).
    pub label: LabelRef,
    /// First symbol of `label` (cached; undefined for the root).
    pub first: Symbol,
    /// Children, kept sorted by their `first` symbol.
    pub children: Vec<NodeId>,
    /// Stored suffixes whose path ends exactly at this node.
    pub suffixes: Vec<SuffixLabel>,
    /// Annotation: stored suffixes at or below this node.
    pub suffix_count: u64,
    /// Annotation: maximum `lead_run` among stored suffixes at or below.
    pub max_lead_run: u32,
}

impl Node {
    fn new(label: LabelRef, first: Symbol) -> Self {
        Self {
            label,
            first,
            children: Vec::new(),
            suffixes: Vec::new(),
            suffix_count: 0,
            max_lead_run: 0,
        }
    }
}

/// Canonical structural form of a tree: sorted `(path, suffix labels)`
/// entries for every label-bearing node (see [`SuffixTree::canonical`]).
pub type CanonicalForm = Vec<(Vec<Symbol>, Vec<(u32, u32)>)>;

/// A generalized (optionally sparse) suffix tree over a [`CatStore`].
#[derive(Debug, Clone)]
pub struct SuffixTree {
    nodes: Vec<Node>,
    cat: Arc<CatStore>,
    sparse: bool,
    finalized: bool,
    /// When set, only suffix *prefixes* supporting answers up to this
    /// length are stored (paper §8); queries must bound their answer
    /// length accordingly.
    depth_limit: Option<u32>,
}

impl SuffixTree {
    /// Creates an empty tree (just a root) over `cat`.
    pub fn empty(cat: Arc<CatStore>, sparse: bool) -> Self {
        Self {
            nodes: vec![Node::new(LabelRef::EMPTY, 0)],
            cat: cat.clone(),
            sparse,
            finalized: false,
            depth_limit: None,
        }
    }

    /// The answer-length cap of a truncated tree (paper §8), when set.
    #[inline]
    pub fn depth_limit(&self) -> Option<u32> {
        self.depth_limit
    }

    /// Marks this tree as truncated to answers of at most `limit`
    /// symbols. Low-level construction API (used by the §8 builders and
    /// by disk-tree materialization).
    pub fn set_depth_limit(&mut self, limit: u32) {
        self.depth_limit = Some(limit);
    }

    /// The categorized store the labels reference.
    #[inline]
    pub fn cat(&self) -> &Arc<CatStore> {
        &self.cat
    }

    /// `true` when this tree stores only the §6.1 suffix subset.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        self.sparse
    }

    /// Number of nodes, including the root.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable node access.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Mutable node access. Low-level construction API: callers that
    /// mutate nodes directly must re-run [`finalize`](Self::finalize)
    /// and may use [`check_invariants`](Self::check_invariants) to
    /// validate the result.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    /// The symbols of a label.
    #[inline]
    pub fn label_symbols(&self, label: LabelRef) -> &[Symbol] {
        let s = self.cat.seq(label.seq);
        &s[label.start as usize..(label.start + label.len) as usize]
    }

    /// Allocates a node, returning its id. Low-level construction API.
    pub fn alloc(&mut self, label: LabelRef) -> NodeId {
        assert!(self.nodes.len() < u32::MAX as usize, "tree is full");
        let first = if label.len == 0 {
            0
        } else {
            self.cat.seq(label.seq)[label.start as usize]
        };
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Node::new(label, first));
        id
    }

    /// Inserts `child` into `parent`'s sorted child list. Low-level
    /// construction API.
    pub fn attach(&mut self, parent: NodeId, child: NodeId) {
        let first = self.nodes[child as usize].first;
        let children = &self.nodes[parent as usize].children;
        let pos = children
            .binary_search_by_key(&first, |&c| self.nodes[c as usize].first)
            .unwrap_err();
        self.nodes[parent as usize].children.insert(pos, child);
    }

    /// Replaces `old` with `new` in `parent`'s child list (edge split).
    pub(crate) fn replace_child(&mut self, parent: NodeId, old: NodeId, new: NodeId) {
        let children = &mut self.nodes[parent as usize].children;
        let pos = children
            .iter()
            .position(|&c| c == old)
            .expect("old child present");
        children[pos] = new;
    }

    /// The child of `n` whose edge starts with `sym`, if any.
    pub fn child_by_symbol(&self, n: NodeId, sym: Symbol) -> Option<NodeId> {
        let children = &self.nodes[n as usize].children;
        children
            .binary_search_by_key(&sym, |&c| self.nodes[c as usize].first)
            .ok()
            .map(|i| children[i])
    }

    /// Total number of stored suffixes.
    pub fn suffix_count(&self) -> u64 {
        if self.finalized {
            self.nodes[ROOT as usize].suffix_count
        } else {
            self.nodes.iter().map(|n| n.suffixes.len() as u64).sum()
        }
    }

    /// Computes the per-node annotations (`suffix_count`, `max_lead_run`)
    /// bottom-up. Must be called after construction and before search.
    pub fn finalize(&mut self) {
        // Iterative post-order to stay safe on very deep trees.
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![ROOT];
        while let Some(n) = stack.pop() {
            order.push(n);
            stack.extend_from_slice(&self.nodes[n as usize].children);
        }
        for &n in order.iter().rev() {
            let node = &self.nodes[n as usize];
            let mut count = node.suffixes.len() as u64;
            let mut run = node.suffixes.iter().map(|s| s.lead_run).max().unwrap_or(0);
            for &c in &self.nodes[n as usize].children {
                let child = &self.nodes[c as usize];
                count += child.suffix_count;
                run = run.max(child.max_lead_run);
            }
            let node = &mut self.nodes[n as usize];
            node.suffix_count = count;
            node.max_lead_run = run;
        }
        self.finalized = true;
    }

    /// `true` once [`finalize`](Self::finalize) has run.
    #[inline]
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Depth statistics `(max_node_depth, max_symbol_depth)`.
    pub fn depth_stats(&self) -> (u32, u32) {
        let mut max_nodes = 0;
        let mut max_symbols = 0;
        let mut stack = vec![(ROOT, 0u32, 0u32)];
        while let Some((n, nd, sd)) = stack.pop() {
            max_nodes = max_nodes.max(nd);
            max_symbols = max_symbols.max(sd);
            for &c in &self.nodes[n as usize].children {
                let cl = self.nodes[c as usize].label.len;
                stack.push((c, nd + 1, sd + cl));
            }
        }
        (max_nodes, max_symbols)
    }

    /// Estimated in-memory footprint in bytes (nodes, child lists, suffix
    /// labels; the shared `CatStore` is excluded).
    pub fn mem_size_estimate(&self) -> u64 {
        let mut size = (self.nodes.len() * std::mem::size_of::<Node>()) as u64;
        for n in &self.nodes {
            size += (n.children.len() * std::mem::size_of::<NodeId>()) as u64;
            size += (n.suffixes.len() * std::mem::size_of::<SuffixLabel>()) as u64;
        }
        size
    }

    /// Follows `path` from the root, returning the node reached when the
    /// whole path matches a root-to-node label concatenation exactly
    /// (classic suffix-tree lookup; the end may fall inside an edge, in
    /// which case the edge's child node is returned along with the number
    /// of unconsumed label symbols).
    pub fn locate(&self, path: &[Symbol]) -> Option<(NodeId, u32)> {
        let mut node = ROOT;
        let mut i = 0usize;
        while i < path.len() {
            let child = self.child_by_symbol(node, path[i])?;
            let label = self.label_symbols(self.node(child).label);
            let take = label.len().min(path.len() - i);
            if label[..take] != path[i..i + take] {
                return None;
            }
            i += take;
            if take < label.len() {
                return Some((child, (label.len() - take) as u32));
            }
            node = child;
        }
        Some((node, 0))
    }

    /// All occurrences of an exact symbol pattern: classic suffix-tree
    /// lookup in `O(|pattern| log σ + occurrences)`. Returns `(seq,
    /// start)` pairs, sorted. Over a full tree this is every exact
    /// occurrence; over a sparse tree, only those at stored suffixes.
    pub fn find_occurrences(&self, pattern: &[Symbol]) -> Vec<(SeqId, u32)> {
        let Some((node, _)) = self.locate(pattern) else {
            return Vec::new();
        };
        let mut out: Vec<(SeqId, u32)> = self
            .suffixes_below(node)
            .iter()
            .map(|l| (l.seq, l.start))
            .collect();
        out.sort_unstable();
        out
    }

    /// Collects every stored suffix at or below `n`.
    pub fn suffixes_below(&self, n: NodeId) -> Vec<SuffixLabel> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            let node = &self.nodes[x as usize];
            out.extend_from_slice(&node.suffixes);
            stack.extend_from_slice(&node.children);
        }
        out
    }

    /// Verifies structural invariants, panicking with a description on
    /// violation. Used by tests and available to callers after custom
    /// manipulation.
    ///
    /// Checks: child ordering and first-symbol consistency, label
    /// validity, every stored suffix spelled by its root path, and (for
    /// non-sparse finalized trees) annotation consistency.
    pub fn check_invariants(&self) {
        let mut stack: Vec<(NodeId, Vec<Symbol>)> = vec![(ROOT, Vec::new())];
        while let Some((n, path)) = stack.pop() {
            let node = &self.nodes[n as usize];
            if n != ROOT {
                assert!(node.label.len > 0, "non-root node with empty label");
                let syms = self.label_symbols(node.label);
                assert_eq!(syms[0], node.first, "cached first symbol stale");
            }
            let mut prev: Option<Symbol> = None;
            for &c in &node.children {
                let cf = self.nodes[c as usize].first;
                if let Some(p) = prev {
                    assert!(p < cf, "children unsorted or duplicate symbol");
                }
                prev = Some(cf);
            }
            for s in &node.suffixes {
                let full = self.cat.seq(s.seq);
                let suffix = &full[s.start as usize..];
                assert!(
                    path.len() <= suffix.len(),
                    "suffix label path outruns its suffix"
                );
                assert_eq!(
                    &path[..],
                    &suffix[..path.len()],
                    "suffix label path mismatch"
                );
                if self.depth_limit.is_none() {
                    assert_eq!(
                        path.len(),
                        suffix.len(),
                        "suffix label ends before/after its node"
                    );
                }
                assert_eq!(
                    s.lead_run,
                    self.cat.run_len(s.seq, s.start),
                    "stale lead_run"
                );
            }
            if self.finalized {
                let below = self.suffixes_below(n);
                assert_eq!(
                    node.suffix_count,
                    below.len() as u64,
                    "suffix_count annotation wrong"
                );
                let run = below.iter().map(|s| s.lead_run).max().unwrap_or(0);
                assert_eq!(node.max_lead_run, run, "max_lead_run annotation wrong");
            }
            for &c in &node.children {
                let mut cpath = path.clone();
                cpath.extend_from_slice(self.label_symbols(self.nodes[c as usize].label));
                stack.push((c, cpath));
            }
        }
    }

    /// Canonical structural form: a sorted list of
    /// `(path, sorted suffix labels)` for every node holding labels.
    /// Two trees over the same data are equivalent iff their canonical
    /// forms match — used to compare the Ukkonen and naive builders.
    pub fn canonical(&self) -> CanonicalForm {
        let mut out = Vec::new();
        let mut stack: Vec<(NodeId, Vec<Symbol>)> = vec![(ROOT, Vec::new())];
        while let Some((n, path)) = stack.pop() {
            let node = &self.nodes[n as usize];
            if !node.suffixes.is_empty() {
                let mut labels: Vec<(u32, u32)> =
                    node.suffixes.iter().map(|s| (s.seq.0, s.start)).collect();
                labels.sort_unstable();
                out.push((path.clone(), labels));
            }
            for &c in &node.children {
                let mut cpath = path.clone();
                cpath.extend_from_slice(self.label_symbols(self.nodes[c as usize].label));
                stack.push((c, cpath));
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat(seqs: Vec<Vec<Symbol>>, alpha: u32) -> Arc<CatStore> {
        Arc::new(CatStore::from_symbols(seqs, alpha))
    }

    #[test]
    fn empty_tree_has_root_only() {
        let t = SuffixTree::empty(cat(vec![vec![0, 1]], 2), false);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.suffix_count(), 0);
        assert!(!t.is_sparse());
        t.check_invariants();
    }

    #[test]
    fn alloc_attach_and_lookup() {
        let c = cat(vec![vec![0, 1, 2]], 3);
        let mut t = SuffixTree::empty(c, false);
        let a = t.alloc(LabelRef {
            seq: SeqId(0),
            start: 1,
            len: 2,
        }); // label <1,2>
        t.attach(ROOT, a);
        let b = t.alloc(LabelRef {
            seq: SeqId(0),
            start: 0,
            len: 1,
        }); // label <0>
        t.attach(ROOT, b);
        // Children sorted by first symbol: <0> before <1,2>.
        assert_eq!(t.node(ROOT).children, vec![b, a]);
        assert_eq!(t.child_by_symbol(ROOT, 1), Some(a));
        assert_eq!(t.child_by_symbol(ROOT, 2), None);
        assert_eq!(t.label_symbols(t.node(a).label), &[1, 2]);
    }

    #[test]
    fn finalize_computes_annotations() {
        let c = cat(vec![vec![0, 0, 1]], 2);
        let mut t = SuffixTree::empty(c.clone(), false);
        let a = t.alloc(LabelRef {
            seq: SeqId(0),
            start: 0,
            len: 3,
        });
        t.attach(ROOT, a);
        t.node_mut(a).suffixes.push(SuffixLabel {
            seq: SeqId(0),
            start: 0,
            lead_run: 2,
        });
        let b = t.alloc(LabelRef {
            seq: SeqId(0),
            start: 2,
            len: 1,
        });
        t.attach(ROOT, b);
        t.node_mut(b).suffixes.push(SuffixLabel {
            seq: SeqId(0),
            start: 2,
            lead_run: 1,
        });
        t.finalize();
        assert_eq!(t.node(ROOT).suffix_count, 2);
        assert_eq!(t.node(ROOT).max_lead_run, 2);
        assert_eq!(t.node(a).suffix_count, 1);
        assert_eq!(t.node(b).max_lead_run, 1);
        assert_eq!(t.suffix_count(), 2);
        t.check_invariants();
    }

    #[test]
    fn find_occurrences_exact() {
        // banana over symbols b=0 a=1 n=2, via the naive builder.
        let c = cat(vec![vec![0, 1, 2, 1, 2, 1]], 3);
        let mut t = SuffixTree::empty(c, false);
        for start in 0..6 {
            crate::build::insert_suffix(&mut t, SeqId(0), start);
        }
        t.finalize();
        assert_eq!(
            t.find_occurrences(&[1, 2, 1]),
            vec![(SeqId(0), 1), (SeqId(0), 3)]
        );
        assert_eq!(t.find_occurrences(&[2, 1]).len(), 2);
        assert!(t.find_occurrences(&[0, 0]).is_empty());
        assert_eq!(t.find_occurrences(&[]).len(), 6); // every suffix
    }

    #[test]
    fn locate_walks_edges() {
        let c = cat(vec![vec![0, 1, 2]], 3);
        let mut t = SuffixTree::empty(c, false);
        let a = t.alloc(LabelRef {
            seq: SeqId(0),
            start: 0,
            len: 3,
        });
        t.attach(ROOT, a);
        assert_eq!(t.locate(&[]), Some((ROOT, 0)));
        assert_eq!(t.locate(&[0]), Some((a, 2)));
        assert_eq!(t.locate(&[0, 1, 2]), Some((a, 0)));
        assert_eq!(t.locate(&[1]), None);
        assert_eq!(t.locate(&[0, 2]), None);
    }
}
