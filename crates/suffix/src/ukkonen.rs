//! Linear-time construction of the full generalized suffix tree
//! (Ukkonen's algorithm).
//!
//! The sequences of the [`CatStore`] are conceptually concatenated with a
//! *unique* separator symbol after each (`alphabet_len + t` for sequence
//! `t`, as in paper §4.1), and Ukkonen's online algorithm builds the
//! suffix tree of the concatenation in `O(n log σ)`.
//!
//! Because every separator is unique, no *internal* edge label can contain
//! one (two suffixes sharing a prefix through a separator would have to
//! start at the same position). Separators therefore appear only on leaf
//! edges, and a final conversion pass trims each leaf edge at its first
//! separator, turning the concatenation tree into a proper generalized
//! suffix tree whose labels reference single sequences:
//!
//! * a leaf edge trimmed to zero length means the suffix ends exactly at
//!   its parent node — its [`SuffixLabel`] is attached there (this is how
//!   suffixes that are prefixes of other suffixes are represented);
//! * suffixes that start *at* a separator (the empty suffix of each
//!   sequence) are dropped.
//!
//! The result is structurally identical to the naive builder's tree
//! (verified by property tests) at a fraction of the cost.

use std::sync::Arc;
use warptree_core::categorize::{CatStore, Symbol};
use warptree_core::sequence::SeqId;

use crate::tree::{LabelRef, NodeId, SuffixLabel, SuffixTree, ROOT};

const OPEN: u32 = u32::MAX;

/// A node of the intermediate (concatenation) tree.
struct UNode {
    /// Edge label `[start, end)` into the concatenation; `end == OPEN`
    /// for leaves (grows with the phase).
    start: u32,
    end: u32,
    /// Suffix link (root for nodes without one).
    link: u32,
    /// Children sorted by first edge symbol.
    children: Vec<(Symbol, u32)>,
}

impl UNode {
    fn new(start: u32, end: u32) -> Self {
        Self {
            start,
            end,
            link: 0,
            children: Vec::new(),
        }
    }

    fn child(&self, sym: Symbol) -> Option<u32> {
        self.children
            .binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|i| self.children[i].1)
    }

    fn set_child(&mut self, sym: Symbol, node: u32) {
        match self.children.binary_search_by_key(&sym, |&(s, _)| s) {
            Ok(i) => self.children[i].1 = node,
            Err(i) => self.children.insert(i, (sym, node)),
        }
    }
}

struct Ukkonen<'a> {
    concat: &'a [Symbol],
    nodes: Vec<UNode>,
    active_node: u32,
    /// Index into `concat` of the first symbol of the active edge.
    active_edge: usize,
    active_length: usize,
    remainder: usize,
}

impl<'a> Ukkonen<'a> {
    fn new(concat: &'a [Symbol]) -> Self {
        Self {
            concat,
            nodes: vec![UNode::new(0, 0)],
            active_node: 0,
            active_edge: 0,
            active_length: 0,
            remainder: 0,
        }
    }

    fn edge_len(&self, n: u32, phase: usize) -> usize {
        let node = &self.nodes[n as usize];
        let end = if node.end == OPEN {
            phase + 1
        } else {
            node.end as usize
        };
        end - node.start as usize
    }

    fn build(&mut self) {
        for i in 0..self.concat.len() {
            self.extend(i);
        }
        debug_assert_eq!(
            self.remainder, 0,
            "unique final separator must make all suffixes explicit"
        );
    }

    /// Phase `i`: extend the implicit tree with `concat[i]`.
    fn extend(&mut self, i: usize) {
        self.remainder += 1;
        let mut last_new: Option<u32> = None;
        while self.remainder > 0 {
            if self.active_length == 0 {
                self.active_edge = i;
            }
            let edge_sym = self.concat[self.active_edge];
            match self.nodes[self.active_node as usize].child(edge_sym) {
                None => {
                    // Rule 2 (from a node): new leaf.
                    let leaf = self.alloc(UNode::new(i as u32, OPEN));
                    self.nodes[self.active_node as usize].set_child(edge_sym, leaf);
                    if let Some(ln) = last_new.take() {
                        self.nodes[ln as usize].link = self.active_node;
                    }
                }
                Some(next) => {
                    let elen = self.edge_len(next, i);
                    if self.active_length >= elen {
                        // Walk down and retry.
                        self.active_edge += elen;
                        self.active_length -= elen;
                        self.active_node = next;
                        continue;
                    }
                    let next_start = self.nodes[next as usize].start as usize;
                    if self.concat[next_start + self.active_length] == self.concat[i] {
                        // Rule 3: already present; phase ends.
                        if let Some(ln) = last_new.take() {
                            self.nodes[ln as usize].link = self.active_node;
                        }
                        self.active_length += 1;
                        break;
                    }
                    // Rule 2 (inside an edge): split.
                    let split = self.alloc(UNode::new(
                        next_start as u32,
                        (next_start + self.active_length) as u32,
                    ));
                    self.nodes[self.active_node as usize].set_child(edge_sym, split);
                    let leaf = self.alloc(UNode::new(i as u32, OPEN));
                    self.nodes[split as usize].set_child(self.concat[i], leaf);
                    self.nodes[next as usize].start += self.active_length as u32;
                    let tail_sym = self.concat[self.nodes[next as usize].start as usize];
                    self.nodes[split as usize].set_child(tail_sym, next);
                    if let Some(ln) = last_new.take() {
                        self.nodes[ln as usize].link = split;
                    }
                    last_new = Some(split);
                }
            }
            self.remainder -= 1;
            if self.active_node == 0 && self.active_length > 0 {
                self.active_length -= 1;
                self.active_edge = i - self.remainder + 1;
            } else if self.active_node != 0 {
                self.active_node = self.nodes[self.active_node as usize].link;
            }
        }
    }

    fn alloc(&mut self, n: UNode) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(n);
        id
    }
}

/// Positional layout of the separator-joined concatenation.
struct Layout {
    /// `base[i]` = concat offset of the `i`-th included sequence's first
    /// symbol.
    base: Vec<usize>,
    /// Actual sequence id of the `i`-th included sequence.
    seq_ids: Vec<u32>,
    /// Per-position offset of the nearest separator at or after it.
    next_sep: Vec<usize>,
    concat: Vec<Symbol>,
}

impl Layout {
    fn new(cat: &CatStore, range: std::ops::Range<usize>) -> Self {
        let alpha = cat.alphabet_len();
        let total: usize = cat.seqs()[range.clone()]
            .iter()
            .map(|s| s.len() + 1)
            .sum::<usize>();
        let mut concat = Vec::with_capacity(total);
        let mut base = Vec::with_capacity(range.len());
        let mut seq_ids = Vec::with_capacity(range.len());
        for (i, t) in range.enumerate() {
            base.push(concat.len());
            seq_ids.push(t as u32);
            concat.extend_from_slice(&cat.seqs()[t]);
            // Separators only need to be unique within this concat.
            let sep = alpha
                .checked_add(i as u32)
                .expect("separator symbol space exhausted");
            concat.push(sep);
        }
        let mut next_sep = vec![0usize; concat.len()];
        let mut nearest = concat.len();
        for pos in (0..concat.len()).rev() {
            if concat[pos] >= alpha {
                nearest = pos;
            }
            next_sep[pos] = nearest;
        }
        Self {
            base,
            seq_ids,
            next_sep,
            concat,
        }
    }

    fn is_sep(&self, pos: usize) -> bool {
        self.next_sep[pos] == pos
    }

    /// Maps a non-separator concat position to `(seq, offset)`.
    fn locate(&self, pos: usize) -> (SeqId, u32) {
        debug_assert!(!self.is_sep(pos));
        let t = match self.base.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (SeqId(self.seq_ids[t]), (pos - self.base[t]) as u32)
    }
}

/// Builds the full generalized suffix tree of `cat` in linear time.
pub fn build_full(cat: Arc<CatStore>) -> SuffixTree {
    let n = cat.len();
    build_full_range(cat, 0..n)
}

/// Builds the full suffix tree over only the sequences in `range`
/// (labels still reference global sequence ids) — the per-batch step of
/// the incremental disk construction (paper §4.1).
pub fn build_full_range(cat: Arc<CatStore>, range: std::ops::Range<usize>) -> SuffixTree {
    let layout = Layout::new(&cat, range);
    let mut ukk = Ukkonen::new(&layout.concat);
    ukk.build();
    let mut tree = SuffixTree::empty(cat.clone(), false);
    convert(&ukk, &layout, &cat, &mut tree);
    tree.finalize();
    tree
}

/// Converts the concatenation tree into the final generalized suffix
/// tree, trimming separators.
fn convert(ukk: &Ukkonen<'_>, layout: &Layout, cat: &CatStore, tree: &mut SuffixTree) {
    let n = layout.concat.len();
    // (ukk node, final parent, symbol depth of final parent)
    let mut stack: Vec<(u32, NodeId, usize)> = vec![(0, ROOT, 0)];
    while let Some((unode, parent, pdepth)) = stack.pop() {
        for &(_, child) in &ukk.nodes[unode as usize].children {
            let cn = &ukk.nodes[child as usize];
            let start = cn.start as usize;
            let end = if cn.end == OPEN { n } else { cn.end as usize };
            if cn.children.is_empty() {
                // Leaf of the concatenation tree = one suffix.
                let suffix_start = start - pdepth;
                if layout.is_sep(suffix_start) {
                    continue; // empty suffix of some sequence
                }
                let (seq, off) = layout.locate(suffix_start);
                let label = SuffixLabel {
                    seq,
                    start: off,
                    lead_run: cat.run_len(seq, off),
                };
                let trimmed = layout.next_sep[start].min(end) - start;
                if trimmed == 0 {
                    tree.node_mut(parent).suffixes.push(label);
                } else {
                    let (lseq, loff) = layout.locate(start);
                    let leaf = tree.alloc(LabelRef {
                        seq: lseq,
                        start: loff,
                        len: trimmed as u32,
                    });
                    tree.attach(parent, leaf);
                    tree.node_mut(leaf).suffixes.push(label);
                }
            } else {
                // Internal edge: can never contain a separator.
                debug_assert!(
                    layout.next_sep[start] >= end,
                    "separator inside an internal edge"
                );
                let (lseq, loff) = layout.locate(start);
                let node = tree.alloc(LabelRef {
                    seq: lseq,
                    start: loff,
                    len: (end - start) as u32,
                });
                tree.attach(parent, node);
                stack.push((child, node, pdepth + (end - start)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_full_naive;

    fn cat(seqs: Vec<Vec<Symbol>>, alpha: u32) -> Arc<CatStore> {
        Arc::new(CatStore::from_symbols(seqs, alpha))
    }

    #[test]
    fn matches_naive_on_small_inputs() {
        let cases: Vec<(Vec<Vec<Symbol>>, u32)> = vec![
            (vec![vec![0]], 1),
            (vec![vec![0, 0, 0]], 1),
            (vec![vec![0, 1, 0, 1, 2]], 3),
            (vec![vec![0, 1, 2, 3, 2, 2], vec![0, 2, 3, 4]], 5),
            (vec![vec![1, 1, 0], vec![1, 1, 0], vec![0, 0]], 2),
            (vec![vec![0, 1], vec![1, 0], vec![0, 0], vec![1, 1]], 2),
        ];
        for (seqs, alpha) in cases {
            let c = cat(seqs.clone(), alpha);
            let ukk = build_full(c.clone());
            let naive = build_full_naive(c);
            ukk.check_invariants();
            assert_eq!(ukk.canonical(), naive.canonical(), "mismatch on {seqs:?}");
        }
    }

    #[test]
    fn banana_structure() {
        // The classic: "banana" with symbols b=0, a=1, n=2.
        let c = cat(vec![vec![0, 1, 2, 1, 2, 1]], 3);
        let t = build_full(c);
        t.check_invariants();
        assert_eq!(t.suffix_count(), 6);
        // "ana" = <1,2,1> occurs twice (suffixes 1 and 3).
        let (node, rem) = t.locate(&[1, 2, 1]).expect("ana present");
        let below = t.suffixes_below(node);
        let _ = rem;
        assert_eq!(below.len(), 2);
        let mut starts: Vec<u32> = below.iter().map(|l| l.start).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![1, 3]);
    }

    #[test]
    fn all_suffixes_present_multi_sequence() {
        let c = cat(
            vec![vec![2, 0, 2, 1, 2, 2, 0], vec![0, 0, 0], vec![2, 1]],
            3,
        );
        let t = build_full(c.clone());
        t.check_invariants();
        assert_eq!(t.suffix_count(), c.total_len());
        for (i, s) in c.seqs().iter().enumerate() {
            for start in 0..s.len() {
                let (node, rem) = t.locate(&s[start..]).expect("suffix present");
                assert_eq!(rem, 0);
                assert!(t
                    .node(node)
                    .suffixes
                    .iter()
                    .any(|l| l.seq == SeqId(i as u32) && l.start == start as u32));
            }
        }
    }

    #[test]
    fn internal_nodes_have_at_least_two_children_or_labels() {
        let c = cat(vec![vec![0, 1, 0, 1, 0, 0, 1, 1]], 2);
        let t = build_full(c);
        for id in 1..t.node_count() as NodeId {
            let n = t.node(id);
            assert!(
                !n.children.is_empty() || !n.suffixes.is_empty(),
                "useless node"
            );
            if n.suffixes.is_empty() {
                assert!(
                    n.children.len() >= 2,
                    "non-branching unlabeled internal node"
                );
            }
        }
    }

    #[test]
    fn linear_node_bound() {
        // Node count <= 2 * total symbols + 1 (standard suffix-tree bound,
        // with label-bearing nodes allowed).
        let c = cat(vec![(0..40).map(|i| (i * 7 % 5) as Symbol).collect()], 5);
        let t = build_full(c.clone());
        assert!(t.node_count() as u64 <= 2 * c.total_len() + 1);
    }
}
