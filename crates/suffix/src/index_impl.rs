//! [`IndexBackend`] implementation for the in-memory tree, connecting
//! it to the core filter algorithms.

use warptree_core::categorize::Symbol;
use warptree_core::search::IndexBackend;
use warptree_core::sequence::SeqId;

use crate::tree::{NodeId, SuffixTree, ROOT};

impl IndexBackend for SuffixTree {
    type Node = NodeId;

    fn root(&self) -> NodeId {
        ROOT
    }

    fn for_each_child(&self, n: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &c in &self.node(n).children {
            f(c);
        }
    }

    fn edge_label(&self, n: NodeId, out: &mut Vec<Symbol>) {
        out.extend_from_slice(self.label_symbols(self.node(n).label));
    }

    fn for_each_suffix_below(&self, n: NodeId, f: &mut dyn FnMut(SeqId, u32, u32)) {
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            let node = self.node(x);
            for s in &node.suffixes {
                f(s.seq, s.start, s.lead_run);
            }
            stack.extend_from_slice(&node.children);
        }
    }

    fn max_lead_run(&self, n: NodeId) -> u32 {
        debug_assert!(self.is_finalized(), "finalize() must run before searching");
        self.node(n).max_lead_run
    }

    fn is_sparse(&self) -> bool {
        SuffixTree::is_sparse(self)
    }

    fn suffix_count(&self) -> u64 {
        SuffixTree::suffix_count(self)
    }

    fn depth_limit(&self) -> Option<u32> {
        SuffixTree::depth_limit(self)
    }

    fn suffix_count_below(&self, n: NodeId) -> Option<u64> {
        // O(1): `finalize()` annotates every node with its subtree
        // suffix count.
        debug_assert!(self.is_finalized(), "finalize() must run before searching");
        Some(self.node(n).suffix_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_full_naive, build_sparse};
    use std::sync::Arc;
    use warptree_core::categorize::CatStore;

    #[test]
    fn trait_view_matches_tree() {
        let c = Arc::new(CatStore::from_symbols(
            vec![vec![0, 0, 1, 2], vec![1, 1, 1]],
            3,
        ));
        let t = build_full_naive(c.clone());
        let idx: &dyn IndexBackend<Node = NodeId> = &t;
        assert_eq!(idx.suffix_count(), 7);
        assert!(!idx.is_sparse());
        let mut kids = Vec::new();
        idx.for_each_child(idx.root(), &mut |n| kids.push(n));
        assert_eq!(kids.len(), t.node(ROOT).children.len());
        let mut label = Vec::new();
        idx.edge_label(kids[0], &mut label);
        assert!(!label.is_empty());
        let mut count = 0;
        idx.for_each_suffix_below(idx.root(), &mut |_, _, _| count += 1);
        assert_eq!(count, 7);
        assert_eq!(idx.max_lead_run(idx.root()), 3);
    }

    #[test]
    fn sparse_trait_view() {
        let c = Arc::new(CatStore::from_symbols(vec![vec![0, 0, 0, 1]], 2));
        let t = build_sparse(c);
        let idx: &dyn IndexBackend<Node = NodeId> = &t;
        assert!(idx.is_sparse());
        assert_eq!(idx.suffix_count(), 2); // suffixes at 0 and 3
        assert_eq!(idx.max_lead_run(idx.root()), 3);
    }
}
