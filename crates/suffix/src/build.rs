//! Suffix insertion and the naive / sparse tree builders.
//!
//! [`insert_suffix`] walks a suffix down from the root, splitting an edge
//! where the suffix diverges (or ends) and attaching the suffix label at
//! the final node. Repeated insertion of every suffix yields a correct
//! generalized suffix tree in `O(total suffix length)` — quadratic in the
//! worst case, but this builder serves two roles where that is fine:
//!
//! * the **sparse** tree (paper §6.1) stores only suffixes whose first
//!   symbol differs from its predecessor, a set small enough for direct
//!   insertion (sparse suffix trees have no simple linear-time builder);
//! * a **reference** full builder used by the test suite to validate the
//!   linear-time Ukkonen builder structurally.

use std::sync::Arc;
use warptree_core::categorize::CatStore;
use warptree_core::sequence::SeqId;

use crate::tree::{LabelRef, NodeId, SuffixLabel, SuffixTree, ROOT};

/// Inserts the suffix `CS_seq[start..]` into the tree.
///
/// # Panics
/// Panics if the suffix is empty (out-of-range `start`).
pub fn insert_suffix(tree: &mut SuffixTree, seq: SeqId, start: u32) {
    let len = tree.cat().seq(seq).len() as u32;
    insert_suffix_prefix(tree, seq, start, len.saturating_sub(start));
}

/// Inserts only the first `keep` symbols of the suffix `CS_seq[start..]`
/// (the §8 truncated form); the suffix label attaches where the prefix
/// ends.
///
/// # Panics
/// Panics if the suffix is empty (out-of-range `start`) or `keep == 0`.
pub fn insert_suffix_prefix(tree: &mut SuffixTree, seq: SeqId, start: u32, keep: u32) {
    let full_len = tree.cat().seq(seq).len();
    assert!((start as usize) < full_len, "cannot insert an empty suffix");
    assert!(keep > 0, "cannot insert an empty prefix");
    let symbols_len = full_len.min(start as usize + keep as usize);
    let label = SuffixLabel {
        seq,
        start,
        lead_run: tree.cat().run_len(seq, start),
    };
    // Walk down: `pos` is the offset of the next unmatched suffix symbol.
    let mut node: NodeId = ROOT;
    let mut pos = start as usize;
    loop {
        if pos == symbols_len {
            tree.node_mut(node).suffixes.push(label);
            return;
        }
        let sym = tree.cat().seq(seq)[pos];
        let Some(child) = tree.child_by_symbol(node, sym) else {
            // No edge: attach the whole remainder as a leaf.
            let leaf = tree.alloc(LabelRef {
                seq,
                start: pos as u32,
                len: (symbols_len - pos) as u32,
            });
            tree.attach(node, leaf);
            tree.node_mut(leaf).suffixes.push(label);
            return;
        };
        // Match along the edge into `child`.
        let child_label = tree.node(child).label;
        let edge_len = child_label.len as usize;
        let mut matched = 0usize;
        {
            let edge = tree.label_symbols(child_label);
            let suffix = &tree.cat().seq(seq)[pos..];
            let take = edge_len.min(suffix.len());
            while matched < take && edge[matched] == suffix[matched] {
                matched += 1;
            }
        }
        pos += matched;
        if matched == edge_len {
            // Edge fully matched: continue below the child.
            node = child;
            continue;
        }
        // Divergence (or suffix exhaustion) inside the edge: split it.
        let mid = split_edge(tree, node, child, matched as u32);
        if pos == symbols_len {
            tree.node_mut(mid).suffixes.push(label);
        } else {
            let leaf = tree.alloc(LabelRef {
                seq,
                start: pos as u32,
                len: (symbols_len - pos) as u32,
            });
            tree.attach(mid, leaf);
            tree.node_mut(leaf).suffixes.push(label);
        }
        return;
    }
}

/// Splits the edge `parent -> child` after `offset` label symbols,
/// returning the new middle node. `child` keeps the tail of the label.
pub(crate) fn split_edge(
    tree: &mut SuffixTree,
    parent: NodeId,
    child: NodeId,
    offset: u32,
) -> NodeId {
    let old = tree.node(child).label;
    debug_assert!(offset > 0 && offset < old.len, "split inside the edge");
    let head = LabelRef {
        seq: old.seq,
        start: old.start,
        len: offset,
    };
    let tail = LabelRef {
        seq: old.seq,
        start: old.start + offset,
        len: old.len - offset,
    };
    let mid = tree.alloc(head);
    tree.replace_child(parent, child, mid);
    {
        let tail_first = tree.label_symbols(tail)[0];
        let child_node = tree.node_mut(child);
        child_node.label = tail;
        child_node.first = tail_first;
    }
    tree.attach(mid, child);
    mid
}

/// Builds a full generalized suffix tree by naive insertion of every
/// suffix. Reference builder — prefer
/// [`build_full`](crate::ukkonen::build_full) for large inputs.
pub fn build_full_naive(cat: Arc<CatStore>) -> SuffixTree {
    let mut tree = SuffixTree::empty(cat.clone(), false);
    for (i, s) in cat.seqs().iter().enumerate() {
        let seq = SeqId(i as u32);
        for start in 0..s.len() as u32 {
            insert_suffix(&mut tree, seq, start);
        }
    }
    tree.finalize();
    tree
}

/// Builds the sparse suffix tree of paper §6.1: only suffixes whose first
/// symbol differs from the immediately preceding symbol are stored.
pub fn build_sparse(cat: Arc<CatStore>) -> SuffixTree {
    let n = cat.len();
    build_sparse_range(cat, 0..n)
}

/// Answer-length bounds for the truncated indexes of paper §8.
///
/// When the query lengths (and warping window) are known in advance, the
/// answers' lengths are bounded; suffixes shorter than the minimum need
/// not be indexed, and longer suffixes only need their prefix up to the
/// maximum. The paper proposes this as its index-space reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncateSpec {
    /// Maximum answer length the index must support.
    pub max_answer_len: u32,
    /// Minimum answer length; shorter suffixes are skipped entirely.
    pub min_answer_len: u32,
}

impl TruncateSpec {
    /// Bounds derived from a query-length range and a warping window:
    /// answers lie within `[min_q − w, max_q + w]` (paper §8).
    pub fn for_queries(min_q: u32, max_q: u32, window: u32) -> Self {
        Self {
            max_answer_len: max_q + window,
            min_answer_len: min_q.saturating_sub(window).max(1),
        }
    }
}

/// Builds a §8-truncated full suffix tree: every sufficiently long
/// suffix contributes only its first `max_answer_len` symbols.
///
/// Searches over the result must bound their answer length to at most
/// `max_answer_len` (via window or `SearchParams::length_range`); the
/// filter enforces this.
pub fn build_full_truncated(cat: Arc<CatStore>, spec: TruncateSpec) -> SuffixTree {
    assert!(spec.max_answer_len >= 1);
    let mut tree = SuffixTree::empty(cat.clone(), false);
    for (i, s) in cat.seqs().iter().enumerate() {
        let seq = SeqId(i as u32);
        for start in 0..s.len() as u32 {
            if s.len() as u32 - start < spec.min_answer_len {
                break; // remaining suffixes are shorter still
            }
            insert_suffix_prefix(&mut tree, seq, start, spec.max_answer_len);
        }
    }
    tree.set_depth_limit(spec.max_answer_len);
    tree.finalize();
    tree
}

/// Builds a §8-truncated sparse suffix tree. Each stored suffix keeps
/// `max_answer_len + lead_run − 1` symbols so the shifted (non-stored)
/// suffixes of Definition 4 still reach every in-range answer length.
pub fn build_sparse_truncated(cat: Arc<CatStore>, spec: TruncateSpec) -> SuffixTree {
    assert!(spec.max_answer_len >= 1);
    let mut tree = SuffixTree::empty(cat.clone(), true);
    for (i, s) in cat.seqs().iter().enumerate() {
        let seq = SeqId(i as u32);
        for start in 0..s.len() as u32 {
            if !cat.is_stored_suffix(seq, start) {
                continue;
            }
            let run = cat.run_len(seq, start);
            // The longest shifted suffix this stored suffix represents
            // starts run−1 symbols in; skip only if even that one is too
            // short to host a minimum-length answer.
            if s.len() as u32 - start < spec.min_answer_len {
                continue;
            }
            // Saturating: a pathological `max_answer_len` near u32::MAX
            // must keep the whole suffix, not wrap to a short prefix.
            insert_suffix_prefix(
                &mut tree,
                seq,
                start,
                spec.max_answer_len.saturating_add(run - 1),
            );
        }
    }
    tree.set_depth_limit(spec.max_answer_len);
    tree.finalize();
    tree
}

/// Builds the sparse suffix tree over only the sequences in `range`
/// (labels still reference global sequence ids) — the per-batch step of
/// the incremental disk construction.
pub fn build_sparse_range(cat: Arc<CatStore>, range: std::ops::Range<usize>) -> SuffixTree {
    let mut tree = SuffixTree::empty(cat.clone(), true);
    for i in range {
        let seq = SeqId(i as u32);
        for start in 0..cat.seqs()[i].len() as u32 {
            if cat.is_stored_suffix(seq, start) {
                insert_suffix(&mut tree, seq, start);
            }
        }
    }
    tree.finalize();
    tree
}

/// The compaction ratio `r` of a sparse tree over `cat`:
/// `(non-stored suffixes) / (all suffixes)` (paper §6).
pub fn compaction_ratio(cat: &CatStore) -> f64 {
    let total = cat.total_len();
    if total == 0 {
        return 0.0;
    }
    let stored: u64 = cat
        .seqs()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (0..s.len() as u32)
                .filter(|&p| cat.is_stored_suffix(SeqId(i as u32), p))
                .count() as u64
        })
        .sum();
    (total - stored) as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use warptree_core::categorize::Symbol;

    fn cat(seqs: Vec<Vec<Symbol>>, alpha: u32) -> Arc<CatStore> {
        Arc::new(CatStore::from_symbols(seqs, alpha))
    }

    #[test]
    fn paper_figure2_tree_shape() {
        // S5 = <4,5,6,7,6,6>, S6 = <4,6,7,8> as symbols 0..=4 for values
        // 4..=8.
        let c = cat(vec![vec![0, 1, 2, 3, 2, 2], vec![0, 2, 3, 4]], 5);
        let t = build_full_naive(c.clone());
        t.check_invariants();
        assert_eq!(t.suffix_count(), 10);
        // Path <2,3> ("6,7") is shared by S5[2:] and S6[1:]: locating it
        // must reach an internal node with two suffixes below.
        let (n, rem) = t.locate(&[2, 3]).expect("path exists");
        assert_eq!(rem, 0);
        let below = t.suffixes_below(n);
        assert_eq!(below.len(), 2);
        // The root has one child per distinct starting symbol.
        assert_eq!(t.node(crate::tree::ROOT).children.len(), 5);
    }

    #[test]
    fn every_suffix_locatable() {
        let c = cat(vec![vec![0, 1, 0, 1, 2], vec![1, 1, 2]], 3);
        let t = build_full_naive(c.clone());
        t.check_invariants();
        for (i, s) in c.seqs().iter().enumerate() {
            for start in 0..s.len() {
                let suffix = &s[start..];
                let (node, rem) = t.locate(suffix).expect("suffix present");
                assert_eq!(rem, 0, "suffix must end at a node");
                assert!(
                    t.node(node)
                        .suffixes
                        .iter()
                        .any(|l| l.seq == SeqId(i as u32) && l.start == start as u32),
                    "label missing for ({i},{start})"
                );
            }
        }
    }

    #[test]
    fn sparse_stores_exactly_the_subset() {
        // CS_8 = <C1,C1,C1,C3,C2,C2>: stored suffixes at 0, 3, 4.
        let c = cat(vec![vec![0, 0, 0, 2, 1, 1]], 3);
        let t = build_sparse(c.clone());
        t.check_invariants();
        assert!(t.is_sparse());
        assert_eq!(t.suffix_count(), 3);
        let mut starts: Vec<u32> = t.suffixes_below(ROOT).iter().map(|l| l.start).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 3, 4]);
        // lead runs: suffix 0 has run 3, suffix 3 run 1, suffix 4 run 2.
        assert_eq!(t.node(ROOT).max_lead_run, 3);
    }

    #[test]
    fn compaction_ratio_matches_definition() {
        let c = cat(vec![vec![0, 0, 0, 2, 1, 1]], 3);
        // 6 suffixes, 3 stored -> r = 0.5.
        assert!((compaction_ratio(&c) - 0.5).abs() < 1e-12);
        // All-distinct symbols: nothing compacted.
        let d = cat(vec![vec![0, 1, 2]], 3);
        assert_eq!(compaction_ratio(&d), 0.0);
        // Constant sequence: only the first suffix stored.
        let e = cat(vec![vec![1, 1, 1, 1]], 2);
        assert!((compaction_ratio(&e) - 0.75).abs() < 1e-12);
        let t = build_sparse(e);
        assert_eq!(t.suffix_count(), 1);
    }

    #[test]
    fn suffix_that_is_prefix_attaches_to_internal_node() {
        // <0,1> and <0,1,2>: suffix (0-based) 0 of seq0 = <0,1,2>,
        // suffix 0 of seq1 = <0,1> is a prefix of it.
        let c = cat(vec![vec![0, 1, 2], vec![0, 1]], 3);
        let t = build_full_naive(c);
        t.check_invariants();
        let (n, rem) = t.locate(&[0, 1]).expect("path exists");
        assert_eq!(rem, 0);
        assert!(t
            .node(n)
            .suffixes
            .iter()
            .any(|l| l.seq == SeqId(1) && l.start == 0));
        assert!(!t.node(n).children.is_empty());
    }

    #[test]
    fn duplicate_suffixes_share_a_node() {
        let c = cat(vec![vec![0, 1], vec![0, 1]], 2);
        let t = build_full_naive(c);
        let (n, rem) = t.locate(&[0, 1]).expect("path exists");
        assert_eq!(rem, 0);
        assert_eq!(t.node(n).suffixes.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty suffix")]
    fn empty_suffix_rejected() {
        let c = cat(vec![vec![0]], 1);
        let mut t = SuffixTree::empty(c, false);
        insert_suffix(&mut t, SeqId(0), 1);
    }
}
