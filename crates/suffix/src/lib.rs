#![warn(missing_docs)]

//! # warptree-suffix
//!
//! In-memory generalized suffix trees over categorized sequences — the
//! index structures of Park et al. (ICDE 2000):
//!
//! * [`build_full`] — the full generalized suffix tree (`ST` / `ST_C`),
//!   built in linear time with Ukkonen's algorithm;
//! * [`build_sparse`] — the sparse suffix tree (`SST_C`, paper §6.1)
//!   storing only suffixes whose first symbol differs from its
//!   predecessor;
//! * [`build_full_naive`] — a quadratic reference builder used to
//!   validate Ukkonen structurally.
//!
//! All trees implement
//! [`IndexBackend`](warptree_core::search::IndexBackend), so the
//! core crate's `run_query` runs over them directly.
//!
//! ```
//! use std::sync::Arc;
//! use warptree_core::prelude::*;
//! use warptree_suffix::build_full;
//!
//! let store = SequenceStore::from_values(vec![vec![1.0, 5.0, 5.5, 1.0]]);
//! let alphabet = Alphabet::equal_length(&store, 2).unwrap();
//! let cat = Arc::new(alphabet.encode_store(&store));
//! let tree = build_full(cat);
//!
//! let req = QueryRequest::threshold(&[5.0, 5.0], 1.0);
//! let (out, _stats) = run_query(&tree, &alphabet, &store, &req).unwrap();
//! assert!(out
//!     .into_answer_set()
//!     .matches()
//!     .iter()
//!     .any(|m| m.occ.start == 1 && m.occ.len == 2));
//! ```

pub mod analysis;
pub mod build;
pub mod index_impl;
pub mod stats;
pub mod tree;
pub mod ukkonen;

pub use analysis::{distinct_subsequence_count, longest_repeated, top_motifs, Motif};
pub use build::{
    build_full_naive, build_full_truncated, build_sparse, build_sparse_range,
    build_sparse_truncated, compaction_ratio, insert_suffix, insert_suffix_prefix, TruncateSpec,
};
pub use stats::TreeStats;
pub use tree::{LabelRef, Node, NodeId, SuffixLabel, SuffixTree, ROOT};
pub use ukkonen::{build_full, build_full_range};
