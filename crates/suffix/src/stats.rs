//! Structural statistics of a suffix tree — the numbers behind the
//! paper's index-size and `R_d` discussions, exposed for tooling
//! (`warptree info --deep`) and experiments.

use warptree_obs::MetricsRegistry;

use crate::tree::{SuffixTree, ROOT};

/// Aggregate structural facts about a tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStats {
    /// Total nodes, including the root.
    pub nodes: u64,
    /// Nodes with at least one child.
    pub internal: u64,
    /// Nodes with no children (leaves).
    pub leaves: u64,
    /// Stored suffix labels.
    pub suffixes: u64,
    /// Maximum node depth (edges from the root).
    pub max_node_depth: u32,
    /// Maximum symbol depth (label symbols from the root).
    pub max_symbol_depth: u32,
    /// Mean children per internal node.
    pub avg_branching: f64,
    /// Total label symbols across all edges — the count of *distinct*
    /// subsequences for a full tree, and the inline-label size driver.
    pub label_symbols: u64,
    /// Mean shared-prefix depth per stored suffix: symbol depth of its
    /// node weighted over suffixes. High values mean high table sharing
    /// (the paper's `R_d`).
    pub mean_suffix_depth: f64,
}

impl TreeStats {
    /// Computes statistics in one traversal.
    pub fn compute(tree: &SuffixTree) -> Self {
        let mut internal = 0u64;
        let mut leaves = 0u64;
        let mut suffixes = 0u64;
        let mut max_node_depth = 0u32;
        let mut max_symbol_depth = 0u32;
        let mut child_links = 0u64;
        let mut label_symbols = 0u64;
        let mut suffix_depth_sum = 0u64;
        let mut stack: Vec<(u32, u32, u32)> = vec![(ROOT, 0, 0)];
        while let Some((n, nd, sd)) = stack.pop() {
            let node = tree.node(n);
            label_symbols += node.label.len as u64;
            suffixes += node.suffixes.len() as u64;
            suffix_depth_sum += node.suffixes.len() as u64 * sd as u64;
            max_node_depth = max_node_depth.max(nd);
            max_symbol_depth = max_symbol_depth.max(sd);
            if node.children.is_empty() {
                leaves += 1;
            } else {
                internal += 1;
                child_links += node.children.len() as u64;
            }
            for &c in &node.children {
                let cl = tree.node(c).label.len;
                stack.push((c, nd + 1, sd + cl));
            }
        }
        Self {
            nodes: tree.node_count() as u64,
            internal,
            leaves,
            suffixes,
            max_node_depth,
            max_symbol_depth,
            avg_branching: if internal == 0 {
                0.0
            } else {
                child_links as f64 / internal as f64
            },
            label_symbols,
            mean_suffix_depth: if suffixes == 0 {
                0.0
            } else {
                suffix_depth_sum as f64 / suffixes as f64
            },
        }
    }

    /// Publishes the statistics as `tree.*` gauges on `reg` (no-op for
    /// a no-op registry).
    pub fn export(&self, reg: &MetricsRegistry) {
        reg.set_gauge("tree.nodes", self.nodes as f64);
        reg.set_gauge("tree.internal", self.internal as f64);
        reg.set_gauge("tree.leaves", self.leaves as f64);
        reg.set_gauge("tree.suffixes", self.suffixes as f64);
        reg.set_gauge("tree.max_node_depth", self.max_node_depth as f64);
        reg.set_gauge("tree.max_symbol_depth", self.max_symbol_depth as f64);
        reg.set_gauge("tree.avg_branching", self.avg_branching);
        reg.set_gauge("tree.label_symbols", self.label_symbols as f64);
        reg.set_gauge("tree.mean_suffix_depth", self.mean_suffix_depth);
    }

    /// Serializes the statistics as one JSON object (stable key names,
    /// matching the gauge names without the `tree.` prefix).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"nodes\":{},\"internal\":{},\"leaves\":{},\"suffixes\":{},",
                "\"max_node_depth\":{},\"max_symbol_depth\":{},\"avg_branching\":{},",
                "\"label_symbols\":{},\"mean_suffix_depth\":{}}}"
            ),
            self.nodes,
            self.internal,
            self.leaves,
            self.suffixes,
            self.max_node_depth,
            self.max_symbol_depth,
            warptree_obs::json::num(self.avg_branching),
            self.label_symbols,
            warptree_obs::json::num(self.mean_suffix_depth),
        )
    }
}

impl std::fmt::Display for TreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "nodes:             {}", self.nodes)?;
        writeln!(f, "  internal/leaves: {} / {}", self.internal, self.leaves)?;
        writeln!(f, "stored suffixes:   {}", self.suffixes)?;
        writeln!(
            f,
            "depth (nodes/syms):{} / {}",
            self.max_node_depth, self.max_symbol_depth
        )?;
        writeln!(f, "avg branching:     {:.2}", self.avg_branching)?;
        writeln!(f, "label symbols:     {}", self.label_symbols)?;
        write!(
            f,
            "mean suffix depth: {:.1} symbols",
            self.mean_suffix_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_full_naive, build_sparse};
    use crate::ukkonen::build_full;
    use std::sync::Arc;
    use warptree_core::categorize::CatStore;

    fn cat(seqs: Vec<Vec<u32>>, alpha: u32) -> Arc<CatStore> {
        Arc::new(CatStore::from_symbols(seqs, alpha))
    }

    #[test]
    fn counts_are_consistent() {
        let c = cat(vec![vec![0, 1, 2, 1, 2, 1], vec![1, 1, 0]], 3);
        let tree = build_full(c.clone());
        let s = TreeStats::compute(&tree);
        assert_eq!(s.nodes, tree.node_count() as u64);
        assert_eq!(s.internal + s.leaves, s.nodes);
        assert_eq!(s.suffixes, 9);
        assert_eq!(
            s.label_symbols,
            crate::analysis::distinct_subsequence_count(&tree)
        );
        // Label-bearing internal nodes may have a single child, so the
        // mean can dip below 2, but never below 1.
        assert!(s.avg_branching >= 1.0);
        let (nd, sd) = tree.depth_stats();
        assert_eq!((s.max_node_depth, s.max_symbol_depth), (nd, sd));
    }

    #[test]
    fn sparse_has_fewer_suffixes_and_shallower_mean() {
        let c = cat(vec![vec![0, 0, 0, 0, 1, 1, 2]], 3);
        let full = TreeStats::compute(&build_full_naive(c.clone()));
        let sparse = TreeStats::compute(&build_sparse(c));
        assert!(sparse.suffixes < full.suffixes);
        assert!(sparse.nodes <= full.nodes);
    }

    #[test]
    fn display_renders() {
        let c = cat(vec![vec![0, 1]], 2);
        let s = TreeStats::compute(&build_full(c));
        let text = s.to_string();
        assert!(text.contains("nodes:"));
        assert!(text.contains("avg branching"));
    }

    #[test]
    fn export_and_json() {
        let c = cat(vec![vec![0, 1, 0]], 2);
        let s = TreeStats::compute(&build_full(c));
        let reg = MetricsRegistry::new();
        s.export(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["tree.suffixes"], s.suffixes as f64);
        assert_eq!(snap.gauges["tree.nodes"], s.nodes as f64);
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(&format!("\"suffixes\":{}", s.suffixes)));
    }

    #[test]
    fn empty_tree_stats() {
        let c = cat(vec![], 1);
        let mut t = crate::SuffixTree::empty(c, false);
        t.finalize();
        let s = TreeStats::compute(&t);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.suffixes, 0);
        assert_eq!(s.avg_branching, 0.0);
        assert_eq!(s.mean_suffix_depth, 0.0);
    }
}
