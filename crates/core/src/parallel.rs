//! A std-only fork-join helper for parallel query execution.
//!
//! The search algorithms fan independent work items (suffix-tree
//! subtrees, post-processing candidate groups, batch requests) across a
//! small set of scoped worker threads. There is no persistent pool and
//! no `unsafe`: every parallel region is a [`std::thread::scope`], so
//! tasks may borrow the caller's index, store and query directly, and
//! panics propagate to the caller like they would sequentially.
//!
//! # Scheduling
//!
//! Items are identified by index. Each worker starts with a contiguous
//! slice of the index range behind its own mutex; when a worker drains
//! its slice it *steals* the upper half of the richest remaining slice.
//! Contention is one uncontended lock per item plus one scan per steal,
//! which is negligible next to the per-item work (table rows, exact
//! `D_tw` verifications) — the counters stay per-worker and are merged
//! once at the end, so there are no contended atomics on the hot loop.
//!
//! # Determinism
//!
//! [`parallel_map`] pins results by *item index*, not completion order:
//! the returned vector is exactly what a sequential `map` would have
//! produced, regardless of how items were interleaved across workers.
//! This is what makes parallel search results byte-identical to the
//! single-threaded path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of worker subthreads currently alive across all parallel
/// regions of the process (the caller thread participating in a region
/// is not counted). Exposed so servers can surface it as a
/// `server.worker_subthreads` gauge.
static ACTIVE_SUBTHREADS: AtomicU64 = AtomicU64::new(0);

/// Current number of live spawned worker subthreads, process-wide.
pub fn active_subthreads() -> u64 {
    ACTIVE_SUBTHREADS.load(Ordering::Relaxed)
}

/// Decrements the subthread count on drop, so panicking workers are
/// still accounted for.
struct SubthreadGuard;

impl SubthreadGuard {
    fn enter() -> Self {
        ACTIVE_SUBTHREADS.fetch_add(1, Ordering::Relaxed);
        SubthreadGuard
    }
}

impl Drop for SubthreadGuard {
    fn drop(&mut self) {
        ACTIVE_SUBTHREADS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Work-stealing index ranges: `ranges[w]` is worker `w`'s half-open
/// `[next, end)` slice of the item indices.
struct StealQueue {
    ranges: Vec<Mutex<(usize, usize)>>,
}

impl StealQueue {
    /// Splits `0..n` into `workers` contiguous chunks (the leading
    /// chunks take the remainder, so sizes differ by at most one).
    fn new(n: usize, workers: usize) -> Self {
        let base = n / workers;
        let extra = n % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            ranges.push(Mutex::new((start, start + len)));
            start += len;
        }
        debug_assert_eq!(start, n);
        StealQueue { ranges }
    }

    /// Claims the next index of worker `w`'s own range, if any.
    fn pop(&self, w: usize) -> Option<usize> {
        let mut r = self.ranges[w].lock().expect("queue poisoned");
        if r.0 < r.1 {
            let i = r.0;
            r.0 += 1;
            Some(i)
        } else {
            None
        }
    }

    /// Steals the upper half of the richest other range into worker
    /// `w`'s own range and claims its first index. Returns `None` when
    /// no range holds unclaimed work (the region is draining).
    fn steal(&self, w: usize) -> Option<usize> {
        loop {
            // Pick the victim with the most remaining items.
            let mut victim = None;
            let mut most = 0usize;
            for (v, range) in self.ranges.iter().enumerate() {
                if v == w {
                    continue;
                }
                let r = range.lock().expect("queue poisoned");
                let len = r.1 - r.0;
                if len > most {
                    most = len;
                    victim = Some(v);
                }
            }
            let victim = victim?;
            // Re-lock and re-check: the victim may have drained since
            // the scan.
            let stolen = {
                let mut r = self.ranges[victim].lock().expect("queue poisoned");
                let len = r.1 - r.0;
                if len == 0 {
                    None
                } else {
                    let take = len.div_ceil(2);
                    let stolen = (r.1 - take, r.1);
                    r.1 -= take;
                    Some(stolen)
                }
            };
            let Some((lo, hi)) = stolen else {
                continue; // raced; rescan
            };
            let mut own = self.ranges[w].lock().expect("queue poisoned");
            debug_assert!(own.0 >= own.1, "stealing with local work left");
            *own = (lo + 1, hi);
            return Some(lo);
        }
    }

    fn next(&self, w: usize) -> Option<usize> {
        self.pop(w).or_else(|| self.steal(w))
    }
}

/// Maps `f` over `items` across up to `threads` OS threads (the caller
/// participates, so `threads == 1` spawns nothing), with a per-worker
/// state from `init` threaded through every call that worker makes.
///
/// Returns the results **in item order** plus the final per-worker
/// states (for merging per-worker scratch counters); the states vector
/// length equals the number of workers actually used.
///
/// Item indices are claimed exactly once via work stealing, so the
/// assignment of items to workers is nondeterministic — only state that
/// is merged commutatively (counters) or keyed by item index (results)
/// should live in `S`.
pub fn parallel_map_with<T, R, S, I, F>(
    threads: usize,
    items: Vec<T>,
    init: I,
    f: F,
) -> (Vec<R>, Vec<S>)
where
    T: Send,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 {
        let mut state = init();
        let out = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
        return (out, vec![state]);
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let queue = StealQueue::new(n, workers);
    let run_worker = |w: usize| {
        let mut state = init();
        let mut out: Vec<(usize, R)> = Vec::with_capacity(n / workers + 1);
        while let Some(i) = queue.next(w) {
            let item = slots[i]
                .lock()
                .expect("slot poisoned")
                .take()
                .expect("item claimed twice");
            out.push((i, f(&mut state, i, item)));
        }
        (out, state)
    };
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    let mut states: Vec<S> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|w| {
                s.spawn(move || {
                    let _guard = SubthreadGuard::enter();
                    run_worker(w)
                })
            })
            .collect();
        let (out0, state0) = run_worker(0);
        indexed.extend(out0);
        states.push(state0);
        for h in handles {
            let (out, state) = h.join().expect("worker panicked");
            indexed.extend(out);
            states.push(state);
        }
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), n);
    let out = indexed.into_iter().map(|(_, r)| r).collect();
    (out, states)
}

/// [`parallel_map_with`] without per-worker state: maps `f` over `items`
/// on up to `threads` threads, returning results in item order.
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    parallel_map_with(threads, items, || (), |(), i, t| f(i, t)).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order() {
        for threads in [1, 2, 3, 8, 33] {
            let items: Vec<u64> = (0..100).collect();
            let out = parallel_map(threads, items, |i, v| {
                assert_eq!(i as u64, v);
                v * v
            });
            assert_eq!(out, (0..100u64).map(|v| v * v).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let out: Vec<u32> = parallel_map(8, Vec::<u32>::new(), |_, v| v);
        assert!(out.is_empty());
        let out = parallel_map(8, vec![7u32], |_, v| v + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn per_worker_states_sum_to_total() {
        let items: Vec<u64> = (1..=1000).collect();
        let (out, states) = parallel_map_with(
            4,
            items,
            || 0u64,
            |acc, _, v| {
                *acc += v;
                v
            },
        );
        assert_eq!(out.len(), 1000);
        assert_eq!(states.iter().sum::<u64>(), 500_500);
        assert!(states.len() <= 4 && !states.is_empty());
    }

    #[test]
    fn uneven_work_is_stolen() {
        // Front-loaded work: without stealing, worker 0 would do almost
        // everything. The test only asserts completion and order (the
        // speedup itself is covered by the benches).
        let items: Vec<u32> = (0..64).collect();
        let out = parallel_map(8, items, |_, v| {
            if v < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            v
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn subthread_count_returns_to_baseline() {
        let before = active_subthreads();
        let _ = parallel_map(4, (0..32).collect::<Vec<u32>>(), |_, v| v);
        assert_eq!(active_subthreads(), before);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(4, (0..16).collect::<Vec<u32>>(), |_, v| {
                assert!(v != 9, "boom");
                v
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(16, vec![1u32, 2, 3], |_, v| v * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
