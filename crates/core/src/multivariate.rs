//! Multivariate extension (paper §8): sequences of `d`-dimensional
//! numeric vectors.
//!
//! The paper sketches the extension: multivariate values are converted
//! into multi-dimensional cells using a multi-attribute categorization
//! (MTAH), after which *the same* index construction and query processing
//! apply. We realize that sketch:
//!
//! * [`mv_dtw`] — time warping with the city-block base distance summed
//!   over dimensions;
//! * [`GridAlphabet`] — per-dimension [`Alphabet`]s combined into a grid;
//!   a vector encodes to the row-major index of its cell, a plain `u32`
//!   symbol, so the univariate suffix trees index multivariate data
//!   unchanged;
//! * [`GridAlphabet::base_lb`] — point-to-cell distance, the multivariate
//!   `D_base-lb`, summing per-dimension interval distances. The lower
//!   bounding property (Theorem 2) carries over dimension-wise.

use crate::categorize::{Alphabet, Symbol};
use crate::dtw::WarpTable;
use crate::error::CoreError;
use crate::sequence::{SequenceStore, Value};

/// A multivariate sequence: `len` points of `dims` values, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct MvSequence {
    dims: usize,
    data: Vec<Value>,
}

impl MvSequence {
    /// Creates a multivariate sequence from row-major point data.
    ///
    /// # Panics
    /// Panics if `dims == 0`, data length is not a multiple of `dims`, or
    /// any value is non-finite.
    pub fn new(dims: usize, data: Vec<Value>) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert!(
            data.len().is_multiple_of(dims),
            "data length must be a multiple of dims"
        );
        assert!(data.iter().all(|v| v.is_finite()), "values must be finite");
        Self { dims, data }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// `true` when the sequence has no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of each point.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The `i`-th point.
    pub fn point(&self, i: usize) -> &[Value] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Iterates over points.
    pub fn points(&self) -> impl Iterator<Item = &[Value]> {
        self.data.chunks_exact(self.dims)
    }
}

/// City-block distance between two points of equal dimensionality.
#[inline]
pub fn city_block(a: &[Value], b: &[Value]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Exact multivariate time-warping distance with the summed city-block
/// base distance.
///
/// ```
/// use warptree_core::multivariate::{mv_dtw, MvSequence};
/// let slow = MvSequence::new(2, vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
/// let fast = MvSequence::new(2, vec![0.0, 0.0, 1.0, 1.0]);
/// assert_eq!(mv_dtw(&slow, &fast), 0.0);
/// ```
///
/// # Panics
/// Panics if either sequence is empty or dimensionalities differ.
pub fn mv_dtw(a: &MvSequence, b: &MvSequence) -> f64 {
    assert!(!a.is_empty() && !b.is_empty());
    assert_eq!(a.dims(), b.dims(), "dimensionality mismatch");
    // Reuse the univariate table machinery by indexing query points: the
    // "query values" are point indices, the base closure resolves them.
    let idx: Vec<Value> = (0..a.len()).map(|i| i as Value).collect();
    let mut t = WarpTable::new(&idx, None);
    let mut dist = f64::INFINITY;
    for bp in b.points() {
        dist = t
            .push_row_with(|qi| city_block(a.point(qi as usize), bp))
            .dist;
    }
    dist
}

/// A grid categorization: one [`Alphabet`] per dimension, cells combined
/// row-major into a single symbol space of size `Π c_d`.
#[derive(Debug, Clone)]
pub struct GridAlphabet {
    axes: Vec<Alphabet>,
}

impl GridAlphabet {
    /// Builds a grid from per-dimension alphabets.
    ///
    /// # Panics
    /// Panics if the combined symbol space exceeds `u32`.
    pub fn new(axes: Vec<Alphabet>) -> Self {
        assert!(!axes.is_empty());
        let total: u128 = axes.iter().map(|a| a.len() as u128).product();
        assert!(total <= u32::MAX as u128, "grid symbol space too large");
        Self { axes }
    }

    /// Equal-length grid over the per-dimension value ranges of `seqs`,
    /// with `c` categories per dimension.
    pub fn equal_length(seqs: &[MvSequence], c: usize) -> Result<Self, CoreError> {
        let dims = seqs.first().map(|s| s.dims()).unwrap_or(0);
        if dims == 0 {
            return Err(CoreError::EmptyDatabase);
        }
        let mut axes = Vec::with_capacity(dims);
        for d in 0..dims {
            // Project dimension d into a univariate store and categorize.
            let store = SequenceStore::from_values(
                seqs.iter()
                    .map(|s| s.points().map(|p| p[d]).collect::<Vec<Value>>()),
            );
            axes.push(Alphabet::equal_length(&store, c)?);
        }
        Ok(Self::new(axes))
    }

    /// Maximum-entropy grid over the per-dimension value distributions
    /// of `seqs`, with `c` categories per dimension.
    pub fn max_entropy(seqs: &[MvSequence], c: usize) -> Result<Self, CoreError> {
        let dims = seqs.first().map(|s| s.dims()).unwrap_or(0);
        if dims == 0 {
            return Err(CoreError::EmptyDatabase);
        }
        let mut axes = Vec::with_capacity(dims);
        for d in 0..dims {
            let store = SequenceStore::from_values(
                seqs.iter()
                    .map(|s| s.points().map(|p| p[d]).collect::<Vec<Value>>()),
            );
            axes.push(Alphabet::max_entropy(&store, c)?);
        }
        Ok(Self::new(axes))
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.axes.len()
    }

    /// Total number of grid cells (the combined alphabet size).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.len()).product()
    }

    /// `true` when the grid has no cells (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-dimension alphabets.
    pub fn axes(&self) -> &[Alphabet] {
        &self.axes
    }

    /// Maps a point to its grid cell symbol (row-major).
    pub fn symbol_for(&self, point: &[Value]) -> Symbol {
        debug_assert_eq!(point.len(), self.axes.len());
        let mut sym: u64 = 0;
        for (a, &v) in self.axes.iter().zip(point) {
            sym = sym * a.len() as u64 + a.symbol_for(v) as u64;
        }
        sym as Symbol
    }

    /// Decomposes a grid symbol into per-dimension symbols.
    pub fn split(&self, sym: Symbol) -> Vec<Symbol> {
        let mut rem = sym as u64;
        let mut parts = vec![0 as Symbol; self.axes.len()];
        for (i, a) in self.axes.iter().enumerate().rev() {
            parts[i] = (rem % a.len() as u64) as Symbol;
            rem /= a.len() as u64;
        }
        parts
    }

    /// Multivariate `D_base-lb`: smallest possible city-block distance
    /// between `point` and any point inside cell `sym` — the sum of the
    /// per-dimension interval distances.
    pub fn base_lb(&self, point: &[Value], sym: Symbol) -> f64 {
        let parts = self.split(sym);
        self.axes
            .iter()
            .zip(&parts)
            .zip(point)
            .map(|((a, &s), &v)| a.base_lb(v, s))
            .sum()
    }

    /// Encodes a multivariate sequence into grid-cell symbols.
    pub fn encode(&self, seq: &MvSequence) -> Vec<Symbol> {
        seq.points().map(|p| self.symbol_for(p)).collect()
    }
}

/// Lower bound of [`mv_dtw`] against a grid-encoded sequence — the
/// multivariate `D_tw-lb` (Theorem 2 carries over because the base
/// distance lower-bounds dimension-wise).
pub fn mv_dtw_lb(q: &MvSequence, cs: &[Symbol], grid: &GridAlphabet) -> f64 {
    assert!(!q.is_empty() && !cs.is_empty());
    let idx: Vec<Value> = (0..q.len()).map(|i| i as Value).collect();
    let mut t = WarpTable::new(&idx, None);
    let mut dist = f64::INFINITY;
    for &sym in cs {
        dist = t
            .push_row_with(|qi| grid.base_lb(q.point(qi as usize), sym))
            .dist;
    }
    dist
}

/// A database of multivariate sequences, aligned with
/// [`SeqId`](crate::sequence::SeqId)s just
/// like the univariate [`SequenceStore`].
#[derive(Debug, Clone, Default)]
pub struct MvStore {
    seqs: Vec<MvSequence>,
}

impl MvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sequence, returning its id.
    ///
    /// # Panics
    /// Panics if the sequence's dimensionality differs from already
    /// stored sequences.
    pub fn push(&mut self, seq: MvSequence) -> crate::sequence::SeqId {
        if let Some(first) = self.seqs.first() {
            assert_eq!(
                first.dims(),
                seq.dims(),
                "all sequences must share dimensionality"
            );
        }
        let id = crate::sequence::SeqId(self.seqs.len() as u32);
        self.seqs.push(seq);
        id
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// The sequence with id `id`.
    pub fn get(&self, id: crate::sequence::SeqId) -> &MvSequence {
        &self.seqs[id.0 as usize]
    }

    /// All sequences.
    pub fn seqs(&self) -> &[MvSequence] {
        &self.seqs
    }

    /// Grid-encodes every sequence into a
    /// [`CatStore`](crate::categorize::CatStore) whose symbols are
    /// grid-cell indices — directly indexable by the univariate suffix
    /// trees.
    pub fn encode(&self, grid: &GridAlphabet) -> crate::categorize::CatStore {
        crate::categorize::CatStore::from_symbols(
            self.seqs.iter().map(|s| grid.encode(s)).collect(),
            grid.len() as u32,
        )
    }
}

/// Multivariate sequential scan: every subsequence of every stored
/// sequence with `mv_dtw(query, ·) ≤ params.epsilon` (exact baseline).
pub fn mv_seq_scan(
    store: &MvStore,
    query: &MvSequence,
    params: &crate::search::SearchParams,
    stats: &mut crate::search::SearchStats,
) -> crate::search::AnswerSet {
    use crate::search::answers::Match;
    assert!(!query.is_empty());
    let idx: Vec<Value> = (0..query.len()).map(|i| i as Value).collect();
    params
        .validate(idx.len())
        .expect("invalid search parameters");
    let epsilon = params.epsilon;
    let max_len = params.effective_max_len(idx.len());
    let min_len = params.effective_min_len(idx.len());
    let mut answers = crate::search::AnswerSet::new();
    let mut table = WarpTable::new(&idx, params.window);
    for (t, seq) in store.seqs().iter().enumerate() {
        let id = crate::sequence::SeqId(t as u32);
        for start in 0..seq.len() {
            table.reset();
            for row in 0..seq.len() - start {
                let len = (row + 1) as u32;
                if let Some(m) = max_len {
                    if len > m {
                        break;
                    }
                }
                if table.next_row_out_of_band() {
                    break;
                }
                let point = seq.point(start + row);
                let stat = table.push_row_with(|qi| city_block(query.point(qi as usize), point));
                stats.rows_pushed += 1;
                if stat.dist <= epsilon && len >= min_len {
                    answers.push(Match {
                        occ: crate::sequence::Occurrence::new(id, start as u32, len),
                        dist: stat.dist,
                    });
                }
                if stat.prunes(epsilon) {
                    break;
                }
            }
        }
    }
    stats.filter_cells += table.cells_computed();
    stats.answers = answers.len() as u64;
    answers
}

/// Multivariate `SimSearch`: lower-bound filtering over a suffix tree
/// built on the grid-encoded store, then exact verification — the §8
/// extension end to end. The tree must be built over
/// [`MvStore::encode`]'s output.
pub fn mv_sim_search<T: crate::search::IndexBackend + Sync>(
    tree: &T,
    grid: &GridAlphabet,
    store: &MvStore,
    query: &MvSequence,
    params: &crate::search::SearchParams,
) -> (crate::search::AnswerSet, crate::search::SearchStats) {
    use crate::search::answers::Match;
    use std::collections::HashMap;
    assert!(!query.is_empty());
    let metrics = crate::search::SearchMetrics::new();
    let idx: Vec<Value> = (0..query.len()).map(|i| i as Value).collect();
    let candidates = crate::search::filter_tree_with(
        tree,
        &|qi, sym| grid.base_lb(query.point(qi as usize), sym),
        &idx,
        params,
        &metrics,
    );
    let mut stats = metrics.snapshot();
    // Post-processing, sharing one table per candidate start (the same
    // scheme as the univariate postprocess).
    let epsilon = params.epsilon;
    let mut by_start: HashMap<(crate::sequence::SeqId, u32), Vec<u32>> = HashMap::new();
    for c in &candidates {
        by_start
            .entry((c.occ.seq, c.occ.start))
            .or_default()
            .push(c.occ.len);
    }
    let mut answers = crate::search::AnswerSet::new();
    let mut table = WarpTable::new(&idx, params.window);
    for ((seq, start), mut lens) in by_start {
        lens.sort_unstable();
        lens.dedup();
        stats.postprocessed += lens.len() as u64;
        let s = store.get(seq);
        table.reset();
        let mut next = 0usize;
        let max_len = *lens.last().expect("non-empty group") as usize;
        for row in 0..max_len {
            let point = s.point(start as usize + row);
            let stat = table.push_row_with(|qi| city_block(query.point(qi as usize), point));
            let len = (row + 1) as u32;
            if next < lens.len() && lens[next] == len {
                if stat.dist <= epsilon {
                    answers.push(Match {
                        occ: crate::sequence::Occurrence::new(seq, start, len),
                        dist: stat.dist,
                    });
                } else {
                    stats.false_alarms += 1;
                }
                next += 1;
            }
            if stat.prunes(epsilon) {
                stats.false_alarms += (lens.len() - next) as u64;
                break;
            }
        }
    }
    stats.postprocess_cells += table.cells_computed();
    stats.answers = answers.len() as u64;
    (answers, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw;

    fn mv(dims: usize, pts: &[f64]) -> MvSequence {
        MvSequence::new(dims, pts.to_vec())
    }

    #[test]
    fn mv_dtw_reduces_to_univariate_when_d_is_1() {
        let a = mv(1, &[3.0, 4.0, 3.0]);
        let b = mv(1, &[4.0, 5.0, 6.0, 7.0, 6.0, 6.0]);
        assert_eq!(
            mv_dtw(&a, &b),
            dtw(&[3.0, 4.0, 3.0], &[4.0, 5.0, 6.0, 7.0, 6.0, 6.0])
        );
    }

    #[test]
    fn mv_dtw_identity_and_symmetry() {
        let a = mv(2, &[1.0, 2.0, 3.0, 4.0]);
        let b = mv(2, &[1.0, 2.5, 3.0, 3.5, 0.0, 0.0]);
        assert_eq!(mv_dtw(&a, &a), 0.0);
        assert_eq!(mv_dtw(&a, &b), mv_dtw(&b, &a));
    }

    #[test]
    fn mv_dtw_warps_repeated_points() {
        let a = mv(2, &[1.0, 1.0, 2.0, 2.0]);
        let b = mv(2, &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
        assert_eq!(mv_dtw(&a, &b), 0.0);
    }

    #[test]
    fn grid_encode_and_split_roundtrip() {
        let seqs = vec![mv(2, &[0.0, 0.0, 10.0, 10.0, 5.0, 7.0])];
        let g = GridAlphabet::equal_length(&seqs, 3).unwrap();
        assert_eq!(g.dims(), 2);
        assert_eq!(g.len(), 9);
        for p in seqs[0].points() {
            let sym = g.symbol_for(p);
            let parts = g.split(sym);
            assert_eq!(parts.len(), 2);
            assert_eq!(sym, parts[0] * g.axes()[1].len() as u32 + parts[1]);
            // The point must lie inside (the observed bounds of) its cell.
            assert_eq!(g.base_lb(p, sym), 0.0);
        }
    }

    #[test]
    fn max_entropy_grid_balances_each_axis() {
        let seqs = vec![mv(
            2,
            &(0..100)
                .flat_map(|i| [(i as f64).exp() * 1e-3, i as f64])
                .collect::<Vec<f64>>(),
        )];
        let g = GridAlphabet::max_entropy(&seqs, 4).unwrap();
        assert_eq!(g.dims(), 2);
        // Each axis categorizes independently; every point is inside its
        // own cell.
        for p in seqs[0].points() {
            assert_eq!(g.base_lb(p, g.symbol_for(p)), 0.0);
        }
        // ME on the skewed exp axis: more resolution near the mass.
        let a0 = &g.axes()[0];
        assert!(a0.len() >= 2);
    }

    #[test]
    fn mv_lower_bound_theorem2() {
        let data = vec![
            mv(2, &[0.0, 1.0, 4.0, 5.0, 9.0, 2.0, 3.0, 8.0]),
            mv(2, &[7.0, 7.0, 1.0, 0.0]),
        ];
        let g = GridAlphabet::equal_length(&data, 2).unwrap();
        let q = mv(2, &[2.0, 2.0, 8.0, 8.0]);
        for s in &data {
            let cs = g.encode(s);
            assert!(mv_dtw_lb(&q, &cs, &g) <= mv_dtw(&q, s) + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of dims")]
    fn bad_point_count_panics() {
        let _ = mv(2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dims_mismatch_panics() {
        let a = mv(1, &[1.0]);
        let b = mv(2, &[1.0, 2.0]);
        let _ = mv_dtw(&a, &b);
    }
}
