//! Prediction from similar subsequences (paper §8): *"in the medical
//! domain, retrieved subsequences can be used for predicting the disease
//! evolution patterns of a patient"*.
//!
//! Given the matches of a query (a recent history), each match's
//! *continuation* — the values that followed it in its own sequence — is
//! a plausible future. [`forecast`] aggregates the continuations into a
//! per-step distribution (mean, min, max), optionally weighting closer
//! matches more heavily.

use crate::search::answers::Match;
use crate::sequence::{SequenceStore, Value};

/// A per-step forecast aggregated from match continuations.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// Weighted mean continuation, one value per step ahead.
    pub mean: Vec<Value>,
    /// Pointwise minimum across continuations.
    pub low: Vec<Value>,
    /// Pointwise maximum across continuations.
    pub high: Vec<Value>,
    /// How many continuations supported each step (matches near the end
    /// of their sequence contribute fewer steps).
    pub support: Vec<u32>,
}

/// How continuations are weighted in the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Weighting {
    /// Every continuation counts equally.
    Uniform,
    /// Weight `1 / (dist + λ)`: closer matches dominate. `λ` guards
    /// against division by zero for exact matches.
    InverseDistance {
        /// Additive smoothing constant (> 0).
        lambda: f64,
    },
}

/// Anchors each match's continuation at its final matched value and
/// aggregates up to `horizon` following steps.
///
/// Continuations are reported as *offsets from the match's last value*,
/// so histories at different absolute levels combine meaningfully; add
/// the query's last value to `mean` to obtain an absolute forecast.
///
/// Returns `None` when no match has any continuation.
pub fn forecast(
    store: &SequenceStore,
    matches: &[Match],
    horizon: usize,
    weighting: Weighting,
) -> Option<Forecast> {
    assert!(horizon >= 1, "horizon must be positive");
    let mut wsum = vec![0.0f64; horizon];
    let mut mean = vec![0.0f64; horizon];
    let mut low = vec![f64::INFINITY; horizon];
    let mut high = vec![f64::NEG_INFINITY; horizon];
    let mut support = vec![0u32; horizon];
    for m in matches {
        let seq = store.get(m.occ.seq);
        let end = m.occ.end() as usize;
        if end >= seq.len() {
            continue; // no continuation
        }
        let anchor = seq.values()[end - 1];
        let w = match weighting {
            Weighting::Uniform => 1.0,
            Weighting::InverseDistance { lambda } => {
                assert!(lambda > 0.0, "lambda must be positive");
                1.0 / (m.dist + lambda)
            }
        };
        for (step, &v) in seq.values()[end..].iter().take(horizon).enumerate() {
            let delta = v - anchor;
            wsum[step] += w;
            mean[step] += w * delta;
            low[step] = low[step].min(delta);
            high[step] = high[step].max(delta);
            support[step] += 1;
        }
    }
    if support[0] == 0 {
        return None;
    }
    let steps = support.iter().take_while(|&&s| s > 0).count();
    mean.truncate(steps);
    low.truncate(steps);
    high.truncate(steps);
    support.truncate(steps);
    for (m, w) in mean.iter_mut().zip(&wsum) {
        *m /= w;
    }
    Some(Forecast {
        mean,
        low,
        high,
        support,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{Occurrence, SeqId};

    fn m(seq: u32, start: u32, len: u32, dist: f64) -> Match {
        Match {
            occ: Occurrence::new(SeqId(seq), start, len),
            dist,
        }
    }

    #[test]
    fn single_continuation_is_reproduced() {
        let store = SequenceStore::from_values(vec![vec![1.0, 2.0, 3.0, 5.0, 4.0]]);
        // Match covers [1,2]; continuation deltas from anchor 2.0 are
        // +1, +3, +2.
        let f = forecast(&store, &[m(0, 0, 2, 0.0)], 3, Weighting::Uniform).unwrap();
        assert_eq!(f.mean, vec![1.0, 3.0, 2.0]);
        assert_eq!(f.low, f.mean);
        assert_eq!(f.high, f.mean);
        assert_eq!(f.support, vec![1, 1, 1]);
    }

    #[test]
    fn multiple_continuations_average_and_bound() {
        let store = SequenceStore::from_values(vec![
            vec![5.0, 6.0], // match [5], continues +1
            vec![5.0, 2.0], // match [5], continues -3
        ]);
        let matches = [m(0, 0, 1, 0.0), m(1, 0, 1, 0.0)];
        let f = forecast(&store, &matches, 2, Weighting::Uniform).unwrap();
        assert_eq!(f.mean, vec![-1.0]); // (1 + -3) / 2
        assert_eq!(f.low, vec![-3.0]);
        assert_eq!(f.high, vec![1.0]);
        assert_eq!(f.support, vec![2]); // nothing supports step 2
    }

    #[test]
    fn inverse_distance_weighting_prefers_closer_matches() {
        let store = SequenceStore::from_values(vec![
            vec![5.0, 9.0], // close match: continues +4
            vec![5.0, 1.0], // far match: continues -4
        ]);
        let matches = [m(0, 0, 1, 0.1), m(1, 0, 1, 10.0)];
        let f = forecast(
            &store,
            &matches,
            1,
            Weighting::InverseDistance { lambda: 0.1 },
        )
        .unwrap();
        // Weight 5.0 vs ~0.099: the mean leans strongly to +4.
        assert!(f.mean[0] > 3.5, "weighted mean {}", f.mean[0]);
    }

    #[test]
    fn matches_without_continuation_are_skipped() {
        let store = SequenceStore::from_values(vec![vec![1.0, 2.0]]);
        // The match ends exactly at the sequence end.
        assert!(forecast(&store, &[m(0, 0, 2, 0.0)], 3, Weighting::Uniform).is_none());
    }

    #[test]
    fn ragged_support_truncates() {
        let store = SequenceStore::from_values(vec![
            vec![1.0, 2.0, 3.0],      // 1-step continuation
            vec![1.0, 2.0, 3.0, 4.0], // 2-step continuation
        ]);
        let matches = [m(0, 0, 2, 0.0), m(1, 0, 2, 0.0)];
        let f = forecast(&store, &matches, 5, Weighting::Uniform).unwrap();
        assert_eq!(f.support, vec![2, 1]);
        assert_eq!(f.mean.len(), 2);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_panics() {
        let store = SequenceStore::from_values(vec![vec![1.0]]);
        let _ = forecast(&store, &[], 0, Weighting::Uniform);
    }
}
