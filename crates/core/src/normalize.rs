//! Normal-form preprocessing for shape-based matching.
//!
//! `D_tw` on raw values conflates *level* with *shape*: a $20 stock and a
//! $200 stock tracing the same pattern are far apart. The paper's
//! related work (Goldin & Kanellakis [11]) matches *normal forms* that
//! are invariant to shifting and scaling; these helpers produce such
//! forms so the index can be built over shape rather than level.
//!
//! All transforms are per-sequence. Apply the same transform to queries
//! (for z-normalization, normalize the query against *its own* moments —
//! the standard convention for shape matching).

use crate::sequence::{Sequence, SequenceStore, Value};

/// Subtracts the sequence mean: offset-invariant form.
pub fn mean_shift(values: &[Value]) -> Vec<Value> {
    if values.is_empty() {
        return Vec::new();
    }
    let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| v - mean).collect()
}

/// Z-normalization: zero mean, unit variance. Constant sequences map to
/// all-zero (their variance is 0).
///
/// ```
/// use warptree_core::normalize::z_normalize;
/// use warptree_core::dtw::dtw;
/// // A $20 stock and a $200 stock tracing the same shape become
/// // identical after z-normalization.
/// let low: Vec<f64> = vec![20.0, 22.0, 21.0, 24.0];
/// let high: Vec<f64> = low.iter().map(|v| v * 10.0).collect();
/// assert!(dtw(&z_normalize(&low), &z_normalize(&high)) < 1e-9);
/// ```
pub fn z_normalize(values: &[Value]) -> Vec<Value> {
    if values.is_empty() {
        return Vec::new();
    }
    let n = values.len() as f64;
    let mean: f64 = values.iter().sum::<f64>() / n;
    let var: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    if std < 1e-12 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - mean) / std).collect()
}

/// Min-max scaling into `[0, 1]`. Constant sequences map to all-zero.
pub fn min_max(values: &[Value]) -> Vec<Value> {
    if values.is_empty() {
        return Vec::new();
    }
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    let span = hi - lo;
    if span < 1e-12 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - lo) / span).collect()
}

/// First differences: `d[i] = v[i+1] − v[i]` (length shrinks by one).
/// Matching differences compares *movements*, the form the paper's
/// artificial data is generated in.
pub fn first_differences(values: &[Value]) -> Vec<Value> {
    values.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Applies a per-sequence transform to a whole store, skipping sequences
/// the transform empties (e.g. single-element sequences under
/// [`first_differences`]).
pub fn normalize_store(
    store: &SequenceStore,
    transform: impl Fn(&[Value]) -> Vec<Value>,
) -> SequenceStore {
    let mut out = SequenceStore::new();
    for (_, s) in store.iter() {
        let t = transform(s.values());
        if !t.is_empty() {
            out.push(Sequence::new(t));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw;

    #[test]
    fn z_normalize_moments() {
        let v = [3.0, 7.0, 5.0, 9.0, 1.0];
        let z = z_normalize(&v);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalize_is_shift_scale_invariant() {
        let v = [3.0, 7.0, 5.0, 9.0, 1.0];
        let shifted_scaled: Vec<f64> = v.iter().map(|x| x * 13.0 + 200.0).collect();
        let (a, b) = (z_normalize(&v), z_normalize(&shifted_scaled));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
        // So shapes at different levels become DTW-identical.
        assert!(dtw(&a, &b) < 1e-9);
    }

    #[test]
    fn constant_sequences_do_not_explode() {
        assert_eq!(z_normalize(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 0.0]);
        assert_eq!(min_max(&[5.0, 5.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn min_max_bounds() {
        let v = [2.0, 10.0, 6.0];
        let m = min_max(&v);
        assert_eq!(m[0], 0.0);
        assert_eq!(m[1], 1.0);
        assert!((m[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_shift_centers() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(mean_shift(&v), vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn first_differences_shape() {
        let v = [1.0, 4.0, 2.0, 2.0];
        assert_eq!(first_differences(&v), vec![3.0, -2.0, 0.0]);
        assert!(first_differences(&[7.0]).is_empty());
    }

    #[test]
    fn normalize_store_applies_and_skips_empty() {
        let store = crate::sequence::SequenceStore::from_values(vec![
            vec![1.0, 2.0, 3.0],
            vec![9.0], // drops under first_differences
        ]);
        let out = normalize_store(&store, first_differences);
        assert_eq!(out.len(), 1);
        assert_eq!(out.get(crate::sequence::SeqId(0)).values(), &[1.0, 1.0]);
    }

    #[test]
    fn empty_inputs() {
        assert!(z_normalize(&[]).is_empty());
        assert!(min_max(&[]).is_empty());
        assert!(mean_shift(&[]).is_empty());
    }
}
