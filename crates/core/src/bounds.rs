//! The lower-bound distance functions `D_tw-lb` (paper §5.3) and
//! `D_tw-lb2` (paper §6.2).
//!
//! Inside a categorized suffix tree the exact `D_tw` between a numeric
//! query and a symbol path cannot be computed; filtering instead uses
//! `D_tw-lb`, which replaces the base distance with the point-to-interval
//! distance [`Alphabet::base_lb`]:
//!
//! * **Theorem 2** — `D_tw-lb(S_i, CS_j) ≤ D_tw(S_i, S_j)`, so filtering
//!   with `D_tw-lb` produces no false dismissals.
//!
//! The sparse tree additionally needs distances to *non-stored* suffixes
//! `CS_j[p:-]` that begin inside a leading run of `N` equal symbols:
//!
//! * **Definition 4 / Theorem 3** — for `p = 2..N`,
//!   `D_tw-lb2(S_i, CS_j[p:-]) = D_tw-lb(S_i, CS_j) − (p−1)·D_base-lb(S_i[1], CS_j[1])`
//!   and `D_tw-lb2 ≤ D_tw-lb(S_i, CS_j[p:-]) ≤ D_tw(S_i, S_j[p:-])`.
//!
//! The functions here materialize full tables; the tree search uses the
//! incremental [`crate::dtw::WarpTable`] with the same base
//! distances, sharing rows across suffixes.

use crate::categorize::{Alphabet, Symbol};
use crate::dtw::WarpTable;
use crate::sequence::Value;

/// `D_tw-lb(q, cs)` (Definition 3): lower bound of `D_tw(q, s)` for any
/// numeric sequence `s` whose categorized form is `cs`.
///
/// # Panics
/// Panics if either input is empty.
pub fn dtw_lb(q: &[Value], cs: &[Symbol], alphabet: &Alphabet) -> f64 {
    assert!(!cs.is_empty(), "D_tw-lb is defined for non-null sequences");
    let mut t = WarpTable::new(q, None);
    let mut dist = f64::INFINITY;
    for &sym in cs {
        dist = t.push_row_with(|qv| alphabet.base_lb(qv, sym)).dist;
    }
    dist
}

/// Prefix lower bounds: element `r-1` is `D_tw-lb(q, cs[..r])`.
pub fn dtw_lb_prefixes(q: &[Value], cs: &[Symbol], alphabet: &Alphabet) -> Vec<f64> {
    let mut t = WarpTable::new(q, None);
    cs.iter()
        .map(|&sym| t.push_row_with(|qv| alphabet.base_lb(qv, sym)).dist)
        .collect()
}

/// `D_tw-lb2(q, cs[p:-])` (Definition 4): lower bound for a non-stored
/// suffix that starts `shift = p − 1` symbols into the leading run of
/// `cs`.
///
/// # Panics
/// Panics unless `1 <= shift < leading run length of cs`. Theorem 3
/// only proves the shifted value is a lower bound *inside* the leading
/// run; an out-of-range shift would silently return a number that can
/// exceed the true distance (a false dismissal), so the precondition is
/// enforced in release builds too — not just via `debug_assert!`.
pub fn dtw_lb2(q: &[Value], cs: &[Symbol], shift: u32, alphabet: &Alphabet) -> f64 {
    assert!(
        shift >= 1,
        "shift must be at least 1 (Definition 4: p >= 2)"
    );
    assert!(
        (lead_run(cs) as u32) > shift,
        "shift must stay inside the leading run"
    );
    let full = dtw_lb(q, cs, alphabet);
    full - shift as f64 * alphabet.base_lb(q[0], cs[0])
}

/// Length of the run of equal symbols at the start of `cs` (the `N` of
/// Definition 4). Zero for an empty slice.
pub fn lead_run(cs: &[Symbol]) -> usize {
    match cs.first() {
        None => 0,
        Some(&first) => cs.iter().take_while(|&&s| s == first).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw;
    use crate::sequence::SequenceStore;

    fn alphabet2() -> (SequenceStore, Alphabet) {
        // Two categories as in the paper's §5 example:
        // C1 ~ low values, C2 ~ high values.
        let store =
            SequenceStore::from_values(vec![vec![0.1, 1.0, 2.0, 3.9], vec![4.0, 6.0, 8.0, 10.0]]);
        let a = Alphabet::equal_length(&store, 2).unwrap();
        (store, a)
    }

    #[test]
    fn lb_is_a_lower_bound_theorem2() {
        let (_, a) = alphabet2();
        let q = [5.0, 1.5, 9.0];
        let s = [2.0, 8.0, 8.0, 0.5];
        let cs = a.encode(&s);
        assert!(dtw_lb(&q, &cs, &a) <= dtw(&q, &s) + 1e-12);
    }

    #[test]
    fn lb_equals_exact_for_singleton_alphabet() {
        let store = SequenceStore::from_values(vec![vec![1.0, 2.0, 5.0, 2.0]]);
        let a = Alphabet::singleton(&store).unwrap();
        let q = [3.0, 0.5];
        let s = [2.0, 5.0, 1.0];
        let cs = a.encode(&s);
        assert_eq!(dtw_lb(&q, &cs, &a), dtw(&q, &s));
    }

    #[test]
    fn lb_prefixes_match_individual_calls() {
        let (_, a) = alphabet2();
        let q = [5.0, 1.5];
        let s = [2.0, 8.0, 0.5];
        let cs = a.encode(&s);
        let pre = dtw_lb_prefixes(&q, &cs, &a);
        for r in 1..=cs.len() {
            assert_eq!(pre[r - 1], dtw_lb(&q, &cs[..r], &a), "prefix {r}");
        }
    }

    #[test]
    fn lead_run_basics() {
        assert_eq!(lead_run(&[]), 0);
        assert_eq!(lead_run(&[7]), 1);
        assert_eq!(lead_run(&[1, 1, 1, 2, 1]), 3);
        assert_eq!(lead_run(&[2, 1, 1]), 1);
    }

    #[test]
    fn lb2_theorem3_chain() {
        let (_, a) = alphabet2();
        // Numeric sequence whose categorized form has a leading run.
        let s = [1.0, 2.0, 0.5, 9.0, 8.0]; // categorizes to [0,0,0,1,1]
        let cs = a.encode(&s);
        assert_eq!(lead_run(&cs), 3);
        let q = [6.0, 1.0, 7.0];
        for shift in 1..3u32 {
            let lb2 = dtw_lb2(&q, &cs, shift, &a);
            let lb = dtw_lb(&q, &cs[shift as usize..], &a);
            let exact = dtw(&q, &s[shift as usize..]);
            assert!(lb2 <= lb + 1e-12, "lb2 <= lb failed at shift {shift}");
            assert!(lb <= exact + 1e-12, "lb <= exact failed at shift {shift}");
        }
    }

    #[test]
    #[should_panic(expected = "leading run")]
    fn lb2_rejects_shift_outside_leading_run() {
        // Must fire in release builds too (it guards a correctness
        // precondition, not a mere debugging aid): this test is run
        // under `--release` in CI, where a `debug_assert!` would let
        // the garbage value through silently.
        let (_, a) = alphabet2();
        let s = [1.0, 2.0, 0.5, 9.0, 8.0]; // leading run of 3
        let cs = a.encode(&s);
        let _ = dtw_lb2(&[6.0, 1.0], &cs, 3, &a);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn lb2_rejects_zero_shift() {
        let (_, a) = alphabet2();
        let cs = a.encode(&[1.0, 1.0, 9.0]);
        let _ = dtw_lb2(&[6.0], &cs, 0, &a);
    }

    #[test]
    fn lb2_zero_base_means_equal_to_lb_of_full() {
        let (_, a) = alphabet2();
        let s = [1.0, 1.0, 9.0];
        let cs = a.encode(&s);
        // Query first element inside category 0's observed range:
        // D_base-lb = 0, so lb2 == lb of the full suffix.
        let q = [1.0, 5.0];
        assert_eq!(a.base_lb(q[0], cs[0]), 0.0);
        assert_eq!(dtw_lb2(&q, &cs, 1, &a), dtw_lb(&q, &cs, &a));
    }
}
