#![warn(missing_docs)]

//! # warptree-core
//!
//! Core algorithms of *"Efficient Searches for Similar Subsequences of
//! Different Lengths in Sequence Databases"* (Park, Chu, Yoon, Hsu —
//! ICDE 2000): the time-warping distance, categorization of continuous
//! values into discrete alphabets, the lower-bound distance functions
//! `D_tw-lb` / `D_tw-lb2`, and the filter-and-refine similarity search
//! algorithms (`SimSearch-ST`, `SimSearch-ST_C`, `SimSearch-SST_C`)
//! together with the sequential-scanning baseline.
//!
//! This crate is index-structure agnostic: the searches run over any
//! implementation of [`search::IndexBackend`]. The companion crates
//! `warptree-suffix` (in-memory trees) and `warptree-disk` (paged
//! on-disk trees) provide the index structures; `warptree-data` provides
//! the evaluation workloads.
//!
//! ## Quick start
//!
//! ```
//! use warptree_core::prelude::*;
//!
//! // A tiny database and an exact sequential-scan search.
//! let store = SequenceStore::from_values(vec![
//!     vec![20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0],
//!     vec![20.0, 21.0, 20.0, 23.0],
//! ]);
//! let query = [20.0, 21.0, 20.0, 23.0];
//! let params = SearchParams::with_epsilon(0.0);
//! let mut stats = SearchStats::default();
//! let answers = seq_scan(&store, &query, &params, SeqScanMode::Full, &mut stats);
//! // The intro example: S2 warps onto S1 exactly.
//! assert!(answers
//!     .matches()
//!     .iter()
//!     .any(|m| m.occ.seq == SeqId(0) && m.dist == 0.0));
//! ```

pub mod bounds;
pub mod categorize;
pub mod cluster;
pub mod dtw;
pub mod dtw_path;
pub mod error;
pub mod multivariate;
pub mod normalize;
pub mod parallel;
pub mod predict;
pub mod search;
pub mod sequence;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use crate::categorize::{Alphabet, CatStore, CategorizationMethod, Category, Symbol};
    pub use crate::dtw::{dtw, dtw_early_abandon, dtw_windowed, WarpTable};
    pub use crate::dtw_path::{dtw_with_path, Alignment};
    pub use crate::error::{CoreError, ErrorCode};
    pub use crate::search::{
        filter_tree, postprocess, run_query, run_query_with, seq_scan, AnswerSet, BackendKind,
        Candidate, Coverage, IndexBackend, KnnParams, Match, OutputKind, QueryKind, QueryOutput,
        QueryRequest, SearchMetrics, SearchParams, SearchStats, SegmentedIndex, SeqScanMode,
    };
    pub use crate::sequence::{Occurrence, SeqId, Sequence, SequenceStore, Value};
}

pub use prelude::*;
