//! Warping-path extraction: the element mapping behind a time-warping
//! distance (paper Figure 1(b)).
//!
//! The cumulative table gives the *distance*; tracing back from the
//! final cell through the minimal predecessors recovers *which elements
//! matched which* — the alignment users need to visualize or post-process
//! a match (e.g. transferring annotations between a query beat and a
//! matched beat).

use crate::sequence::Value;

/// One matched pair of element positions (0-based): `(i, j)` means
/// `a[i]` was aligned with `b[j]`.
pub type Step = (usize, usize);

/// The result of [`dtw_with_path`]: the distance plus the full warping
/// path from `(0, 0)` to `(|a|−1, |b|−1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    /// The time-warping distance.
    pub dist: f64,
    /// Matched element pairs in order; every consecutive pair advances
    /// `i`, `j`, or both by exactly one.
    pub path: Vec<Step>,
}

impl Alignment {
    /// For each element of `a`, the (inclusive) range of `b` positions
    /// it was matched to.
    pub fn ranges_for_a(&self, a_len: usize) -> Vec<(usize, usize)> {
        let mut ranges = vec![(usize::MAX, 0usize); a_len];
        for &(i, j) in &self.path {
            let r = &mut ranges[i];
            r.0 = r.0.min(j);
            r.1 = r.1.max(j);
        }
        ranges
    }
}

/// Computes `D_tw(a, b)` and the optimal warping path.
///
/// Ties between predecessors are broken preferring the diagonal (fewest
/// matched pairs), then the upward step.
///
/// ```
/// use warptree_core::dtw_path::dtw_with_path;
/// let al = dtw_with_path(&[1.0, 9.0], &[1.0, 1.0, 9.0]);
/// assert_eq!(al.dist, 0.0);
/// // The duplicated 1.0 maps onto the same query element.
/// assert_eq!(al.path, vec![(0, 0), (0, 1), (1, 2)]);
/// ```
///
/// # Panics
/// Panics if either sequence is empty.
pub fn dtw_with_path(a: &[Value], b: &[Value]) -> Alignment {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "D_tw is defined for non-null sequences"
    );
    let (n, m) = (a.len(), b.len());
    // Full table (row-major over b) — path extraction needs all cells.
    let mut cells = vec![f64::INFINITY; n * m];
    for j in 0..m {
        for i in 0..n {
            let base = (a[i] - b[j]).abs();
            let best = if i == 0 && j == 0 {
                0.0
            } else {
                let up = if j > 0 {
                    cells[(j - 1) * n + i]
                } else {
                    f64::INFINITY
                };
                let left = if i > 0 {
                    cells[j * n + i - 1]
                } else {
                    f64::INFINITY
                };
                let diag = if i > 0 && j > 0 {
                    cells[(j - 1) * n + i - 1]
                } else {
                    f64::INFINITY
                };
                diag.min(up).min(left)
            };
            cells[j * n + i] = base + best;
        }
    }
    // Trace back.
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n - 1, m - 1);
    loop {
        path.push((i, j));
        if i == 0 && j == 0 {
            break;
        }
        let up = if j > 0 {
            cells[(j - 1) * n + i]
        } else {
            f64::INFINITY
        };
        let left = if i > 0 {
            cells[j * n + i - 1]
        } else {
            f64::INFINITY
        };
        let diag = if i > 0 && j > 0 {
            cells[(j - 1) * n + i - 1]
        } else {
            f64::INFINITY
        };
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            j -= 1;
        } else {
            i -= 1;
        }
    }
    path.reverse();
    Alignment {
        dist: cells[n * m - 1],
        path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw;

    fn check_path_valid(a: &[f64], b: &[f64], al: &Alignment) {
        // Boundary conditions.
        assert_eq!(al.path.first(), Some(&(0, 0)));
        assert_eq!(al.path.last(), Some(&(a.len() - 1, b.len() - 1)));
        // Monotone unit steps.
        for w in al.path.windows(2) {
            let (di, dj) = (w[1].0 - w[0].0, w[1].1 - w[0].1);
            assert!(di <= 1 && dj <= 1 && di + dj >= 1, "bad step {w:?}");
        }
        // Path cost equals the reported (and independent) distance.
        let cost: f64 = al.path.iter().map(|&(i, j)| (a[i] - b[j]).abs()).sum();
        assert!((cost - al.dist).abs() < 1e-9, "cost {cost} != {}", al.dist);
        assert!((al.dist - dtw(a, b)).abs() < 1e-9);
    }

    #[test]
    fn paper_figure1_mapping() {
        let s3 = [3.0, 4.0, 3.0];
        let s4 = [4.0, 5.0, 6.0, 7.0, 6.0, 6.0];
        let al = dtw_with_path(&s3, &s4);
        check_path_valid(&s3, &s4, &al);
        assert_eq!(al.dist, 12.0);
        // Every element of the longer sequence appears in the path.
        let bs: std::collections::HashSet<usize> = al.path.iter().map(|&(_, j)| j).collect();
        assert_eq!(bs.len(), 6);
    }

    #[test]
    fn identical_sequences_align_diagonally() {
        let a = [1.0, 5.0, 2.0, 8.0];
        let al = dtw_with_path(&a, &a);
        assert_eq!(al.dist, 0.0);
        assert_eq!(al.path, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn stretched_sequence_maps_many_to_one() {
        // The paper's intro example: every element of S2 duplicates.
        let s1 = [20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0];
        let s2 = [20.0, 21.0, 20.0, 23.0];
        let al = dtw_with_path(&s1, &s2);
        check_path_valid(&s1, &s2, &al);
        assert_eq!(al.dist, 0.0);
        // Each s2 element covers exactly two s1 elements.
        let mut counts = [0usize; 4];
        for &(_, j) in &al.path {
            counts[j] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2]);
    }

    #[test]
    fn ranges_for_a() {
        let a = [1.0, 9.0];
        let b = [1.0, 1.0, 9.0];
        let al = dtw_with_path(&a, &b);
        let ranges = al.ranges_for_a(2);
        assert_eq!(ranges[0], (0, 1)); // a[0] covers b[0..=1]
        assert_eq!(ranges[1], (2, 2));
    }

    #[test]
    fn random_paths_always_valid() {
        // Deterministic pseudo-random sweep.
        let mut x = 12345u64;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x >> 33) % 17) as f64
        };
        for trial in 0..50 {
            let la = 1 + (trial % 7);
            let lb = 1 + (trial % 5);
            let a: Vec<f64> = (0..la).map(|_| next()).collect();
            let b: Vec<f64> = (0..lb).map(|_| next()).collect();
            let al = dtw_with_path(&a, &b);
            check_path_valid(&a, &b, &al);
        }
    }

    #[test]
    #[should_panic(expected = "non-null")]
    fn empty_input_panics() {
        let _ = dtw_with_path(&[], &[1.0]);
    }
}
