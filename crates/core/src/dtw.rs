//! The time-warping distance `D_tw` (paper §3) and the incremental
//! cumulative-distance-table machinery shared by every search algorithm.
//!
//! # Definitions
//!
//! For non-null sequences `S_i`, `S_j` (Definition 1):
//!
//! ```text
//! D_tw(S_i, S_j) = D_base(S_i[1], S_j[1]) + min { D_tw(S_i, S_j[2:-]),
//!                                                 D_tw(S_i[2:-], S_j),
//!                                                 D_tw(S_i[2:-], S_j[2:-]) }
//! D_base(a, b)   = |a - b|
//! ```
//!
//! computed by dynamic programming over the cumulative table `γ(x, y)`
//! (Definition 2). We orient the table with the **query along the x-axis
//! (columns)** and the data path along the y-axis (rows): the last column
//! of row `r` is then the distance between the query and the length-`r`
//! prefix of the data — exactly what the suffix-tree traversal inspects,
//! one row per edge symbol.
//!
//! # Theorem 1 (branch pruning)
//!
//! > If all columns of the last row of the cumulative distance table have
//! > values greater than ε, adding more rows cannot yield values ≤ ε.
//!
//! This holds because each cell adds a non-negative base distance to the
//! minimum of its three predecessors, so the row minimum is non-decreasing
//! as rows are appended. [`WarpTable::push_row_with`] reports the row
//! minimum (`mDist`) so callers can cut off traversal/scanning.
//!
//! # Warping window (paper §8)
//!
//! An optional Sakoe–Chiba band of width `w` restricts the table to cells
//! with `|x − y| ≤ w`. Besides the usual DTW robustness benefits, the paper
//! notes it bounds answer lengths to `|Q| ± w`, which lets the index skip
//! suffixes/depths outside that range.

use crate::sequence::Value;

/// Result of appending one row to a [`WarpTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowStat {
    /// `γ(|Q|, r)`: distance between the full query and the data prefix of
    /// length `r` (the paper's `dist`).
    pub dist: f64,
    /// Minimum over the row's (in-band) columns (the paper's `mDist`);
    /// by Theorem 1 traversal may stop once `min > ε`.
    pub min: f64,
}

impl RowStat {
    /// `true` when, by Theorem 1, no deeper row can reach `epsilon`.
    #[inline]
    pub fn prunes(&self, epsilon: f64) -> bool {
        self.min > epsilon
    }
}

/// An incrementally grown cumulative time-warping distance table.
///
/// The query is fixed at construction; data rows are appended with
/// [`push_row_with`](Self::push_row_with) and removed with
/// [`truncate`](Self::truncate), which is what lets a depth-first
/// suffix-tree traversal share table prefixes across all suffixes with a
/// common prefix (the paper's `R_d` reduction factor).
#[derive(Debug, Clone)]
pub struct WarpTable {
    query: Vec<Value>,
    /// Row-major cells, stride `query.len() + 1`; row 0 is the boundary
    /// row `[0, ∞, ∞, …]`.
    cells: Vec<f64>,
    stats: Vec<RowStat>,
    window: Option<u32>,
    /// Total cells computed over this table's lifetime (monotonic; used to
    /// report the machine-independent cost model of §4.3/§5.5).
    cells_computed: u64,
    /// `(first, last)` column (0-based into the stride, column 0
    /// included) of the most recent row with value `≤ limit`, as left
    /// by [`push_value_bounded`](Self::push_value_bounded) — the pruned
    /// column range the next bounded row starts from. `None` whenever
    /// the last row was produced by an unbounded push (or after
    /// `truncate`/`reset`), in which case the next bounded push rescans
    /// the previous row.
    bound_state: Option<(usize, usize)>,
}

impl WarpTable {
    /// Creates a table for `query` with an optional Sakoe–Chiba band.
    ///
    /// # Panics
    /// Panics if the query is empty.
    pub fn new(query: &[Value], window: Option<u32>) -> Self {
        assert!(!query.is_empty(), "query must be non-empty");
        let stride = query.len() + 1;
        let mut cells = Vec::with_capacity(stride * 16);
        cells.push(0.0);
        cells.extend(std::iter::repeat_n(f64::INFINITY, query.len()));
        Self {
            query: query.to_vec(),
            cells,
            stats: Vec::with_capacity(16),
            window,
            cells_computed: 0,
            bound_state: None,
        }
    }

    /// The query this table was built for.
    #[inline]
    pub fn query(&self) -> &[Value] {
        &self.query
    }

    /// Number of data rows currently in the table (excluding the boundary
    /// row).
    #[inline]
    pub fn depth(&self) -> u32 {
        self.stats.len() as u32
    }

    /// The stats of row `r` (1-based, `1..=depth`).
    #[inline]
    pub fn row_stat(&self, r: u32) -> RowStat {
        self.stats[(r - 1) as usize]
    }

    /// Total cells computed so far (cost counter).
    #[inline]
    pub fn cells_computed(&self) -> u64 {
        self.cells_computed
    }

    /// `true` when a band is configured and every cell of the next row
    /// would fall outside it (row index > |Q| + w), i.e. descending
    /// further cannot produce any finite value.
    #[inline]
    pub fn next_row_out_of_band(&self) -> bool {
        match self.window {
            Some(w) => self.depth() as u64 + 1 > self.query.len() as u64 + w as u64,
            None => false,
        }
    }

    /// Appends a data row whose base distances against the query elements
    /// are produced by `base` (`base(q)` = base distance between query
    /// element `q` and the new data element).
    ///
    /// Passing `|q| (q - v).abs()` gives the exact `D_tw`; passing
    /// `|q| alphabet.base_lb(q, sym)` gives the lower bound `D_tw-lb`
    /// (Definition 3) — the recurrence is identical, only the base
    /// distance changes.
    pub fn push_row_with(&mut self, base: impl Fn(Value) -> f64) -> RowStat {
        self.bound_state = None;
        let stride = self.query.len() + 1;
        let r = self.stats.len() + 1; // 1-based row index being added
        let prev_start = (r - 1) * stride;
        self.cells.push(f64::INFINITY); // column 0 boundary
        let mut min = f64::INFINITY;
        let Some((lo, hi)) = self.band(r) else {
            // Entire row outside the band: all-infinite row.
            self.cells
                .extend(std::iter::repeat_n(f64::INFINITY, self.query.len()));
            let stat = RowStat {
                dist: f64::INFINITY,
                min: f64::INFINITY,
            };
            self.stats.push(stat);
            return stat;
        };
        let mut diag = self.cells[prev_start + lo - 1]; // γ(x-1, r-1)
        let mut left = f64::INFINITY; // γ(x-1, r)
                                      // Columns before the band are out of range.
        for _ in 1..lo {
            self.cells.push(f64::INFINITY);
        }
        for x in lo..=hi {
            let up = self.cells[prev_start + x]; // γ(x, r-1)
            let best = diag.min(up).min(left);
            let cell = if best.is_finite() {
                base(self.query[x - 1]) + best
            } else {
                f64::INFINITY
            };
            self.cells.push(cell);
            if cell < min {
                min = cell;
            }
            diag = up;
            left = cell;
        }
        for _ in hi + 1..stride {
            self.cells.push(f64::INFINITY);
        }
        self.cells_computed += (hi - lo + 1) as u64;
        let dist = self.cells[r * stride + self.query.len()];
        let stat = RowStat { dist, min };
        self.stats.push(stat);
        stat
    }

    /// Appends a row for an exact numeric data element.
    #[inline]
    pub fn push_value(&mut self, v: Value) -> RowStat {
        self.push_row_with(|q| (q - v).abs())
    }

    /// Appends a data row like [`push_value`](Self::push_value), but
    /// skips cells provably greater than `limit` (pruned DTW): since
    /// every cell adds a non-negative base distance to the minimum of
    /// its predecessors, cumulative values are non-decreasing along any
    /// warping path, and a cell above `limit` can never feed a cell at
    /// or below it. The row is therefore computed only over the column
    /// range whose predecessors may still be `≤ limit`; everything
    /// outside is reported as `f64::INFINITY`.
    ///
    /// Every cell whose *true* value is `≤ limit` is computed exactly,
    /// so `dist` and `min` are exact whenever they are `≤ limit`, and
    /// [`RowStat::prunes`]`(limit)` decides identically to the unpruned
    /// table — only [`cells_computed`](Self::cells_computed) shrinks.
    /// `limit` must not increase across one run of bounded pushes (the
    /// pruned range assumes earlier skips stay skippable).
    #[inline]
    pub fn push_value_bounded(&mut self, v: Value, limit: f64) -> RowStat {
        self.push_value_pruned(v, limit, &[])
    }

    /// [`push_value_bounded`](Self::push_value_bounded) with per-column
    /// *remainders*: `rem[x−1]` is a caller-supplied lower bound on the
    /// cost of completing a warping path from column `x` to the final
    /// column (e.g. a reversed LB_Keogh of the data still to come; pass
    /// `&[]` for none). A cell is poisoned to infinity once
    /// `cell + rem[x] > limit` — it provably cannot lie on any path
    /// whose final distance is `≤ limit`.
    ///
    /// Guarantees with a valid `rem`: `dist` is exact whenever it is
    /// `≤ limit` (the last column's remainder is 0), and a
    /// [`RowStat::prunes`]`(limit)` report implies every current and
    /// deeper row's `dist` exceeds `limit` — the Theorem-1 abandon
    /// stays sound, though it may (correctly) fire *earlier* than on
    /// the unpruned table, and `min` itself is no longer exact.
    pub fn push_value_pruned(&mut self, v: Value, limit: f64, rem: &[f64]) -> RowStat {
        let n = self.query.len();
        let stride = n + 1;
        let r = self.stats.len() + 1; // 1-based row index being added
        let prev_start = (r - 1) * stride;
        // Viable column range of the previous row: tracked by the last
        // bounded push, or recovered by scanning after an unbounded
        // push / reset (row 0's boundary gives (0, 0)).
        let (pf, pl) = self.bound_state.take().unwrap_or_else(|| {
            let prev = &self.cells[prev_start..prev_start + stride];
            match (
                prev.iter().position(|&c| c <= limit),
                prev.iter().rposition(|&c| c <= limit),
            ) {
                (Some(a), Some(b)) => (a, b),
                _ => (stride, 0),
            }
        });
        let band = self.band(r);
        if pf >= stride || band.is_none() {
            // No viable predecessor at all (or the row is fully out of
            // band): the row is all-infinite and costs nothing.
            self.cells
                .extend(std::iter::repeat_n(f64::INFINITY, stride));
            let stat = RowStat {
                dist: f64::INFINITY,
                min: f64::INFINITY,
            };
            self.stats.push(stat);
            self.bound_state = Some((stride, 0));
            return stat;
        }
        let (blo, bhi) = band.expect("checked above");
        let lo = blo.max(pf.max(1));
        self.cells.push(f64::INFINITY); // column 0 boundary
        self.cells
            .extend(std::iter::repeat_n(f64::INFINITY, lo - 1));
        let mut min = f64::INFINITY;
        let mut nf = stride; // first/last ≤-limit column of the new row
        let mut nl = 0usize;
        let mut computed = 0u64;
        let mut diag = self.cells[prev_start + lo - 1];
        let mut left = f64::INFINITY;
        let mut x = lo;
        while x <= bhi {
            // Right of the previous row's viable range only the left
            // neighbour can stay within the threshold; once it leaves,
            // the rest of the row is provably above `limit`.
            if x > pl + 1 && left > limit {
                break;
            }
            let up = self.cells[prev_start + x];
            let best = diag.min(up).min(left);
            // Cells that cannot finish within `limit` are poisoned: the
            // column's remainder still has to be paid downstream.
            let thr = limit - rem.get(x - 1).copied().unwrap_or(0.0);
            let cell = if best <= thr {
                computed += 1;
                let c = (self.query[x - 1] - v).abs() + best;
                if c <= thr {
                    c
                } else {
                    f64::INFINITY
                }
            } else {
                f64::INFINITY
            };
            self.cells.push(cell);
            if cell < min {
                min = cell;
            }
            if cell <= limit {
                if nf == stride {
                    nf = x;
                }
                nl = x;
            }
            diag = up;
            left = cell;
            x += 1;
        }
        self.cells
            .extend(std::iter::repeat_n(f64::INFINITY, stride - x));
        self.cells_computed += computed;
        let dist = self.cells[r * stride + n];
        let stat = RowStat { dist, min };
        self.stats.push(stat);
        self.bound_state = Some(if nf == stride { (stride, 0) } else { (nf, nl) });
        stat
    }

    /// Clones the table for a *forked* traversal branch: the query,
    /// window and all current rows are preserved, so the fork continues
    /// from the shared prefix exactly like the original would — but the
    /// cost counter restarts at zero, because the prefix's cells were
    /// already counted by whoever computed them. Summing
    /// [`cells_computed`](Self::cells_computed) over the original and
    /// every fork then matches the single-table sequential count.
    pub fn fork(&self) -> Self {
        let mut t = self.clone();
        t.cells_computed = 0;
        t
    }

    /// Shrinks the table back to `depth` rows (used when the depth-first
    /// traversal backtracks).
    pub fn truncate(&mut self, depth: u32) {
        let depth = depth as usize;
        debug_assert!(depth <= self.stats.len());
        self.bound_state = None;
        self.stats.truncate(depth);
        self.cells.truncate((depth + 1) * (self.query.len() + 1));
    }

    /// Clears all data rows, keeping the query (reuse across suffixes in
    /// `SeqScan`).
    #[inline]
    pub fn reset(&mut self) {
        self.truncate(0);
    }

    /// Inclusive column range `[lo, hi]` (1-based) of in-band cells for row
    /// `r`, or `None` when the whole row falls outside the band. Without a
    /// window this is `[1, |Q|]`.
    #[inline]
    fn band(&self, r: usize) -> Option<(usize, usize)> {
        match self.window {
            None => Some((1, self.query.len())),
            Some(w) => {
                let w = w as i64;
                let r = r as i64;
                let lo = (r - w).max(1) as usize;
                let hi = (r + w).min(self.query.len() as i64).max(0) as usize;
                if hi < lo {
                    None
                } else {
                    Some((lo, hi))
                }
            }
        }
    }
}

/// Exact time-warping distance `D_tw(a, b)` (Definition 1/2).
///
/// ```
/// use warptree_core::dtw::dtw;
/// // The paper's intro: one series sampled twice as often — identical
/// // under time warping.
/// let daily = [20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0];
/// let alternate = [20.0, 21.0, 20.0, 23.0];
/// assert_eq!(dtw(&daily, &alternate), 0.0);
/// ```
///
/// # Panics
/// Panics if either sequence is empty (the paper defines `D_tw` for
/// non-null sequences only).
pub fn dtw(a: &[Value], b: &[Value]) -> f64 {
    assert!(!b.is_empty(), "D_tw is defined for non-null sequences");
    let mut t = WarpTable::new(a, None);
    let mut last = RowStat {
        dist: f64::INFINITY,
        min: f64::INFINITY,
    };
    for &v in b {
        last = t.push_value(v);
    }
    last.dist
}

/// `D_tw` with a Sakoe–Chiba band of width `w`; cells outside the band are
/// forbidden. Returns `f64::INFINITY` when no warping path fits the band
/// (e.g. the lengths differ by more than `w`).
pub fn dtw_windowed(a: &[Value], b: &[Value], w: u32) -> f64 {
    assert!(!b.is_empty(), "D_tw is defined for non-null sequences");
    let mut t = WarpTable::new(a, Some(w));
    let mut last = RowStat {
        dist: f64::INFINITY,
        min: f64::INFINITY,
    };
    for &v in b {
        last = t.push_value(v);
    }
    last.dist
}

/// Exact `D_tw(a, b)` with Theorem-1 early abandoning: returns `None` as
/// soon as the distance provably exceeds `epsilon`, otherwise
/// `Some(distance)`.
///
/// ```
/// use warptree_core::dtw::dtw_early_abandon;
/// assert_eq!(dtw_early_abandon(&[1.0, 2.0], &[1.0, 2.0], 0.5), Some(0.0));
/// assert_eq!(dtw_early_abandon(&[1.0, 2.0], &[9.0, 9.0], 0.5), None);
/// ```
pub fn dtw_early_abandon(a: &[Value], b: &[Value], epsilon: f64) -> Option<f64> {
    assert!(!b.is_empty(), "D_tw is defined for non-null sequences");
    let mut t = WarpTable::new(a, None);
    let mut last = RowStat {
        dist: f64::INFINITY,
        min: f64::INFINITY,
    };
    for &v in b {
        last = t.push_value(v);
        if last.prunes(epsilon) {
            return None;
        }
    }
    if last.dist <= epsilon {
        Some(last.dist)
    } else {
        None
    }
}

/// Reference implementation of Definition 1 by direct recursion.
///
/// Exponential time — only for verifying the DP implementation on tiny
/// inputs in tests.
pub fn dtw_naive_recursive(a: &[Value], b: &[Value]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty());
    let base = (a[0] - b[0]).abs();
    let rest = match (a.len(), b.len()) {
        (1, 1) => 0.0,
        (1, _) => dtw_naive_recursive(a, &b[1..]),
        (_, 1) => dtw_naive_recursive(&a[1..], b),
        _ => dtw_naive_recursive(a, &b[1..])
            .min(dtw_naive_recursive(&a[1..], b))
            .min(dtw_naive_recursive(&a[1..], &b[1..])),
    };
    base + rest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure1_example() {
        // S3 = <3,4,3>, S4 = <4,5,6,7,6,6>. The paper reads
        // D_tw(S3, S4[1:4]) = 8 off the last column of row 4.
        let s3 = [3.0, 4.0, 3.0];
        let s4 = [4.0, 5.0, 6.0, 7.0, 6.0, 6.0];
        assert_eq!(dtw(&s3, &s4), 12.0);
        let mut t = WarpTable::new(&s3, None);
        let mut dists = Vec::new();
        for &v in &s4 {
            dists.push(t.push_value(v).dist);
        }
        // Prefix distances D_tw(S3, S4[1:q]) for q = 1..6 (hand-computed;
        // q = 4 matches the paper's worked example).
        assert_eq!(dists, vec![2.0, 3.0, 5.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    fn paper_intro_example_warping_matches_resampled() {
        // S1 daily, S2 every other day: identical under time warping.
        let s1 = [20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0];
        let s2 = [20.0, 21.0, 20.0, 23.0];
        assert_eq!(dtw(&s1, &s2), 0.0);
    }

    #[test]
    fn dtw_is_symmetric_and_zero_on_identity() {
        let a = [1.0, 5.0, 2.0, 8.0];
        let b = [2.0, 2.0, 9.0];
        assert_eq!(dtw(&a, &b), dtw(&b, &a));
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn dp_matches_naive_recursion() {
        let cases: &[(&[f64], &[f64])] = &[
            (&[1.0], &[2.0]),
            (&[1.0, 2.0], &[2.0]),
            (&[3.0, 4.0, 3.0], &[4.0, 5.0, 6.0, 7.0]),
            (&[0.0, 10.0, 0.0, 10.0], &[10.0, 0.0, 10.0]),
            (&[1.5, 1.5, 1.5], &[1.5, 1.5]),
        ];
        for (a, b) in cases {
            assert_eq!(dtw(a, b), dtw_naive_recursive(a, b), "case {a:?} {b:?}");
        }
    }

    #[test]
    fn theorem1_row_minimum_is_non_decreasing() {
        let q = [5.0, 1.0, 7.0, 3.0];
        let data = [2.0, 9.0, 4.0, 4.0, 0.0, 6.0, 8.0];
        let mut t = WarpTable::new(&q, None);
        let mut prev = 0.0;
        for &v in &data {
            let s = t.push_value(v);
            assert!(s.min >= prev, "row minimum decreased");
            prev = s.min;
        }
    }

    #[test]
    fn early_abandon_agrees_with_full_dtw() {
        let q = [3.0, 4.0, 3.0];
        let s = [4.0, 5.0, 6.0, 7.0, 6.0, 6.0]; // D_tw = 12
        assert_eq!(dtw_early_abandon(&q, &s, 12.0), Some(12.0));
        assert_eq!(dtw_early_abandon(&q, &s, 11.9), None);
        // The paper's example: with ε = 3 the scan may stop after row 3.
        let mut t = WarpTable::new(&q, None);
        t.push_value(s[0]);
        t.push_value(s[1]);
        let s3 = t.push_value(s[2]);
        assert!(s3.prunes(3.0));
    }

    #[test]
    fn truncate_restores_previous_rows() {
        let q = [1.0, 2.0];
        let mut t = WarpTable::new(&q, None);
        let s1 = t.push_value(1.0);
        let s2 = t.push_value(5.0);
        t.truncate(1);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.row_stat(1), s1);
        // Re-pushing yields identical stats (table state fully restored).
        let s2b = t.push_value(5.0);
        assert_eq!(s2, s2b);
        t.reset();
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn windowed_dtw_restricts_paths() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let b = [0.0];
        // Unconstrained: b's single element maps to all of a -> 0.
        assert_eq!(dtw(&a, &b), 0.0);
        // Band w=1: |x-y| <= 1 forbids matching a[4] (x=4) to b[1] (y=1).
        assert_eq!(dtw_windowed(&a, &b, 1), f64::INFINITY);
        // Band wide enough recovers the exact distance.
        assert_eq!(dtw_windowed(&a, &b, 3), 0.0);
        // Windowed distance upper-bounds the unconstrained distance.
        let x = [1.0, 3.0, 2.0, 5.0, 4.0];
        let y = [1.0, 2.0, 2.0, 6.0, 4.0];
        assert!(dtw_windowed(&x, &y, 1) >= dtw(&x, &y));
    }

    #[test]
    fn window_out_of_band_detection() {
        let q = [1.0, 2.0];
        let mut t = WarpTable::new(&q, Some(1));
        assert!(!t.next_row_out_of_band());
        t.push_value(0.0);
        t.push_value(0.0);
        t.push_value(0.0); // row 3 = |Q| + w, still allowed
        assert!(t.next_row_out_of_band()); // row 4 would be fully outside
    }

    #[test]
    fn cells_computed_counts_band_only() {
        let q = [1.0, 2.0, 3.0, 4.0];
        let mut full = WarpTable::new(&q, None);
        full.push_value(0.0);
        assert_eq!(full.cells_computed(), 4);
        let mut banded = WarpTable::new(&q, Some(1));
        banded.push_value(0.0);
        assert_eq!(banded.cells_computed(), 2); // columns 1..=2
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_query_panics() {
        let _ = WarpTable::new(&[], None);
    }

    #[test]
    fn bounded_push_agrees_with_plain_table() {
        // Deterministic pseudo-random sweep: the pruned table must (a)
        // report the exact dist/min whenever the plain table's value is
        // within the threshold, (b) stay above the threshold whenever
        // the plain value is, (c) make identical Theorem-1 decisions,
        // and (d) never compute more cells.
        let mut state = 0x853c49e6748fea9bu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for case in 0..80 {
            let qlen = 1 + (next() * 8.0) as usize;
            let dlen = 1 + (next() * 14.0) as usize;
            let q: Vec<f64> = (0..qlen).map(|_| (next() * 20.0) - 10.0).collect();
            let d: Vec<f64> = (0..dlen).map(|_| (next() * 20.0) - 10.0).collect();
            let w = match case % 4 {
                0 => None,
                1 => Some(0),
                _ => Some((next() * 6.0) as u32),
            };
            let limit = next() * 30.0;
            let mut plain = WarpTable::new(&q, w);
            let mut bounded = WarpTable::new(&q, w);
            for (row, &v) in d.iter().enumerate() {
                let a = plain.push_value(v);
                let b = bounded.push_value_bounded(v, limit);
                let ctx = format!("case {case} row {row} limit {limit}");
                assert_eq!(a.prunes(limit), b.prunes(limit), "{ctx}");
                if a.dist <= limit {
                    assert_eq!(a.dist, b.dist, "{ctx}");
                } else {
                    assert!(b.dist > limit, "{ctx}");
                }
                if a.min <= limit {
                    assert_eq!(a.min, b.min, "{ctx}");
                } else {
                    assert!(b.min > limit, "{ctx}");
                }
            }
            assert!(bounded.cells_computed() <= plain.cells_computed());
        }
    }

    #[test]
    fn remainder_pruned_push_preserves_threshold_decisions() {
        // With a valid remainder (reversed LB_Keogh over the data's
        // value range), the pruned table must keep every ≤-limit dist
        // exact, keep every >-limit dist above the limit, and only
        // report a Theorem-1 prune when all deeper plain dists are
        // above the limit.
        let mut state = 0xda3e39cb94b95bdbu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for case in 0..80 {
            let qlen = 1 + (next() * 8.0) as usize;
            let dlen = 1 + (next() * 14.0) as usize;
            let q: Vec<f64> = (0..qlen).map(|_| (next() * 20.0) - 10.0).collect();
            let d: Vec<f64> = (0..dlen).map(|_| (next() * 20.0) - 10.0).collect();
            let w = match case % 4 {
                0 => None,
                1 => Some(0),
                _ => Some((next() * 6.0) as u32),
            };
            let limit = next() * 30.0;
            let dmin = d.iter().cloned().fold(f64::INFINITY, f64::min);
            let dmax = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut rem = vec![0.0; qlen];
            let mut acc = 0.0;
            for x in (1..qlen).rev() {
                acc += (q[x] - q[x].clamp(dmin, dmax)).abs();
                rem[x - 1] = acc;
            }
            let mut plain = WarpTable::new(&q, w);
            let mut pruned = WarpTable::new(&q, w);
            let mut plain_dists = Vec::new();
            for &v in &d {
                plain_dists.push(plain.push_value(v).dist);
            }
            for (row, &v) in d.iter().enumerate() {
                let b = pruned.push_value_pruned(v, limit, &rem);
                let ctx = format!("case {case} row {row} limit {limit}");
                let a_dist = plain_dists[row];
                if a_dist <= limit {
                    assert_eq!(a_dist, b.dist, "{ctx}");
                } else {
                    assert!(b.dist > limit, "{ctx}");
                }
                if b.prunes(limit) {
                    for (deep, &pd) in plain_dists.iter().enumerate().skip(row) {
                        assert!(pd > limit, "{ctx}: premature abandon at depth {deep}");
                    }
                    break;
                }
            }
            assert!(pruned.cells_computed() <= plain.cells_computed());
        }
    }

    #[test]
    fn bounded_push_resumes_after_unbounded_rows_and_reset() {
        // Interleaving unbounded pushes (which invalidate the pruned
        // range) and resets must rescan correctly.
        let q = [2.0, 7.0, 1.0, 4.0];
        let d = [3.0, 8.0, 0.5, 4.0, 4.0, 9.0];
        let limit = 9.0;
        let mut plain = WarpTable::new(&q, None);
        let mut mixed = WarpTable::new(&q, None);
        for (i, &v) in d.iter().enumerate() {
            let a = plain.push_value(v);
            let b = if i % 2 == 0 {
                mixed.push_value(v)
            } else {
                mixed.push_value_bounded(v, limit)
            };
            assert_eq!(a.prunes(limit), b.prunes(limit));
            if a.dist <= limit {
                assert_eq!(a.dist, b.dist);
            }
        }
        mixed.reset();
        plain.reset();
        for &v in &d {
            let a = plain.push_value(v);
            let b = mixed.push_value_bounded(v, limit);
            if a.dist <= limit {
                assert_eq!(a.dist, b.dist);
            } else {
                assert!(b.dist > limit);
            }
        }
    }

    #[test]
    fn band_window_larger_than_query_is_unconstrained() {
        // w ≥ |Q| + depth keeps every cell in band: the windowed distance
        // must coincide with the unconstrained one, with no clamping
        // artifacts at either band edge.
        let q = [1.0, 4.0, 2.0];
        let data = [2.0, 2.0, 5.0, 1.0, 3.0, 3.0];
        let mut banded = WarpTable::new(&q, Some(64));
        let mut full = WarpTable::new(&q, None);
        for &v in &data {
            assert_eq!(banded.push_value(v), full.push_value(v));
        }
        assert_eq!(banded.cells_computed(), full.cells_computed());
    }

    #[test]
    fn band_length_one_query_boundaries() {
        // |Q| = 1, w = 0: only row 1 intersects the band; the length-2
        // data prefix has no admissible warping path.
        assert_eq!(dtw_windowed(&[5.0], &[5.0], 0), 0.0);
        assert_eq!(dtw_windowed(&[5.0], &[5.0, 5.0], 0), f64::INFINITY);
        // w = 1 admits exactly one more row.
        assert_eq!(dtw_windowed(&[5.0], &[5.0, 5.0], 1), 0.0);
        assert_eq!(dtw_windowed(&[5.0], &[5.0, 5.0, 5.0], 1), f64::INFINITY);
    }

    #[test]
    fn empty_band_rows_are_infinite_and_free() {
        // Rows past |Q| + w fall wholly outside the band: they must be
        // all-infinite, cost zero cells, and not panic or wrap.
        let q = [1.0, 2.0];
        let mut t = WarpTable::new(&q, Some(1));
        t.push_value(1.0);
        t.push_value(2.0);
        t.push_value(2.0); // row 3 = |Q| + w: last in-band row
        assert!(t.next_row_out_of_band());
        let cells_before = t.cells_computed();
        let stat = t.push_value(2.0); // row 4: empty band
        assert_eq!(stat.dist, f64::INFINITY);
        assert_eq!(stat.min, f64::INFINITY);
        assert_eq!(t.cells_computed(), cells_before);
        // Theorem-1 pruning fires on the infinite row for any ε.
        assert!(stat.prunes(f64::MAX));
    }

    #[test]
    fn band_handles_extreme_window_without_overflow() {
        // w near u32::MAX must not wrap the i64 band arithmetic or the
        // u64 out-of-band check, for short and length-1 queries alike.
        for qlen in [1usize, 2, 5] {
            let q: Vec<Value> = (0..qlen).map(|i| i as f64).collect();
            let mut huge = WarpTable::new(&q, Some(u32::MAX));
            let mut full = WarpTable::new(&q, None);
            for r in 0..8 {
                assert!(!huge.next_row_out_of_band(), "qlen {qlen} row {r}");
                let v = (r % 3) as f64;
                assert_eq!(huge.push_value(v), full.push_value(v));
            }
        }
    }

    #[test]
    fn fork_preserves_rows_and_resets_cost() {
        let q = [2.0, 7.0, 1.0];
        let mut t = WarpTable::new(&q, Some(2));
        t.push_value(3.0);
        t.push_value(8.0);
        let mut f = t.fork();
        assert_eq!(f.depth(), t.depth());
        assert_eq!(f.cells_computed(), 0);
        // The fork continues exactly like the original.
        let a = t.push_value(0.5);
        let b = f.push_value(0.5);
        assert_eq!(a, b);
        assert_eq!(f.cells_computed(), 3); // row 3's in-band columns 1..=3 only
    }

    #[test]
    fn prefix_distance_row_semantics() {
        // Row r's dist must equal dtw(query, data[..r]).
        let q = [2.0, 7.0, 1.0];
        let data = [3.0, 3.0, 8.0, 0.0, 2.0];
        let mut t = WarpTable::new(&q, None);
        for r in 1..=data.len() {
            let stat = t.push_value(data[r - 1]);
            assert_eq!(stat.dist, dtw(&q, &data[..r]), "prefix {r}");
        }
    }
}
