//! Categorization of continuous values into a discrete alphabet (paper §5).
//!
//! To make the suffix-tree index compact, every continuous element value is
//! mapped to the symbol of the category containing it. The paper evaluates
//! two categorization methods:
//!
//! * **equal-length (EL)** — `c` categories of identical interval width
//!   `(MAX − MIN) / c`;
//! * **maximum-entropy (ME)** — boundaries chosen so every category holds
//!   (as close as ties permit) the same number of elements, maximizing
//!   `H(C) = −Σ P(C_i)·log P(C_i)`.
//!
//! Two additional builders round out the design space:
//!
//! * **singleton** — every distinct value is its own category with
//!   `lb == ub == value`. This reproduces the paper's *uncategorized*
//!   suffix tree ST exactly: the lower-bound base distance degenerates to
//!   the exact city-block distance (see `bounds` module), so one code path
//!   serves ST, ST_C and SST_C.
//! * **k-means** — 1-D Lloyd's iteration, mentioned by the paper (§5.1) as
//!   an alternative categorization approach.
//!
//! For the lower bound `D_base-lb` the paper uses `B.lb` / `B.ub` — the
//! minimum and maximum element values **observed** in category `B`, which
//! are at least as tight as the nominal boundaries. [`Alphabet::refine`]
//! computes them.

use crate::error::CoreError;
use crate::sequence::{SequenceStore, Value};

/// A discrete category symbol. Symbols are dense indices into the
/// [`Alphabet`]; suffix-tree separators live *above* the alphabet range.
pub type Symbol = u32;

/// One category: a half-open value interval plus observed value bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Category {
    /// Nominal lower boundary (inclusive).
    pub lo: Value,
    /// Nominal upper boundary (exclusive, except for the last category).
    pub hi: Value,
    /// Smallest value observed in this category (`B.lb` in the paper).
    pub lb: Value,
    /// Largest value observed in this category (`B.ub` in the paper).
    pub ub: Value,
}

/// How an [`Alphabet`] was constructed. Used for reporting only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CategorizationMethod {
    /// Equal-length categorization (paper "EL").
    EqualLength,
    /// Maximum-entropy (equal-frequency) categorization (paper "ME").
    MaxEntropy,
    /// Every distinct value is its own category (exact / plain ST).
    Singleton,
    /// 1-D k-means categorization (paper §5.1 alternative).
    KMeans,
}

impl std::fmt::Display for CategorizationMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CategorizationMethod::EqualLength => "EL",
            CategorizationMethod::MaxEntropy => "ME",
            CategorizationMethod::Singleton => "EXACT",
            CategorizationMethod::KMeans => "KM",
        };
        f.write_str(s)
    }
}

/// A complete categorization: ordered, non-overlapping categories covering
/// the value range of the database.
#[derive(Debug, Clone, PartialEq)]
pub struct Alphabet {
    categories: Vec<Category>,
    /// Lower boundaries of categories `1..n`; used for `O(log c)` symbol
    /// lookup by binary search (a value belongs to the last category whose
    /// lower boundary does not exceed it).
    cuts: Vec<Value>,
    method: CategorizationMethod,
}

impl Alphabet {
    fn from_boundaries(mut bounds: Vec<(Value, Value)>, method: CategorizationMethod) -> Self {
        bounds.retain(|(lo, hi)| lo <= hi);
        let categories: Vec<Category> = bounds
            .iter()
            .map(|&(lo, hi)| Category {
                lo,
                hi,
                // Until refined, the nominal boundaries are the best bounds.
                lb: lo,
                ub: hi,
            })
            .collect();
        let cuts = categories.iter().skip(1).map(|c| c.lo).collect();
        Self {
            categories,
            cuts,
            method,
        }
    }

    /// Equal-length categorization with `c` categories over the store's
    /// value range (paper §5.1, "EL").
    pub fn equal_length(store: &SequenceStore, c: usize) -> Result<Self, CoreError> {
        if c == 0 {
            return Err(CoreError::ZeroCategories);
        }
        let (min, max) = store.value_range().ok_or(CoreError::EmptyDatabase)?;
        let width = (max - min) / c as f64;
        let bounds: Vec<(Value, Value)> = if width == 0.0 {
            // All values identical: one category suffices.
            vec![(min, max)]
        } else {
            (0..c)
                .map(|i| {
                    let lo = min + width * i as f64;
                    let hi = if i + 1 == c {
                        max
                    } else {
                        min + width * (i + 1) as f64
                    };
                    (lo, hi)
                })
                .collect()
        };
        let mut a = Self::from_boundaries(bounds, CategorizationMethod::EqualLength);
        a.refine(store);
        Ok(a)
    }

    /// Maximum-entropy (equal-frequency) categorization with at most `c`
    /// categories (paper §5.1, "ME").
    ///
    /// ```
    /// use warptree_core::prelude::*;
    /// let store = SequenceStore::from_values(vec![
    ///     (0..100).map(f64::from).collect(),
    /// ]);
    /// let me = Alphabet::max_entropy(&store, 4).unwrap();
    /// assert_eq!(me.len(), 4);
    /// // Quartile boundaries: 25 values per category.
    /// assert_eq!(me.symbol_for(10.0), 0);
    /// assert_eq!(me.symbol_for(99.0), 3);
    /// ```
    ///
    /// Boundaries are placed at value changes nearest the ideal
    /// equal-frequency quantiles, so a run of tied values is never split
    /// across categories. When ties (or too few distinct values) make `c`
    /// categories impossible, fewer are produced.
    pub fn max_entropy(store: &SequenceStore, c: usize) -> Result<Self, CoreError> {
        if c == 0 {
            return Err(CoreError::ZeroCategories);
        }
        let mut values: Vec<Value> = store
            .iter()
            .flat_map(|(_, s)| s.values().iter().copied())
            .collect();
        if values.is_empty() {
            return Err(CoreError::EmptyDatabase);
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = values.len();
        let per = (n as f64 / c as f64).max(1.0);
        let mut bounds = Vec::with_capacity(c);
        let mut lo_idx = 0usize;
        for i in 0..c {
            if lo_idx >= n {
                break;
            }
            let mut hi_idx = if i + 1 == c {
                n
            } else {
                (per * (i + 1) as f64).round() as usize
            };
            hi_idx = hi_idx.clamp(lo_idx + 1, n);
            // Never split a run of equal values: extend to the end of the tie.
            while hi_idx < n && values[hi_idx] == values[hi_idx - 1] {
                hi_idx += 1;
            }
            bounds.push((values[lo_idx], values[hi_idx - 1]));
            lo_idx = hi_idx;
        }
        // Categories are [lo, next_lo) half-open; rewrite his accordingly so
        // the covering is gapless over [min, max].
        let n_b = bounds.len();
        for i in 0..n_b {
            if i + 1 < n_b {
                bounds[i].1 = bounds[i + 1].0;
            }
        }
        let mut a = Self::from_boundaries(bounds, CategorizationMethod::MaxEntropy);
        a.refine(store);
        Ok(a)
    }

    /// Singleton categorization: one category per distinct value, with
    /// `lb == ub == value`. Encoding with this alphabet reproduces the
    /// paper's uncategorized suffix tree ST.
    pub fn singleton(store: &SequenceStore) -> Result<Self, CoreError> {
        let mut values: Vec<Value> = store
            .iter()
            .flat_map(|(_, s)| s.values().iter().copied())
            .collect();
        if values.is_empty() {
            return Err(CoreError::EmptyDatabase);
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        values.dedup();
        let categories: Vec<Category> = values
            .iter()
            .map(|&v| Category {
                lo: v,
                hi: v,
                lb: v,
                ub: v,
            })
            .collect();
        let cuts = categories.iter().skip(1).map(|c| c.lo).collect();
        Ok(Self {
            categories,
            cuts,
            method: CategorizationMethod::Singleton,
        })
    }

    /// 1-D k-means categorization with `c` clusters (Lloyd's algorithm).
    ///
    /// Centroids are seeded at equal-frequency quantiles; boundaries are
    /// the midpoints between adjacent centroids. `iters` bounds the number
    /// of Lloyd iterations (convergence usually takes far fewer).
    pub fn kmeans(store: &SequenceStore, c: usize, iters: usize) -> Result<Self, CoreError> {
        if c == 0 {
            return Err(CoreError::ZeroCategories);
        }
        let mut values: Vec<Value> = store
            .iter()
            .flat_map(|(_, s)| s.values().iter().copied())
            .collect();
        if values.is_empty() {
            return Err(CoreError::EmptyDatabase);
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = values.len();
        let k = c.min(n);
        // Quantile seeding.
        let mut centroids: Vec<Value> = (0..k)
            .map(|i| values[(n * (2 * i + 1) / (2 * k)).min(n - 1)])
            .collect();
        centroids.dedup();
        for _ in 0..iters {
            // Assignment step: with sorted values and sorted centroids, the
            // cluster boundaries are the centroid midpoints.
            let mids: Vec<Value> = centroids.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
            let mut new_centroids = Vec::with_capacity(centroids.len());
            let mut lo = 0usize;
            for (ci, _) in centroids.iter().enumerate() {
                let hi = if ci < mids.len() {
                    values.partition_point(|&v| v < mids[ci]).max(lo)
                } else {
                    n
                };
                if hi > lo {
                    let sum: f64 = values[lo..hi].iter().sum();
                    new_centroids.push(sum / (hi - lo) as f64);
                }
                lo = hi;
            }
            new_centroids.dedup();
            if new_centroids == centroids {
                break;
            }
            centroids = new_centroids;
        }
        let mids: Vec<Value> = centroids.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
        let min = values[0];
        let max = values[n - 1];
        let mut bounds = Vec::with_capacity(centroids.len());
        let mut lo = min;
        for (i, _) in centroids.iter().enumerate() {
            let hi = if i < mids.len() { mids[i] } else { max };
            bounds.push((lo, hi));
            lo = hi;
        }
        let mut a = Self::from_boundaries(bounds, CategorizationMethod::KMeans);
        a.refine(store);
        Ok(a)
    }

    /// Reconstructs an alphabet from previously serialized categories
    /// (deserialization constructor — e.g. the disk corpus loader).
    ///
    /// # Panics
    /// Panics unless the categories are non-empty, ordered, and
    /// non-overlapping with `lb ≤ ub` inside each.
    pub fn from_parts(categories: Vec<Category>, method: CategorizationMethod) -> Self {
        assert!(!categories.is_empty(), "alphabet needs categories");
        for c in &categories {
            assert!(c.lo <= c.hi && c.lb <= c.ub, "category bounds out of order");
        }
        for w in categories.windows(2) {
            assert!(
                w[0].lo <= w[1].lo,
                "categories must be ordered by lower boundary"
            );
        }
        let cuts = categories.iter().skip(1).map(|c| c.lo).collect();
        Self {
            categories,
            cuts,
            method,
        }
    }

    /// Widens category observed bounds (`lb`/`ub`) to also cover the
    /// values of `store`, *without moving the boundaries* — the sound way
    /// to admit appended data into an existing categorization (looser
    /// bounds only make `D_base-lb` smaller, so every previously valid
    /// lower bound remains valid).
    pub fn widen(&mut self, store: &SequenceStore) {
        for (_, s) in store.iter() {
            for &v in s.values() {
                let sym = self.symbol_for(v) as usize;
                let cat = &mut self.categories[sym];
                if v < cat.lb {
                    cat.lb = v;
                }
                if v > cat.ub {
                    cat.ub = v;
                }
            }
        }
    }

    /// Tightens every category's `lb`/`ub` to the minimum/maximum values
    /// actually observed in the store (paper §5.3: "B.lb and B.ub are the
    /// minimum and the maximum element values found in the category B").
    pub fn refine(&mut self, store: &SequenceStore) {
        let n = self.categories.len();
        let mut lb = vec![f64::INFINITY; n];
        let mut ub = vec![f64::NEG_INFINITY; n];
        for (_, s) in store.iter() {
            for &v in s.values() {
                let sym = self.symbol_for(v) as usize;
                if v < lb[sym] {
                    lb[sym] = v;
                }
                if v > ub[sym] {
                    ub[sym] = v;
                }
            }
        }
        for (i, cat) in self.categories.iter_mut().enumerate() {
            if lb[i].is_finite() {
                cat.lb = lb[i];
                cat.ub = ub[i];
            } else {
                // Empty category: collapse its bounds to the nominal
                // interval so the lower bound stays valid (it will simply
                // never be encountered during encoding).
                cat.lb = cat.lo;
                cat.ub = cat.hi;
            }
        }
    }

    /// Number of categories (`c`, the alphabet size).
    #[inline]
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// `true` when the alphabet has no categories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }

    /// How this alphabet was built.
    #[inline]
    pub fn method(&self) -> CategorizationMethod {
        self.method
    }

    /// The category for a symbol.
    ///
    /// # Panics
    /// Panics if `sym` is out of range.
    #[inline]
    pub fn category(&self, sym: Symbol) -> &Category {
        &self.categories[sym as usize]
    }

    /// All categories in value order.
    #[inline]
    pub fn categories(&self) -> &[Category] {
        &self.categories
    }

    /// Maps a value to the symbol of its category.
    ///
    /// Values below/above the covered range clamp to the first/last
    /// category (relevant for query-time lookups on unseen data; stored
    /// data is always in range by construction).
    #[inline]
    pub fn symbol_for(&self, v: Value) -> Symbol {
        debug_assert!(v.is_finite());
        // Last category whose lower boundary does not exceed v; values
        // below the covered range fall into category 0, values above into
        // the last category.
        self.cuts.partition_point(|&lo| lo <= v) as Symbol
    }

    /// The paper's `D_base-lb(a, B)` (Definition 3): the smallest possible
    /// city-block distance between the numeric value `a` and any value in
    /// category `B`.
    ///
    /// ```text
    /// D_base-lb(a, B) = 0        if B.lb <= a <= B.ub
    ///                 = a - B.ub if a > B.ub
    ///                 = B.lb - a if a < B.lb
    /// ```
    ///
    /// For singleton alphabets this is exactly `|a - value|`.
    #[inline]
    pub fn base_lb(&self, a: Value, sym: Symbol) -> f64 {
        let c = &self.categories[sym as usize];
        if a > c.ub {
            a - c.ub
        } else if a < c.lb {
            c.lb - a
        } else {
            0.0
        }
    }

    /// Encodes a numeric sequence into category symbols (the paper's
    /// `CS_j`).
    pub fn encode(&self, values: &[Value]) -> Vec<Symbol> {
        values.iter().map(|&v| self.symbol_for(v)).collect()
    }

    /// Encodes every sequence of the store, preserving ids.
    pub fn encode_store(&self, store: &SequenceStore) -> CatStore {
        CatStore {
            seqs: store.iter().map(|(_, s)| self.encode(s.values())).collect(),
            alphabet_len: self.len() as u32,
        }
    }

    /// Shannon entropy of the categorization over the store, in nats
    /// (paper §5.1: ME maximizes this).
    pub fn entropy(&self, store: &SequenceStore) -> f64 {
        let mut counts = vec![0u64; self.len()];
        let mut total = 0u64;
        for (_, s) in store.iter() {
            for &v in s.values() {
                counts[self.symbol_for(v) as usize] += 1;
                total += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.ln()
            })
            .sum()
    }
}

/// The categorized database: one symbol sequence per stored sequence,
/// aligned with the [`SequenceStore`] ids.
#[derive(Debug, Clone)]
pub struct CatStore {
    seqs: Vec<Vec<Symbol>>,
    alphabet_len: u32,
}

impl CatStore {
    /// Builds a categorized store directly from symbol sequences (used in
    /// tests and by the disk corpus loader).
    pub fn from_symbols(seqs: Vec<Vec<Symbol>>, alphabet_len: u32) -> Self {
        for s in &seqs {
            for &sym in s {
                assert!(sym < alphabet_len, "symbol out of alphabet range");
            }
        }
        Self { seqs, alphabet_len }
    }

    /// Number of sequences.
    #[inline]
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// `true` when no sequences are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Size of the alphabet the symbols were drawn from.
    #[inline]
    pub fn alphabet_len(&self) -> u32 {
        self.alphabet_len
    }

    /// The categorized sequence for id `seq`.
    #[inline]
    pub fn seq(&self, seq: crate::sequence::SeqId) -> &[Symbol] {
        &self.seqs[seq.0 as usize]
    }

    /// All categorized sequences, indexable by `SeqId.0`.
    #[inline]
    pub fn seqs(&self) -> &[Vec<Symbol>] {
        &self.seqs
    }

    /// Total number of symbols stored.
    pub fn total_len(&self) -> u64 {
        self.seqs.iter().map(|s| s.len() as u64).sum()
    }

    /// Length of the run of equal symbols starting at `start` in sequence
    /// `seq` (the `N` of Definition 4). Returns 0 when `start` is out of
    /// range.
    pub fn run_len(&self, seq: crate::sequence::SeqId, start: u32) -> u32 {
        let s = self.seq(seq);
        let start = start as usize;
        if start >= s.len() {
            return 0;
        }
        let sym = s[start];
        let mut n = 1u32;
        for &x in &s[start + 1..] {
            if x != sym {
                break;
            }
            n += 1;
        }
        n
    }

    /// `true` when the suffix starting at `start` is *stored* in the sparse
    /// suffix tree (paper §6.1): its first symbol differs from the
    /// immediately preceding symbol (or it is the first suffix).
    pub fn is_stored_suffix(&self, seq: crate::sequence::SeqId, start: u32) -> bool {
        let s = self.seq(seq);
        let start = start as usize;
        if start >= s.len() {
            return false;
        }
        start == 0 || s[start] != s[start - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::SeqId;

    fn store(vals: &[&[f64]]) -> SequenceStore {
        SequenceStore::from_values(vals.iter().map(|v| v.to_vec()))
    }

    #[test]
    fn equal_length_splits_range_evenly() {
        let st = store(&[&[0.0, 10.0]]);
        let a = Alphabet::equal_length(&st, 5).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a.method(), CategorizationMethod::EqualLength);
        for (i, c) in a.categories().iter().enumerate() {
            assert!((c.lo - 2.0 * i as f64).abs() < 1e-12);
        }
        assert_eq!(a.symbol_for(0.0), 0);
        assert_eq!(a.symbol_for(1.99), 0);
        assert_eq!(a.symbol_for(2.0), 1);
        assert_eq!(a.symbol_for(10.0), 4); // max clamps into last category
        assert_eq!(a.symbol_for(-5.0), 0); // below range clamps
        assert_eq!(a.symbol_for(50.0), 4); // above range clamps
    }

    #[test]
    fn equal_length_constant_data_one_category() {
        let st = store(&[&[3.0, 3.0, 3.0]]);
        let a = Alphabet::equal_length(&st, 10).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a.symbol_for(3.0), 0);
    }

    #[test]
    fn zero_categories_is_error() {
        let st = store(&[&[1.0]]);
        assert_eq!(
            Alphabet::equal_length(&st, 0),
            Err(CoreError::ZeroCategories)
        );
        assert_eq!(
            Alphabet::max_entropy(&st, 0),
            Err(CoreError::ZeroCategories)
        );
    }

    #[test]
    fn empty_database_is_error() {
        let st = SequenceStore::new();
        assert_eq!(
            Alphabet::equal_length(&st, 3),
            Err(CoreError::EmptyDatabase)
        );
        assert_eq!(Alphabet::max_entropy(&st, 3), Err(CoreError::EmptyDatabase));
        assert_eq!(Alphabet::singleton(&st), Err(CoreError::EmptyDatabase));
    }

    #[test]
    fn max_entropy_balances_counts() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let st = store(&[&vals]);
        let a = Alphabet::max_entropy(&st, 4).unwrap();
        assert_eq!(a.len(), 4);
        let mut counts = vec![0usize; 4];
        for v in 0..100 {
            counts[a.symbol_for(v as f64) as usize] += 1;
        }
        for c in counts {
            assert_eq!(c, 25);
        }
    }

    #[test]
    fn max_entropy_never_splits_ties() {
        // 90 copies of 1.0 and 10 of 2.0: a 2-way ME split must put all the
        // 1.0s in one category.
        let mut vals = vec![1.0; 90];
        vals.extend(vec![2.0; 10]);
        let st = store(&[&vals]);
        let a = Alphabet::max_entropy(&st, 2).unwrap();
        assert!(a.len() <= 2);
        assert_ne!(a.symbol_for(1.0), a.symbol_for(2.0));
    }

    #[test]
    fn max_entropy_has_higher_entropy_than_equal_length_on_skewed_data() {
        // Heavily skewed data: EL wastes categories on the empty tail.
        let mut vals: Vec<f64> = (0..1000).map(|i| (i as f64 / 100.0).exp()).collect();
        vals.push(1e6);
        let st = store(&[&vals]);
        let el = Alphabet::equal_length(&st, 8).unwrap();
        let me = Alphabet::max_entropy(&st, 8).unwrap();
        assert!(me.entropy(&st) > el.entropy(&st));
    }

    #[test]
    fn singleton_is_exact() {
        let st = store(&[&[3.0, 1.0, 4.0, 1.0, 5.0]]);
        let a = Alphabet::singleton(&st).unwrap();
        assert_eq!(a.len(), 4); // distinct values: 1,3,4,5
        for &v in [1.0, 3.0, 4.0, 5.0].iter() {
            let s = a.symbol_for(v);
            let c = a.category(s);
            assert_eq!(c.lb, v);
            assert_eq!(c.ub, v);
            assert_eq!(a.base_lb(v, s), 0.0);
        }
        // base_lb degenerates to exact city-block distance.
        let s4 = a.symbol_for(4.0);
        assert!((a.base_lb(2.5, s4) - 1.5).abs() < 1e-12);
        assert!((a.base_lb(9.0, s4) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn kmeans_produces_ordered_covering() {
        let vals: Vec<f64> = (0..50)
            .map(|i| if i < 25 { i as f64 } else { 100.0 + i as f64 })
            .collect();
        let st = store(&[&vals]);
        let a = Alphabet::kmeans(&st, 2, 20).unwrap();
        assert_eq!(a.len(), 2);
        // The two obvious clusters should land in different categories.
        assert_ne!(a.symbol_for(10.0), a.symbol_for(120.0));
        for w in a.categories().windows(2) {
            assert!(w[0].hi <= w[1].lo + 1e-12);
        }
    }

    #[test]
    fn refine_tightens_bounds() {
        let st = store(&[&[0.5, 1.5, 9.5]]);
        let a = Alphabet::equal_length(&st, 2).unwrap();
        // Category 0 nominally [0.5, 5.0) but observes only {0.5, 1.5}.
        let c0 = a.category(a.symbol_for(0.5));
        assert_eq!(c0.lb, 0.5);
        assert_eq!(c0.ub, 1.5);
        // So base_lb(3.0, cat0) uses the observed ub 1.5, not nominal 5.0.
        assert!((a.base_lb(3.0, a.symbol_for(0.5)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn encode_and_catstore() {
        let st = store(&[&[5.27, 2.56, 3.85], &[2.0, 2.0, 8.0]]);
        // Mirrors the paper's example: C1=[0.1,3.9], C2=[4.0,10.0].
        let a = Alphabet::equal_length(&st, 2).unwrap();
        let cs = a.encode_store(&st);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.alphabet_len(), 2);
        let s0 = cs.seq(SeqId(0));
        assert_eq!(s0[0], 1); // 5.27 -> high category
        assert_eq!(s0[1], 0);
        assert_eq!(s0[2], 0);
        assert_eq!(cs.total_len(), 6);
    }

    #[test]
    fn run_len_and_stored_suffixes() {
        // CS_8 = <C1,C1,C1,C3,C2,C2> from paper §6.1: stored suffixes are
        // positions 1, 4, 5 (1-based) = 0, 3, 4 (0-based).
        let cs = CatStore::from_symbols(vec![vec![0, 0, 0, 2, 1, 1]], 3);
        let id = SeqId(0);
        assert_eq!(cs.run_len(id, 0), 3);
        assert_eq!(cs.run_len(id, 1), 2);
        assert_eq!(cs.run_len(id, 3), 1);
        assert_eq!(cs.run_len(id, 4), 2);
        assert_eq!(cs.run_len(id, 6), 0);
        let stored: Vec<u32> = (0..6).filter(|&p| cs.is_stored_suffix(id, p)).collect();
        assert_eq!(stored, vec![0, 3, 4]);
        assert!(!cs.is_stored_suffix(id, 6));
    }

    #[test]
    #[should_panic(expected = "out of alphabet range")]
    fn catstore_rejects_out_of_range_symbols() {
        let _ = CatStore::from_symbols(vec![vec![0, 5]], 3);
    }

    #[test]
    fn entropy_of_uniform_is_log_c() {
        let vals: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let st = store(&[&vals]);
        let a = Alphabet::max_entropy(&st, 4).unwrap();
        assert!((a.entropy(&st) - 4.0f64.ln()).abs() < 1e-9);
    }
}
