//! Sequences of continuous values and the in-memory sequence store.
//!
//! The paper operates on a database of `M` sequences `S_1 .. S_M` of
//! arbitrary lengths, each a series of continuous numeric values (e.g.
//! daily stock closing prices). [`SequenceStore`] is that database:
//! sequence ids are dense `u32`s, element positions are `u32` offsets
//! (0-based in code; the paper is 1-based).

use std::fmt;

/// Element type of all sequences.
pub type Value = f64;

/// Identifier of a sequence inside a [`SequenceStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqId(pub u32);

impl fmt::Display for SeqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A single data sequence of continuous values.
#[derive(Debug, Clone, PartialEq)]
pub struct Sequence {
    values: Vec<Value>,
}

impl Sequence {
    /// Creates a sequence from raw values.
    ///
    /// # Panics
    /// Panics if any value is not finite: the time-warping distance and
    /// the categorization bounds are meaningless for NaN/infinite input.
    pub fn new(values: Vec<Value>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "sequence values must be finite"
        );
        Self { values }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the sequence has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values as a slice.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The subsequence `S[start .. start+len]` (0-based, length `len`).
    ///
    /// This is the paper's `S[p:q]` with `p = start + 1`, `q = start + len`.
    #[inline]
    pub fn subseq(&self, start: u32, len: u32) -> &[Value] {
        &self.values[start as usize..start as usize + len as usize]
    }

    /// The suffix `S[start ..]` (the paper's `S[p:-]` with `p = start+1`).
    #[inline]
    pub fn suffix(&self, start: u32) -> &[Value] {
        &self.values[start as usize..]
    }
}

impl From<Vec<Value>> for Sequence {
    fn from(values: Vec<Value>) -> Self {
        Self::new(values)
    }
}

impl<const N: usize> From<[Value; N]> for Sequence {
    fn from(values: [Value; N]) -> Self {
        Self::new(values.to_vec())
    }
}

/// An occurrence of a subsequence: sequence id, 0-based start offset and
/// length. This is the unit in which both candidates and final answers are
/// reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Occurrence {
    /// Which sequence the subsequence lies in.
    pub seq: SeqId,
    /// 0-based offset of the first element.
    pub start: u32,
    /// Number of elements.
    pub len: u32,
}

impl Occurrence {
    /// Convenience constructor.
    pub fn new(seq: SeqId, start: u32, len: u32) -> Self {
        Self { seq, start, len }
    }

    /// One past the last element position.
    #[inline]
    pub fn end(&self) -> u32 {
        self.start + self.len
    }

    /// `true` when the two occurrences share at least one element
    /// position (necessarily in the same sequence).
    #[inline]
    pub fn overlaps(&self, other: &Occurrence) -> bool {
        self.seq == other.seq && self.start < other.end() && other.start < self.end()
    }

    /// `true` when `other` lies entirely inside `self`.
    #[inline]
    pub fn contains(&self, other: &Occurrence) -> bool {
        self.seq == other.seq && self.start <= other.start && other.end() <= self.end()
    }
}

impl fmt::Display for Occurrence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // 1-based inclusive range, matching the paper's S_i[p:q] notation.
        write!(
            f,
            "{}[{}:{}]",
            self.seq,
            self.start + 1,
            self.start + self.len
        )
    }
}

/// The sequence database: a dense, append-only collection of sequences,
/// each optionally carrying a human-readable name (a ticker, a patient
/// id, …).
#[derive(Debug, Clone, Default)]
pub struct SequenceStore {
    seqs: Vec<Sequence>,
    names: Vec<Option<String>>,
}

impl SequenceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a store from an iterator of raw value vectors.
    pub fn from_values<I>(values: I) -> Self
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut store = Self::new();
        for v in values {
            store.push(Sequence::new(v));
        }
        store
    }

    /// Appends a sequence and returns its id.
    pub fn push(&mut self, seq: Sequence) -> SeqId {
        self.push_with_name(seq, None)
    }

    /// Appends a named sequence and returns its id.
    pub fn push_named(&mut self, seq: Sequence, name: impl Into<String>) -> SeqId {
        self.push_with_name(seq, Some(name.into()))
    }

    fn push_with_name(&mut self, seq: Sequence, name: Option<String>) -> SeqId {
        assert!(
            self.seqs.len() < u32::MAX as usize,
            "sequence store is full"
        );
        let id = SeqId(self.seqs.len() as u32);
        self.seqs.push(seq);
        self.names.push(name);
        id
    }

    /// The name of a sequence, when one was assigned.
    #[inline]
    pub fn name(&self, id: SeqId) -> Option<&str> {
        self.names[id.0 as usize].as_deref()
    }

    /// The name of a sequence, falling back to its positional id
    /// (`"S7"`).
    pub fn display_name(&self, id: SeqId) -> String {
        match self.name(id) {
            Some(n) => n.to_string(),
            None => id.to_string(),
        }
    }

    /// Number of sequences (`M` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// `true` when no sequences are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// The sequence with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn get(&self, id: SeqId) -> &Sequence {
        &self.seqs[id.0 as usize]
    }

    /// The raw values of an [`Occurrence`].
    #[inline]
    pub fn occurrence_values(&self, occ: Occurrence) -> &[Value] {
        self.get(occ.seq).subseq(occ.start, occ.len)
    }

    /// Iterates `(id, sequence)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SeqId, &Sequence)> {
        self.seqs
            .iter()
            .enumerate()
            .map(|(i, s)| (SeqId(i as u32), s))
    }

    /// Total number of elements across all sequences (`M·L̄`).
    pub fn total_len(&self) -> u64 {
        self.seqs.iter().map(|s| s.len() as u64).sum()
    }

    /// Mean sequence length (`L̄`), 0.0 when empty.
    pub fn mean_len(&self) -> f64 {
        if self.seqs.is_empty() {
            0.0
        } else {
            self.total_len() as f64 / self.seqs.len() as f64
        }
    }

    /// Total number of suffixes, which equals the total element count.
    pub fn suffix_count(&self) -> u64 {
        self.total_len()
    }

    /// Minimum and maximum values over the whole database.
    ///
    /// Returns `None` when the store holds no elements.
    pub fn value_range(&self) -> Option<(Value, Value)> {
        let mut it = self.seqs.iter().flat_map(|s| s.values().iter().copied());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }
}

impl std::ops::Index<SeqId> for SequenceStore {
    type Output = Sequence;
    fn index(&self, id: SeqId) -> &Sequence {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_basic_accessors() {
        let s = Sequence::from([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.subseq(1, 2), &[2.0, 3.0]);
        assert_eq!(s.suffix(2), &[3.0, 4.0]);
        assert_eq!(s.suffix(4), &[] as &[f64]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn sequence_rejects_nan() {
        let _ = Sequence::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn store_push_get_iter() {
        let mut store = SequenceStore::new();
        let a = store.push(Sequence::from([1.0, 2.0]));
        let b = store.push(Sequence::from([3.0]));
        assert_eq!(a, SeqId(0));
        assert_eq!(b, SeqId(1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_len(), 3);
        assert_eq!(store.suffix_count(), 3);
        assert!((store.mean_len() - 1.5).abs() < 1e-12);
        let ids: Vec<SeqId> = store.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![SeqId(0), SeqId(1)]);
        assert_eq!(store[b].values(), &[3.0]);
    }

    #[test]
    fn store_value_range() {
        assert_eq!(SequenceStore::new().value_range(), None);
        let store = SequenceStore::from_values(vec![vec![3.0, -1.0], vec![7.5, 2.0]]);
        assert_eq!(store.value_range(), Some((-1.0, 7.5)));
    }

    #[test]
    fn occurrence_overlap_and_containment() {
        let a = Occurrence::new(SeqId(0), 2, 4); // covers 2..6
        assert_eq!(a.end(), 6);
        assert!(a.overlaps(&Occurrence::new(SeqId(0), 5, 2)));
        assert!(a.overlaps(&Occurrence::new(SeqId(0), 0, 3)));
        assert!(!a.overlaps(&Occurrence::new(SeqId(0), 6, 2))); // adjacent
        assert!(!a.overlaps(&Occurrence::new(SeqId(1), 2, 4))); // other seq
        assert!(a.contains(&Occurrence::new(SeqId(0), 3, 2)));
        assert!(a.contains(&a));
        assert!(!a.contains(&Occurrence::new(SeqId(0), 3, 4)));
    }

    #[test]
    fn occurrence_display_is_one_based() {
        let occ = Occurrence::new(SeqId(3), 0, 4);
        assert_eq!(occ.to_string(), "S3[1:4]");
    }

    #[test]
    fn occurrence_values_roundtrip() {
        let store = SequenceStore::from_values(vec![vec![5.0, 6.0, 7.0, 8.0]]);
        let occ = Occurrence::new(SeqId(0), 1, 2);
        assert_eq!(store.occurrence_values(occ), &[6.0, 7.0]);
    }

    #[test]
    fn mean_len_empty_store_is_zero() {
        assert_eq!(SequenceStore::new().mean_len(), 0.0);
    }

    #[test]
    fn names_are_optional() {
        let mut store = SequenceStore::new();
        let a = store.push(Sequence::from([1.0]));
        let b = store.push_named(Sequence::from([2.0]), "AAPL");
        assert_eq!(store.name(a), None);
        assert_eq!(store.name(b), Some("AAPL"));
        assert_eq!(store.display_name(a), "S0");
        assert_eq!(store.display_name(b), "AAPL");
    }
}
