//! Error types for the core algorithms.

use std::fmt;

/// Errors raised while constructing alphabets or running searches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A categorization was requested with zero categories.
    ZeroCategories,
    /// A categorization was requested over an empty database.
    EmptyDatabase,
    /// A query sequence was empty.
    EmptyQuery,
    /// The distance threshold was negative or not finite.
    BadThreshold,
    /// A symbol outside the alphabet was encountered.
    UnknownSymbol(u32),
    /// The query contained a NaN or infinite value.
    NonFiniteQuery,
    /// The query exceeded a caller-imposed length cap (e.g. a serving
    /// limit protecting workers from quadratic-cost requests).
    QueryTooLong {
        /// The imposed cap.
        limit: usize,
        /// The offending query's length.
        got: usize,
    },
    /// k-NN parameters were invalid (`k = 0`, non-positive growth, …).
    BadKnnParams(&'static str),
    /// The search's answer-length bound exceeds a truncated index's
    /// stored depth (paper §8), or is missing entirely.
    DepthLimitExceeded {
        /// The index's stored depth limit.
        limit: u32,
        /// The search's effective maximum answer length, when bounded.
        requested: Option<u32>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ZeroCategories => {
                write!(f, "categorization requires at least one category")
            }
            CoreError::EmptyDatabase => {
                write!(f, "cannot categorize an empty sequence database")
            }
            CoreError::EmptyQuery => write!(f, "query sequence is empty"),
            CoreError::BadThreshold => {
                write!(f, "distance threshold must be finite and non-negative")
            }
            CoreError::UnknownSymbol(s) => {
                write!(f, "symbol {s} is not part of the alphabet")
            }
            CoreError::NonFiniteQuery => {
                write!(f, "query values must be finite")
            }
            CoreError::QueryTooLong { limit, got } => {
                write!(f, "query length {got} exceeds the limit {limit}")
            }
            CoreError::BadKnnParams(why) => {
                write!(f, "invalid k-NN parameters: {why}")
            }
            CoreError::DepthLimitExceeded { limit, requested } => match requested {
                Some(r) => write!(
                    f,
                    "answer-length bound {r} exceeds the truncated index's                      depth limit {limit}"
                ),
                None => write!(
                    f,
                    "a truncated index (depth limit {limit}) requires a                      bounded answer length (window or length range)"
                ),
            },
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::ZeroCategories.to_string().contains("category"));
        assert!(CoreError::EmptyDatabase.to_string().contains("empty"));
        assert!(CoreError::EmptyQuery.to_string().contains("query"));
        assert!(CoreError::BadThreshold.to_string().contains("threshold"));
        assert!(CoreError::UnknownSymbol(7).to_string().contains('7'));
        assert!(CoreError::NonFiniteQuery.to_string().contains("finite"));
        let long = CoreError::QueryTooLong { limit: 16, got: 99 };
        assert!(long.to_string().contains("99") && long.to_string().contains("16"));
        assert!(CoreError::BadKnnParams("k must be positive")
            .to_string()
            .contains("k must be positive"));
        let e = CoreError::DepthLimitExceeded {
            limit: 4,
            requested: Some(9),
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e2 = CoreError::DepthLimitExceeded {
            limit: 4,
            requested: None,
        };
        assert!(e2.to_string().contains("bounded"));
    }
}
