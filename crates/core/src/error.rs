//! Error types for the core algorithms, and the shared wire-level
//! [`ErrorCode`] vocabulary every layer maps its errors onto.

use std::fmt;

/// The wire-level error vocabulary, shared by every layer.
///
/// The server protocol, the disk layer and the core algorithms each
/// have richer native error types; when an error crosses the process
/// boundary it is classified as one of these codes, and the string form
/// sent on the wire is defined here — in exactly one place — via
/// [`as_str`](ErrorCode::as_str).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request itself is malformed or invalid (bad JSON, bad
    /// parameters, a query violating index constraints).
    BadRequest,
    /// The server's admission queue or connection cap is full.
    Overloaded,
    /// The request's deadline expired before completion.
    DeadlineExceeded,
    /// The response would exceed the protocol's frame cap.
    ResultTooLarge,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The client asked for a protocol version this server does not
    /// speak (or used an op that needs a newer version than requested).
    UnsupportedVersion,
    /// Anything else — an internal invariant failure or I/O error.
    Internal,
    /// A stored page failed its CRC check while serving the request and
    /// no healthy copy could answer instead.
    CorruptionDetected,
    /// The response could only be served partially (some segments are
    /// quarantined) and the client's protocol version has no way to
    /// express `partial: true` — returned instead of silently dropping
    /// the coverage information.
    PartialResultUnsupported,
    /// The index belongs to a backend family this binary (or this
    /// request) does not support — an old binary opening a manifest
    /// written with a newer [`BackendKind`], or a request pinning a
    /// backend the serving index is not.
    UnsupportedBackend,
}

impl ErrorCode {
    /// The stable string sent on the wire for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ResultTooLarge => "result_too_large",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::Internal => "internal",
            ErrorCode::CorruptionDetected => "corruption_detected",
            ErrorCode::PartialResultUnsupported => "partial_result_unsupported",
            ErrorCode::UnsupportedBackend => "unsupported_backend",
        }
    }

    /// Parses a wire string back into a code.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "overloaded" => ErrorCode::Overloaded,
            "deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "result_too_large" => ErrorCode::ResultTooLarge,
            "shutting_down" => ErrorCode::ShuttingDown,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            "internal" => ErrorCode::Internal,
            "corruption_detected" => ErrorCode::CorruptionDetected,
            "partial_result_unsupported" => ErrorCode::PartialResultUnsupported,
            "unsupported_backend" => ErrorCode::UnsupportedBackend,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors raised while constructing alphabets or running searches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A categorization was requested with zero categories.
    ZeroCategories,
    /// A categorization was requested over an empty database.
    EmptyDatabase,
    /// A query sequence was empty.
    EmptyQuery,
    /// The distance threshold was negative or not finite.
    BadThreshold,
    /// A symbol outside the alphabet was encountered.
    UnknownSymbol(u32),
    /// The query contained a NaN or infinite value.
    NonFiniteQuery,
    /// The query exceeded a caller-imposed length cap (e.g. a serving
    /// limit protecting workers from quadratic-cost requests).
    QueryTooLong {
        /// The imposed cap.
        limit: usize,
        /// The offending query's length.
        got: usize,
    },
    /// k-NN parameters were invalid (`k = 0`, non-positive growth, …).
    BadKnnParams(&'static str),
    /// The search's answer-length bound exceeds a truncated index's
    /// stored depth (paper §8), or is missing entirely.
    DepthLimitExceeded {
        /// The index's stored depth limit.
        limit: u32,
        /// The search's effective maximum answer length, when bounded.
        requested: Option<u32>,
    },
    /// The request pinned a backend family
    /// ([`QueryRequest::backend`](crate::search::QueryRequest::backend))
    /// that does not match the index serving it.
    UnsupportedBackend {
        /// The family the request pinned (stable name).
        requested: &'static str,
        /// The family the index actually belongs to (stable name).
        actual: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ZeroCategories => {
                write!(f, "categorization requires at least one category")
            }
            CoreError::EmptyDatabase => {
                write!(f, "cannot categorize an empty sequence database")
            }
            CoreError::EmptyQuery => write!(f, "query sequence is empty"),
            CoreError::BadThreshold => {
                write!(f, "distance threshold must be finite and non-negative")
            }
            CoreError::UnknownSymbol(s) => {
                write!(f, "symbol {s} is not part of the alphabet")
            }
            CoreError::NonFiniteQuery => {
                write!(f, "query values must be finite")
            }
            CoreError::QueryTooLong { limit, got } => {
                write!(f, "query length {got} exceeds the limit {limit}")
            }
            CoreError::BadKnnParams(why) => {
                write!(f, "invalid k-NN parameters: {why}")
            }
            CoreError::DepthLimitExceeded { limit, requested } => match requested {
                Some(r) => write!(
                    f,
                    "answer-length bound {r} exceeds the truncated index's                      depth limit {limit}"
                ),
                None => write!(
                    f,
                    "a truncated index (depth limit {limit}) requires a                      bounded answer length (window or length range)"
                ),
            },
            CoreError::UnsupportedBackend { requested, actual } => {
                write!(
                    f,
                    "request pinned the {requested} backend but the index is {actual}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl CoreError {
    /// The wire-level classification of this error. Backend mismatches
    /// get their dedicated code so clients (and shard coordinators) can
    /// distinguish them from garden-variety bad requests; everything
    /// else reflects invalid caller input and maps to
    /// [`ErrorCode::BadRequest`].
    pub fn code(&self) -> ErrorCode {
        match self {
            CoreError::UnsupportedBackend { .. } => ErrorCode::UnsupportedBackend,
            _ => ErrorCode::BadRequest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::ZeroCategories.to_string().contains("category"));
        assert!(CoreError::EmptyDatabase.to_string().contains("empty"));
        assert!(CoreError::EmptyQuery.to_string().contains("query"));
        assert!(CoreError::BadThreshold.to_string().contains("threshold"));
        assert!(CoreError::UnknownSymbol(7).to_string().contains('7'));
        assert!(CoreError::NonFiniteQuery.to_string().contains("finite"));
        let long = CoreError::QueryTooLong { limit: 16, got: 99 };
        assert!(long.to_string().contains("99") && long.to_string().contains("16"));
        assert!(CoreError::BadKnnParams("k must be positive")
            .to_string()
            .contains("k must be positive"));
        let e = CoreError::DepthLimitExceeded {
            limit: 4,
            requested: Some(9),
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e2 = CoreError::DepthLimitExceeded {
            limit: 4,
            requested: None,
        };
        assert!(e2.to_string().contains("bounded"));
    }

    #[test]
    fn error_codes_round_trip_their_wire_strings() {
        let all = [
            ErrorCode::BadRequest,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ResultTooLarge,
            ErrorCode::ShuttingDown,
            ErrorCode::UnsupportedVersion,
            ErrorCode::Internal,
            ErrorCode::CorruptionDetected,
            ErrorCode::PartialResultUnsupported,
            ErrorCode::UnsupportedBackend,
        ];
        for code in all {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
            assert_eq!(code.to_string(), code.as_str());
        }
        assert_eq!(ErrorCode::parse("no_such_code"), None);
        // Core errors are the caller's fault, except backend pins.
        assert_eq!(CoreError::EmptyQuery.code(), ErrorCode::BadRequest);
        let pin = CoreError::UnsupportedBackend {
            requested: "esa",
            actual: "tree",
        };
        assert_eq!(pin.code(), ErrorCode::UnsupportedBackend);
        assert!(pin.to_string().contains("esa") && pin.to_string().contains("tree"));
    }
}
