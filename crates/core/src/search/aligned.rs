//! Segment-aligned subsequence matching — the approach of the paper's
//! reference [14] (Park, Lee, Chu: *Fast Retrieval of Similar
//! Subsequences in Long Sequence Databases*, KDEX 1999), implemented as
//! a comparator.
//!
//! Aligned matching divides every sequence into fixed-length segments
//! and considers only subsequences that start *and* end at segment
//! boundaries. That makes indexes small and scans fast, but — as the
//! paper points out in §2 — *"subsequences not starting or ending at
//! segment boundaries cannot be found"*: it is not free of false
//! dismissals. This module exists to demonstrate and measure that gap
//! against the suffix-tree search (see `exp_ablation`).

use crate::dtw::WarpTable;
use crate::search::answers::{AnswerSet, Match, SearchParams, SearchStats};
use crate::sequence::{Occurrence, SequenceStore, Value};

/// Exact scan over segment-aligned subsequences only: answers satisfy
/// `start % seg_len == 0` and `len % seg_len == 0` in addition to the
/// distance threshold.
///
/// The answer set is always a subset of [`seq_scan`]'s
/// (`crate::search::seq_scan`); equality holds only when every true
/// answer happens to be aligned.
///
/// # Panics
/// Panics if `seg_len == 0` or the parameters are invalid.
pub fn aligned_scan(
    store: &SequenceStore,
    query: &[Value],
    params: &SearchParams,
    seg_len: u32,
    stats: &mut SearchStats,
) -> AnswerSet {
    assert!(seg_len >= 1, "segment length must be positive");
    params
        .validate(query.len())
        .expect("invalid search parameters");
    let epsilon = params.epsilon;
    let max_len = params.effective_max_len(query.len());
    let min_len = params.effective_min_len(query.len());
    let mut answers = AnswerSet::new();
    let mut table = WarpTable::new(query, params.window);
    for (id, seq) in store.iter() {
        let values = seq.values();
        let mut start = 0usize;
        while start < values.len() {
            table.reset();
            for (row, &v) in values[start..].iter().enumerate() {
                let len = (row + 1) as u32;
                if let Some(m) = max_len {
                    if len > m {
                        break;
                    }
                }
                if table.next_row_out_of_band() {
                    break;
                }
                let stat = table.push_value(v);
                stats.rows_pushed += 1;
                if len.is_multiple_of(seg_len) && stat.dist <= epsilon && len >= min_len {
                    answers.push(Match {
                        occ: Occurrence::new(id, start as u32, len),
                        dist: stat.dist,
                    });
                }
                if stat.prunes(epsilon) {
                    break;
                }
            }
            start += seg_len as usize;
        }
    }
    stats.filter_cells += table.cells_computed();
    stats.answers = answers.len() as u64;
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{seq_scan, SeqScanMode};

    fn store(vals: &[&[f64]]) -> SequenceStore {
        SequenceStore::from_values(vals.iter().map(|v| v.to_vec()))
    }

    #[test]
    fn aligned_answers_are_aligned_and_a_subset() {
        let st = store(&[&[1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0]]);
        let q = [1.0, 2.0];
        let params = SearchParams::with_epsilon(0.5);
        let seg = 2;
        let mut s1 = SearchStats::default();
        let aligned = aligned_scan(&st, &q, &params, seg, &mut s1);
        let mut s2 = SearchStats::default();
        let full = seq_scan(&st, &q, &params, SeqScanMode::Full, &mut s2);
        let full_occs = full.occurrence_set();
        for m in aligned.matches() {
            assert_eq!(m.occ.start % seg, 0);
            assert_eq!(m.occ.len % seg, 0);
            assert!(full_occs.binary_search(&m.occ).is_ok());
        }
        assert!(aligned.len() <= full.len());
        assert!(!aligned.is_empty());
    }

    #[test]
    fn misaligned_answers_are_dismissed() {
        // The only exact match starts at offset 1: aligned matching with
        // segment 2 must miss it — the paper's §2 critique in one test.
        let st = store(&[&[9.0, 1.0, 2.0, 9.0]]);
        let q = [1.0, 2.0];
        let params = SearchParams::with_epsilon(0.0);
        let mut s1 = SearchStats::default();
        let aligned = aligned_scan(&st, &q, &params, 2, &mut s1);
        assert!(aligned.is_empty(), "aligned scan must miss the match");
        let mut s2 = SearchStats::default();
        let full = seq_scan(&st, &q, &params, SeqScanMode::Full, &mut s2);
        assert_eq!(full.len(), 1, "the match exists");
    }

    #[test]
    fn segment_one_equals_full_scan() {
        let st = store(&[&[3.0, 1.0, 4.0, 1.0, 5.0], &[2.0, 6.0]]);
        let q = [1.0, 4.0];
        let params = SearchParams::with_epsilon(1.5);
        let mut s1 = SearchStats::default();
        let aligned = aligned_scan(&st, &q, &params, 1, &mut s1);
        let mut s2 = SearchStats::default();
        let full = seq_scan(&st, &q, &params, SeqScanMode::Full, &mut s2);
        assert_eq!(aligned.occurrence_set(), full.occurrence_set());
    }

    #[test]
    fn aligned_scan_is_cheaper() {
        let st = store(&[&[1.0; 64]]);
        let q = [1.0, 1.0, 1.0];
        let params = SearchParams::with_epsilon(0.0);
        let mut s1 = SearchStats::default();
        let _ = aligned_scan(&st, &q, &params, 8, &mut s1);
        let mut s2 = SearchStats::default();
        let _ = seq_scan(&st, &q, &params, SeqScanMode::Full, &mut s2);
        assert!(s1.rows_pushed < s2.rows_pushed);
    }

    #[test]
    #[should_panic(expected = "segment length")]
    fn zero_segment_rejected() {
        let st = store(&[&[1.0]]);
        let params = SearchParams::with_epsilon(1.0);
        let mut stats = SearchStats::default();
        let _ = aligned_scan(&st, &[1.0], &params, 0, &mut stats);
    }
}
