//! The index-backend abstraction: [`IndexBackend`] + [`BackendKind`].
//!
//! The filter algorithms (paper Algorithms 2, 3 and §6.3) never touch an
//! index data structure directly — they drive any implementation of
//! [`IndexBackend`], a read-only top-down view of a (possibly sparse,
//! possibly disk-resident) generalized suffix t**rie** over categorized
//! sequences. Two families implement it:
//!
//! * **Suffix trees** ([`BackendKind::Tree`]): the in-memory tree of
//!   `warptree-suffix` and the paged on-disk tree of `warptree-disk` —
//!   the paper's ST / ST_C / SST_C layouts.
//! * **Enhanced suffix arrays** ([`BackendKind::Esa`]): the categorized
//!   SA + LCP + child-interval table of `warptree-esa`, whose
//!   LCP-interval tree presents the *same* logical tree at a fraction of
//!   the memory (see DESIGN.md §18).
//!
//! Because Theorem 1, `D_tw-lb`/`D_tw-lb2` and the lower-bound cascade
//! only consume this trait, every pruning argument carries over to any
//! conforming backend unchanged; the headline cross-backend test asserts
//! byte-identical answers and funnel statistics between the two families.

use crate::categorize::Symbol;
use crate::sequence::SeqId;

/// Which index-backend family built (and serves) an index.
///
/// Recorded in the on-disk MANIFEST, selectable at build time
/// (`warptree build --backend {tree,esa}`) and assertable per query via
/// [`QueryRequest::backend`](crate::search::QueryRequest::backend); the
/// wire protocol forwards it as the request's `backend` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Node-based suffix tree (the paper's ST / ST_C / SST_C).
    Tree,
    /// Enhanced suffix array: SA + LCP + child-interval table.
    Esa,
}

impl BackendKind {
    /// The stable lowercase name used in CLIs, manifests and on the
    /// wire.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Tree => "tree",
            BackendKind::Esa => "esa",
        }
    }

    /// Parses a stable name back into a kind.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "tree" => BackendKind::Tree,
            "esa" => BackendKind::Esa,
            _ => return None,
        })
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Read-only view of an index backend: a (possibly disk-resident,
/// possibly sparse) generalized suffix tree over categorized sequences,
/// or anything that can emulate one top-down.
///
/// The filter drives any implementation of this trait; `warptree-suffix`
/// provides the in-memory tree, `warptree-disk` the paged on-disk tree,
/// and `warptree-esa` the enhanced-suffix-array emulation.
///
/// # Traversal contract
///
/// * The concatenated edge labels from the root to any node spell the
///   longest common prefix of the stored suffixes below it.
/// * Traversal is **deterministic**: two traversals of the same index
///   observe identical children in identical order and identical suffix
///   enumerations. Byte-identical answers across thread counts, across
///   segmentations and across backends all rest on this.
/// * Node handles are plain `Copy + Send` values so parallel traversal
///   can hand subtree roots to worker threads; a handle stays valid for
///   the lifetime of the index it came from.
pub trait IndexBackend {
    /// Opaque node handle. `Send` so parallel traversal can hand
    /// subtree roots to worker threads (the tree backends use plain
    /// integers; the ESA backend a small interval struct).
    type Node: Copy + Send;

    /// The root node (empty path).
    fn root(&self) -> Self::Node;

    /// Invokes `f` for every child of `n`, in deterministic order.
    ///
    /// The order is part of the equivalence contract: children are
    /// visited in ascending order of their edge's first symbol, the
    /// order the tree builders maintain and the parallel filter's
    /// candidate stitching assumes. Segmented indexes may repeat a
    /// first symbol across segments (same-segment children contiguous,
    /// segments in ascending order) — see
    /// [`SegmentedIndex`](crate::search::segmented::SegmentedIndex).
    fn for_each_child(&self, n: Self::Node, f: &mut dyn FnMut(Self::Node));

    /// Appends the label of the edge *entering* `n` to `out`.
    ///
    /// Undefined for the root (which has no incoming edge). The label
    /// must be non-empty for every non-root node and identical on every
    /// call (determinism).
    fn edge_label(&self, n: Self::Node, out: &mut Vec<Symbol>);

    /// Invokes `f(seq, start, lead_run)` for every stored suffix at or
    /// below `n`: its sequence id, 0-based start offset, and the length
    /// of the run of equal symbols at its start (`N` in Definition 4).
    ///
    /// The enumeration must be deterministic (same order every call);
    /// candidate lists — and therefore answers at every thread count —
    /// inherit their order from it.
    fn for_each_suffix_below(&self, n: Self::Node, f: &mut dyn FnMut(SeqId, u32, u32));

    /// Maximum leading-run length among stored suffixes at or below `n`
    /// (used only by sparse search; dense backends may return anything).
    fn max_lead_run(&self, n: Self::Node) -> u32;

    /// `true` when this index stores only the paper's §6.1 suffix subset
    /// (first symbol differs from its predecessor).
    fn is_sparse(&self) -> bool;

    /// Number of stored suffixes (leaf labels) in the whole index.
    fn suffix_count(&self) -> u64;

    /// Which backend family this index belongs to. Defaults to
    /// [`BackendKind::Tree`], the family every pre-existing
    /// implementation belongs to. [`run_query_with`](crate::search::run_query_with)
    /// checks it against
    /// [`QueryRequest::backend`](crate::search::QueryRequest::backend)
    /// when the request pins one.
    fn backend_kind(&self) -> BackendKind {
        BackendKind::Tree
    }

    /// Answer-length cap of a §8-truncated index. `None` (the default)
    /// means the index supports unbounded answer lengths.
    fn depth_limit(&self) -> Option<u32> {
        None
    }

    /// Number of stored suffixes at or below `n`, when the index can
    /// answer in O(1) (tree backends annotate nodes with this count;
    /// the ESA derives it from interval width). Used only for
    /// observability — metering the table-sharing factor `R_d` — so the
    /// default `None` simply disables that metric.
    fn suffix_count_below(&self, n: Self::Node) -> Option<u64> {
        let _ = n;
        None
    }

    /// Segment ordinal of a *root child*, for multi-segment indexes
    /// whose root fans out over per-segment subtrees
    /// ([`SegmentedIndex`](crate::search::segmented::SegmentedIndex)
    /// keeps same-segment children contiguous). Used only for
    /// observability — grouping the filter's root-level work into
    /// per-segment trace spans — so the default `None` simply folds the
    /// whole tree into one anonymous segment.
    fn segment_hint(&self, n: Self::Node) -> Option<u32> {
        let _ = n;
        None
    }
}

/// Former name of [`IndexBackend`], kept as a bound-compatible alias:
/// every `T: IndexBackend` satisfies `T: SuffixTreeIndex` via the
/// blanket impl, so downstream bounds keep compiling. New code should
/// name `IndexBackend` directly.
#[deprecated(since = "0.1.0", note = "renamed to IndexBackend")]
pub trait SuffixTreeIndex: IndexBackend {}

#[allow(deprecated)]
impl<T: IndexBackend + ?Sized> SuffixTreeIndex for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_round_trips_its_names() {
        for kind in [BackendKind::Tree, BackendKind::Esa] {
            assert_eq!(BackendKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert_eq!(BackendKind::parse("btree"), None);
        assert_eq!(BackendKind::parse(""), None);
    }

    #[test]
    fn deprecated_alias_accepts_any_backend() {
        struct Nothing;
        impl IndexBackend for Nothing {
            type Node = ();
            fn root(&self) {}
            fn for_each_child(&self, _: (), _: &mut dyn FnMut(())) {}
            fn edge_label(&self, _: (), _: &mut Vec<Symbol>) {}
            fn for_each_suffix_below(&self, _: (), _: &mut dyn FnMut(SeqId, u32, u32)) {}
            fn max_lead_run(&self, _: ()) -> u32 {
                0
            }
            fn is_sparse(&self) -> bool {
                false
            }
            fn suffix_count(&self) -> u64 {
                0
            }
        }
        #[allow(deprecated)]
        fn takes_alias<T: SuffixTreeIndex>(t: &T) -> u64 {
            t.suffix_count()
        }
        assert_eq!(takes_alias(&Nothing), 0);
        assert_eq!(Nothing.backend_kind(), BackendKind::Tree);
    }
}
