//! Multi-segment fan-out: N partial suffix trees presented as one
//! [`IndexBackend`].
//!
//! The LSM-style index keeps new sequences in small tail segments (each
//! a suffix tree over just its own suffixes) until a background merge
//! compacts them into the base tree. Queries must see the union;
//! [`SegmentedIndex`] provides it without touching the filter: a
//! virtual root whose children are every segment root's children, in
//! segment order. All other operations delegate to the owning segment.
//!
//! ## Equivalence contract
//!
//! A query over `SegmentedIndex` finds the **same answer set** as over
//! a monolithic tree built from the whole corpus:
//!
//! * Every stored suffix lives in exactly one segment, with its
//!   *global* `SeqId` and lead run, so candidate emission per suffix is
//!   governed by the same per-suffix data as in the monolithic tree.
//!   Theorem-1/3 pruning bounds (`max_lead_run` of the subtree) can
//!   only be *tighter* within a segment (fewer suffixes below a node ⇒
//!   smaller max shift), and the pruning condition is sound for
//!   exactly the shifts a segment's suffixes admit — so no candidate
//!   the monolithic tree would emit is lost, and none is added.
//! * Post-processing groups candidates by `(seq, start)` in sorted
//!   order and deduplicates lengths, so the differing candidate
//!   *order* across segments cannot leak into the results: threshold
//!   answers, k-NN ranking and every candidate-level funnel counter
//!   (`candidates`, `postprocessed`, `false_alarms`, `answers`) are
//!   byte-identical. Structural traversal counters (`nodes_visited`,
//!   `rows_pushed`, …) legitimately differ — segments repeat shared
//!   path prefixes the monolithic tree walks once.

use crate::search::backend::IndexBackend;
use crate::sequence::SeqId;

/// A node of the fan-out view: the virtual root, or a node inside one
/// segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegNode<N> {
    /// The virtual root gluing the segment roots together.
    Root,
    /// A real node of segment `seg`.
    Inner {
        /// Index into the segment list.
        seg: u32,
        /// The segment's own node handle.
        node: N,
    },
}

/// N suffix-tree segments over disjoint suffix sets of one corpus,
/// presented as a single [`IndexBackend`] (see the module docs for
/// the equivalence contract).
///
/// Every segment must index suffixes with corpus-global [`SeqId`]s and
/// agree on the sparse flag and depth limit — enforced at
/// construction, since mixing them would silently break the
/// no-false-dismissal guarantee.
pub struct SegmentedIndex<'a, T> {
    segments: Vec<&'a T>,
}

impl<'a, T: IndexBackend> SegmentedIndex<'a, T> {
    /// Builds the fan-out view over `segments` (base first, tails in
    /// append order).
    ///
    /// # Panics
    /// When `segments` is empty or the segments disagree on sparseness
    /// or depth limit.
    pub fn new(segments: Vec<&'a T>) -> Self {
        assert!(!segments.is_empty(), "segmented index needs >= 1 segment");
        let sparse = segments[0].is_sparse();
        let limit = segments[0].depth_limit();
        for s in &segments[1..] {
            assert_eq!(s.is_sparse(), sparse, "segments must share the sparse flag");
            assert_eq!(
                s.depth_limit(),
                limit,
                "segments must share the depth limit"
            );
        }
        Self { segments }
    }

    /// Number of segments in the view.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn seg(&self, i: u32) -> &'a T {
        self.segments[i as usize]
    }
}

impl<T: IndexBackend> IndexBackend for SegmentedIndex<'_, T> {
    type Node = SegNode<T::Node>;

    fn root(&self) -> Self::Node {
        SegNode::Root
    }

    fn for_each_child(&self, n: Self::Node, f: &mut dyn FnMut(Self::Node)) {
        match n {
            SegNode::Root => {
                for (i, s) in self.segments.iter().enumerate() {
                    let seg = i as u32;
                    s.for_each_child(s.root(), &mut |c| f(SegNode::Inner { seg, node: c }));
                }
            }
            SegNode::Inner { seg, node } => {
                self.seg(seg)
                    .for_each_child(node, &mut |c| f(SegNode::Inner { seg, node: c }));
            }
        }
    }

    fn edge_label(&self, n: Self::Node, out: &mut Vec<u32>) {
        match n {
            // The filter never asks for the root's (non-existent)
            // incoming edge; keep the same contract here.
            SegNode::Root => unreachable!("edge_label is undefined for the root"),
            SegNode::Inner { seg, node } => self.seg(seg).edge_label(node, out),
        }
    }

    fn for_each_suffix_below(&self, n: Self::Node, f: &mut dyn FnMut(SeqId, u32, u32)) {
        match n {
            SegNode::Root => {
                for s in &self.segments {
                    s.for_each_suffix_below(s.root(), f);
                }
            }
            SegNode::Inner { seg, node } => self.seg(seg).for_each_suffix_below(node, f),
        }
    }

    fn max_lead_run(&self, n: Self::Node) -> u32 {
        match n {
            SegNode::Root => self
                .segments
                .iter()
                .map(|s| s.max_lead_run(s.root()))
                .max()
                .unwrap_or(0),
            SegNode::Inner { seg, node } => self.seg(seg).max_lead_run(node),
        }
    }

    fn is_sparse(&self) -> bool {
        self.segments[0].is_sparse()
    }

    fn suffix_count(&self) -> u64 {
        self.segments.iter().map(|s| s.suffix_count()).sum()
    }

    fn depth_limit(&self) -> Option<u32> {
        self.segments[0].depth_limit()
    }

    fn backend_kind(&self) -> crate::search::BackendKind {
        // Segments of one directory share a backend (the manifest
        // records exactly one); delegating keeps a pinned request's
        // backend check honest on segmented directories.
        self.segments[0].backend_kind()
    }

    fn suffix_count_below(&self, n: Self::Node) -> Option<u64> {
        match n {
            SegNode::Root => {
                let mut total = 0u64;
                for s in &self.segments {
                    total += s.suffix_count_below(s.root())?;
                }
                Some(total)
            }
            SegNode::Inner { seg, node } => self.seg(seg).suffix_count_below(node),
        }
    }

    fn segment_hint(&self, n: Self::Node) -> Option<u32> {
        // `for_each_child(Root)` emits each segment's children as one
        // contiguous run, so the filter can group root-level trace spans
        // per segment from this hint alone.
        match n {
            SegNode::Root => None,
            SegNode::Inner { seg, .. } => Some(seg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorize::{Alphabet, CatStore};
    use crate::search::answers::SearchStats;
    use crate::search::knn::KnnParams;
    use crate::search::query::QueryRequest;
    use crate::search::run_query;
    use crate::search::SearchParams;
    use crate::sequence::SequenceStore;

    type ToyNode = (Vec<u32>, Vec<usize>, Vec<(SeqId, u32, u32)>);

    /// Trie-shaped test double over a *range* of the corpus, storing
    /// global sequence ids (same shape as the filter/knn test doubles).
    struct ToyTree {
        nodes: Vec<ToyNode>,
    }

    impl ToyTree {
        fn build_range(cat: &CatStore, range: std::ops::Range<usize>) -> Self {
            let mut t = ToyTree {
                nodes: vec![(Vec::new(), Vec::new(), Vec::new())],
            };
            for i in range {
                let s = &cat.seqs()[i];
                for start in 0..s.len() {
                    let mut node = 0usize;
                    for &sym in &s[start..] {
                        let found = t.nodes[node]
                            .1
                            .iter()
                            .copied()
                            .find(|&c| t.nodes[c].0 == [sym]);
                        node = match found {
                            Some(c) => c,
                            None => {
                                let c = t.nodes.len();
                                t.nodes.push((vec![sym], Vec::new(), Vec::new()));
                                t.nodes[node].1.push(c);
                                c
                            }
                        };
                    }
                    let run = cat.run_len(SeqId(i as u32), start as u32);
                    t.nodes[node].2.push((SeqId(i as u32), start as u32, run));
                }
            }
            t
        }
    }

    impl IndexBackend for ToyTree {
        type Node = usize;
        fn root(&self) -> usize {
            0
        }
        fn for_each_child(&self, n: usize, f: &mut dyn FnMut(usize)) {
            for &c in &self.nodes[n].1 {
                f(c);
            }
        }
        fn edge_label(&self, n: usize, out: &mut Vec<u32>) {
            out.extend_from_slice(&self.nodes[n].0);
        }
        fn for_each_suffix_below(&self, n: usize, f: &mut dyn FnMut(SeqId, u32, u32)) {
            for &(s, p, r) in &self.nodes[n].2 {
                f(s, p, r);
            }
            for &c in &self.nodes[n].1 {
                self.for_each_suffix_below(c, f);
            }
        }
        fn max_lead_run(&self, n: usize) -> u32 {
            let mut m = 0;
            self.for_each_suffix_below(n, &mut |_, _, r| m = m.max(r));
            m
        }
        fn is_sparse(&self) -> bool {
            false
        }
        fn suffix_count(&self) -> u64 {
            let mut n = 0;
            self.for_each_suffix_below(0, &mut |_, _, _| n += 1);
            n
        }
    }

    fn setup() -> (SequenceStore, Alphabet, CatStore) {
        let store = SequenceStore::from_values(vec![
            vec![1.0, 5.0, 9.0, 5.0, 1.0],
            vec![5.0, 5.2, 9.5],
            vec![9.0, 5.0, 1.0, 1.2],
            vec![5.1, 9.2, 5.0, 5.0],
        ]);
        let alphabet = Alphabet::singleton(&store).unwrap();
        let cat = alphabet.encode_store(&store);
        (store, alphabet, cat)
    }

    /// Candidate-level funnel fields — identical across segmentations
    /// (structural traversal counters legitimately differ).
    fn funnel(s: &SearchStats) -> (u64, u64, u64, u64) {
        (s.candidates, s.postprocessed, s.false_alarms, s.answers)
    }

    #[test]
    fn single_segment_is_transparent() {
        let (store, alphabet, cat) = setup();
        let mono = ToyTree::build_range(&cat, 0..4);
        let seg = SegmentedIndex::new(vec![&mono]);
        assert_eq!(seg.suffix_count(), mono.suffix_count());
        let req = QueryRequest::threshold(&[5.0, 9.0], 1.0);
        let (a, sa) = run_query(&mono, &alphabet, &store, &req).unwrap();
        let (b, sb) = run_query(&seg, &alphabet, &store, &req).unwrap();
        assert_eq!(a.matches(), b.matches());
        assert_eq!(sa, sb, "one segment adds no traversal work");
    }

    #[test]
    fn multi_segment_matches_monolithic() {
        let (store, alphabet, cat) = setup();
        let mono = ToyTree::build_range(&cat, 0..4);
        for cuts in [
            vec![0..2, 2..4],
            vec![0..1, 1..2, 2..3, 3..4],
            vec![0..3, 3..4],
        ] {
            let parts: Vec<ToyTree> = cuts
                .iter()
                .map(|r| ToyTree::build_range(&cat, r.clone()))
                .collect();
            let seg = SegmentedIndex::new(parts.iter().collect());
            assert_eq!(seg.segment_count(), cuts.len());
            assert_eq!(seg.suffix_count(), mono.suffix_count());
            for eps in [0.0, 0.5, 2.0, 10.0] {
                for threads in [1u32, 2] {
                    let req = QueryRequest::threshold_params(
                        &[5.0, 9.0, 5.0],
                        SearchParams::with_epsilon(eps).parallel(threads),
                    );
                    let (a, sa) = run_query(&mono, &alphabet, &store, &req).unwrap();
                    let (b, sb) = run_query(&seg, &alphabet, &store, &req).unwrap();
                    assert_eq!(
                        a.matches(),
                        b.matches(),
                        "eps={eps} t={threads} cuts={cuts:?}"
                    );
                    assert_eq!(funnel(&sa), funnel(&sb), "eps={eps} t={threads}");
                }
            }
            // k-NN ranking across segments.
            for k in [1usize, 3, 7] {
                let req = QueryRequest::knn_params(&[5.0, 9.0], KnnParams::new(k));
                let (a, _) = run_query(&mono, &alphabet, &store, &req).unwrap();
                let (b, _) = run_query(&seg, &alphabet, &store, &req).unwrap();
                assert_eq!(a.matches(), b.matches(), "k={k} cuts={cuts:?}");
            }
        }
    }

    #[test]
    fn knn_output_is_ranked_variant() {
        let (store, alphabet, cat) = setup();
        let t0 = ToyTree::build_range(&cat, 0..2);
        let t1 = ToyTree::build_range(&cat, 2..4);
        let seg = SegmentedIndex::new(vec![&t0, &t1]);
        let req = QueryRequest::knn(&[5.0, 9.0], 2);
        let (out, stats) = run_query(&seg, &alphabet, &store, &req).unwrap();
        assert!(out.is_ranked());
        assert_eq!(out.len(), 2);
        assert_eq!(stats.answers, 2, "snapshot reports returned answers");
    }

    #[test]
    fn traced_query_groups_filter_spans_per_segment() {
        use warptree_obs::{AttrValue, Trace};
        let (store, alphabet, cat) = setup();
        let t0 = ToyTree::build_range(&cat, 0..2);
        let t1 = ToyTree::build_range(&cat, 2..4);
        let seg = SegmentedIndex::new(vec![&t0, &t1]);
        let trace = Trace::active("t-seg");
        let m = crate::search::SearchMetrics::new().with_trace(trace.clone());
        let req = QueryRequest::threshold(&[5.0, 9.0], 1.0);
        let _ = crate::search::run_query_with(&seg, &alphabet, &store, &req, &m).unwrap();
        let data = trace.finish().unwrap();
        let filter_id = data
            .spans
            .iter()
            .find(|s| s.name == "filter")
            .expect("filter stage span")
            .id;
        let segs: Vec<u64> = data
            .spans
            .iter()
            .filter(|s| s.name == "filter.segment")
            .map(|s| {
                assert_eq!(s.parent, Some(filter_id), "segment spans nest under filter");
                match s.attrs.iter().find(|(k, _)| k == "segment") {
                    Some((_, AttrValue::U64(v))) => *v,
                    other => panic!("missing segment attr: {other:?}"),
                }
            })
            .collect();
        assert_eq!(segs, vec![0, 1], "one span per segment, in segment order");
    }

    #[test]
    #[should_panic(expected = ">= 1 segment")]
    fn empty_segment_list_panics() {
        let _ = SegmentedIndex::<ToyTree>::new(Vec::new());
    }
}
