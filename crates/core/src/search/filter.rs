//! The unified suffix-tree filter (`Filter-ST` / `Filter-ST_C` /
//! `Filter-SST_C`, paper Algorithms 2, 3 and §6.3).
//!
//! One traversal serves all three indexes:
//!
//! * With a **singleton alphabet**, `D_base-lb` is the exact city-block
//!   distance, so the filter computes exact `D_tw` — the paper's
//!   `Filter-ST` over the plain suffix tree.
//! * With a real categorization, the filter computes `D_tw-lb`
//!   (Definition 3) — `Filter-ST_C`.
//! * When the index reports itself sparse, the filter additionally emits
//!   candidates for the *non-stored* suffixes via `D_tw-lb2`
//!   (Definition 4) and relaxes Theorem-1 pruning accordingly —
//!   `Filter-SST_C`.
//!
//! The traversal shares one incrementally grown [`WarpTable`] across all
//! suffixes with a common prefix (the paper's `R_d` saving) and prunes
//! subtrees by Theorem 1 (the `R_p` saving).

use crate::categorize::{Alphabet, Symbol};
use crate::dtw::WarpTable;
use crate::search::answers::{Candidate, SearchParams};
use crate::search::backend::IndexBackend;
use crate::search::metrics::SearchMetrics;
use crate::sequence::{Occurrence, SeqId, Value};

/// State carried down the traversal that must be restored on backtrack —
/// cheap to copy, so recursion restores it for free.
#[derive(Clone, Copy)]
struct PathState {
    /// Current depth == rows in the table.
    depth: u32,
    /// First symbol of the path (valid when `depth > 0`).
    first: Symbol,
    /// `D_base-lb(Q[1], first)`, the `d₁` of Definition 4.
    dbase1: f64,
    /// Length of the leading run of the path label.
    lead: u32,
    /// `true` while the whole path is still one run (`lead == depth`).
    in_run: bool,
}

struct FilterCtx<'a, T: IndexBackend, B: Fn(Value, Symbol) -> f64> {
    tree: &'a T,
    /// Base lower-bound distance between a query element (as stored in
    /// the table's query row) and a data symbol.
    base: &'a B,
    params: &'a SearchParams,
    sparse: bool,
    max_len: Option<u32>,
    min_len: u32,
    table: WarpTable,
    out: Vec<Candidate>,
    metrics: &'a SearchMetrics,
}

/// Runs the lower-bound filter over the index, returning every candidate
/// occurrence whose lower-bound distance to `query` is `≤ ε`.
///
/// Candidates must be verified by
/// [`postprocess`](crate::search::postprocess::postprocess) unless the
/// alphabet is singleton (exact).
///
/// # Panics
/// Panics if the query is empty or ε is invalid (use
/// [`SearchParams::validate`] to pre-check).
pub fn filter_tree<T: IndexBackend + Sync>(
    tree: &T,
    alphabet: &Alphabet,
    query: &[Value],
    params: &SearchParams,
    metrics: &SearchMetrics,
) -> Vec<Candidate> {
    filter_tree_with(
        tree,
        &|q, sym| alphabet.base_lb(q, sym),
        query,
        params,
        metrics,
    )
}

/// Generalized filter: like [`filter_tree`] but with an arbitrary base
/// lower-bound function over `(query element, symbol)` pairs.
///
/// This is the hook the multivariate extension uses: its "query" is a
/// sequence of point *indices* and `base` resolves them against grid
/// cells. Any `base` that lower-bounds the true base distance yields a
/// filter with no false dismissals (Theorem 2's argument is agnostic to
/// where the bound comes from).
///
/// With `params.threads > 1` the traversal forks at the root's (and,
/// when the root is narrow, the depth-2) subtrees across worker threads;
/// each fork clones the shared cumulative-table prefix so Theorem-1
/// pruning and `R_d` sharing are preserved per branch, and candidates
/// join in depth-first order — the result (and every counter total) is
/// byte-identical to the sequential traversal.
pub fn filter_tree_with<T: IndexBackend + Sync, B: Fn(Value, Symbol) -> f64 + Sync>(
    tree: &T,
    base: &B,
    query: &[Value],
    params: &SearchParams,
    metrics: &SearchMetrics,
) -> Vec<Candidate> {
    params
        .validate(query.len())
        .expect("invalid search parameters");
    if let Some(limit) = tree.depth_limit() {
        // A truncated index (paper §8) only holds suffix prefixes: the
        // query must bound its answer length within the stored depth.
        let max = params
            .effective_max_len(query.len())
            .expect("truncated index requires a bounded answer length");
        assert!(
            max <= limit,
            "answer-length bound {max} exceeds the index's depth limit              {limit}"
        );
    }
    let sparse = tree.is_sparse();
    // Sparse trees traverse with an *unwindowed* table even when a
    // warping window is requested: the shifted (non-stored) suffixes of
    // Definition 4 live at table rows beyond |Q| + w, where a windowed
    // table is all-infinite. The unconstrained lower bound remains valid
    // (banding a table can only raise distances), and the window is
    // enforced exactly during post-processing.
    let table_window = if sparse { None } else { params.window };
    let mut ctx = FilterCtx {
        tree,
        base,
        params,
        sparse,
        max_len: params.effective_max_len(query.len()),
        min_len: params.effective_min_len(query.len()),
        table: WarpTable::new(query, table_window),
        out: Vec::new(),
        metrics,
    };
    let root = tree.root();
    let state = PathState {
        depth: 0,
        first: 0,
        dbase1: 0.0,
        lead: 0,
        in_run: true,
    };
    let threads = params.threads.max(1) as usize;
    if threads > 1 {
        descend_parallel(&mut ctx, root, state, threads);
    } else if ctx.metrics.trace.is_active() {
        descend_root_traced(&mut ctx, root, state);
    } else {
        descend(&mut ctx, root, state);
    }
    ctx.metrics.filter_cells.add(ctx.table.cells_computed());
    ctx.metrics.candidates.add(ctx.out.len() as u64);
    ctx.out
}

/// One iteration of [`descend`]'s child loop, without the backtracking
/// truncate: the unit of work a parallel fork executes for its subtree
/// root (the fork's table is discarded afterwards, so nothing needs
/// restoring).
fn visit_child<T: IndexBackend, B: Fn(Value, Symbol) -> f64>(
    ctx: &mut FilterCtx<'_, T, B>,
    child: T::Node,
    state: PathState,
) {
    ctx.metrics.nodes_visited.incr();
    let mut label = Vec::new();
    ctx.tree.edge_label(child, &mut label);
    if let Some(next) = walk_edge(ctx, child, state, &label) {
        ctx.metrics.nodes_expanded.incr();
        descend(ctx, child, next);
    }
}

/// Parallel traversal: forks the tree at root-level subtrees — or, when
/// the root has fewer children than workers, walks each root edge on
/// the caller's table and forks at the depth-2 subtrees instead — and
/// runs each fork on the work-stealing pool.
///
/// Each fork gets a [`WarpTable::fork`] of the shared prefix (so
/// Theorem-1 pruning and row sharing behave exactly as in the
/// sequential traversal) and a scratch metrics bundle merged at the
/// join. Candidates are re-assembled in depth-first order: for each
/// root child, the candidates its edge emitted during fork discovery,
/// then its forks' candidates in child order.
fn descend_parallel<T: IndexBackend + Sync, B: Fn(Value, Symbol) -> f64 + Sync>(
    ctx: &mut FilterCtx<'_, T, B>,
    root: T::Node,
    state: PathState,
    threads: usize,
) {
    let mut children = Vec::new();
    ctx.tree.for_each_child(root, &mut |c| children.push(c));
    let expand = children.len() < threads;
    // The forked tasks, and per root child the (prefix-candidate end,
    // task end) watermarks used to stitch the output back together.
    let mut tasks: Vec<(T::Node, PathState, WarpTable)> = Vec::new();
    let mut segments: Vec<(usize, usize)> = Vec::with_capacity(children.len());
    for child in children {
        if expand {
            ctx.metrics.nodes_visited.incr();
            let mut label = Vec::new();
            ctx.tree.edge_label(child, &mut label);
            if let Some(next) = walk_edge(ctx, child, state, &label) {
                ctx.metrics.nodes_expanded.incr();
                ctx.tree
                    .for_each_child(child, &mut |g| tasks.push((g, next, ctx.table.fork())));
            }
            ctx.table.truncate(state.depth);
        } else {
            tasks.push((child, state, ctx.table.fork()));
        }
        segments.push((ctx.out.len(), tasks.len()));
    }
    let (tree, base, params, metrics) = (ctx.tree, ctx.base, ctx.params, ctx.metrics);
    let (sparse, max_len, min_len) = (ctx.sparse, ctx.max_len, ctx.min_len);
    let (results, scratches) = crate::parallel::parallel_map_with(
        threads,
        tasks,
        || metrics.scratch(),
        |scratch, _i, (node, state, table)| {
            // Under an active trace each fork gets its own span (noop
            // otherwise — one inlined branch, per the obs contract);
            // forks run concurrently, so spans overlap rather than
            // partition the filter's wall time.
            let span = scratch.trace_span("filter.task");
            let mut fork_ctx = FilterCtx {
                tree,
                base,
                params,
                sparse,
                max_len,
                min_len,
                table,
                out: Vec::new(),
                metrics: scratch,
            };
            visit_child(&mut fork_ctx, node, state);
            if span.is_active() {
                if let Some(seg) = tree.segment_hint(node) {
                    span.attr_u64("segment", seg as u64);
                }
                span.attr_u64("candidates", fork_ctx.out.len() as u64);
                span.attr_u64("cells", fork_ctx.table.cells_computed());
            }
            (fork_ctx.out, fork_ctx.table.cells_computed())
        },
    );
    for scratch in &scratches {
        metrics.record(&scratch.snapshot());
    }
    metrics
        .filter_cells
        .add(results.iter().map(|(_, cells)| *cells).sum());
    // Stitch: per root child, prefix candidates then fork outputs.
    let prefix = std::mem::take(&mut ctx.out);
    let (mut prev_out, mut prev_task) = (0usize, 0usize);
    for (out_end, task_end) in segments {
        ctx.out.extend_from_slice(&prefix[prev_out..out_end]);
        for (cands, _) in &results[prev_task..task_end] {
            ctx.out.extend_from_slice(cands);
        }
        (prev_out, prev_task) = (out_end, task_end);
    }
}

/// Sequential root traversal under an active trace: identical work (and
/// work *order*) to [`descend`] at the root, but with runs of root
/// children sharing a [`segment_hint`](IndexBackend::segment_hint)
/// grouped under a `filter.segment` span carrying that run's counter
/// deltas. Over a single-segment index the whole root becomes one
/// anonymous `filter.segment` span.
fn descend_root_traced<T: IndexBackend, B: Fn(Value, Symbol) -> f64>(
    ctx: &mut FilterCtx<'_, T, B>,
    root: T::Node,
    state: PathState,
) {
    let mut children = Vec::new();
    ctx.tree.for_each_child(root, &mut |c| children.push(c));
    let mut label = Vec::new();
    let mut i = 0;
    while i < children.len() {
        let seg = ctx.tree.segment_hint(children[i]);
        let mut j = i + 1;
        while j < children.len() && ctx.tree.segment_hint(children[j]) == seg {
            j += 1;
        }
        let span = ctx.metrics.trace_span("filter.segment");
        if let Some(s) = seg {
            span.attr_u64("segment", s as u64);
        }
        let (out_before, before) = (ctx.out.len(), ctx.metrics.snapshot());
        for &child in &children[i..j] {
            ctx.metrics.nodes_visited.incr();
            label.clear();
            ctx.tree.edge_label(child, &mut label);
            if let Some(next) = walk_edge(ctx, child, state, &label) {
                ctx.metrics.nodes_expanded.incr();
                descend(ctx, child, next);
            }
            ctx.table.truncate(state.depth);
        }
        let d = ctx.metrics.snapshot();
        span.attr_u64("root_children", (j - i) as u64);
        span.attr_u64("nodes_visited", d.nodes_visited - before.nodes_visited);
        span.attr_u64(
            "branches_pruned",
            d.branches_pruned - before.branches_pruned,
        );
        span.attr_u64("rows_pushed", d.rows_pushed - before.rows_pushed);
        span.attr_u64("candidates", (ctx.out.len() - out_before) as u64);
        i = j;
    }
}

fn descend<T: IndexBackend, B: Fn(Value, Symbol) -> f64>(
    ctx: &mut FilterCtx<'_, T, B>,
    node: T::Node,
    state: PathState,
) {
    let mut children = Vec::new();
    ctx.tree.for_each_child(node, &mut |c| children.push(c));
    let mut label = Vec::new();
    for child in children {
        ctx.metrics.nodes_visited.incr();
        label.clear();
        ctx.tree.edge_label(child, &mut label);
        if let Some(next) = walk_edge(ctx, child, state, &label) {
            ctx.metrics.nodes_expanded.incr();
            descend(ctx, child, next);
        }
        // Backtrack: drop this edge's rows.
        ctx.table.truncate(state.depth);
    }
}

/// Consumes the edge label into `child` one symbol at a time, emitting
/// candidates and applying Theorem-1 pruning. Returns the state at the
/// child when traversal should continue below it, `None` when pruned.
fn walk_edge<T: IndexBackend, B: Fn(Value, Symbol) -> f64>(
    ctx: &mut FilterCtx<'_, T, B>,
    child: T::Node,
    mut state: PathState,
    label: &[Symbol],
) -> Option<PathState> {
    let epsilon = ctx.params.epsilon;
    // Suffixes below `child`, fetched lazily on the first qualifying row
    // and reused for every further row of this edge (adjacent rows often
    // both qualify, and re-walking the subtree per row is the dominant
    // cost at large ε).
    let mut leaves: Option<Vec<(SeqId, u32, u32)>> = None;
    // Cap on the run shift below this edge while the path is still one
    // run: the longest stored-suffix leading run below (Definition 4's
    // p−1 bound can grow up to it). Once the run ends, the cap drops to
    // the now-frozen `lead − 1` (recomputed per symbol below).
    let run_cap = if ctx.sparse {
        ctx.tree.max_lead_run(child)
    } else {
        0
    };
    // A sparse tree may usefully descend past the answer-length cap: a
    // row at depth r still yields shifted candidates of length r − k.
    let depth_allowance = if ctx.sparse {
        run_cap.saturating_sub(1)
    } else {
        0
    };
    // Weight of each row pushed along this edge in the `R_d` metric:
    // the number of stored suffixes sharing it. Fetched only when the
    // metric is live and the index can answer cheaply.
    let unshared_weight = if ctx.metrics.rows_unshared.is_active() {
        ctx.tree.suffix_count_below(child).unwrap_or(0)
    } else {
        0
    };
    for &sym in label {
        if let Some(m) = ctx.max_len {
            if state.depth as u64 >= m as u64 + depth_allowance as u64 {
                // Deeper rows cannot yield any in-range answer length.
                ctx.metrics.branches_pruned.incr();
                return None;
            }
        }
        if ctx.table.next_row_out_of_band() {
            ctx.metrics.branches_pruned.incr();
            return None;
        }
        if state.depth == 0 {
            state.first = sym;
            state.dbase1 = (ctx.base)(ctx.table.query()[0], sym);
            state.lead = 1;
            state.in_run = true;
        } else if state.in_run && sym == state.first {
            state.lead += 1;
        } else {
            state.in_run = false;
        }
        let base = ctx.base;
        let stat = ctx.table.push_row_with(|q| base(q, sym));
        state.depth += 1;
        ctx.metrics.rows_pushed.incr();
        ctx.metrics.rows_unshared.add(unshared_weight);
        let r = state.depth;

        let (min_len, max_len) = (ctx.min_len, ctx.max_len);
        let len_ok = move |len: u32| len >= min_len && max_len.is_none_or(|m| len <= m);
        // Candidate emission: stored suffixes (D_tw-lb)...
        if stat.dist <= epsilon && len_ok(r) {
            emit(ctx, child, &mut leaves, 0, r, stat.dist);
        }
        // ...and, for sparse trees, non-stored suffixes (D_tw-lb2).
        if ctx.sparse {
            let max_k = state.lead.saturating_sub(1).min(r - 1);
            for k in 1..=max_k {
                let lb2 = stat.dist - k as f64 * state.dbase1;
                if lb2 <= epsilon && len_ok(r - k) {
                    emit(ctx, child, &mut leaves, k, r, lb2);
                }
            }
        }

        // Theorem-1 pruning, relaxed by the largest possible run shift
        // below (Theorem 3 keeps this free of false dismissals).
        let max_shift_below = if !ctx.sparse {
            0
        } else if state.in_run {
            run_cap.saturating_sub(1)
        } else {
            state.lead.saturating_sub(1)
        };
        let relax = max_shift_below as f64 * state.dbase1;
        if stat.min - relax > epsilon {
            ctx.metrics.branches_pruned.incr();
            return None;
        }
    }
    Some(state)
}

/// Emits one candidate per stored suffix below `child`, shifted `k`
/// symbols into its leading run (`k == 0` for the stored suffix itself).
/// The suffix list is materialized once per edge into `leaves`.
fn emit<T: IndexBackend, B: Fn(Value, Symbol) -> f64>(
    ctx: &mut FilterCtx<'_, T, B>,
    child: T::Node,
    leaves: &mut Option<Vec<(SeqId, u32, u32)>>,
    k: u32,
    r: u32,
    lower_bound: f64,
) {
    let list = leaves.get_or_insert_with(|| {
        let mut v = Vec::new();
        ctx.tree
            .for_each_suffix_below(child, &mut |seq, start, run| v.push((seq, start, run)));
        v
    });
    // Funnel accounting: Definition 3 (stored) vs Definition 4
    // (shifted, sparse only) emissions.
    if k == 0 {
        ctx.metrics.stored_candidates.add(list.len() as u64);
    } else {
        ctx.metrics.lb2_candidates.add(list.len() as u64);
    }
    for &(seq, start, run) in list.iter() {
        // `k < run` always holds by the run-structure argument (see
        // DESIGN.md §5); assert it in debug builds.
        debug_assert!(k == 0 || k < run);
        let _ = run;
        ctx.out.push(Candidate {
            occ: Occurrence::new(seq, start + k, r - k),
            lower_bound,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorize::CatStore;

    /// A tiny hand-built tree for unit-testing the filter without the
    /// `warptree-suffix` crate (which depends on this one).
    type ToyNode = (Vec<Symbol>, Vec<usize>, Vec<(SeqId, u32, u32)>);

    struct ToyTree {
        /// node -> (edge label, children, suffix labels (seq, start, run))
        nodes: Vec<ToyNode>,
        sparse: bool,
    }

    impl ToyTree {
        /// Builds a naive tree holding the given suffixes of `cs`.
        fn build(cs: &CatStore, suffixes: &[(u32, u32)], sparse: bool) -> Self {
            let mut t = ToyTree {
                nodes: vec![(Vec::new(), Vec::new(), Vec::new())],
                sparse,
            };
            for &(seq, start) in suffixes {
                let id = SeqId(seq);
                let symbols: Vec<Symbol> = cs.seq(id)[start as usize..].to_vec();
                let run = cs.run_len(id, start);
                t.insert(&symbols, (id, start, run));
            }
            t
        }

        /// Inserts one suffix, creating single-symbol edges (a trie, which
        /// is a valid if uncompacted suffix tree for the trait contract).
        fn insert(&mut self, symbols: &[Symbol], label: (SeqId, u32, u32)) {
            let mut node = 0usize;
            for &s in symbols {
                let found = self.nodes[node]
                    .1
                    .iter()
                    .copied()
                    .find(|&c| self.nodes[c].0 == [s]);
                node = match found {
                    Some(c) => c,
                    None => {
                        let c = self.nodes.len();
                        self.nodes.push((vec![s], Vec::new(), Vec::new()));
                        self.nodes[node].1.push(c);
                        c
                    }
                };
            }
            self.nodes[node].2.push(label);
        }
    }

    impl IndexBackend for ToyTree {
        type Node = usize;
        fn root(&self) -> usize {
            0
        }
        fn for_each_child(&self, n: usize, f: &mut dyn FnMut(usize)) {
            for &c in &self.nodes[n].1 {
                f(c);
            }
        }
        fn edge_label(&self, n: usize, out: &mut Vec<Symbol>) {
            out.extend_from_slice(&self.nodes[n].0);
        }
        fn for_each_suffix_below(&self, n: usize, f: &mut dyn FnMut(SeqId, u32, u32)) {
            for &(s, p, r) in &self.nodes[n].2 {
                f(s, p, r);
            }
            for &c in &self.nodes[n].1 {
                self.for_each_suffix_below(c, f);
            }
        }
        fn max_lead_run(&self, n: usize) -> u32 {
            let mut m = 0;
            self.for_each_suffix_below(n, &mut |_, _, r| m = m.max(r));
            m
        }
        fn is_sparse(&self) -> bool {
            self.sparse
        }
        fn suffix_count(&self) -> u64 {
            let mut n = 0;
            self.for_each_suffix_below(0, &mut |_, _, _| n += 1);
            n
        }
    }

    fn singleton_setup(
        values: Vec<Vec<f64>>,
    ) -> (crate::sequence::SequenceStore, Alphabet, CatStore) {
        let store = crate::sequence::SequenceStore::from_values(values);
        let a = Alphabet::singleton(&store).unwrap();
        let cs = a.encode_store(&store);
        (store, a, cs)
    }

    #[test]
    fn exact_filter_finds_exact_matches() {
        let (_store, a, cs) = singleton_setup(vec![vec![1.0, 2.0, 3.0, 2.0]]);
        let suffixes: Vec<(u32, u32)> = (0..4).map(|p| (0, p)).collect();
        let tree = ToyTree::build(&cs, &suffixes, false);
        assert_eq!(tree.suffix_count(), 4);
        let m = SearchMetrics::new();
        let params = SearchParams::with_epsilon(0.0);
        let q = [2.0, 3.0];
        let cands = filter_tree(&tree, &a, &q, &params, &m);
        // With ε = 0 and exact base distances, only true warped matches
        // survive: S[2:3] = <2,3> and its warped extensions <2,3,?>... none
        // here; prefix matches: <2>, no (dist 1 > 0). Expect the exact
        // occurrence (0, 1, 2) plus any zero-distance warpings.
        let occs: Vec<Occurrence> = cands.iter().map(|c| c.occ).collect();
        assert!(occs.contains(&Occurrence::new(SeqId(0), 1, 2)));
        for c in &cands {
            assert_eq!(c.lower_bound, 0.0);
        }
    }

    #[test]
    fn pruning_reduces_rows() {
        let (_store, a, cs) = singleton_setup(vec![vec![1.0, 100.0, 100.0, 100.0, 100.0]]);
        let suffixes: Vec<(u32, u32)> = (0..5).map(|p| (0, p)).collect();
        let tree = ToyTree::build(&cs, &suffixes, false);
        let m = SearchMetrics::new();
        let params = SearchParams::with_epsilon(0.5);
        let q = [1.0, 1.0];
        let _ = filter_tree(&tree, &a, &q, &params, &m);
        // The 100-branches must be cut immediately (first row min = 99).
        assert!(m.snapshot().branches_pruned >= 1);
        assert!(m.snapshot().rows_pushed < 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn max_len_caps_depth() {
        let (_store, a, cs) = singleton_setup(vec![vec![5.0; 10]]);
        let suffixes: Vec<(u32, u32)> = (0..10).map(|p| (0, p)).collect();
        let tree = ToyTree::build(&cs, &suffixes, false);
        let m = SearchMetrics::new();
        let params = SearchParams::with_epsilon(1e9).length_range(1, 3);
        let q = [5.0, 5.0];
        let cands = filter_tree(&tree, &a, &q, &params, &m);
        assert!(cands.iter().all(|c| c.occ.len <= 3));
        assert!(!cands.is_empty());
    }

    #[test]
    fn min_len_skips_short_answers() {
        let (_store, a, cs) = singleton_setup(vec![vec![5.0; 6]]);
        let suffixes: Vec<(u32, u32)> = (0..6).map(|p| (0, p)).collect();
        let tree = ToyTree::build(&cs, &suffixes, false);
        let m = SearchMetrics::new();
        let mut params = SearchParams::with_epsilon(1e9);
        params.min_len = 4;
        let q = [5.0, 5.0];
        let cands = filter_tree(&tree, &a, &q, &params, &m);
        assert!(cands.iter().all(|c| c.occ.len >= 4));
        assert!(!cands.is_empty());
    }

    #[test]
    fn sparse_filter_reaches_non_stored_suffixes() {
        // One sequence of five equal values: the sparse tree stores only
        // the first suffix, yet all shifted subsequences must surface.
        let (_store, a, cs) = singleton_setup(vec![vec![7.0; 5]]);
        let tree = ToyTree::build(&cs, &[(0, 0)], true);
        assert_eq!(tree.suffix_count(), 1);
        let m = SearchMetrics::new();
        let params = SearchParams::with_epsilon(0.0);
        let q = [7.0, 7.0];
        let cands = filter_tree(&tree, &a, &q, &params, &m);
        let mut occs: Vec<Occurrence> = cands.iter().map(|c| c.occ).collect();
        occs.sort();
        occs.dedup();
        // Every subsequence of <7,7,7,7,7> warps onto <7,7> at distance 0:
        // 5 + 4 + 3 + 2 + 1 = 15 occurrences.
        assert_eq!(occs.len(), 15);
        assert!(occs.contains(&Occurrence::new(SeqId(0), 3, 2)));
        assert!(occs.contains(&Occurrence::new(SeqId(0), 4, 1)));
    }

    #[test]
    fn sparse_shift_uses_lb2_slack() {
        // Category bounds make d₁ > 0; a shifted suffix can qualify even
        // when the stored path distance exceeds ε.
        let store = crate::sequence::SequenceStore::from_values(vec![vec![0.0, 0.0, 10.0]]);
        let a = Alphabet::equal_length(&store, 2).unwrap();
        let cs = a.encode_store(&store);
        assert_eq!(cs.seq(SeqId(0)), &[0, 0, 1]);
        let tree = ToyTree::build(&cs, &[(0, 0), (0, 2)], true);
        // d₁ = D_base-lb(3, C0) = 3 (C0 observed = [0, 0]). The stored
        // path <C0, C0> has lb 3 (warping absorbs the second 0 against
        // q[2] = 0), so at ε = 0 no stored candidate is emitted at depth
        // 2 — but the k = 1 shift gives lb2 = 3 − 3 = 0 ≤ ε, surfacing the
        // non-stored suffix's subsequence (0, 1, 1).
        let q = [3.0, 0.0];
        let m = SearchMetrics::new();
        let params = SearchParams::with_epsilon(0.0);
        let cands = filter_tree(&tree, &a, &q, &params, &m);
        let occs: Vec<Occurrence> = cands.iter().map(|c| c.occ).collect();
        assert!(occs.contains(&Occurrence::new(SeqId(0), 1, 1)));
        assert!(!occs.contains(&Occurrence::new(SeqId(0), 0, 1)));
        assert!(!occs.contains(&Occurrence::new(SeqId(0), 0, 2)));
    }

    #[test]
    fn parallel_filter_is_byte_identical_to_sequential() {
        // Dense and sparse trees, narrow and bushy roots: candidates
        // (values AND order) and every counter must match sequential
        // for every thread count.
        let values = vec![
            vec![1.0, 2.0, 3.0, 2.0, 2.0, 2.0, 7.0],
            vec![2.0, 2.0, 5.0, 5.0, 5.0, 1.0],
            vec![9.0, 9.0, 9.0, 9.0],
        ];
        let store = crate::sequence::SequenceStore::from_values(values);
        let a = Alphabet::equal_length(&store, 3).unwrap();
        let cs = a.encode_store(&store);
        for sparse in [false, true] {
            let mut suffixes = Vec::new();
            for (id, s) in cs.seqs().iter().enumerate() {
                for p in 0..s.len() as u32 {
                    if !sparse || cs.is_stored_suffix(SeqId(id as u32), p) {
                        suffixes.push((id as u32, p));
                    }
                }
            }
            let tree = ToyTree::build(&cs, &suffixes, sparse);
            let q = [2.0, 2.0, 5.0];
            for eps in [0.0, 2.0, 10.0] {
                let m1 = SearchMetrics::new();
                let base = SearchParams::with_epsilon(eps);
                let seq_cands = filter_tree(&tree, &a, &q, &base, &m1);
                for threads in [2u32, 3, 8] {
                    let mp = SearchMetrics::new();
                    let par_cands =
                        filter_tree(&tree, &a, &q, &base.clone().parallel(threads), &mp);
                    assert_eq!(
                        seq_cands, par_cands,
                        "sparse={sparse} eps={eps} t={threads}"
                    );
                    assert_eq!(
                        m1.snapshot(),
                        mp.snapshot(),
                        "sparse={sparse} eps={eps} t={threads}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid search parameters")]
    fn invalid_params_panic() {
        let (_store, a, cs) = singleton_setup(vec![vec![1.0]]);
        let tree = ToyTree::build(&cs, &[(0, 0)], false);
        let m = SearchMetrics::new();
        let params = SearchParams::with_epsilon(-1.0);
        let _ = filter_tree(&tree, &a, &[1.0], &params, &m);
    }
}
