//! Live search metrics: the observability counterpart of
//! [`SearchStats`](crate::search::answers::SearchStats).
//!
//! [`SearchMetrics`] is a bundle of [`warptree_obs`] handles threaded
//! through the search algorithms. `SearchStats` remains the plain-data
//! *snapshot* (cheap to copy, `Eq`, deterministic); `SearchMetrics` is
//! what the algorithms write while running. The three constructors give
//! the three measurement modes:
//!
//! * [`SearchMetrics::new`] — detached live counters; used by
//!   [`run_query`](crate::search::run_query) to produce its returned
//!   snapshot.
//! * [`SearchMetrics::noop`] — every update is a single inlined branch;
//!   the zero-overhead mode benchmarked by `obs_overhead`.
//! * [`SearchMetrics::register`] — counters shared with a
//!   [`MetricsRegistry`] under `search.*` names, so multiple queries
//!   accumulate into one process-wide view (the CLI's `--stats`).
//!
//! Phase wall times (`filter_ns`, `postprocess_ns`) are histograms
//! only: they never enter `SearchStats`, which keeps snapshots
//! machine-independent and run-to-run deterministic.

use warptree_obs::{Counter, Histogram, MetricsRegistry, Trace, TraceSpan};

use crate::search::answers::SearchStats;

/// Live counters and timers for one or many similarity searches.
///
/// See the [module docs](self) for the measurement modes. All handles
/// are shared-on-clone, so a clone observes (and contributes to) the
/// same totals.
#[derive(Clone, Debug)]
pub struct SearchMetrics {
    /// Cumulative-distance-table cells computed during filtering.
    pub filter_cells: Counter,
    /// Tree nodes visited (edges considered) by the filter traversal.
    pub nodes_visited: Counter,
    /// Nodes whose subtree was fully descended into (not pruned), so
    /// `nodes_visited == nodes_expanded + branches_pruned`.
    pub nodes_expanded: Counter,
    /// Edge symbols consumed (table rows pushed) during traversal.
    pub rows_pushed: Counter,
    /// Table rows weighted by the suffixes sharing them: the rows a
    /// per-suffix scan would have computed. `rows_unshared /
    /// rows_pushed` is the paper's table-sharing factor `R_d`. Metered
    /// only when the index can report subtree suffix counts.
    pub rows_unshared: Counter,
    /// Subtrees pruned by Theorem 1 (plus depth/band cut-offs).
    pub branches_pruned: Counter,
    /// Candidates emitted by the filter (stored + shifted).
    pub candidates: Counter,
    /// Candidates emitted for *stored* suffixes via `D_tw-lb`
    /// (Definition 3).
    pub stored_candidates: Counter,
    /// Candidates emitted for *non-stored* suffixes via `D_tw-lb2`
    /// (Definition 4) — nonzero only on sparse indexes.
    pub lb2_candidates: Counter,
    /// Candidate (start, length) pairs whose exact distance was
    /// computed in post-processing.
    pub postprocessed: Counter,
    /// Table cells computed during post-processing.
    pub postprocess_cells: Counter,
    /// Candidates rejected by exact verification (false alarms).
    pub false_alarms: Counter,
    /// Verified answers.
    pub answers: Counter,
    /// Candidates killed by the cascade's tier-1 envelope bound
    /// (LB_Keogh) before any table cell was computed.
    pub cascade_lb_keogh_kills: Counter,
    /// Candidates killed by the cascade's tier-2 refinement
    /// (LB_Improved).
    pub cascade_lb_improved_kills: Counter,
    /// Candidates killed by Theorem-1 early abandoning in the
    /// cascade's exact tier.
    pub cascade_abandon_kills: Counter,
    /// Wall time of the filter phase, nanoseconds per query.
    pub filter_ns: Histogram,
    /// Wall time of the post-processing phase, nanoseconds per query.
    pub postprocess_ns: Histogram,
    /// The per-query span tree stage spans record into. All three
    /// constructors leave this as [`Trace::noop`]; a caller that wants
    /// a trace attaches one via [`SearchMetrics::with_trace`], so
    /// tracing is sampled per query while the counters stay shared.
    pub trace: Trace,
    /// Parent span id for spans opened through
    /// [`trace_span`](SearchMetrics::trace_span) — set by
    /// [`under`](SearchMetrics::under) so staged algorithms (kNN
    /// rounds) nest their re-invoked stages correctly.
    trace_parent: Option<u32>,
}

impl SearchMetrics {
    /// Live metrics detached from any registry.
    pub fn new() -> Self {
        SearchMetrics {
            filter_cells: Counter::active(),
            nodes_visited: Counter::active(),
            nodes_expanded: Counter::active(),
            rows_pushed: Counter::active(),
            rows_unshared: Counter::active(),
            branches_pruned: Counter::active(),
            candidates: Counter::active(),
            stored_candidates: Counter::active(),
            lb2_candidates: Counter::active(),
            postprocessed: Counter::active(),
            postprocess_cells: Counter::active(),
            false_alarms: Counter::active(),
            answers: Counter::active(),
            cascade_lb_keogh_kills: Counter::active(),
            cascade_lb_improved_kills: Counter::active(),
            cascade_abandon_kills: Counter::active(),
            filter_ns: Histogram::active(),
            postprocess_ns: Histogram::active(),
            trace: Trace::noop(),
            trace_parent: None,
        }
    }

    /// Metrics that ignore every update (one inlined branch per
    /// update, no atomics, no clock reads).
    pub fn noop() -> Self {
        SearchMetrics {
            filter_cells: Counter::noop(),
            nodes_visited: Counter::noop(),
            nodes_expanded: Counter::noop(),
            rows_pushed: Counter::noop(),
            rows_unshared: Counter::noop(),
            branches_pruned: Counter::noop(),
            candidates: Counter::noop(),
            stored_candidates: Counter::noop(),
            lb2_candidates: Counter::noop(),
            postprocessed: Counter::noop(),
            postprocess_cells: Counter::noop(),
            false_alarms: Counter::noop(),
            answers: Counter::noop(),
            cascade_lb_keogh_kills: Counter::noop(),
            cascade_lb_improved_kills: Counter::noop(),
            cascade_abandon_kills: Counter::noop(),
            filter_ns: Histogram::noop(),
            postprocess_ns: Histogram::noop(),
            trace: Trace::noop(),
            trace_parent: None,
        }
    }

    /// Metrics registered under `search.*` names in `reg`; handles
    /// obtained from repeated calls share totals through the registry.
    pub fn register(reg: &MetricsRegistry) -> Self {
        SearchMetrics {
            filter_cells: reg.counter("search.filter_cells"),
            nodes_visited: reg.counter("search.nodes_visited"),
            nodes_expanded: reg.counter("search.nodes_expanded"),
            rows_pushed: reg.counter("search.rows_pushed"),
            rows_unshared: reg.counter("search.rows_unshared"),
            branches_pruned: reg.counter("search.branches_pruned"),
            candidates: reg.counter("search.candidates"),
            stored_candidates: reg.counter("search.stored_candidates"),
            lb2_candidates: reg.counter("search.lb2_candidates"),
            postprocessed: reg.counter("search.postprocessed"),
            postprocess_cells: reg.counter("search.postprocess_cells"),
            false_alarms: reg.counter("search.false_alarms"),
            answers: reg.counter("search.answers"),
            cascade_lb_keogh_kills: reg.counter("search.cascade_lb_keogh_kills"),
            cascade_lb_improved_kills: reg.counter("search.cascade_lb_improved_kills"),
            cascade_abandon_kills: reg.counter("search.cascade_abandon_kills"),
            filter_ns: reg.histogram("search.filter_ns"),
            postprocess_ns: reg.histogram("search.postprocess_ns"),
            trace: Trace::noop(),
            trace_parent: None,
        }
    }

    /// A detached bundle matching `self`'s measurement mode: live when
    /// `self` records, no-op when `self` is the no-op bundle.
    ///
    /// Parallel search workers accumulate into a scratch bundle each and
    /// merge once via [`record`](Self::record) at the join point, so the
    /// hot loop never contends on shared atomics — and a no-op caller
    /// keeps paying nothing.
    pub fn scratch(&self) -> SearchMetrics {
        let mut m = if self.rows_pushed.is_active() {
            SearchMetrics::new()
        } else {
            SearchMetrics::noop()
        };
        // The trace rides along: a parallel worker's spans belong to
        // the same query tree its counters will be folded into.
        m.trace = self.trace.clone();
        m.trace_parent = self.trace_parent;
        m
    }

    /// Attaches a per-query trace: stage spans opened through
    /// [`trace_span`](SearchMetrics::trace_span) record into it.
    /// Tracing is independent of the counter mode, so a server can
    /// sample traces per query while every query shares one
    /// registry-backed counter bundle.
    pub fn with_trace(mut self, trace: Trace) -> SearchMetrics {
        self.trace = trace;
        self.trace_parent = None;
        self
    }

    /// Opens a stage span named `name` under the current parent span
    /// (the trace root unless re-parented via
    /// [`under`](SearchMetrics::under)). One inlined branch when no
    /// trace is attached.
    #[inline]
    pub fn trace_span(&self, name: &str) -> TraceSpan {
        self.trace.span_with_parent(self.trace_parent, name)
    }

    /// A clone whose future stage spans nest under `span`. Staged
    /// algorithms (the kNN ε-expansion loop) hand the per-round clone
    /// to the stages they re-invoke, so each round's filter and
    /// postprocess spans parent under that round.
    pub fn under(&self, span: &TraceSpan) -> SearchMetrics {
        let mut m = self.clone();
        if let Some(id) = span.span_id() {
            m.trace_parent = Some(id);
        }
        m
    }

    /// The current counter totals as a plain-data snapshot (phase
    /// timings excluded — those stay in the histograms).
    pub fn snapshot(&self) -> SearchStats {
        SearchStats {
            filter_cells: self.filter_cells.get(),
            nodes_visited: self.nodes_visited.get(),
            nodes_expanded: self.nodes_expanded.get(),
            rows_pushed: self.rows_pushed.get(),
            rows_unshared: self.rows_unshared.get(),
            branches_pruned: self.branches_pruned.get(),
            candidates: self.candidates.get(),
            stored_candidates: self.stored_candidates.get(),
            lb2_candidates: self.lb2_candidates.get(),
            postprocessed: self.postprocessed.get(),
            postprocess_cells: self.postprocess_cells.get(),
            false_alarms: self.false_alarms.get(),
            answers: self.answers.get(),
            cascade_lb_keogh_kills: self.cascade_lb_keogh_kills.get(),
            cascade_lb_improved_kills: self.cascade_lb_improved_kills.get(),
            cascade_abandon_kills: self.cascade_abandon_kills.get(),
        }
    }

    /// Folds a plain-data snapshot into the counters — the bridge for
    /// algorithms that report through `SearchStats` (e.g. the
    /// sequential-scan baseline) into a registry-backed view.
    pub fn record(&self, s: &SearchStats) {
        self.filter_cells.add(s.filter_cells);
        self.nodes_visited.add(s.nodes_visited);
        self.nodes_expanded.add(s.nodes_expanded);
        self.rows_pushed.add(s.rows_pushed);
        self.rows_unshared.add(s.rows_unshared);
        self.branches_pruned.add(s.branches_pruned);
        self.candidates.add(s.candidates);
        self.stored_candidates.add(s.stored_candidates);
        self.lb2_candidates.add(s.lb2_candidates);
        self.postprocessed.add(s.postprocessed);
        self.postprocess_cells.add(s.postprocess_cells);
        self.false_alarms.add(s.false_alarms);
        self.answers.add(s.answers);
        self.cascade_lb_keogh_kills.add(s.cascade_lb_keogh_kills);
        self.cascade_lb_improved_kills
            .add(s.cascade_lb_improved_kills);
        self.cascade_abandon_kills.add(s.cascade_abandon_kills);
    }
}

impl Default for SearchMetrics {
    fn default() -> Self {
        SearchMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_updates() {
        let m = SearchMetrics::new();
        m.nodes_visited.add(3);
        m.branches_pruned.incr();
        m.nodes_expanded.add(2);
        let s = m.snapshot();
        assert_eq!(s.nodes_visited, 3);
        assert_eq!(s.branches_pruned, 1);
        assert_eq!(s.nodes_expanded, 2);
        assert_eq!(s.nodes_visited, s.nodes_expanded + s.branches_pruned);
    }

    #[test]
    fn record_round_trips_a_snapshot() {
        let m = SearchMetrics::new();
        m.candidates.add(5);
        m.answers.add(2);
        let s = m.snapshot();
        let m2 = SearchMetrics::new();
        m2.record(&s);
        assert_eq!(m2.snapshot(), s);
    }

    #[test]
    fn registered_metrics_share_totals() {
        let reg = MetricsRegistry::new();
        let a = SearchMetrics::register(&reg);
        let b = SearchMetrics::register(&reg);
        a.rows_pushed.add(4);
        b.rows_pushed.add(6);
        assert_eq!(reg.snapshot().counters["search.rows_pushed"], 10);
    }

    #[test]
    fn trace_rides_with_scratch_and_nests_under() {
        let m = SearchMetrics::new().with_trace(Trace::active("t1"));
        let round = m.trace_span("knn.round");
        let per_round = m.under(&round);
        {
            let filter = per_round.trace_span("filter");
            // A parallel worker's scratch still records into the same
            // trace, under the same parent.
            let scratch = per_round.scratch();
            let _seg = scratch.trace_span("filter.segment");
            drop(filter);
        }
        drop(round);
        let data = m.trace.finish().expect("trace attached");
        assert_eq!(data.spans.len(), 3);
        assert_eq!(data.spans[0].name, "knn.round");
        assert_eq!(data.spans[0].parent, None);
        assert_eq!(data.spans[1].name, "filter");
        assert_eq!(data.spans[1].parent, Some(0));
        assert_eq!(data.spans[2].name, "filter.segment");
        assert_eq!(data.spans[2].parent, Some(0));
    }

    #[test]
    fn default_metrics_have_no_trace() {
        let m = SearchMetrics::new();
        assert!(!m.trace.is_active());
        let s = m.trace_span("filter");
        assert!(!s.is_active());
    }

    #[test]
    fn noop_metrics_stay_zero() {
        let m = SearchMetrics::noop();
        m.filter_cells.add(100);
        m.filter_ns.record(1);
        assert_eq!(m.snapshot(), SearchStats::default());
    }
}
