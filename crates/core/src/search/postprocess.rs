//! Post-processing: exact verification of filter candidates (paper §5.4).
//!
//! The categorized filters return candidates whose *lower-bound* distance
//! is within ε; some are false alarms. `PostProcess` retrieves each
//! candidate subsequence from the original (numeric) store, computes its
//! exact time-warping distance, and keeps the true answers.
//!
//! Candidates cluster heavily by start offset (one tree path yields one
//! candidate per qualifying depth), so verification shares a single
//! cumulative distance table per distinct `(seq, start)`: the table's
//! row `r` gives the exact distance of the length-`r` candidate, and
//! Theorem-1 early abandoning rejects all longer candidates at once. This
//! is what keeps the post-processing term `n·L̄·|Q|` of §5.5 from
//! swamping the filtering savings at large ε.

use std::collections::HashMap;

use crate::dtw::WarpTable;
use crate::parallel::parallel_map_with;
use crate::search::answers::{AnswerSet, Candidate, Match, SearchParams};
use crate::search::cascade::QueryEnvelope;
use crate::search::metrics::SearchMetrics;
use crate::sequence::{Occurrence, SeqId, SequenceStore, Value};

/// Candidate lengths grouped by `(seq, start)`, in ascending key order
/// with each length list sorted and deduplicated — the deterministic
/// unit of verification work (sequential and parallel paths both walk
/// groups in this order, which is what keeps their outputs identical).
pub(crate) fn group_candidates(
    candidates: &[Candidate],
    epsilon: f64,
) -> Vec<((SeqId, u32), Vec<u32>)> {
    let mut by_start: HashMap<(SeqId, u32), Vec<u32>> = HashMap::new();
    for cand in candidates {
        // Exact, no float slack: `lower_bound` is the *same* accumulated
        // value the filter compared against ε at emission (`stat.dist`
        // for stored suffixes, the shifted `lb2` for sparse ones — see
        // `filter::walk_edge`), not a recomputation, so any candidate
        // above ε here is a genuine filter bug, not rounding noise.
        debug_assert!(
            cand.lower_bound <= epsilon,
            "filter emitted a candidate above epsilon"
        );
        by_start
            .entry((cand.occ.seq, cand.occ.start))
            .or_default()
            .push(cand.occ.len);
    }
    let mut groups: Vec<((SeqId, u32), Vec<u32>)> = by_start.into_iter().collect();
    groups.sort_unstable_by_key(|(key, _)| *key);
    for (_, lens) in &mut groups {
        lens.sort_unstable();
        lens.dedup();
    }
    groups
}

/// Reusable per-worker buffers for [`verify_group`]'s cascade tiers —
/// owned by the worker alongside its [`WarpTable`], so screening a
/// group costs zero allocations however many groups a query produces.
#[derive(Debug, Default)]
pub(crate) struct VerifyScratch {
    /// Clamped candidate values `h_j` (tier 2's first pass).
    h: Vec<f64>,
    /// Per-tier-1-survivor `(envelope prefix sum, min h, max h)` over
    /// the survivor's length — index-aligned with `survivors`.
    lb1: Vec<(f64, f64, f64)>,
    /// Candidate lengths still alive after the lower-bound tiers.
    survivors: Vec<u32>,
    /// Per-query-column completion remainders for tier 3's
    /// threshold-pruned rows (reversed LB_Keogh over the candidate's
    /// value range).
    rem: Vec<f64>,
}

/// Verifies one `(seq, start)` group against the exact distance, pushing
/// matches with `D_tw ≤ limit` onto `out` in ascending length order.
///
/// With `cascade` attached, the group first runs the O(L) lower-bound
/// tiers of [`crate::search::cascade`]: one endpoint-strengthened
/// envelope prefix-sum pass kills every length whose tier-1 bound
/// exceeds `limit` (the accumulator `Σd + extra1` is monotone, so once
/// it overflows every longer length dies at once, and a group whose
/// *shortest* length dies skips the table entirely), then the
/// endpoint-strengthened LB_Improved re-screens the survivors. Kills
/// are provably above `limit` (`lb ≤ D_tw`), so they are counted as
/// false alarms exactly like an exact-distance rejection would be, and
/// the surviving lengths go through the *identical* shared-table
/// recurrence — answers are byte-identical with the cascade on or off.
///
/// One shared table serves every surviving length of the group (row `r`
/// is the exact distance of the length-`r` candidate) and Theorem-1
/// early abandoning rejects all remaining longer lengths at once.
/// `limit` is ε for threshold search; the k-NN heap passes a tighter
/// bound once k answers are known (see [`crate::search::knn`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_group(
    store: &SequenceStore,
    table: &mut WarpTable,
    scratch: &mut VerifyScratch,
    (seq, start): (SeqId, u32),
    lens: &[u32],
    limit: f64,
    cascade: Option<&QueryEnvelope>,
    metrics: &SearchMetrics,
    out: &mut Vec<Match>,
) {
    metrics.postprocessed.add(lens.len() as u64);
    let values = store.get(seq).suffix(start);
    let max_len = *lens.last().expect("non-empty group") as usize;
    debug_assert!(max_len <= values.len(), "candidate outruns sequence");
    let VerifyScratch {
        h,
        lb1,
        survivors,
        rem,
    } = scratch;
    let lens: &[u32] = if let Some(env) = cascade {
        h.clear();
        lb1.clear();
        survivors.clear();
        // Tier 1: one envelope prefix-sum walk bounds every length,
        // with the corner cells fused in (see the cascade module docs):
        // row 1 claims the exact `|c_1 − q_1|` via `extra1`, and each
        // candidate length claims `max(d_l, |c_l − q_n|)` for its final
        // row at emission time.
        let last_q = env.last_q();
        let mut env_sum = 0.0;
        let mut extra1 = 0.0;
        let (mut hlo, mut hhi) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut next = 0usize;
        for (row, &v) in values[..max_len].iter().enumerate() {
            let Some((d, hv)) = env.row_step(row as u32 + 1, v) else {
                // Empty band: no warping path reaches this row or any
                // longer one — every remaining length is dead.
                break;
            };
            if row == 0 {
                // Row 1's band always admits column 1, and every path
                // starts at (1,1): the envelope term can be upgraded to
                // the exact first-cell distance for *all* lengths.
                extra1 = (v - env.first_q()).abs() - d;
            }
            hlo = hlo.min(hv);
            hhi = hhi.max(hv);
            let len = (row + 1) as u32;
            if next < lens.len() && lens[next] == len {
                if env_sum + extra1 + d.max((v - last_q).abs()) <= limit {
                    lb1.push((env_sum + d, hlo, hhi));
                    survivors.push(len);
                }
                next += 1;
            }
            env_sum += d;
            h.push(hv);
            if env_sum + extra1 > limit {
                // Monotone accumulator: every longer length dies too.
                break;
            }
        }
        let tier1_kills = (lens.len() - survivors.len()) as u64;
        if tier1_kills > 0 {
            metrics.cascade_lb_keogh_kills.add(tier1_kills);
            metrics.false_alarms.add(tier1_kills);
        }
        if survivors.is_empty() {
            return;
        }
        // Tier 2: the endpoint-strengthened second pass over each
        // tier-1 survivor, compacting the survivor list in place.
        let mut tier2_kills = 0u64;
        let mut keep = 0usize;
        for i in 0..survivors.len() {
            let len = survivors[i];
            let (lb, lo, hi) = lb1[i];
            if lb + env.improved_term_endpoints_prefixed(h, len as usize, lo, hi) > limit {
                tier2_kills += 1;
            } else {
                survivors[keep] = len;
                keep += 1;
            }
        }
        survivors.truncate(keep);
        if tier2_kills > 0 {
            metrics.cascade_lb_improved_kills.add(tier2_kills);
            metrics.false_alarms.add(tier2_kills);
        }
        if survivors.is_empty() {
            return;
        }
        // Tier-3 column remainders: completing a path from column x
        // must still pair every later query column with some candidate
        // row, each costing at least its distance to the candidate's
        // value range over the surviving extent.
        let tail = *survivors.last().expect("non-empty survivors") as usize;
        let (mut dmin, mut dmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &values[..tail] {
            dmin = dmin.min(v);
            dmax = dmax.max(v);
        }
        env.column_remainders(dmin, dmax, rem);
        survivors
    } else {
        rem.clear();
        lens
    };
    // Tier 3: exact shared-table verification, built only to the
    // largest surviving length. With the cascade on, rows use the
    // threshold-pruned push — cells provably above `limit` are
    // skipped, while every value that decides a match or a Theorem-1
    // abandon is still computed exactly (see `push_value_bounded`).
    table.reset();
    let mut next = 0usize; // next candidate length to check
    let max_len = *lens.last().expect("non-empty group") as usize;
    for (row, &v) in values[..max_len].iter().enumerate() {
        let stat = if cascade.is_some() {
            table.push_value_pruned(v, limit, rem)
        } else {
            table.push_value(v)
        };
        let len = (row + 1) as u32;
        if next < lens.len() && lens[next] == len {
            if stat.dist <= limit {
                out.push(Match {
                    occ: Occurrence::new(seq, start, len),
                    dist: stat.dist,
                });
            } else {
                metrics.false_alarms.incr();
            }
            next += 1;
        }
        if stat.prunes(limit) {
            // Theorem 1: every remaining (longer) candidate of this
            // start is a false alarm.
            let rest = (lens.len() - next) as u64;
            metrics.false_alarms.add(rest);
            if cascade.is_some() && rest > 0 {
                metrics.cascade_abandon_kills.add(rest);
            }
            next = lens.len();
            break;
        }
    }
    debug_assert_eq!(next, lens.len(), "every candidate visited");
}

/// Verifies `candidates` against the exact time-warping distance,
/// returning the answers with `D_tw ≤ params.epsilon`.
///
/// Duplicate candidate occurrences are verified once. With
/// `params.threads > 1` the groups are verified across worker threads
/// (each with its own table and scratch counters); the answer set and
/// every counter are identical to the sequential path, because groups
/// are a deterministic partition and results join in group order.
pub fn postprocess(
    store: &SequenceStore,
    query: &[Value],
    candidates: &[Candidate],
    params: &SearchParams,
    metrics: &SearchMetrics,
) -> AnswerSet {
    let epsilon = params.epsilon;
    let groups = group_candidates(candidates, epsilon);
    let threads = params.threads.max(1) as usize;
    // The envelopes are read-only and band-matched to the tables, so
    // one per query is shared by every group on every worker.
    let env = params
        .cascade
        .then(|| QueryEnvelope::new(query, params.window));
    let env = env.as_ref();
    let mut answers = AnswerSet::new();
    if threads > 1 && groups.len() > 1 {
        let (per_group, states) = parallel_map_with(
            threads,
            groups,
            || {
                (
                    WarpTable::new(query, params.window),
                    VerifyScratch::default(),
                    metrics.scratch(),
                )
            },
            |(table, vs, scratch), _i, (key, lens)| {
                let mut out = Vec::new();
                verify_group(
                    store, table, vs, key, &lens, epsilon, env, scratch, &mut out,
                );
                out
            },
        );
        for matches in per_group {
            for m in matches {
                answers.push(m);
            }
        }
        for (table, _, scratch) in states {
            metrics.postprocess_cells.add(table.cells_computed());
            metrics.record(&scratch.snapshot());
        }
    } else {
        let mut table = WarpTable::new(query, params.window);
        let mut vs = VerifyScratch::default();
        let mut out = Vec::new();
        for (key, lens) in groups {
            verify_group(
                store, &mut table, &mut vs, key, &lens, epsilon, env, metrics, &mut out,
            );
        }
        for m in out {
            answers.push(m);
        }
        metrics.postprocess_cells.add(table.cells_computed());
    }
    metrics.answers.add(answers.len() as u64);
    answers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(seq: u32, start: u32, len: u32, lb: f64) -> Candidate {
        Candidate {
            occ: Occurrence::new(SeqId(seq), start, len),
            lower_bound: lb,
        }
    }

    #[test]
    fn keeps_true_answers_drops_false_alarms() {
        let store = SequenceStore::from_values(vec![vec![1.0, 2.0, 9.0, 2.0]]);
        let q = [1.0, 2.0];
        let params = SearchParams::with_epsilon(0.5);
        let m = SearchMetrics::new();
        // (0,0,2) = <1,2> exact 0; (0,2,2) = <9,2> exact >> eps.
        let cands = vec![cand(0, 0, 2, 0.0), cand(0, 2, 2, 0.3)];
        let ans = postprocess(&store, &q, &cands, &params, &m);
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.matches()[0].occ, Occurrence::new(SeqId(0), 0, 2));
        assert_eq!(ans.matches()[0].dist, 0.0);
        assert_eq!(m.snapshot().false_alarms, 1);
        assert_eq!(m.snapshot().postprocessed, 2);
    }

    #[test]
    fn duplicates_verified_once() {
        let store = SequenceStore::from_values(vec![vec![1.0, 1.0]]);
        let q = [1.0];
        let params = SearchParams::with_epsilon(0.0);
        let m = SearchMetrics::new();
        let cands = vec![cand(0, 0, 1, 0.0), cand(0, 0, 1, 0.0)];
        let ans = postprocess(&store, &q, &cands, &params, &m);
        assert_eq!(ans.len(), 1);
        assert_eq!(m.snapshot().postprocessed, 1);
    }

    #[test]
    fn shared_table_matches_independent_verification() {
        // Several candidate lengths at one start: row r of the shared
        // table must equal the independent DTW of each prefix.
        let store = SequenceStore::from_values(vec![vec![2.0, 3.0, 2.5, 9.0, 2.0, 2.2]]);
        let q = [2.0, 3.0, 2.0];
        let eps = 3.0;
        let params = SearchParams::with_epsilon(eps);
        let m = SearchMetrics::new();
        let cands: Vec<Candidate> = (1..=6).map(|l| cand(0, 0, l, 0.0)).collect();
        let ans = postprocess(&store, &q, &cands, &params, &m);
        for l in 1..=6u32 {
            let sub = store.get(SeqId(0)).subseq(0, l);
            let exact = crate::dtw::dtw(&q, sub);
            let found = ans
                .matches()
                .iter()
                .find(|m| m.occ.len == l)
                .map(|m| m.dist);
            if exact <= eps {
                assert_eq!(found, Some(exact), "length {l}");
            } else {
                assert_eq!(found, None, "length {l}");
            }
        }
        assert_eq!(
            m.snapshot().postprocessed,
            6,
            "all candidate lengths counted"
        );
    }

    #[test]
    fn early_abandon_rejects_tail_lengths() {
        // After a divergent element, row minima exceed ε: the longer
        // candidates must be rejected without computing their rows.
        let store = SequenceStore::from_values(vec![vec![1.0, 100.0, 100.0, 100.0, 100.0, 100.0]]);
        let q = [1.0];
        let params = SearchParams::with_epsilon(0.5);
        let m = SearchMetrics::new();
        let cands: Vec<Candidate> = (1..=6).map(|l| cand(0, 0, l, 0.0)).collect();
        let ans = postprocess(&store, &q, &cands, &params, &m);
        assert_eq!(ans.len(), 1); // only length 1 survives
        assert_eq!(m.snapshot().false_alarms, 5);
        // Early abandoning computed far fewer cells than 1+2+..+6 rows.
        assert!(m.snapshot().postprocess_cells <= 3);
    }

    #[test]
    fn deterministic_group_order() {
        // Matches come back sorted by (seq, start) then length — not in
        // the HashMap's arbitrary iteration order.
        let store = SequenceStore::from_values(vec![vec![1.0; 8], vec![1.0; 8]]);
        let q = [1.0, 1.0];
        let params = SearchParams::with_epsilon(0.5);
        let m = SearchMetrics::new();
        let mut cands = Vec::new();
        for seq in [1u32, 0] {
            for start in [5u32, 0, 3] {
                for len in [2u32, 1] {
                    cands.push(cand(seq, start, len, 0.0));
                }
            }
        }
        let ans = postprocess(&store, &q, &cands, &params, &m);
        let occs: Vec<Occurrence> = ans.matches().iter().map(|m| m.occ).collect();
        let mut sorted = occs.clone();
        sorted.sort();
        assert_eq!(occs, sorted, "answers must come back in occurrence order");
        assert_eq!(ans.len(), 12);
    }

    #[test]
    fn parallel_postprocess_matches_sequential() {
        let store = SequenceStore::from_values(vec![
            vec![2.0, 3.0, 2.5, 9.0, 2.0, 2.2, 3.1, 2.9],
            vec![1.0, 100.0, 2.0, 3.0, 2.0],
        ]);
        let q = [2.0, 3.0, 2.0];
        let mut cands = Vec::new();
        for seq in 0..2u32 {
            let n = store.get(SeqId(seq)).len() as u32;
            for start in 0..n {
                for len in 1..=(n - start) {
                    cands.push(cand(seq, start, len, 0.0));
                }
            }
        }
        for eps in [0.5, 3.0, 50.0] {
            let params = SearchParams::with_epsilon(eps);
            let m1 = SearchMetrics::new();
            let seq_ans = postprocess(&store, &q, &cands, &params, &m1);
            for threads in [2u32, 8] {
                let mp = SearchMetrics::new();
                let par_ans =
                    postprocess(&store, &q, &cands, &params.clone().parallel(threads), &mp);
                assert_eq!(
                    seq_ans.matches(),
                    par_ans.matches(),
                    "eps={eps} t={threads}"
                );
                assert_eq!(m1.snapshot(), mp.snapshot(), "eps={eps} t={threads}");
            }
        }
    }

    #[test]
    fn empty_candidates_empty_answers() {
        let store = SequenceStore::from_values(vec![vec![1.0]]);
        let params = SearchParams::with_epsilon(1.0);
        let m = SearchMetrics::new();
        let ans = postprocess(&store, &[1.0], &[], &params, &m);
        assert!(ans.is_empty());
        assert_eq!(m.snapshot().postprocessed, 0);
    }
}
