//! Post-processing: exact verification of filter candidates (paper §5.4).
//!
//! The categorized filters return candidates whose *lower-bound* distance
//! is within ε; some are false alarms. `PostProcess` retrieves each
//! candidate subsequence from the original (numeric) store, computes its
//! exact time-warping distance, and keeps the true answers.
//!
//! Candidates cluster heavily by start offset (one tree path yields one
//! candidate per qualifying depth), so verification shares a single
//! cumulative distance table per distinct `(seq, start)`: the table's
//! row `r` gives the exact distance of the length-`r` candidate, and
//! Theorem-1 early abandoning rejects all longer candidates at once. This
//! is what keeps the post-processing term `n·L̄·|Q|` of §5.5 from
//! swamping the filtering savings at large ε.

use std::collections::HashMap;

use crate::dtw::WarpTable;
use crate::search::answers::{AnswerSet, Candidate, Match, SearchParams};
use crate::search::metrics::SearchMetrics;
use crate::sequence::{Occurrence, SeqId, SequenceStore, Value};

/// Verifies `candidates` against the exact time-warping distance,
/// returning the answers with `D_tw ≤ params.epsilon`.
///
/// Duplicate candidate occurrences are verified once.
pub fn postprocess(
    store: &SequenceStore,
    query: &[Value],
    candidates: &[Candidate],
    params: &SearchParams,
    metrics: &SearchMetrics,
) -> AnswerSet {
    let epsilon = params.epsilon;
    // Group candidate lengths by start position.
    let mut by_start: HashMap<(SeqId, u32), Vec<u32>> = HashMap::new();
    for cand in candidates {
        debug_assert!(
            cand.lower_bound <= epsilon + 1e-9,
            "filter emitted a candidate above epsilon"
        );
        by_start
            .entry((cand.occ.seq, cand.occ.start))
            .or_default()
            .push(cand.occ.len);
    }
    let mut answers = AnswerSet::new();
    let mut table = WarpTable::new(query, params.window);
    for ((seq, start), mut lens) in by_start {
        lens.sort_unstable();
        lens.dedup();
        metrics.postprocessed.add(lens.len() as u64);
        let values = store.get(seq).suffix(start);
        table.reset();
        let mut next = 0usize; // next candidate length to check
        let max_len = *lens.last().expect("non-empty group") as usize;
        debug_assert!(max_len <= values.len(), "candidate outruns sequence");
        for (row, &v) in values[..max_len].iter().enumerate() {
            let stat = table.push_value(v);
            let len = (row + 1) as u32;
            if next < lens.len() && lens[next] == len {
                if stat.dist <= epsilon {
                    answers.push(Match {
                        occ: Occurrence::new(seq, start, len),
                        dist: stat.dist,
                    });
                } else {
                    metrics.false_alarms.incr();
                }
                next += 1;
            }
            if stat.prunes(epsilon) {
                // Theorem 1: every remaining (longer) candidate of this
                // start is a false alarm.
                metrics.false_alarms.add((lens.len() - next) as u64);
                next = lens.len();
                break;
            }
        }
        debug_assert_eq!(next, lens.len(), "every candidate visited");
    }
    metrics.postprocess_cells.add(table.cells_computed());
    metrics.answers.add(answers.len() as u64);
    answers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(seq: u32, start: u32, len: u32, lb: f64) -> Candidate {
        Candidate {
            occ: Occurrence::new(SeqId(seq), start, len),
            lower_bound: lb,
        }
    }

    #[test]
    fn keeps_true_answers_drops_false_alarms() {
        let store = SequenceStore::from_values(vec![vec![1.0, 2.0, 9.0, 2.0]]);
        let q = [1.0, 2.0];
        let params = SearchParams::with_epsilon(0.5);
        let m = SearchMetrics::new();
        // (0,0,2) = <1,2> exact 0; (0,2,2) = <9,2> exact >> eps.
        let cands = vec![cand(0, 0, 2, 0.0), cand(0, 2, 2, 0.3)];
        let ans = postprocess(&store, &q, &cands, &params, &m);
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.matches()[0].occ, Occurrence::new(SeqId(0), 0, 2));
        assert_eq!(ans.matches()[0].dist, 0.0);
        assert_eq!(m.snapshot().false_alarms, 1);
        assert_eq!(m.snapshot().postprocessed, 2);
    }

    #[test]
    fn duplicates_verified_once() {
        let store = SequenceStore::from_values(vec![vec![1.0, 1.0]]);
        let q = [1.0];
        let params = SearchParams::with_epsilon(0.0);
        let m = SearchMetrics::new();
        let cands = vec![cand(0, 0, 1, 0.0), cand(0, 0, 1, 0.0)];
        let ans = postprocess(&store, &q, &cands, &params, &m);
        assert_eq!(ans.len(), 1);
        assert_eq!(m.snapshot().postprocessed, 1);
    }

    #[test]
    fn shared_table_matches_independent_verification() {
        // Several candidate lengths at one start: row r of the shared
        // table must equal the independent DTW of each prefix.
        let store = SequenceStore::from_values(vec![vec![2.0, 3.0, 2.5, 9.0, 2.0, 2.2]]);
        let q = [2.0, 3.0, 2.0];
        let eps = 3.0;
        let params = SearchParams::with_epsilon(eps);
        let m = SearchMetrics::new();
        let cands: Vec<Candidate> = (1..=6).map(|l| cand(0, 0, l, 0.0)).collect();
        let ans = postprocess(&store, &q, &cands, &params, &m);
        for l in 1..=6u32 {
            let sub = store.get(SeqId(0)).subseq(0, l);
            let exact = crate::dtw::dtw(&q, sub);
            let found = ans
                .matches()
                .iter()
                .find(|m| m.occ.len == l)
                .map(|m| m.dist);
            if exact <= eps {
                assert_eq!(found, Some(exact), "length {l}");
            } else {
                assert_eq!(found, None, "length {l}");
            }
        }
        assert_eq!(
            m.snapshot().postprocessed,
            6,
            "all candidate lengths counted"
        );
    }

    #[test]
    fn early_abandon_rejects_tail_lengths() {
        // After a divergent element, row minima exceed ε: the longer
        // candidates must be rejected without computing their rows.
        let store = SequenceStore::from_values(vec![vec![1.0, 100.0, 100.0, 100.0, 100.0, 100.0]]);
        let q = [1.0];
        let params = SearchParams::with_epsilon(0.5);
        let m = SearchMetrics::new();
        let cands: Vec<Candidate> = (1..=6).map(|l| cand(0, 0, l, 0.0)).collect();
        let ans = postprocess(&store, &q, &cands, &params, &m);
        assert_eq!(ans.len(), 1); // only length 1 survives
        assert_eq!(m.snapshot().false_alarms, 5);
        // Early abandoning computed far fewer cells than 1+2+..+6 rows.
        assert!(m.snapshot().postprocess_cells <= 3);
    }

    #[test]
    fn empty_candidates_empty_answers() {
        let store = SequenceStore::from_values(vec![vec![1.0]]);
        let params = SearchParams::with_epsilon(1.0);
        let m = SearchMetrics::new();
        let ans = postprocess(&store, &[1.0], &[], &params, &m);
        assert!(ans.is_empty());
        assert_eq!(m.snapshot().postprocessed, 0);
    }
}
