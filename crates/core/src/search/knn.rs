//! k-nearest-neighbour subsequence search on top of the threshold
//! search.
//!
//! The paper's algorithms answer ε-threshold queries; the common "give
//! me the k most similar subsequences" form is obtained by *ε expansion*:
//! run the threshold search with a small ε, and geometrically enlarge it
//! until at least `k` answers (optionally non-overlapping) exist, then
//! keep the k best. Every round reuses the same index and the guarantee
//! of no false dismissals, so the result is exactly the k nearest — not
//! an approximation. Small-ε rounds are cheap (aggressive Theorem-1
//! pruning), which keeps the total cost close to a single search at the
//! final radius.

use crate::categorize::Alphabet;
use crate::search::answers::{Match, SearchParams};
use crate::search::backend::IndexBackend;
use crate::search::metrics::SearchMetrics;
use crate::search::threshold_search_unchecked;
use crate::sequence::{SequenceStore, Value};

/// Parameters of a k-NN subsequence search.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnParams {
    /// Number of answers wanted.
    pub k: usize,
    /// Starting search radius. When 0, a data-derived seed is used
    /// (`mean |value|` of the query).
    pub initial_epsilon: f64,
    /// Multiplicative radius growth between rounds (> 1).
    pub growth: f64,
    /// Safety bound on the number of expansion rounds.
    pub max_rounds: usize,
    /// Optional Sakoe–Chiba warping window.
    pub window: Option<u32>,
    /// When `true`, matches overlapping an already-kept better match are
    /// discarded — "k distinct regions" rather than "k (mostly nested)
    /// subsequences".
    pub non_overlapping: bool,
    /// Worker threads for filtering and candidate verification. `0` and
    /// `1` both mean sequential. The returned matches are identical at
    /// every value; with overlaps allowed, verification additionally
    /// shares a top-k heap whose threshold tightens as results land, so
    /// the *work* counters (cells, false alarms) may then be lower than
    /// the sequential path's.
    pub threads: u32,
    /// Runs the lower-bound cascade ahead of exact verification in
    /// every expansion round (sound against the shrinking top-k limit:
    /// `lb > limit` proves the candidate cannot rank among the k
    /// best). Matches are identical either way. On by default.
    pub cascade: bool,
    /// Optional backend-family pin (see
    /// [`SearchParams::backend`]): forwarded into
    /// [`QueryRequest::backend`](crate::search::query::QueryRequest::backend).
    pub backend: Option<crate::search::BackendKind>,
}

impl KnnParams {
    /// Validates the parameters against a query of length `qlen`,
    /// returning a typed error instead of panicking — the counterpart
    /// of [`SearchParams::validate`] for k-NN requests arriving from
    /// untrusted input.
    pub fn validate(&self, qlen: usize) -> Result<(), crate::error::CoreError> {
        use crate::error::CoreError;
        if qlen == 0 {
            return Err(CoreError::EmptyQuery);
        }
        if self.k == 0 {
            return Err(CoreError::BadKnnParams("k must be positive"));
        }
        if !self.growth.is_finite() || self.growth <= 1.0 {
            return Err(CoreError::BadKnnParams("growth must be finite and > 1"));
        }
        if !self.initial_epsilon.is_finite() || self.initial_epsilon < 0.0 {
            return Err(CoreError::BadKnnParams(
                "initial epsilon must be finite and non-negative",
            ));
        }
        if self.max_rounds == 0 {
            return Err(CoreError::BadKnnParams("max_rounds must be positive"));
        }
        Ok(())
    }

    /// k-NN with sensible defaults: auto-seeded radius, ×4 growth,
    /// non-overlapping results.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            initial_epsilon: 0.0,
            growth: 4.0,
            max_rounds: 24,
            window: None,
            non_overlapping: true,
            threads: 1,
            cascade: true,
            backend: None,
        }
    }

    /// Pins the backend family the answering index must belong to.
    pub fn on_backend(mut self, kind: crate::search::BackendKind) -> Self {
        self.backend = Some(kind);
        self
    }

    /// Sets the number of worker threads for filtering and
    /// verification.
    pub fn parallel(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the warping window.
    pub fn windowed(mut self, w: u32) -> Self {
        self.window = Some(w);
        self
    }

    /// Keeps overlapping matches (nested/shifted variants of the same
    /// region count separately).
    pub fn allow_overlaps(mut self) -> Self {
        self.non_overlapping = false;
        self
    }

    /// Enables or disables the lower-bound cascade during
    /// verification.
    pub fn cascaded(mut self, on: bool) -> Self {
        self.cascade = on;
        self
    }
}

/// The shared top-k accumulator of the parallel verification path: a
/// mutex-guarded set of the best matches seen so far, with the
/// threshold workers verify against tightening globally once `k`
/// answers are known.
///
/// Ties at the k-th distance are all retained (eviction compares
/// distances only), so the final `(dist, occ)` sort and cut at `k`
/// resolves ties exactly like the sequential path does.
struct TopK {
    k: usize,
    /// Current verification limit: starts at the round's ε, drops to
    /// the k-th best distance once `k` matches are in. Never below the
    /// true k-th distance, so no true top-k answer is ever abandoned.
    threshold: f64,
    items: Vec<Match>,
}

impl TopK {
    fn insert(&mut self, batch: Vec<Match>) {
        self.items.extend(batch);
        if self.items.len() >= self.k {
            self.items.sort_by(|a, b| {
                a.dist
                    .partial_cmp(&b.dist)
                    .expect("finite distances")
                    .then(a.occ.cmp(&b.occ))
            });
            let d_k = self.items[self.k - 1].dist;
            self.items.retain(|m| m.dist <= d_k);
            self.threshold = d_k;
        }
    }
}

/// Verifies filter candidates across worker threads against a shared
/// [`TopK`] heap, returning every match that can rank among the k
/// best (all ties at the k-th distance included) — or every match
/// within ε when fewer than `k` exist.
fn verify_topk_parallel(
    store: &SequenceStore,
    query: &[Value],
    candidates: &[crate::search::answers::Candidate],
    sp: &SearchParams,
    k: usize,
    metrics: &SearchMetrics,
) -> Vec<Match> {
    use crate::search::postprocess::{group_candidates, verify_group, VerifyScratch};
    let groups = group_candidates(candidates, sp.epsilon);
    let env = sp
        .cascade
        .then(|| crate::search::cascade::QueryEnvelope::new(query, sp.window));
    let env = env.as_ref();
    let shared = std::sync::Mutex::new(TopK {
        k,
        threshold: sp.epsilon,
        items: Vec::new(),
    });
    let (_, states) = crate::parallel::parallel_map_with(
        sp.threads.max(1) as usize,
        groups,
        || {
            (
                crate::dtw::WarpTable::new(query, sp.window),
                VerifyScratch::default(),
                metrics.scratch(),
            )
        },
        |(table, vs, scratch), _i, (key, lens)| {
            let limit = shared.lock().expect("top-k heap poisoned").threshold;
            let mut out = Vec::new();
            verify_group(store, table, vs, key, &lens, limit, env, scratch, &mut out);
            if !out.is_empty() {
                shared.lock().expect("top-k heap poisoned").insert(out);
            }
        },
    );
    for (table, _, scratch) in states {
        metrics.postprocess_cells.add(table.cells_computed());
        metrics.record(&scratch.snapshot());
    }
    let top = shared.into_inner().expect("top-k heap poisoned");
    metrics.answers.add(top.items.len() as u64);
    top.items
}

/// Greedily drops matches that overlap a better match in the same
/// sequence. `matches` must be sorted by ascending distance.
fn filter_overlaps(matches: &[Match]) -> Vec<Match> {
    let mut picked: Vec<Match> = Vec::new();
    for m in matches {
        if !picked.iter().any(|p| p.occ.overlaps(&m.occ)) {
            picked.push(*m);
        }
    }
    picked
}

/// The k-NN engine: ε-expansion rounds over the threshold engine,
/// metered into `metrics` (`answers` accumulates per-round verified
/// answers, not the final `k`). Callers must have validated the
/// query/parameters — this is the body behind
/// [`run_query_with`](crate::search::run_query_with) for
/// [`QueryKind::Knn`](crate::search::QueryKind) requests.
pub(crate) fn knn_unchecked<T: IndexBackend + Sync>(
    tree: &T,
    alphabet: &Alphabet,
    store: &SequenceStore,
    query: &[Value],
    params: &KnnParams,
    metrics: &SearchMetrics,
) -> Vec<Match> {
    assert!(params.k > 0, "k must be positive");
    assert!(params.growth > 1.0, "growth must exceed 1");
    let mut epsilon = if params.initial_epsilon > 0.0 {
        params.initial_epsilon
    } else {
        // Data-derived seed: a fraction of the query's mean magnitude,
        // floored so all-zero queries still make progress.
        let mean_abs: f64 = query.iter().map(|v| v.abs()).sum::<f64>() / query.len().max(1) as f64;
        (mean_abs * 0.05).max(1e-3)
    };
    let mut result: Vec<Match> = Vec::new();
    for round in 0..params.max_rounds {
        let mut sp = SearchParams::with_epsilon(epsilon);
        sp.window = params.window;
        sp.threads = params.threads;
        sp.cascade = params.cascade;
        // Each expansion round gets its own trace span; the stage spans
        // the threshold engine opens (filter/postprocess) nest under it
        // via the re-parented `scoped` handle. Trace off: `m` aliases
        // `metrics` and nothing is cloned.
        let round_span = metrics.trace_span("knn.round");
        let scoped_holder;
        let m: &SearchMetrics = if round_span.is_active() {
            round_span.attr_u64("round", round as u64);
            round_span.attr_f64("epsilon", epsilon);
            scoped_holder = metrics.under(&round_span);
            &scoped_holder
        } else {
            metrics
        };

        let mut sorted: Vec<Match> = if params.threads > 1 && !params.non_overlapping {
            // Parallel verification through a shared top-k heap: the
            // acceptance/abandon threshold tightens globally once k
            // answers land, which is sound here because overlaps are
            // allowed — the final answer is exactly the k best matches,
            // and every match that could rank ≤ k survives the bound.
            let candidates = {
                let _timer = m.filter_ns.span();
                crate::search::filter_tree(tree, alphabet, query, &sp, m)
            };
            let _timer = m.postprocess_ns.span();
            verify_topk_parallel(store, query, &candidates, &sp, params.k, m)
        } else {
            threshold_search_unchecked(tree, alphabet, store, query, &sp, m)
                .matches()
                .to_vec()
        };
        sorted.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite distances")
                .then(a.occ.cmp(&b.occ))
        });
        let candidates = if params.non_overlapping {
            filter_overlaps(&sorted)
        } else {
            sorted
        };
        round_span.attr_u64("round_answers", candidates.len() as u64);
        if candidates.len() >= params.k {
            // The k-th distance is within the searched radius, so no
            // unseen subsequence can beat it: done.
            result = candidates[..params.k].to_vec();
            break;
        }
        result = candidates;
        epsilon *= params.growth;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorize::CatStore;
    use crate::search::answers::SearchStats;
    use crate::search::query::QueryRequest;
    use crate::sequence::{Occurrence, SeqId};

    type ToyNode = (Vec<u32>, Vec<usize>, Vec<(SeqId, u32, u32)>);

    /// Trie-shaped test double (same as the filter tests).
    struct ToyTree {
        nodes: Vec<ToyNode>,
    }

    impl ToyTree {
        fn build(cat: &CatStore) -> Self {
            let mut t = ToyTree {
                nodes: vec![(Vec::new(), Vec::new(), Vec::new())],
            };
            for (i, s) in cat.seqs().iter().enumerate() {
                for start in 0..s.len() {
                    let mut node = 0usize;
                    for &sym in &s[start..] {
                        let found = t.nodes[node]
                            .1
                            .iter()
                            .copied()
                            .find(|&c| t.nodes[c].0 == [sym]);
                        node = match found {
                            Some(c) => c,
                            None => {
                                let c = t.nodes.len();
                                t.nodes.push((vec![sym], Vec::new(), Vec::new()));
                                t.nodes[node].1.push(c);
                                c
                            }
                        };
                    }
                    let run = cat.run_len(SeqId(i as u32), start as u32);
                    t.nodes[node].2.push((SeqId(i as u32), start as u32, run));
                }
            }
            t
        }
    }

    impl IndexBackend for ToyTree {
        type Node = usize;
        fn root(&self) -> usize {
            0
        }
        fn for_each_child(&self, n: usize, f: &mut dyn FnMut(usize)) {
            for &c in &self.nodes[n].1 {
                f(c);
            }
        }
        fn edge_label(&self, n: usize, out: &mut Vec<u32>) {
            out.extend_from_slice(&self.nodes[n].0);
        }
        fn for_each_suffix_below(&self, n: usize, f: &mut dyn FnMut(SeqId, u32, u32)) {
            for &(s, p, r) in &self.nodes[n].2 {
                f(s, p, r);
            }
            for &c in &self.nodes[n].1 {
                self.for_each_suffix_below(c, f);
            }
        }
        fn max_lead_run(&self, n: usize) -> u32 {
            let mut m = 0;
            self.for_each_suffix_below(n, &mut |_, _, r| m = m.max(r));
            m
        }
        fn is_sparse(&self) -> bool {
            false
        }
        fn suffix_count(&self) -> u64 {
            let mut n = 0;
            self.for_each_suffix_below(0, &mut |_, _, _| n += 1);
            n
        }
    }

    fn setup() -> (SequenceStore, Alphabet, ToyTree) {
        let store =
            SequenceStore::from_values(vec![vec![1.0, 5.0, 9.0, 5.0, 1.0], vec![5.0, 5.2, 9.5]]);
        let alphabet = Alphabet::singleton(&store).unwrap();
        let cat = alphabet.encode_store(&store);
        let tree = ToyTree::build(&cat);
        (store, alphabet, tree)
    }

    /// The typed-API k-NN call the tests exercise (the shims are
    /// covered separately by `shims_match_run_query`).
    fn knn(
        tree: &ToyTree,
        alphabet: &Alphabet,
        store: &SequenceStore,
        query: &[Value],
        params: &KnnParams,
    ) -> (Vec<Match>, SearchStats) {
        let req = QueryRequest::knn_params(query, params.clone());
        let (out, stats) = crate::search::run_query(tree, alphabet, store, &req).unwrap();
        (out.into_ranked(), stats)
    }

    #[test]
    fn knn_returns_k_best_in_order() {
        let (store, alphabet, tree) = setup();
        let q = [5.0, 9.0];
        let params = KnnParams::new(3).allow_overlaps();
        let (matches, _) = knn(&tree, &alphabet, &store, &q, &params);
        assert_eq!(matches.len(), 3);
        // Best is the exact occurrence <5,9> in S0.
        assert_eq!(matches[0].occ, Occurrence::new(SeqId(0), 1, 2));
        assert_eq!(matches[0].dist, 0.0);
        // Distances are non-decreasing.
        for w in matches.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        // Cross-check against a brute-force k-NN.
        let mut all: Vec<Match> = Vec::new();
        for (id, s) in store.iter() {
            for p in 0..s.len() {
                for l in 1..=s.len() - p {
                    let sub = s.subseq(p as u32, l as u32);
                    all.push(Match {
                        occ: Occurrence::new(id, p as u32, l as u32),
                        dist: crate::dtw::dtw(&q, sub),
                    });
                }
            }
        }
        all.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.occ.cmp(&b.occ)));
        assert_eq!(
            matches.iter().map(|m| m.occ).collect::<Vec<_>>(),
            all[..3].iter().map(|m| m.occ).collect::<Vec<_>>()
        );
    }

    #[test]
    fn knn_non_overlapping_spreads_regions() {
        let (store, alphabet, tree) = setup();
        let q = [5.0];
        let params = KnnParams::new(2);
        let (matches, _) = knn(&tree, &alphabet, &store, &q, &params);
        assert_eq!(matches.len(), 2);
        // The two matches must not overlap.
        let (a, b) = (matches[0].occ, matches[1].occ);
        assert!(a.seq != b.seq || a.start + a.len <= b.start || b.start + b.len <= a.start);
    }

    #[test]
    fn knn_handles_k_larger_than_database() {
        let store = SequenceStore::from_values(vec![vec![1.0, 2.0]]);
        let alphabet = Alphabet::singleton(&store).unwrap();
        let cat = alphabet.encode_store(&store);
        let tree = ToyTree::build(&cat);
        let params = KnnParams::new(100).allow_overlaps();
        let (matches, _) = knn(&tree, &alphabet, &store, &[1.0], &params);
        // Only 3 subsequences exist.
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn parallel_knn_matches_sequential() {
        let (store, alphabet, tree) = setup();
        for k in [1usize, 3, 5] {
            for allow in [false, true] {
                let mut params = KnnParams::new(k);
                if allow {
                    params = params.allow_overlaps();
                }
                let (seq, _) = knn(&tree, &alphabet, &store, &[5.0, 9.0], &params);
                for threads in [2u32, 8] {
                    let par_params = params.clone().parallel(threads);
                    let (par, _) = knn(&tree, &alphabet, &store, &[5.0, 9.0], &par_params);
                    assert_eq!(seq, par, "k={k} allow_overlaps={allow} t={threads}");
                }
            }
        }
    }

    #[test]
    fn topk_heap_keeps_ties_and_tightens() {
        let mut top = TopK {
            k: 2,
            threshold: 10.0,
            items: Vec::new(),
        };
        let m = |start: u32, dist: f64| Match {
            occ: Occurrence::new(SeqId(0), start, 1),
            dist,
        };
        top.insert(vec![m(0, 5.0)]);
        assert_eq!(top.threshold, 10.0, "below k: no tightening");
        top.insert(vec![m(1, 3.0), m(2, 5.0), m(3, 7.0)]);
        // k-th best distance is 5.0; the 7.0 item is evicted, both
        // 5.0 ties survive for deterministic (dist, occ) resolution.
        assert_eq!(top.threshold, 5.0);
        assert_eq!(top.items.len(), 3);
        assert!(top.items.iter().all(|x| x.dist <= 5.0));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (store, alphabet, tree) = setup();
        let params = KnnParams::new(0);
        let _ = knn_unchecked(
            &tree,
            &alphabet,
            &store,
            &[1.0],
            &params,
            &SearchMetrics::noop(),
        );
    }

    fn knn_checked(
        tree: &ToyTree,
        alphabet: &Alphabet,
        store: &SequenceStore,
        query: &[Value],
        params: &KnnParams,
    ) -> Result<Vec<Match>, crate::error::CoreError> {
        let req = QueryRequest::knn_params(query, params.clone());
        crate::search::run_query(tree, alphabet, store, &req).map(|(out, _)| out.into_ranked())
    }

    #[test]
    fn checked_knn_rejects_bad_input_without_panicking() {
        use crate::error::CoreError;
        let (store, alphabet, tree) = setup();
        let ok = KnnParams::new(2);
        // Baseline: valid input answers like the unchecked path.
        let checked = knn_checked(&tree, &alphabet, &store, &[5.0, 9.0], &ok).unwrap();
        let (plain, _) = knn(&tree, &alphabet, &store, &[5.0, 9.0], &ok);
        assert_eq!(checked, plain);
        // Empty query.
        assert_eq!(
            knn_checked(&tree, &alphabet, &store, &[], &ok).unwrap_err(),
            CoreError::EmptyQuery
        );
        // Non-finite query values.
        assert_eq!(
            knn_checked(&tree, &alphabet, &store, &[1.0, f64::NAN], &ok).unwrap_err(),
            CoreError::NonFiniteQuery
        );
        assert_eq!(
            knn_checked(&tree, &alphabet, &store, &[f64::INFINITY], &ok).unwrap_err(),
            CoreError::NonFiniteQuery
        );
        // k = 0 and bad growth become typed errors, not panics.
        assert!(matches!(
            knn_checked(&tree, &alphabet, &store, &[1.0], &KnnParams::new(0)),
            Err(CoreError::BadKnnParams(_))
        ));
        let mut bad_growth = KnnParams::new(2);
        bad_growth.growth = 1.0;
        assert!(matches!(
            knn_checked(&tree, &alphabet, &store, &[1.0], &bad_growth),
            Err(CoreError::BadKnnParams(_))
        ));
        let mut bad_eps = KnnParams::new(2);
        bad_eps.initial_epsilon = f64::NAN;
        assert!(matches!(
            knn_checked(&tree, &alphabet, &store, &[1.0], &bad_eps),
            Err(CoreError::BadKnnParams(_))
        ));
    }
}
