//! The unified typed query API.
//!
//! [`QueryRequest`] is the single entry point for query execution: one
//! builder describes *what* is asked (threshold or k-NN, via
//! [`QueryKind`]), one [`QueryRequest::validate`] pass performs every
//! check (parameter validation, non-finite values, the serving length
//! cap, truncated-index depth rules), and one executor pair —
//! [`run_query`] / [`run_query_with`] — runs the search over any
//! [`IndexBackend`].
//!
//! This module *owns* the index seam: [`IndexBackend`] and
//! [`BackendKind`] live in [`backend`](crate::search::backend) and are
//! re-exported here because the query layer is their consumer-facing
//! home — a request may pin the backend family it expects
//! ([`QueryRequest::backend`]) and the executor enforces it.

use crate::categorize::Alphabet;
use crate::error::CoreError;
use crate::search::answers::{AnswerSet, Match, SearchParams, SearchStats};
use crate::search::backend::IndexBackend;
use crate::search::knn::KnnParams;
use crate::search::metrics::SearchMetrics;
use crate::sequence::{SequenceStore, Value};

pub use crate::search::backend::BackendKind;

/// What a query asks for: every subsequence within a threshold, or the
/// `k` nearest subsequences.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// ε-threshold search (the paper's `SimSearch` family): every
    /// occurrence with `D_tw ≤ ε`.
    Threshold(SearchParams),
    /// Exact k-nearest-neighbour search by ε expansion.
    Knn(KnnParams),
}

impl QueryKind {
    /// The warping window, whichever kind carries it.
    pub fn window(&self) -> Option<u32> {
        match self {
            QueryKind::Threshold(p) => p.window,
            QueryKind::Knn(p) => p.window,
        }
    }

    /// The worker-thread count, whichever kind carries it.
    pub fn threads(&self) -> u32 {
        match self {
            QueryKind::Threshold(p) => p.threads,
            QueryKind::Knn(p) => p.threads,
        }
    }
}

/// A fully described query: the values, the kind-specific parameters,
/// and an optional serving-side length cap. Build one with
/// [`QueryRequest::threshold`] / [`QueryRequest::knn`] (or the
/// `*_params` constructors when you already hold a params struct), then
/// execute it with [`run_query`] or [`run_query_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The query sequence.
    pub query: Vec<Value>,
    /// Threshold or k-NN, with the kind's parameters.
    pub kind: QueryKind,
    /// Optional cap on `query.len()` (a serving limit protecting
    /// workers from quadratic-cost requests); violations surface as
    /// [`CoreError::QueryTooLong`].
    pub max_query_len: Option<usize>,
    /// Optional backend-family pin: when `Some`, the executor rejects an
    /// index of any other [`BackendKind`] with
    /// [`CoreError::UnsupportedBackend`] instead of silently answering
    /// from a different index family. `None` (the default) accepts any
    /// backend.
    pub backend: Option<BackendKind>,
}

impl QueryRequest {
    /// A threshold query with default parameters at radius `epsilon`.
    pub fn threshold(query: &[Value], epsilon: f64) -> Self {
        Self::threshold_params(query, SearchParams::with_epsilon(epsilon))
    }

    /// A threshold query with explicit [`SearchParams`]. A backend pin
    /// carried by the params ([`SearchParams::backend`]) is lifted into
    /// [`QueryRequest::backend`] — this is how a pin parsed off the
    /// wire reaches the executor.
    pub fn threshold_params(query: &[Value], params: SearchParams) -> Self {
        Self {
            query: query.to_vec(),
            backend: params.backend,
            kind: QueryKind::Threshold(params),
            max_query_len: None,
        }
    }

    /// A k-NN query with default parameters for `k` neighbours.
    pub fn knn(query: &[Value], k: usize) -> Self {
        Self::knn_params(query, KnnParams::new(k))
    }

    /// A k-NN query with explicit [`KnnParams`]. Lifts a params-carried
    /// backend pin like [`threshold_params`](Self::threshold_params).
    pub fn knn_params(query: &[Value], params: KnnParams) -> Self {
        Self {
            query: query.to_vec(),
            backend: params.backend,
            kind: QueryKind::Knn(params),
            max_query_len: None,
        }
    }

    /// Adds a Sakoe–Chiba warping window of width `w`.
    pub fn windowed(mut self, w: u32) -> Self {
        match &mut self.kind {
            QueryKind::Threshold(p) => p.window = Some(w),
            QueryKind::Knn(p) => p.window = Some(w),
        }
        self
    }

    /// Sets the worker-thread count for filtering and verification.
    pub fn parallel(mut self, threads: u32) -> Self {
        match &mut self.kind {
            QueryKind::Threshold(p) => p.threads = threads,
            QueryKind::Knn(p) => p.threads = threads,
        }
        self
    }

    /// Imposes a serving-side cap on the query length.
    pub fn capped(mut self, max_query_len: usize) -> Self {
        self.max_query_len = Some(max_query_len);
        self
    }

    /// Pins the backend family the index must belong to; the executor
    /// rejects any other with [`CoreError::UnsupportedBackend`].
    pub fn on_backend(mut self, kind: BackendKind) -> Self {
        self.backend = Some(kind);
        self
    }

    /// Validates everything that does not depend on the index: the
    /// length cap, the kind's parameters (absorbing
    /// [`SearchParams::validate`] and [`KnnParams::validate`]), and
    /// query finiteness. Index-dependent checks (truncated-index depth
    /// rules) happen in [`validate_for`](Self::validate_for).
    pub fn validate(&self) -> Result<(), CoreError> {
        match &self.kind {
            QueryKind::Threshold(p) => p.validate(self.query.len())?,
            QueryKind::Knn(p) => p.validate(self.query.len())?,
        }
        if self.query.iter().any(|v| !v.is_finite()) {
            return Err(CoreError::NonFiniteQuery);
        }
        if let Some(limit) = self.max_query_len {
            if self.query.len() > limit {
                return Err(CoreError::QueryTooLong {
                    limit,
                    got: self.query.len(),
                });
            }
        }
        Ok(())
    }

    /// [`validate`](Self::validate) plus the index-dependent checks: on
    /// a §8-truncated index the query's effective answer-length bound
    /// must fit within `depth_limit` (for k-NN, only a window provides
    /// such a bound, because ε expansion is otherwise unbounded).
    pub fn validate_for(&self, depth_limit: Option<u32>) -> Result<(), CoreError> {
        self.validate()?;
        let Some(limit) = depth_limit else {
            return Ok(());
        };
        let requested = match &self.kind {
            QueryKind::Threshold(p) => p.effective_max_len(self.query.len()),
            QueryKind::Knn(p) => {
                // Saturating: a window near u32::MAX must fail the
                // limit check, not wrap into a small "acceptable" depth.
                let qlen = u32::try_from(self.query.len()).unwrap_or(u32::MAX);
                p.window.map(|w| qlen.saturating_add(w))
            }
        };
        match requested {
            Some(m) if m <= limit => Ok(()),
            _ => Err(CoreError::DepthLimitExceeded { limit, requested }),
        }
    }
}

/// Coverage accounting for a query that may have run over a partially
/// available index: how many segments answered, how many were
/// quarantined, and what fraction of stored suffixes the answer
/// actually covers. Attached to [`QueryOutput`] when a degraded
/// (partial) result is served, so callers can never mistake an
/// incomplete answer for a complete one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coverage {
    /// Segments the index holds in total (base tree included).
    pub segments_total: usize,
    /// Segments that actually contributed to this answer.
    pub segments_answered: usize,
    /// Segments excluded because they are quarantined (tombstoned in
    /// the manifest after a failed CRC check).
    pub segments_quarantined: usize,
    /// Suffixes indexed across the whole corpus.
    pub suffixes_total: u64,
    /// Suffixes inside the segments that answered.
    pub suffixes_answered: u64,
}

impl Coverage {
    /// Fraction of stored suffixes covered by the answer, in `[0, 1]`.
    /// An empty index counts as fully covered.
    pub fn fraction(&self) -> f64 {
        if self.suffixes_total == 0 {
            1.0
        } else {
            self.suffixes_answered as f64 / self.suffixes_total as f64
        }
    }

    /// `true` when at least one segment did not answer.
    pub fn is_partial(&self) -> bool {
        self.segments_answered < self.segments_total
    }
}

/// The answers themselves: an answer set for threshold queries, a
/// distance-ranked list for k-NN queries. Both views are reachable
/// from either variant, so callers can stay kind-agnostic.
#[derive(Debug, Clone)]
pub enum OutputKind {
    /// Threshold answers (every occurrence within ε).
    Matches(AnswerSet),
    /// k-NN answers, sorted by ascending `(distance, occurrence)`.
    Ranked(Vec<Match>),
}

/// The result of a [`run_query`]: the answers plus optional coverage
/// accounting when the index could only answer partially.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The answers.
    pub kind: OutputKind,
    /// `Some` when the query ran degraded — one or more segments were
    /// quarantined and excluded. `None` means full coverage.
    pub coverage: Option<Coverage>,
}

impl QueryOutput {
    /// Wraps threshold answers with full coverage.
    pub fn answers(a: AnswerSet) -> Self {
        QueryOutput {
            kind: OutputKind::Matches(a),
            coverage: None,
        }
    }

    /// Wraps ranked (k-NN) answers with full coverage.
    pub fn ranked(v: Vec<Match>) -> Self {
        QueryOutput {
            kind: OutputKind::Ranked(v),
            coverage: None,
        }
    }

    /// Attaches coverage accounting (builder style).
    pub fn with_coverage(mut self, coverage: Coverage) -> Self {
        self.coverage = Some(coverage);
        self
    }

    /// `true` when the answer is honestly labeled as incomplete.
    pub fn is_partial(&self) -> bool {
        self.coverage.is_some_and(|c| c.is_partial())
    }

    /// `true` when the answers are a ranked (k-NN) list.
    pub fn is_ranked(&self) -> bool {
        matches!(self.kind, OutputKind::Ranked(_))
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        match &self.kind {
            OutputKind::Matches(a) => a.len(),
            OutputKind::Ranked(v) => v.len(),
        }
    }

    /// `true` when no answers were found.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the matches, whichever variant holds them.
    pub fn matches(&self) -> &[Match] {
        match &self.kind {
            OutputKind::Matches(a) => a.matches(),
            OutputKind::Ranked(v) => v,
        }
    }

    /// Converts into an [`AnswerSet`] (lossless for both variants).
    pub fn into_answer_set(self) -> AnswerSet {
        match self.kind {
            OutputKind::Matches(a) => a,
            OutputKind::Ranked(v) => {
                let mut a = AnswerSet::new();
                for m in v {
                    a.push(m);
                }
                a
            }
        }
    }

    /// Converts into a distance-ranked list: k-NN answers come back
    /// verbatim; threshold answers are sorted by `(distance,
    /// occurrence)`.
    pub fn into_ranked(self) -> Vec<Match> {
        match self.kind {
            OutputKind::Ranked(v) => v,
            OutputKind::Matches(a) => {
                let n = a.len();
                a.top_k(n)
            }
        }
    }
}

/// Executes a validated query over the index, metering into
/// caller-supplied [`SearchMetrics`]. This is THE query path: the CLI,
/// the server and the facade all funnel through here.
///
/// Validation runs first ([`QueryRequest::validate_for`] against the
/// tree's depth limit), so malformed requests return a typed
/// [`CoreError`] and never panic.
pub fn run_query_with<T: IndexBackend + Sync>(
    tree: &T,
    alphabet: &Alphabet,
    store: &SequenceStore,
    req: &QueryRequest,
    metrics: &SearchMetrics,
) -> Result<QueryOutput, CoreError> {
    if let Some(want) = req.backend {
        let got = tree.backend_kind();
        if got != want {
            return Err(CoreError::UnsupportedBackend {
                requested: want.as_str(),
                actual: got.as_str(),
            });
        }
    }
    req.validate_for(tree.depth_limit())?;
    match &req.kind {
        QueryKind::Threshold(p) => Ok(QueryOutput::answers(
            crate::search::threshold_search_unchecked(
                tree, alphabet, store, &req.query, p, metrics,
            ),
        )),
        QueryKind::Knn(p) => Ok(QueryOutput::ranked(crate::search::knn::knn_unchecked(
            tree, alphabet, store, &req.query, p, metrics,
        ))),
    }
}

/// [`run_query_with`] on fresh metrics, returning the final
/// [`SearchStats`] snapshot alongside the output. For k-NN requests the
/// snapshot's `answers` field reads as the result count actually
/// returned, not the per-round verified total.
pub fn run_query<T: IndexBackend + Sync>(
    tree: &T,
    alphabet: &Alphabet,
    store: &SequenceStore,
    req: &QueryRequest,
) -> Result<(QueryOutput, SearchStats), CoreError> {
    let metrics = SearchMetrics::new();
    let out = run_query_with(tree, alphabet, store, req, &metrics)?;
    let mut stats = metrics.snapshot();
    if matches!(req.kind, QueryKind::Knn(_)) {
        stats.answers = out.len() as u64;
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_shared_knobs_on_either_kind() {
        let t = QueryRequest::threshold(&[1.0, 2.0], 0.5)
            .windowed(3)
            .parallel(4)
            .capped(16);
        assert_eq!(t.kind.window(), Some(3));
        assert_eq!(t.kind.threads(), 4);
        assert_eq!(t.max_query_len, Some(16));
        let k = QueryRequest::knn(&[1.0], 5)
            .windowed(2)
            .parallel(8)
            .on_backend(BackendKind::Esa);
        assert_eq!(k.kind.window(), Some(2));
        assert_eq!(k.kind.threads(), 8);
        assert_eq!(k.backend, Some(BackendKind::Esa));
        match k.kind {
            QueryKind::Knn(p) => assert_eq!(p.k, 5),
            _ => panic!("expected knn kind"),
        }
    }

    #[test]
    fn validate_absorbs_every_legacy_check() {
        // Empty query (both kinds).
        assert_eq!(
            QueryRequest::threshold(&[], 1.0).validate(),
            Err(CoreError::EmptyQuery)
        );
        assert_eq!(
            QueryRequest::knn(&[], 3).validate(),
            Err(CoreError::EmptyQuery)
        );
        // Bad threshold / bad k-NN params.
        assert_eq!(
            QueryRequest::threshold(&[1.0], -1.0).validate(),
            Err(CoreError::BadThreshold)
        );
        assert!(matches!(
            QueryRequest::knn(&[1.0], 0).validate(),
            Err(CoreError::BadKnnParams(_))
        ));
        // Non-finite values.
        assert_eq!(
            QueryRequest::threshold(&[f64::NAN], 1.0).validate(),
            Err(CoreError::NonFiniteQuery)
        );
        // The serving length cap.
        assert_eq!(
            QueryRequest::threshold(&[1.0, 2.0, 3.0], 1.0)
                .capped(2)
                .validate(),
            Err(CoreError::QueryTooLong { limit: 2, got: 3 })
        );
        assert!(QueryRequest::threshold(&[1.0, 2.0], 1.0)
            .capped(2)
            .validate()
            .is_ok());
    }

    #[test]
    fn depth_limit_rules_match_the_legacy_entry_points() {
        // Threshold: effective max length must fit the stored depth.
        let t = QueryRequest::threshold(&[1.0, 2.0], 1.0);
        assert!(t.validate_for(None).is_ok());
        assert_eq!(
            t.validate_for(Some(8)),
            Err(CoreError::DepthLimitExceeded {
                limit: 8,
                requested: None
            })
        );
        assert!(t.clone().windowed(4).validate_for(Some(8)).is_ok());
        assert_eq!(
            t.windowed(7).validate_for(Some(8)),
            Err(CoreError::DepthLimitExceeded {
                limit: 8,
                requested: Some(9)
            })
        );
        // k-NN: only a window bounds ε expansion on a truncated index.
        let k = QueryRequest::knn(&[1.0, 2.0], 3);
        assert!(matches!(
            k.validate_for(Some(8)),
            Err(CoreError::DepthLimitExceeded { .. })
        ));
        assert!(k.windowed(4).validate_for(Some(8)).is_ok());
    }

    #[test]
    fn output_views_are_lossless() {
        let m = |start: u32, dist: f64| Match {
            occ: crate::sequence::Occurrence::new(crate::sequence::SeqId(0), start, 2),
            dist,
        };
        let mut a = AnswerSet::new();
        a.push(m(4, 2.0));
        a.push(m(1, 1.0));
        let out = QueryOutput::answers(a);
        assert_eq!(out.len(), 2);
        assert!(!out.is_partial(), "no coverage means full coverage");
        let ranked = out.into_ranked();
        assert_eq!(ranked[0].occ.start, 1, "threshold answers rank by distance");
        let back = QueryOutput::ranked(ranked).into_answer_set();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn coverage_fraction_and_partial_flag() {
        let full = Coverage {
            segments_total: 3,
            segments_answered: 3,
            segments_quarantined: 0,
            suffixes_total: 100,
            suffixes_answered: 100,
        };
        assert!(!full.is_partial());
        assert_eq!(full.fraction(), 1.0);
        let degraded = Coverage {
            segments_total: 3,
            segments_answered: 2,
            segments_quarantined: 1,
            suffixes_total: 100,
            suffixes_answered: 75,
        };
        assert!(degraded.is_partial());
        assert_eq!(degraded.fraction(), 0.75);
        let out = QueryOutput::answers(AnswerSet::new()).with_coverage(degraded);
        assert!(out.is_partial());
        // An empty index is trivially fully covered.
        let empty = Coverage {
            segments_total: 0,
            segments_answered: 0,
            segments_quarantined: 0,
            suffixes_total: 0,
            suffixes_answered: 0,
        };
        assert_eq!(empty.fraction(), 1.0);
        assert!(!empty.is_partial());
    }
}
