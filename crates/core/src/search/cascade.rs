//! The lower-bound cascade run ahead of exact `D_tw` verification.
//!
//! The paper's funnel jumps straight from the categorized-tree filter
//! (`D_tw-lb` / `D_tw-lb2`, §5.3/§6.2) to the quadratic [`WarpTable`]
//! — every candidate that survives the tree pays `O(|Q|·L)` cells even
//! when a cheap O(L) bound could have rejected it. This module inserts
//! two progressively tighter *numeric* lower bounds between the two:
//!
//! 1. **Tier 1 — envelope bound** (LB_Keogh generalized to
//!    variable-length prefixes). For data row `j` the query's in-band
//!    columns are `x ∈ [j−w, j+w] ∩ [1, |Q|]` (the same band as
//!    [`WarpTable`]); let `[L_j, U_j]` be the min/max of the query over
//!    that range. Any warping path visits every row at least once, and
//!    a path cell `(x, j)` satisfies `|q_x − c_j| ≥ d(c_j, [L_j, U_j])`,
//!    so with non-negative base distances
//!    `Σ_{j≤l} d(c_j, [L_j, U_j]) ≤ D_tw(Q, C[..l])`. The sum is a
//!    prefix sum — *monotone non-decreasing in `l`* — so one running
//!    accumulator bounds every candidate length of a `(seq, start)`
//!    group, and once it exceeds ε every longer length dies at once.
//! 2. **Tier 2 — two-pass refinement** (Lemire's LB_Improved). Clamp
//!    the candidate onto the query envelope, `h_j = clamp(c_j, L_j,
//!    U_j)`; a path cell decomposes exactly as `|q_x − c_j| =
//!    |c_j − h_j| + |h_j − q_x|` (the clamp lies between the two), and
//!    `|h_j − q_x| ≥ d(q_x, env(h)_x)` where `env(h)_x` ranges over the
//!    rows in column `x`'s band. Summing rows and columns separately:
//!    `lb_keogh + Σ_x d(q_x, env(h)_x) ≤ D_tw`. The second pass costs
//!    O(|Q| + l) per surviving length (O(log |Q|) without a window, via
//!    a sorted-query prefix-sum table) — still far below the table.
//!
//! Both tiers are additionally *endpoint-strengthened* (LB_Kim's
//! anchor cells fused into the envelope bounds): every warping path
//! between `Q` and `C[..l]` contains the corner cells `(1, 1)` and
//! `(n, l)`, so row 1's contribution is at least `|c_1 − q_1|` (not
//! just the envelope distance) and row `l`'s is at least
//! `|c_l − q_n|`. The first-row term is shared by every length of a
//! group; the last-row term is a per-length `max` applied at emission.
//! In tier 2 the same two cells strengthen the *column* side instead
//! (`|h_1 − q_1|` for column 1, `|h_l − q_n|` for column `n`) — the
//! row side must stay the pure envelope sums there, or the corner
//! cells would be claimed twice and the decomposition would overshoot
//! `D_tw`. On unconstrained warping (the paper's default) the corners
//! dominate the global envelope, typically halving the surviving
//! table extent again.
//!
//! Tier 3 is the existing shared-table exact verification with
//! Theorem-1 early abandoning, now built only up to the largest
//! surviving length. The chain `lb_keogh ≤ lb_improved ≤ D_tw` (and
//! `≤` from each bound to its endpoint-strengthened variant) makes
//! every tier no-false-dismissal, mirroring the
//! `D_tw-lb2 ≤ D_tw-lb ≤ D_tw` guarantees of the categorized filter;
//! kills use the strict `lb > ε` so a candidate landing *exactly* on ε
//! is never dismissed (the acceptance contract everywhere else is
//! `dist ≤ ε`).

use crate::dtw::WarpTable;
use crate::sequence::Value;

/// Distance from `v` to the closed interval `[lo, hi]` (zero inside).
#[inline]
fn interval_dist(v: f64, lo: f64, hi: f64) -> f64 {
    if v < lo {
        lo - v
    } else if v > hi {
        v - hi
    } else {
        0.0
    }
}

/// Band-constrained envelopes of one query, precomputed once per query
/// and shared (read-only) by every candidate the cascade screens.
#[derive(Debug, Clone)]
pub struct QueryEnvelope {
    query: Vec<Value>,
    window: Option<u32>,
    /// `low[j-1]`/`high[j-1]`: query min/max over row `j`'s in-band
    /// columns, for rows `1..=|Q|`.
    low: Vec<f64>,
    high: Vec<f64>,
    /// `suffix_min[i]`/`suffix_max[i]`: min/max of `query[i..]` — the
    /// envelopes of rows `j > |Q|`, whose band is `[j−w, |Q|]`.
    suffix_min: Vec<f64>,
    suffix_max: Vec<f64>,
    /// Query values sorted ascending, with `sorted_prefix[i]` = sum of
    /// the first `i` sorted values — the O(log |Q|) second pass for
    /// unconstrained warping, where `env(h)_x` is one global interval.
    sorted: Vec<f64>,
    sorted_prefix: Vec<f64>,
}

impl QueryEnvelope {
    /// Builds the envelopes for `query` under an optional Sakoe–Chiba
    /// band of width `window` — the same band [`WarpTable`] enforces.
    ///
    /// # Panics
    /// Panics if the query is empty.
    pub fn new(query: &[Value], window: Option<u32>) -> Self {
        assert!(!query.is_empty(), "query must be non-empty");
        let n = query.len();
        let mut low = vec![0.0; n];
        let mut high = vec![0.0; n];
        match window {
            None => {
                // Unconstrained: every row sees the whole query.
                let (mut mn, mut mx) = (f64::INFINITY, f64::NEG_INFINITY);
                for &q in query {
                    mn = mn.min(q);
                    mx = mx.max(q);
                }
                low.fill(mn);
                high.fill(mx);
            }
            Some(w) => {
                let w = w as usize;
                // Sliding min/max over [j−w, j+w] ∩ [1, n] via monotonic
                // deques: both window edges are non-decreasing in j, so
                // the classic O(n) scheme applies.
                let mut min_dq: std::collections::VecDeque<usize> =
                    std::collections::VecDeque::new();
                let mut max_dq: std::collections::VecDeque<usize> =
                    std::collections::VecDeque::new();
                let mut next = 0usize; // next query index to admit
                for j in 1..=n {
                    let lo = j.saturating_sub(w).max(1);
                    let hi = (j.saturating_add(w)).min(n);
                    while next < hi {
                        let q = query[next];
                        while min_dq.back().is_some_and(|&i| query[i] >= q) {
                            min_dq.pop_back();
                        }
                        min_dq.push_back(next);
                        while max_dq.back().is_some_and(|&i| query[i] <= q) {
                            max_dq.pop_back();
                        }
                        max_dq.push_back(next);
                        next += 1;
                    }
                    while min_dq.front().is_some_and(|&i| i + 1 < lo) {
                        min_dq.pop_front();
                    }
                    while max_dq.front().is_some_and(|&i| i + 1 < lo) {
                        max_dq.pop_front();
                    }
                    low[j - 1] = query[*min_dq.front().expect("non-empty band")];
                    high[j - 1] = query[*max_dq.front().expect("non-empty band")];
                }
            }
        }
        let mut suffix_min = vec![0.0; n];
        let mut suffix_max = vec![0.0; n];
        let (mut mn, mut mx) = (f64::INFINITY, f64::NEG_INFINITY);
        for i in (0..n).rev() {
            mn = mn.min(query[i]);
            mx = mx.max(query[i]);
            suffix_min[i] = mn;
            suffix_max[i] = mx;
        }
        let mut sorted = query.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite query values"));
        let mut sorted_prefix = Vec::with_capacity(n + 1);
        let mut acc = 0.0;
        sorted_prefix.push(0.0);
        for &v in &sorted {
            acc += v;
            sorted_prefix.push(acc);
        }
        Self {
            query: query.to_vec(),
            window,
            low,
            high,
            suffix_min,
            suffix_max,
            sorted,
            sorted_prefix,
        }
    }

    /// Query length.
    #[inline]
    pub fn query_len(&self) -> usize {
        self.query.len()
    }

    /// First query value `q_1` — the anchor of corner cell `(1, 1)`.
    #[inline]
    pub fn first_q(&self) -> Value {
        self.query[0]
    }

    /// Last query value `q_n` — the anchor of corner cell `(n, l)`.
    #[inline]
    pub fn last_q(&self) -> Value {
        self.query[self.query.len() - 1]
    }

    /// The envelope `[L_j, U_j]` of data row `j` (1-based), or `None`
    /// when the row's band is empty (row index beyond `|Q| + w`) — no
    /// warping path reaches such a row, so its candidates are dead.
    #[inline]
    pub fn row_bounds(&self, row: u32) -> Option<(f64, f64)> {
        let n = self.query.len();
        let j = row as usize;
        if j == 0 {
            return None;
        }
        if j <= n {
            return Some((self.low[j - 1], self.high[j - 1]));
        }
        match self.window {
            // Unconstrained: rows past the query still see all of it.
            None => Some((self.suffix_min[0], self.suffix_max[0])),
            Some(w) => {
                let lo = j.saturating_sub(w as usize).max(1);
                if lo > n {
                    None
                } else {
                    Some((self.suffix_min[lo - 1], self.suffix_max[lo - 1]))
                }
            }
        }
    }

    /// The tier-1 row contribution `d(c_j, [L_j, U_j])` together with
    /// the clamped value `h_j` tier 2 reuses. `None` when the row's
    /// band is empty (the candidate's exact distance is infinite).
    #[inline]
    pub fn row_step(&self, row: u32, v: Value) -> Option<(f64, f64)> {
        let (lo, hi) = self.row_bounds(row)?;
        let h = v.clamp(lo, hi);
        Some(((v - h).abs(), h))
    }

    /// Lemire's second pass: `Σ_x d(q_x, env(h)_x)` over the first
    /// `len` clamped values `h`, where `env(h)_x` ranges over the rows
    /// in column `x`'s band (`j ∈ [x−w, x+w] ∩ [1, len]`). Returns
    /// `f64::INFINITY` when some column's band is empty (no warping
    /// path of that length exists).
    pub fn improved_term(&self, h: &[f64], len: usize) -> f64 {
        let n = self.query.len();
        let len = len.min(h.len());
        debug_assert!(len > 0, "improved_term needs at least one row");
        match self.window {
            None => {
                // One global interval: O(log n) via the sorted query.
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in &h[..len] {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                self.sum_outside(lo, hi)
            }
            Some(w) => {
                let w = w as usize;
                // Sliding min/max of h over [x−w, x+w] ∩ [1, len].
                let mut min_dq: std::collections::VecDeque<usize> =
                    std::collections::VecDeque::new();
                let mut max_dq: std::collections::VecDeque<usize> =
                    std::collections::VecDeque::new();
                let mut next = 0usize;
                let mut total = 0.0;
                for x in 1..=n {
                    let lo = x.saturating_sub(w).max(1);
                    if lo > len {
                        // Column x's band has no row ≤ len: no complete
                        // warping path exists for this length.
                        return f64::INFINITY;
                    }
                    let hi = (x.saturating_add(w)).min(len);
                    while next < hi {
                        let v = h[next];
                        while min_dq.back().is_some_and(|&i| h[i] >= v) {
                            min_dq.pop_back();
                        }
                        min_dq.push_back(next);
                        while max_dq.back().is_some_and(|&i| h[i] <= v) {
                            max_dq.pop_back();
                        }
                        max_dq.push_back(next);
                        next += 1;
                    }
                    while min_dq.front().is_some_and(|&i| i + 1 < lo) {
                        min_dq.pop_front();
                    }
                    while max_dq.front().is_some_and(|&i| i + 1 < lo) {
                        max_dq.pop_front();
                    }
                    let env_lo = h[*min_dq.front().expect("non-empty band")];
                    let env_hi = h[*max_dq.front().expect("non-empty band")];
                    total += interval_dist(self.query[x - 1], env_lo, env_hi);
                }
                total
            }
        }
    }

    /// The endpoint-strengthened second pass: [`Self::improved_term`]
    /// with columns `1` and `n` pinned to the corner cells. Every
    /// warping path starts at `(1, 1)` and ends at `(n, len)`, so
    /// column 1 may claim `|h_1 − q_1|` (not the min over its band) and
    /// column `n` may claim `|h_len − q_n|` — both `≥` the envelope
    /// terms they replace, and still disjoint from the row pass (the
    /// per-cell decomposition `|q_x − c_j| = |c_j − h_j| + |h_j − q_x|`
    /// splits each corner cell exactly once between the two passes).
    pub fn improved_term_endpoints(&self, h: &[f64], len: usize) -> f64 {
        let n = self.query.len();
        let len = len.min(h.len());
        debug_assert!(len > 0, "improved_term needs at least one row");
        if n == 1 {
            // h_j is the query value itself, so both passes and the
            // strengthening collapse to zero column terms.
            return self.improved_term(h, len);
        }
        let e1 = (h[0] - self.query[0]).abs();
        let en = (h[len - 1] - self.query[n - 1]).abs();
        match self.window {
            None => {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in &h[..len] {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                let d1 = interval_dist(self.query[0], lo, hi);
                let dn = interval_dist(self.query[n - 1], lo, hi);
                self.sum_outside(lo, hi) + (e1 - d1).max(0.0) + (en - dn).max(0.0)
            }
            Some(w) => {
                let w = w as usize;
                let mut min_dq: std::collections::VecDeque<usize> =
                    std::collections::VecDeque::new();
                let mut max_dq: std::collections::VecDeque<usize> =
                    std::collections::VecDeque::new();
                let mut next = 0usize;
                let mut total = 0.0;
                for x in 1..=n {
                    let lo = x.saturating_sub(w).max(1);
                    if lo > len {
                        return f64::INFINITY;
                    }
                    let hi = (x.saturating_add(w)).min(len);
                    while next < hi {
                        let v = h[next];
                        while min_dq.back().is_some_and(|&i| h[i] >= v) {
                            min_dq.pop_back();
                        }
                        min_dq.push_back(next);
                        while max_dq.back().is_some_and(|&i| h[i] <= v) {
                            max_dq.pop_back();
                        }
                        max_dq.push_back(next);
                        next += 1;
                    }
                    while min_dq.front().is_some_and(|&i| i + 1 < lo) {
                        min_dq.pop_front();
                    }
                    while max_dq.front().is_some_and(|&i| i + 1 < lo) {
                        max_dq.pop_front();
                    }
                    let env_lo = h[*min_dq.front().expect("non-empty band")];
                    let env_hi = h[*max_dq.front().expect("non-empty band")];
                    let mut term = interval_dist(self.query[x - 1], env_lo, env_hi);
                    if x == 1 {
                        term = term.max(e1);
                    }
                    // Cell (n, len) is only on the path when the band
                    // admits it; `lo > len` above already rules out
                    // len < n − w, leaving the upper edge to check.
                    if x == n && len <= n + w {
                        term = term.max(en);
                    }
                    total += term;
                }
                total
            }
        }
    }

    /// [`Self::improved_term_endpoints`] when the caller already knows
    /// the min/max of `h[..len]` (tracked incrementally during the
    /// tier-1 walk): unwindowed this is O(log |Q|) with no rescan of
    /// `h`; with a band it falls back to the full two-pass loop.
    pub fn improved_term_endpoints_prefixed(&self, h: &[f64], len: usize, lo: f64, hi: f64) -> f64 {
        let n = self.query.len();
        if self.window.is_some() || n == 1 {
            return self.improved_term_endpoints(h, len);
        }
        let len = len.min(h.len());
        debug_assert!(len > 0, "improved_term needs at least one row");
        let e1 = (h[0] - self.query[0]).abs();
        let en = (h[len - 1] - self.query[n - 1]).abs();
        let d1 = interval_dist(self.query[0], lo, hi);
        let dn = interval_dist(self.query[n - 1], lo, hi);
        self.sum_outside(lo, hi) + (e1 - d1).max(0.0) + (en - dn).max(0.0)
    }

    /// Fills `out[x−1]` with `Σ_{x' > x} d(q_{x'}, [lo, hi])` — a lower
    /// bound on the cost of completing a warping path from query column
    /// `x` to the last column when every remaining data value lies in
    /// `[lo, hi]` (a reversed LB_Keogh over the candidate's value
    /// range). `out[|Q|−1]` is zero; the exact table's threshold-pruned
    /// rows subtract these to poison cells that cannot finish within ε.
    pub fn column_remainders(&self, lo: f64, hi: f64, out: &mut Vec<f64>) {
        let n = self.query.len();
        out.clear();
        out.resize(n, 0.0);
        let mut acc = 0.0;
        for x in (1..n).rev() {
            acc += interval_dist(self.query[x], lo, hi);
            out[x - 1] = acc;
        }
    }

    /// `Σ_x max(lo − q_x, q_x − hi, 0)` over all query values, in
    /// O(log |Q|) from the sorted prefix sums.
    fn sum_outside(&self, lo: f64, hi: f64) -> f64 {
        let below = self.sorted.partition_point(|&q| q < lo);
        let above = self.sorted.partition_point(|&q| q <= hi);
        let n = self.sorted.len();
        // Values strictly below lo contribute lo − q each.
        let under = below as f64 * lo - self.sorted_prefix[below];
        // Values strictly above hi contribute q − hi each.
        let over = (self.sorted_prefix[n] - self.sorted_prefix[above]) - (n - above) as f64 * hi;
        under + over
    }
}

/// `LB_Keogh(Q, C[..len])` under the envelope's band: the tier-1 bound
/// as a standalone function (the cascade itself accumulates it
/// incrementally). `f64::INFINITY` when a row's band is empty.
pub fn lb_keogh(env: &QueryEnvelope, c: &[Value], len: usize) -> f64 {
    let len = len.min(c.len());
    let mut sum = 0.0;
    for (j, &v) in c[..len].iter().enumerate() {
        match env.row_step(j as u32 + 1, v) {
            Some((d, _)) => sum += d,
            None => return f64::INFINITY,
        }
    }
    sum
}

/// `LB_Improved(Q, C[..len])`: tier 1 plus Lemire's second pass —
/// always `≥ lb_keogh` and `≤ D_tw` (see the module docs for the
/// proof sketch).
pub fn lb_improved(env: &QueryEnvelope, c: &[Value], len: usize) -> f64 {
    let len = len.min(c.len());
    let mut sum = 0.0;
    let mut h = Vec::with_capacity(len);
    for (j, &v) in c[..len].iter().enumerate() {
        match env.row_step(j as u32 + 1, v) {
            Some((d, hv)) => {
                sum += d;
                h.push(hv);
            }
            None => return f64::INFINITY,
        }
    }
    sum + env.improved_term(&h, len)
}

/// The endpoint-strengthened tier-1 bound (see the module docs): the
/// envelope prefix over rows `1..len−1` plus `|c_1 − q_1|` for row 1
/// and `max(d(c_len, env), |c_len − q_n|)` for the final row. Always
/// `≥ lb_keogh` and `≤ D_tw`; *not* comparable to [`lb_improved`].
pub fn lb_keogh_kim(env: &QueryEnvelope, c: &[Value], len: usize) -> f64 {
    let len = len.min(c.len());
    let mut env_sum = 0.0;
    let mut extra1 = 0.0;
    let mut bound = f64::INFINITY;
    for (j, &v) in c[..len].iter().enumerate() {
        let Some((d, _)) = env.row_step(j as u32 + 1, v) else {
            return f64::INFINITY;
        };
        if j == 0 {
            extra1 = (v - env.first_q()).abs() - d;
        }
        if j + 1 == len {
            bound = env_sum + extra1 + d.max((v - env.last_q()).abs());
        }
        env_sum += d;
    }
    bound
}

/// The endpoint-strengthened tier-2 bound: the pure envelope row sum
/// plus [`QueryEnvelope::improved_term_endpoints`]. Always
/// `≥ lb_improved` and `≤ D_tw`.
pub fn lb_improved_kim(env: &QueryEnvelope, c: &[Value], len: usize) -> f64 {
    let len = len.min(c.len());
    let mut sum = 0.0;
    let mut h = Vec::with_capacity(len);
    for (j, &v) in c[..len].iter().enumerate() {
        match env.row_step(j as u32 + 1, v) {
            Some((d, hv)) => {
                sum += d;
                h.push(hv);
            }
            None => return f64::INFINITY,
        }
    }
    sum + env.improved_term_endpoints(&h, len)
}

/// The exact band-constrained `D_tw(Q, C[..len])` the cascade bounds —
/// a convenience for the ordering property tests.
pub fn exact_prefix_dtw(query: &[Value], window: Option<u32>, c: &[Value], len: usize) -> f64 {
    let mut t = WarpTable::new(query, window);
    let mut last = f64::INFINITY;
    for &v in &c[..len.min(c.len())] {
        last = t.push_value(v).dist;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_holds(query: &[f64], window: Option<u32>, data: &[f64]) {
        let env = QueryEnvelope::new(query, window);
        for len in 1..=data.len() {
            let lb1 = lb_keogh(&env, data, len);
            let lb2 = lb_improved(&env, data, len);
            let exact = exact_prefix_dtw(query, window, data, len);
            assert!(
                lb1 <= lb2 + 1e-9,
                "lb_keogh {lb1} > lb_improved {lb2} (len {len}, w {window:?})"
            );
            assert!(
                lb2 <= exact + 1e-9,
                "lb_improved {lb2} > exact {exact} (len {len}, w {window:?})"
            );
            // The endpoint-strengthened variants dominate their plain
            // counterparts but stay below the exact distance. (Tier-1
            // kim and tier-2 plain are NOT mutually ordered.)
            let kim1 = lb_keogh_kim(&env, data, len);
            let kim2 = lb_improved_kim(&env, data, len);
            assert!(
                lb1 <= kim1 + 1e-9,
                "lb_keogh {lb1} > lb_keogh_kim {kim1} (len {len}, w {window:?})"
            );
            assert!(
                kim1 <= exact + 1e-9,
                "lb_keogh_kim {kim1} > exact {exact} (len {len}, w {window:?})"
            );
            assert!(
                lb2 <= kim2 + 1e-9,
                "lb_improved {lb2} > lb_improved_kim {kim2} (len {len}, w {window:?})"
            );
            assert!(
                kim2 <= exact + 1e-9,
                "lb_improved_kim {kim2} > exact {exact} (len {len}, w {window:?})"
            );
        }
    }

    #[test]
    fn ordering_chain_on_fixed_cases() {
        let q = [3.0, 4.0, 3.0];
        let s = [4.0, 5.0, 6.0, 7.0, 6.0, 6.0];
        for w in [None, Some(0), Some(1), Some(2), Some(10)] {
            chain_holds(&q, w, &s);
        }
        chain_holds(&[5.0], None, &[1.0, 9.0, 5.0]);
        chain_holds(&[1.0, 9.0, 1.0, 9.0], Some(1), &[9.0, 1.0, 9.0, 1.0, 9.0]);
    }

    #[test]
    fn ordering_chain_under_random_bands() {
        // Deterministic pseudo-random sweep (LCG) over query/data
        // shapes and window widths — the property-test mirror of the
        // categorized `lb2 ≤ lb ≤ exact` suite.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for case in 0..60 {
            let qlen = 1 + (next() * 8.0) as usize;
            let dlen = 1 + (next() * 12.0) as usize;
            let q: Vec<f64> = (0..qlen).map(|_| (next() * 20.0) - 10.0).collect();
            let d: Vec<f64> = (0..dlen).map(|_| (next() * 20.0) - 10.0).collect();
            let w = match case % 4 {
                0 => None,
                1 => Some(0),
                2 => Some((next() * 3.0) as u32),
                _ => Some((next() * 16.0) as u32),
            };
            chain_holds(&q, w, &d);
        }
    }

    #[test]
    fn envelope_matches_naive_definition() {
        let q = [2.0, 7.0, 1.0, 5.0, 3.0];
        for w in [0u32, 1, 2, 4, 100] {
            let env = QueryEnvelope::new(&q, Some(w));
            for j in 1..=(q.len() + w as usize + 2) {
                let lo = j.saturating_sub(w as usize).max(1);
                let hi = (j + w as usize).min(q.len());
                let expect = if lo > hi {
                    None
                } else {
                    let win = &q[lo - 1..hi];
                    Some((
                        win.iter().cloned().fold(f64::INFINITY, f64::min),
                        win.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    ))
                };
                assert_eq!(env.row_bounds(j as u32), expect, "w={w} j={j}");
            }
        }
        // Unwindowed: every row sees the global range.
        let env = QueryEnvelope::new(&q, None);
        for j in [1u32, 3, 5, 6, 100] {
            assert_eq!(env.row_bounds(j), Some((1.0, 7.0)));
        }
    }

    #[test]
    fn lb_keogh_prefix_sums_are_monotone() {
        let q = [5.0, 1.0, 7.0];
        let d = [2.0, 9.0, 4.0, 0.0, 6.0, 8.0];
        for w in [None, Some(1), Some(3)] {
            let env = QueryEnvelope::new(&q, w);
            let mut prev = 0.0;
            for len in 1..=d.len() {
                let lb = lb_keogh(&env, &d, len);
                assert!(lb >= prev, "tier-1 sum decreased at len {len}");
                prev = lb;
            }
        }
    }

    #[test]
    fn identical_sequences_have_zero_bounds() {
        let q = [3.0, 1.0, 4.0, 1.0, 5.0];
        let env = QueryEnvelope::new(&q, None);
        assert_eq!(lb_keogh(&env, &q, q.len()), 0.0);
        assert_eq!(lb_improved(&env, &q, q.len()), 0.0);
        assert_eq!(lb_keogh_kim(&env, &q, q.len()), 0.0);
        assert_eq!(lb_improved_kim(&env, &q, q.len()), 0.0);
    }

    #[test]
    fn endpoint_terms_tighten_flat_envelopes() {
        // Unconstrained warping over a wide-range query: the global
        // envelope swallows every in-range candidate value, so the
        // plain bounds are zero — but the corner cells still pin
        // c_1 to q_1 and c_l to q_n.
        let q = [0.0, 10.0, 0.0, 10.0];
        let env = QueryEnvelope::new(&q, None);
        let d = [5.0, 5.0, 5.0];
        assert_eq!(lb_keogh(&env, &d, 3), 0.0);
        // |5−q_1| from cell (1,1) plus |5−q_n| from cell (n,l).
        assert_eq!(lb_keogh_kim(&env, &d, 3), 10.0);
        // The clamped candidate is itself, so pass 2 recovers the full
        // per-column distance: Σ_x |q_x − 5| = 20 = D_tw here.
        assert_eq!(lb_improved_kim(&env, &d, 3), 20.0);
        assert_eq!(exact_prefix_dtw(&q, None, &d, 3), 20.0);
    }

    #[test]
    fn empty_band_rows_yield_infinite_bounds() {
        // |Q| = 2, w = 1: rows past 3 have empty bands — the bounds
        // must go infinite exactly where the exact distance does.
        let q = [1.0, 2.0];
        let env = QueryEnvelope::new(&q, Some(1));
        let d = [1.0, 2.0, 2.0, 2.0];
        assert!(lb_keogh(&env, &d, 4).is_infinite());
        assert!(lb_improved(&env, &d, 4).is_infinite());
        assert!(exact_prefix_dtw(&q, Some(1), &d, 4).is_infinite());
        // A too-short prefix (no path reaches the last column): the
        // improved term must also report infinity.
        let wide = QueryEnvelope::new(&[0.0, 0.0, 0.0, 0.0], Some(0));
        assert!(lb_improved(&wide, &[0.0], 1).is_infinite());
        assert!(exact_prefix_dtw(&[0.0, 0.0, 0.0, 0.0], Some(0), &[0.0], 1).is_infinite());
    }

    #[test]
    fn prefixed_term_matches_full_recomputation() {
        let mut state = 0xa0761d6478bd642fu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for case in 0..40 {
            let qlen = 1 + (next() * 8.0) as usize;
            let dlen = 1 + (next() * 10.0) as usize;
            let q: Vec<f64> = (0..qlen).map(|_| (next() * 20.0) - 10.0).collect();
            let d: Vec<f64> = (0..dlen).map(|_| (next() * 20.0) - 10.0).collect();
            let w = if case % 3 == 0 {
                Some((next() * 4.0) as u32)
            } else {
                None
            };
            let env = QueryEnvelope::new(&q, w);
            let mut h = Vec::new();
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for (j, &v) in d.iter().enumerate() {
                let Some((_, hv)) = env.row_step(j as u32 + 1, v) else {
                    break;
                };
                lo = lo.min(hv);
                hi = hi.max(hv);
                h.push(hv);
                let len = h.len();
                let full = env.improved_term_endpoints(&h, len);
                let fast = env.improved_term_endpoints_prefixed(&h, len, lo, hi);
                assert_eq!(full, fast, "case {case} len {len} w {w:?}");
            }
        }
    }

    #[test]
    fn sum_outside_matches_naive() {
        let q = [4.0, 1.0, 8.0, 1.0, 6.0];
        let env = QueryEnvelope::new(&q, None);
        for (lo, hi) in [
            (0.0, 10.0),
            (2.0, 5.0),
            (5.0, 5.0),
            (9.0, 12.0),
            (-3.0, 0.5),
        ] {
            let naive: f64 = q.iter().map(|&v| interval_dist(v, lo, hi)).sum();
            let fast = env.sum_outside(lo, hi);
            assert!(
                (naive - fast).abs() < 1e-12,
                "[{lo},{hi}] {naive} vs {fast}"
            );
        }
    }

    #[test]
    fn improved_term_is_nonnegative() {
        let q = [2.0, 9.0, 4.0];
        let d = [5.0, 5.0, 5.0, 5.0];
        for w in [None, Some(1), Some(2)] {
            let env = QueryEnvelope::new(&q, w);
            let h: Vec<f64> = d
                .iter()
                .enumerate()
                .filter_map(|(j, &v)| env.row_step(j as u32 + 1, v).map(|(_, h)| h))
                .collect();
            for len in 1..=h.len() {
                assert!(env.improved_term(&h, len) >= 0.0);
            }
        }
    }
}
