//! Tests for the validating query path (`run_query` over a typed
//! `QueryRequest`), pinning the validation order and error shapes of
//! checked threshold execution.

use crate::categorize::Alphabet;
use crate::error::CoreError;
use crate::search::answers::{AnswerSet, SearchStats};
use crate::search::backend::IndexBackend;
use crate::search::query::QueryRequest;
use crate::search::{run_query, SearchParams};
use crate::sequence::{SeqId, SequenceStore, Value};

/// A checked threshold search: validate, run, snapshot.
fn sim_search_checked(
    tree: &OneSuffix,
    alphabet: &Alphabet,
    store: &SequenceStore,
    query: &[Value],
    params: &SearchParams,
) -> Result<(AnswerSet, SearchStats), CoreError> {
    let req = QueryRequest::threshold_params(query, params.clone());
    run_query(tree, alphabet, store, &req).map(|(out, stats)| (out.into_answer_set(), stats))
}

/// Minimal index: a single stored suffix as a root child chain.
struct OneSuffix {
    symbols: Vec<u32>,
    depth_limit: Option<u32>,
}

impl IndexBackend for OneSuffix {
    type Node = usize;
    fn root(&self) -> usize {
        0
    }
    fn for_each_child(&self, n: usize, f: &mut dyn FnMut(usize)) {
        if n == 0 && !self.symbols.is_empty() {
            f(1);
        }
    }
    fn edge_label(&self, _n: usize, out: &mut Vec<u32>) {
        out.extend_from_slice(&self.symbols);
    }
    fn for_each_suffix_below(&self, _n: usize, f: &mut dyn FnMut(SeqId, u32, u32)) {
        f(SeqId(0), 0, 1);
    }
    fn max_lead_run(&self, _n: usize) -> u32 {
        1
    }
    fn is_sparse(&self) -> bool {
        false
    }
    fn suffix_count(&self) -> u64 {
        1
    }
    fn depth_limit(&self) -> Option<u32> {
        self.depth_limit
    }
}

fn setup(depth_limit: Option<u32>) -> (SequenceStore, Alphabet, OneSuffix) {
    let store = SequenceStore::from_values(vec![vec![1.0, 2.0, 3.0]]);
    let alphabet = Alphabet::singleton(&store).unwrap();
    let symbols = alphabet.encode(&[1.0, 2.0, 3.0]);
    (
        store,
        alphabet,
        OneSuffix {
            symbols,
            depth_limit,
        },
    )
}

#[test]
fn ok_on_valid_input() {
    let (store, alphabet, tree) = setup(None);
    let params = SearchParams::with_epsilon(1.0);
    let r = sim_search_checked(&tree, &alphabet, &store, &[1.0, 2.0], &params);
    assert!(r.is_ok());
}

#[test]
fn rejects_empty_query() {
    let (store, alphabet, tree) = setup(None);
    let params = SearchParams::with_epsilon(1.0);
    let r = sim_search_checked(&tree, &alphabet, &store, &[], &params);
    assert_eq!(r.err(), Some(CoreError::EmptyQuery));
}

#[test]
fn rejects_nan_query_and_bad_epsilon() {
    let (store, alphabet, tree) = setup(None);
    let params = SearchParams::with_epsilon(1.0);
    let r = sim_search_checked(&tree, &alphabet, &store, &[f64::NAN], &params);
    assert_eq!(r.err(), Some(CoreError::NonFiniteQuery));
    let bad = SearchParams::with_epsilon(-2.0);
    let r = sim_search_checked(&tree, &alphabet, &store, &[1.0], &bad);
    assert_eq!(r.err(), Some(CoreError::BadThreshold));
}

#[test]
fn rejects_depth_limit_violations() {
    let (store, alphabet, tree) = setup(Some(2));
    // Unbounded answer length over a truncated index.
    let params = SearchParams::with_epsilon(1.0);
    let r = sim_search_checked(&tree, &alphabet, &store, &[1.0], &params);
    assert_eq!(
        r.err(),
        Some(CoreError::DepthLimitExceeded {
            limit: 2,
            requested: None
        })
    );
    // Bounded but too deep.
    let params = SearchParams::with_epsilon(1.0).length_range(1, 3);
    let r = sim_search_checked(&tree, &alphabet, &store, &[1.0], &params);
    assert_eq!(
        r.err(),
        Some(CoreError::DepthLimitExceeded {
            limit: 2,
            requested: Some(3)
        })
    );
    // In range: fine.
    let params = SearchParams::with_epsilon(1.0).length_range(1, 2);
    assert!(sim_search_checked(&tree, &alphabet, &store, &[1.0], &params).is_ok());
}
