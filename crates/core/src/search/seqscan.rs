//! Sequential scanning, the paper's baseline (§4.3).
//!
//! For every suffix of every data sequence, a cumulative distance table
//! against the query is built row by row; every row whose last column is
//! `≤ ε` yields one answer subsequence. Complexity `O(M·L̄²·|Q|)`.
//!
//! Three modes are provided:
//!
//! * [`SeqScanMode::Full`] — the paper's baseline: every table is built
//!   completely.
//! * [`SeqScanMode::EarlyAbandon`] — Theorem-1 early abandoning: a
//!   suffix's table stops growing once its row minimum exceeds ε. An
//!   ablation (not in the paper) isolating how much of the index's win
//!   comes from pruning alone versus prefix sharing.
//! * [`SeqScanMode::Cascade`] — Theorem-1 abandoning plus the tier-1
//!   envelope bound of [`crate::search::cascade`]: an O(1)-per-row
//!   prefix sum cuts a suffix off *before* its next O(|Q|) table row is
//!   computed once `LB_Keogh > ε` (the sum is monotone, so no longer
//!   prefix of that suffix can be an answer). Answers are identical to
//!   [`SeqScanMode::Full`].

use crate::dtw::WarpTable;
use crate::search::answers::{AnswerSet, Match, SearchParams, SearchStats};
use crate::search::cascade::QueryEnvelope;
use crate::sequence::{Occurrence, SequenceStore, Value};

/// Early-abandoning behaviour of [`seq_scan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqScanMode {
    /// Build every cumulative table completely (the paper's baseline).
    Full,
    /// Stop a suffix's table as soon as Theorem 1 proves no further
    /// answer is possible.
    EarlyAbandon,
    /// Theorem-1 abandoning plus the tier-1 envelope cut-off: stop a
    /// suffix once its running `LB_Keogh` prefix sum exceeds ε, before
    /// computing the next table row.
    Cascade,
}

/// Scans the whole store, returning every subsequence whose exact
/// time-warping distance from `query` is `≤ params.epsilon`.
///
/// This computes *exact* distances (no categorization, no lower bounds)
/// and therefore serves as the ground truth the index-based searches are
/// verified against.
pub fn seq_scan(
    store: &SequenceStore,
    query: &[Value],
    params: &SearchParams,
    mode: SeqScanMode,
    stats: &mut SearchStats,
) -> AnswerSet {
    params
        .validate(query.len())
        .expect("invalid search parameters");
    let epsilon = params.epsilon;
    let max_len = params.effective_max_len(query.len());
    let min_len = params.effective_min_len(query.len());
    let mut answers = AnswerSet::new();
    let mut table = WarpTable::new(query, params.window);
    let env = (mode == SeqScanMode::Cascade).then(|| QueryEnvelope::new(query, params.window));
    for (id, seq) in store.iter() {
        let values = seq.values();
        for start in 0..values.len() {
            table.reset();
            let mut lb_sum = 0.0;
            let mut extra1 = 0.0;
            for (row, &v) in values[start..].iter().enumerate() {
                let len = (row + 1) as u32;
                if let Some(m) = max_len {
                    if len > m {
                        break;
                    }
                }
                if table.next_row_out_of_band() {
                    break;
                }
                if let Some(env) = &env {
                    // Tier-1 cut-off: one O(1) prefix-sum step decides
                    // before the O(|Q|) row is paid, with row 1
                    // upgraded to the exact corner term |c_1 − q_1|
                    // (cell (1,1) is on every warping path). Strict `>`
                    // so a prefix landing exactly on ε is verified.
                    match env.row_step(len, v) {
                        Some((d, _)) => {
                            if row == 0 {
                                extra1 = (v - env.first_q()).abs() - d;
                            }
                            lb_sum += d;
                        }
                        None => lb_sum = f64::INFINITY,
                    }
                    if lb_sum + extra1 > epsilon {
                        stats.cascade_lb_keogh_kills += 1;
                        break;
                    }
                }
                let stat = if env.is_some() {
                    // Threshold-pruned row: skips cells provably above ε
                    // while keeping every ≤ ε value (and the Theorem-1
                    // decision) exact.
                    table.push_value_bounded(v, epsilon)
                } else {
                    table.push_value(v)
                };
                stats.rows_pushed += 1;
                if stat.dist <= epsilon && len >= min_len {
                    answers.push(Match {
                        occ: Occurrence::new(id, start as u32, len),
                        dist: stat.dist,
                    });
                }
                if mode != SeqScanMode::Full && stat.prunes(epsilon) {
                    stats.branches_pruned += 1;
                    break;
                }
            }
        }
    }
    stats.filter_cells += table.cells_computed();
    stats.answers = answers.len() as u64;
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw;

    fn store(vals: &[&[f64]]) -> SequenceStore {
        SequenceStore::from_values(vals.iter().map(|v| v.to_vec()))
    }

    #[test]
    fn finds_all_subsequences_within_epsilon() {
        let st = store(&[&[1.0, 2.0, 3.0], &[2.0, 2.0]]);
        let q = [2.0];
        let params = SearchParams::with_epsilon(0.5);
        let mut stats = SearchStats::default();
        let ans = seq_scan(&st, &q, &params, SeqScanMode::Full, &mut stats);
        let occs = ans.occurrence_set();
        // Brute-force ground truth.
        let mut expected = Vec::new();
        for (id, s) in st.iter() {
            for p in 0..s.len() {
                for l in 1..=s.len() - p {
                    if dtw(&q, s.subseq(p as u32, l as u32)) <= 0.5 {
                        expected.push(Occurrence::new(id, p as u32, l as u32));
                    }
                }
            }
        }
        expected.sort();
        assert_eq!(occs, expected);
        // <2> in S0, <2>, <2,2> (x2 starts? no: starts 0 len 1, start 1 len 1,
        // start 0 len 2) in S1.
        assert_eq!(occs.len(), 4);
        assert_eq!(stats.answers, 4);
    }

    #[test]
    fn early_abandon_matches_full_answers() {
        let st = store(&[&[5.0, 1.0, 9.0, 2.0, 2.5, 8.0, 1.5]]);
        let q = [2.0, 2.0, 8.0];
        let params = SearchParams::with_epsilon(2.0);
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        let full = seq_scan(&st, &q, &params, SeqScanMode::Full, &mut s1);
        let ea = seq_scan(&st, &q, &params, SeqScanMode::EarlyAbandon, &mut s2);
        assert_eq!(full.occurrence_set(), ea.occurrence_set());
        // Early abandoning must not do more work.
        assert!(s2.rows_pushed <= s1.rows_pushed);
        assert!(s2.filter_cells <= s1.filter_cells);
    }

    #[test]
    fn cascade_matches_full_answers_and_prunes_harder() {
        let st = store(&[
            &[5.0, 1.0, 9.0, 2.0, 2.5, 8.0, 1.5],
            &[2.0, 2.1, 7.9, 100.0, 2.0],
        ]);
        let q = [2.0, 2.0, 8.0];
        for eps in [0.5, 2.0, 10.0] {
            for window in [None, Some(1), Some(3)] {
                let mut params = SearchParams::with_epsilon(eps);
                params.window = window;
                let mut s_full = SearchStats::default();
                let mut s_casc = SearchStats::default();
                let full = seq_scan(&st, &q, &params, SeqScanMode::Full, &mut s_full);
                let casc = seq_scan(&st, &q, &params, SeqScanMode::Cascade, &mut s_casc);
                assert_eq!(full.matches(), casc.matches(), "eps={eps} w={window:?}");
                assert!(s_casc.rows_pushed <= s_full.rows_pushed);
                assert!(s_casc.filter_cells <= s_full.filter_cells);
            }
        }
        // A tight threshold must actually exercise the tier-1 cut-off.
        let mut s = SearchStats::default();
        let params = SearchParams::with_epsilon(0.5);
        seq_scan(&st, &q, &params, SeqScanMode::Cascade, &mut s);
        assert!(s.cascade_lb_keogh_kills > 0, "tier-1 never fired");
    }

    #[test]
    fn reported_distances_are_exact() {
        let st = store(&[&[3.0, 4.0, 3.0, 7.0]]);
        let q = [3.0, 4.0];
        let params = SearchParams::with_epsilon(5.0);
        let mut stats = SearchStats::default();
        let ans = seq_scan(&st, &q, &params, SeqScanMode::Full, &mut stats);
        for m in ans.matches() {
            let sub = st.occurrence_values(m.occ);
            assert_eq!(m.dist, dtw(&q, sub));
            assert!(m.dist <= 5.0);
        }
        assert!(!ans.is_empty());
    }

    #[test]
    fn window_limits_answer_lengths() {
        let st = store(&[&[2.0; 12]]);
        let q = [2.0, 2.0, 2.0, 2.0];
        let params = SearchParams::with_epsilon(0.0).windowed(1);
        let mut stats = SearchStats::default();
        let ans = seq_scan(&st, &q, &params, SeqScanMode::Full, &mut stats);
        assert!(!ans.is_empty());
        for m in ans.matches() {
            assert!(m.occ.len >= 3 && m.occ.len <= 5, "len {}", m.occ.len);
        }
    }

    #[test]
    fn empty_store_returns_nothing() {
        let st = SequenceStore::new();
        let params = SearchParams::with_epsilon(1.0);
        let mut stats = SearchStats::default();
        let ans = seq_scan(&st, &[1.0], &params, SeqScanMode::Full, &mut stats);
        assert!(ans.is_empty());
    }
}
