//! Answer, candidate and statistics types shared by all search
//! algorithms.

use crate::error::CoreError;
use crate::sequence::Occurrence;

/// A candidate produced by the lower-bound filter: an occurrence plus the
/// lower bound on its exact time-warping distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Where the candidate subsequence lies.
    pub occ: Occurrence,
    /// Lower bound (`D_tw-lb` or `D_tw-lb2`) on the exact distance.
    pub lower_bound: f64,
}

/// A verified answer: an occurrence plus its exact time-warping distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Where the answer subsequence lies.
    pub occ: Occurrence,
    /// Exact `D_tw(query, subsequence)`, guaranteed `≤ ε`.
    pub dist: f64,
}

/// The result set of a similarity search.
#[derive(Debug, Clone, Default)]
pub struct AnswerSet {
    matches: Vec<Match>,
}

impl AnswerSet {
    /// Creates an empty answer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an answer.
    pub fn push(&mut self, m: Match) {
        self.matches.push(m);
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// `true` when no answers were found.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// All matches in unspecified order.
    pub fn matches(&self) -> &[Match] {
        &self.matches
    }

    /// Sorts by `(seq, start, len)` for deterministic output and set
    /// comparisons.
    pub fn sort(&mut self) {
        self.matches.sort_by_key(|m| m.occ);
    }

    /// The canonical sorted list of occurrences (distances dropped) —
    /// used to compare algorithms for exact answer-set equality.
    pub fn occurrence_set(&self) -> Vec<Occurrence> {
        let mut occs: Vec<Occurrence> = self.matches.iter().map(|m| m.occ).collect();
        occs.sort();
        occs.dedup();
        occs
    }

    /// The `k` matches with the smallest distances (ties broken by
    /// occurrence order).
    pub fn top_k(&self, k: usize) -> Vec<Match> {
        let mut v = self.matches.clone();
        v.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite distances")
                .then(a.occ.cmp(&b.occ))
        });
        v.truncate(k);
        v
    }

    /// The single best (smallest-distance) match per sequence, ordered
    /// by ascending distance — the "screener" view: one hit per series.
    pub fn best_per_sequence(&self) -> Vec<Match> {
        let mut best: std::collections::HashMap<crate::sequence::SeqId, Match> =
            std::collections::HashMap::new();
        for m in &self.matches {
            best.entry(m.occ.seq)
                .and_modify(|b| {
                    if (m.dist, m.occ) < (b.dist, b.occ) {
                        *b = *m;
                    }
                })
                .or_insert(*m);
        }
        let mut v: Vec<Match> = best.into_values().collect();
        v.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite distances")
                .then(a.occ.cmp(&b.occ))
        });
        v
    }

    /// Greedy non-overlapping selection: walks matches in ascending
    /// distance order and keeps each match that does not overlap an
    /// already-kept match in the same sequence. Collapses the nested and
    /// shifted variants a subsequence search naturally produces into
    /// distinct regions.
    pub fn non_overlapping(&self) -> Vec<Match> {
        let mut sorted = self.matches.clone();
        sorted.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite distances")
                .then(a.occ.cmp(&b.occ))
        });
        let mut picked: Vec<Match> = Vec::new();
        for m in sorted {
            if !picked.iter().any(|p| p.occ.overlaps(&m.occ)) {
                picked.push(m);
            }
        }
        picked
    }
}

impl IntoIterator for AnswerSet {
    type Item = Match;
    type IntoIter = std::vec::IntoIter<Match>;
    fn into_iter(self) -> Self::IntoIter {
        self.matches.into_iter()
    }
}

/// Parameters of a similarity search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchParams {
    /// The distance threshold ε: answers satisfy `D_tw ≤ ε`.
    pub epsilon: f64,
    /// Optional Sakoe–Chiba warping-window width (paper §8). Constrains
    /// both the distance computation and — because answers then have
    /// length within `|Q| ± w` — the traversal depth.
    pub window: Option<u32>,
    /// Hard cap on answer length (tree traversal depth). Derived from
    /// `window` automatically when unset.
    pub max_len: Option<u32>,
    /// Minimum answer length. Answers shorter than this are skipped (and,
    /// with a window, lengths below `|Q| − w` are impossible anyway).
    pub min_len: u32,
    /// Worker threads for the filter and post-processing phases. `0` and
    /// `1` both mean sequential; results are byte-identical at every
    /// value (see [`crate::parallel`]).
    pub threads: u32,
    /// Runs the numeric lower-bound cascade
    /// ([`crate::search::cascade`]) ahead of exact verification.
    /// Answers are byte-identical either way (the cascade never
    /// dismisses a true answer); only the work counters change. On by
    /// default; the switch exists for the equivalence tests and the
    /// ablation rows in the benchmark report.
    pub cascade: bool,
    /// Optional backend-family pin, forwarded into
    /// [`QueryRequest::backend`](crate::search::query::QueryRequest::backend):
    /// when `Some`, the executor answers only from an index of this
    /// [`BackendKind`] and rejects any other with a typed error. `None`
    /// (the default) accepts whatever backend the index was built with.
    pub backend: Option<crate::search::BackendKind>,
}

impl SearchParams {
    /// Plain threshold search, unconstrained warping.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            window: None,
            max_len: None,
            min_len: 1,
            threads: 1,
            cascade: true,
            backend: None,
        }
    }

    /// Adds a Sakoe–Chiba band of width `w`.
    pub fn windowed(mut self, w: u32) -> Self {
        self.window = Some(w);
        self
    }

    /// Restricts answer lengths to `[min_len, max_len]`.
    pub fn length_range(mut self, min_len: u32, max_len: u32) -> Self {
        self.min_len = min_len;
        self.max_len = Some(max_len);
        self
    }

    /// Sets the number of worker threads for filtering and
    /// post-processing.
    pub fn parallel(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the lower-bound cascade in post-processing.
    pub fn cascaded(mut self, on: bool) -> Self {
        self.cascade = on;
        self
    }

    /// Pins the backend family the answering index must belong to.
    pub fn on_backend(mut self, kind: crate::search::BackendKind) -> Self {
        self.backend = Some(kind);
        self
    }

    /// Validates the parameters against a query of length `qlen`.
    pub fn validate(&self, qlen: usize) -> Result<(), CoreError> {
        if qlen == 0 {
            return Err(CoreError::EmptyQuery);
        }
        if !self.epsilon.is_finite() || self.epsilon < 0.0 {
            return Err(CoreError::BadThreshold);
        }
        Ok(())
    }

    /// The effective traversal depth limit for a query of length `qlen`:
    /// the tighter of `max_len` and the window-implied bound `|Q| + w`.
    ///
    /// Saturates at `u32::MAX`: a window near `u32::MAX` must loosen the
    /// bound, never wrap it around to a tiny cap (which would silently
    /// dismiss long answers).
    pub fn effective_max_len(&self, qlen: usize) -> Option<u32> {
        let qlen = u32::try_from(qlen).unwrap_or(u32::MAX);
        let from_window = self.window.map(|w| qlen.saturating_add(w));
        match (self.max_len, from_window) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// The effective minimum answer length: the larger of `min_len` and
    /// the window-implied bound `|Q| − w`.
    pub fn effective_min_len(&self, qlen: usize) -> u32 {
        let qlen = u32::try_from(qlen).unwrap_or(u32::MAX);
        let from_window = self.window.map(|w| qlen.saturating_sub(w)).unwrap_or(1);
        self.min_len.max(from_window).max(1)
    }
}

/// Cost counters reported by the search algorithms. All counters are
/// machine-independent, so they reproduce the paper's complexity analysis
/// (§4.3, §5.5, §6.4) regardless of hardware.
///
/// This is a plain-data *snapshot*; the live handles the algorithms
/// write through are a [`SearchMetrics`](crate::search::SearchMetrics)
/// bundle. Wall-clock timings deliberately never appear here — they
/// live in the metrics histograms — which keeps snapshots `Eq` and
/// identical across identical runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Cumulative-distance-table cells computed during filtering.
    pub filter_cells: u64,
    /// Tree nodes visited.
    pub nodes_visited: u64,
    /// Nodes fully expanded (visited and not pruned):
    /// `nodes_visited == nodes_expanded + branches_pruned` for the
    /// tree-filter searches.
    pub nodes_expanded: u64,
    /// Edge symbols consumed (rows pushed) during traversal.
    pub rows_pushed: u64,
    /// Rows a per-suffix scan would have computed (each shared row
    /// weighted by the suffixes below it) — `rows_unshared /
    /// rows_pushed` estimates the paper's `R_d`. Zero when the index
    /// cannot report subtree suffix counts.
    pub rows_unshared: u64,
    /// Subtrees pruned by Theorem 1.
    pub branches_pruned: u64,
    /// Candidates emitted by the filter (the paper's `n` plus exact hits).
    pub candidates: u64,
    /// Candidates for stored suffixes (`D_tw-lb`, Definition 3).
    pub stored_candidates: u64,
    /// Candidates for non-stored suffixes (`D_tw-lb2`, Definition 4) —
    /// nonzero only on sparse indexes.
    pub lb2_candidates: u64,
    /// Candidates whose exact distance was computed in post-processing.
    pub postprocessed: u64,
    /// Cells computed during post-processing.
    pub postprocess_cells: u64,
    /// Candidates rejected by post-processing (false alarms).
    pub false_alarms: u64,
    /// Final answers.
    pub answers: u64,
    /// Candidates killed by the cascade's tier-1 envelope bound
    /// (LB_Keogh); in the sequential scan, suffixes cut off by it.
    /// Every kill is also counted in `false_alarms`, so the funnel
    /// invariant `postprocessed == answers + false_alarms` still holds.
    pub cascade_lb_keogh_kills: u64,
    /// Candidates killed by the cascade's tier-2 two-pass refinement
    /// (LB_Improved). Also counted in `false_alarms`.
    pub cascade_lb_improved_kills: u64,
    /// Candidates killed by Theorem-1 early abandoning *inside the
    /// cascade's exact tier* (zero when the cascade is off, where the
    /// same rejections count only as `false_alarms`).
    pub cascade_abandon_kills: u64,
}

impl SearchStats {
    /// Total table cells computed (filter + post-processing) — the
    /// dominant cost in the paper's complexity model.
    pub fn total_cells(&self) -> u64 {
        self.filter_cells + self.postprocess_cells
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &SearchStats) {
        self.filter_cells += other.filter_cells;
        self.nodes_visited += other.nodes_visited;
        self.nodes_expanded += other.nodes_expanded;
        self.rows_pushed += other.rows_pushed;
        self.rows_unshared += other.rows_unshared;
        self.branches_pruned += other.branches_pruned;
        self.candidates += other.candidates;
        self.stored_candidates += other.stored_candidates;
        self.lb2_candidates += other.lb2_candidates;
        self.postprocessed += other.postprocessed;
        self.postprocess_cells += other.postprocess_cells;
        self.false_alarms += other.false_alarms;
        self.answers += other.answers;
        self.cascade_lb_keogh_kills += other.cascade_lb_keogh_kills;
        self.cascade_lb_improved_kills += other.cascade_lb_improved_kills;
        self.cascade_abandon_kills += other.cascade_abandon_kills;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::SeqId;

    fn occ(s: u32, p: u32, l: u32) -> Occurrence {
        Occurrence::new(SeqId(s), p, l)
    }

    #[test]
    fn answer_set_sort_and_occurrences() {
        let mut a = AnswerSet::new();
        a.push(Match {
            occ: occ(1, 0, 3),
            dist: 2.0,
        });
        a.push(Match {
            occ: occ(0, 5, 2),
            dist: 1.0,
        });
        a.push(Match {
            occ: occ(0, 5, 2),
            dist: 1.0,
        });
        a.sort();
        assert_eq!(a.matches()[0].occ, occ(0, 5, 2));
        assert_eq!(a.occurrence_set(), vec![occ(0, 5, 2), occ(1, 0, 3)]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn top_k_orders_by_distance() {
        let mut a = AnswerSet::new();
        for (i, d) in [(0u32, 5.0), (1, 1.0), (2, 3.0)] {
            a.push(Match {
                occ: occ(0, i, 1),
                dist: d,
            });
        }
        let top = a.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].dist, 1.0);
        assert_eq!(top[1].dist, 3.0);
    }

    #[test]
    fn best_per_sequence_picks_minimum() {
        let mut a = AnswerSet::new();
        for (seq, start, d) in [(0u32, 0u32, 3.0), (0, 4, 1.0), (1, 2, 2.0), (0, 9, 1.0)] {
            a.push(Match {
                occ: occ(seq, start, 2),
                dist: d,
            });
        }
        let best = a.best_per_sequence();
        assert_eq!(best.len(), 2);
        // Sequence 0's tie at dist 1.0 resolves to the earlier start.
        assert_eq!(best[0].occ, occ(0, 4, 2));
        assert_eq!(best[1].occ, occ(1, 2, 2));
    }

    #[test]
    fn non_overlapping_keeps_best_regions() {
        let mut a = AnswerSet::new();
        // Three nested variants of one region plus one distant region.
        for (start, len, d) in [(5u32, 4u32, 0.5), (5, 5, 1.0), (6, 3, 2.0)] {
            a.push(Match {
                occ: occ(0, start, len),
                dist: d,
            });
        }
        a.push(Match {
            occ: occ(0, 20, 3),
            dist: 1.5,
        });
        let picked = a.non_overlapping();
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].occ, occ(0, 5, 4));
        assert_eq!(picked[1].occ, occ(0, 20, 3));
        // Adjacent (non-overlapping) regions both survive.
        let mut b = AnswerSet::new();
        b.push(Match {
            occ: occ(0, 0, 3),
            dist: 1.0,
        });
        b.push(Match {
            occ: occ(0, 3, 3),
            dist: 2.0,
        });
        assert_eq!(b.non_overlapping().len(), 2);
    }

    #[test]
    fn params_validation() {
        let p = SearchParams::with_epsilon(1.0);
        assert!(p.validate(5).is_ok());
        assert_eq!(p.validate(0), Err(CoreError::EmptyQuery));
        let bad = SearchParams::with_epsilon(-1.0);
        assert_eq!(bad.validate(5), Err(CoreError::BadThreshold));
        let nan = SearchParams::with_epsilon(f64::NAN);
        assert_eq!(nan.validate(5), Err(CoreError::BadThreshold));
    }

    #[test]
    fn effective_length_bounds() {
        let p = SearchParams::with_epsilon(1.0);
        assert_eq!(p.effective_max_len(10), None);
        assert_eq!(p.effective_min_len(10), 1);

        let w = SearchParams::with_epsilon(1.0).windowed(3);
        assert_eq!(w.effective_max_len(10), Some(13));
        assert_eq!(w.effective_min_len(10), 7);

        let both = SearchParams::with_epsilon(1.0)
            .windowed(3)
            .length_range(2, 11);
        assert_eq!(both.effective_max_len(10), Some(11));
        assert_eq!(both.effective_min_len(10), 7);

        // Window wider than the query: min length floors at 1.
        let wide = SearchParams::with_epsilon(1.0).windowed(50);
        assert_eq!(wide.effective_min_len(10), 1);
    }

    #[test]
    fn window_near_u32_max_saturates_instead_of_wrapping() {
        // |Q| + w would wrap in u32: the effective bound must saturate
        // (meaning "unbounded in practice"), not truncate to a tiny cap
        // that silently dismisses long answers.
        let p = SearchParams::with_epsilon(1.0).windowed(u32::MAX);
        assert_eq!(p.effective_max_len(10), Some(u32::MAX));
        assert_eq!(p.effective_min_len(10), 1);
        let near = SearchParams::with_epsilon(1.0).windowed(u32::MAX - 3);
        assert_eq!(near.effective_max_len(10), Some(u32::MAX));
        // An explicit max_len still wins over the saturated window bound.
        let capped = SearchParams::with_epsilon(1.0)
            .windowed(u32::MAX)
            .length_range(1, 42);
        assert_eq!(capped.effective_max_len(10), Some(42));
    }
}
