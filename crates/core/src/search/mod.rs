//! Similarity search algorithms (paper §4–§6).
//!
//! * [`seqscan`] — the sequential-scanning baseline (§4.3).
//! * [`aligned`] — the segment-aligned comparator of the paper's
//!   reference [14] (misses unaligned answers — kept for measurement).
//! * [`backend`] — the [`IndexBackend`] abstraction every index
//!   implementation (tree or enhanced suffix array) plugs into, plus
//!   [`BackendKind`].
//! * [`filter`] — the unified suffix-tree filter implementing
//!   `Filter-ST`, `Filter-ST_C` and `Filter-SST_C` over any
//!   [`IndexBackend`].
//! * [`postprocess`](mod@postprocess) — exact `D_tw` verification of
//!   candidates (§5.4).
//! * [`cascade`] — the numeric lower-bound cascade (an LB_Keogh-style
//!   envelope bound plus Lemire's two-pass refinement) screening
//!   candidates ahead of every exact table.
//! * [`knn`] — exact k-nearest-neighbour search by ε expansion (an
//!   extension beyond the paper's threshold queries).
//! * [`query`] — the unified typed query API: [`QueryRequest`] +
//!   [`QueryKind`], executed by [`run_query`] / [`run_query_with`].
//! * [`segmented`] — [`SegmentedIndex`], the multi-segment fan-out view
//!   presenting N partial suffix trees as one [`IndexBackend`].
//! * [`answers`] — answer/candidate types, statistics, parameters.
//!
//! The top-level entry point is [`run_query`] with a [`QueryRequest`]:
//! the paper's `SimSearch-ST(_C)` / `SimSearch-SST_C` depending on the
//! index it is given, or ε-expansion k-NN.

pub mod aligned;
pub mod answers;
pub mod backend;
pub mod cascade;
pub mod filter;
pub mod knn;
pub mod metrics;
pub mod postprocess;
pub mod query;
pub mod segmented;
pub mod seqscan;

pub use aligned::aligned_scan;
pub use answers::{AnswerSet, Candidate, Match, SearchParams, SearchStats};
pub use backend::{BackendKind, IndexBackend};
#[allow(deprecated)]
pub use backend::SuffixTreeIndex;
pub use cascade::QueryEnvelope;
pub use filter::{filter_tree, filter_tree_with};
pub use knn::KnnParams;
pub use metrics::SearchMetrics;
pub use postprocess::postprocess;
pub use query::{
    run_query, run_query_with, Coverage, OutputKind, QueryKind, QueryOutput, QueryRequest,
};
pub use segmented::SegmentedIndex;
pub use seqscan::{seq_scan, SeqScanMode};

#[cfg(test)]
mod checked_tests;

use crate::categorize::Alphabet;
use crate::sequence::{SequenceStore, Value};

/// The threshold-search engine: lower-bound filtering followed by exact
/// post-processing, metered into `metrics`. Callers must have validated
/// `query`/`params` (this is the body behind [`run_query_with`] for
/// [`QueryKind::Threshold`] requests).
pub(crate) fn threshold_search_unchecked<T: IndexBackend + Sync>(
    tree: &T,
    alphabet: &Alphabet,
    store: &SequenceStore,
    query: &[Value],
    params: &SearchParams,
    metrics: &SearchMetrics,
) -> AnswerSet {
    if !metrics.trace.is_active() {
        let candidates = {
            let _timer = metrics.filter_ns.span();
            filter_tree(tree, alphabet, query, params, metrics)
        };
        let _timer = metrics.postprocess_ns.span();
        return postprocess(store, query, &candidates, params, metrics);
    }
    // Traced variant: identical work, plus a span per funnel stage
    // carrying the stage's counter deltas (per-tier kill counts). The
    // deltas subtract a before-snapshot, so they stay per-stage even
    // when `metrics` accumulates across rounds or queries.
    let candidates = {
        let span = metrics.trace_span("filter");
        let scoped = metrics.under(&span);
        let before = metrics.snapshot();
        let candidates = {
            let _timer = metrics.filter_ns.span();
            filter_tree(tree, alphabet, query, params, &scoped)
        };
        let d = metrics.snapshot();
        span.attr_u64("nodes_visited", d.nodes_visited - before.nodes_visited);
        span.attr_u64(
            "branches_pruned",
            d.branches_pruned - before.branches_pruned,
        );
        span.attr_u64("filter_cells", d.filter_cells - before.filter_cells);
        span.attr_u64(
            "stored_candidates",
            d.stored_candidates - before.stored_candidates,
        );
        span.attr_u64("lb2_candidates", d.lb2_candidates - before.lb2_candidates);
        span.attr_u64("candidates", d.candidates - before.candidates);
        candidates
    };
    let span = metrics.trace_span("postprocess");
    let scoped = metrics.under(&span);
    let before = metrics.snapshot();
    let answers = {
        let _timer = metrics.postprocess_ns.span();
        postprocess(store, query, &candidates, params, &scoped)
    };
    let d = metrics.snapshot();
    span.attr_u64("postprocessed", d.postprocessed - before.postprocessed);
    span.attr_u64(
        "postprocess_cells",
        d.postprocess_cells - before.postprocess_cells,
    );
    span.attr_u64("false_alarms", d.false_alarms - before.false_alarms);
    span.attr_u64("answers", d.answers - before.answers);
    span.attr_u64(
        "cascade_lb_keogh_kills",
        d.cascade_lb_keogh_kills - before.cascade_lb_keogh_kills,
    );
    span.attr_u64(
        "cascade_lb_improved_kills",
        d.cascade_lb_improved_kills - before.cascade_lb_improved_kills,
    );
    span.attr_u64(
        "cascade_abandon_kills",
        d.cascade_abandon_kills - before.cascade_abandon_kills,
    );
    answers
}
