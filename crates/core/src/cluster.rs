//! Clustering of retrieved subsequences (paper §8: the search results
//! "can be used for predictions, hypothesis testing, **clustering** and
//! rule discovery").
//!
//! [`cluster_matches`] groups a set of matched subsequences by mutual
//! time-warping distance with k-medoids (PAM-style alternation):
//! medoids are real subsequences, so each cluster has an interpretable
//! exemplar, and the distance is the same `D_tw` the search used —
//! different-length members cluster together naturally.
//!
//! Cost is `O(n²)` DTW computations; condense the input first (e.g.
//! [`AnswerSet::non_overlapping`](crate::search::AnswerSet::non_overlapping))
//! for large answer sets.

use crate::dtw::dtw;
use crate::search::answers::Match;
use crate::sequence::SequenceStore;

/// One cluster: its medoid (an actual matched subsequence) and member
/// indices into the input slice.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Index of the medoid in the input `matches`.
    pub medoid: usize,
    /// Indices of all members (medoid included), ascending.
    pub members: Vec<usize>,
    /// Sum of member-to-medoid time-warping distances.
    pub cost: f64,
}

/// Groups `matches` into at most `k` clusters by time-warping distance.
///
/// Deterministic: medoids are seeded by farthest-first traversal from
/// the first match, then refined by assign/update alternation until a
/// fixed point or `max_iters`. Returns fewer than `k` clusters when
/// there are fewer matches.
pub fn cluster_matches(
    store: &SequenceStore,
    matches: &[Match],
    k: usize,
    max_iters: usize,
) -> Vec<Cluster> {
    assert!(k >= 1, "k must be positive");
    let n = matches.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    // Pairwise distance matrix (symmetric; DTW is symmetric for the
    // city-block base).
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let a = store.occurrence_values(matches[i].occ);
            let b = store.occurrence_values(matches[j].occ);
            let dist = dtw(a, b);
            d[i * n + j] = dist;
            d[j * n + i] = dist;
        }
    }
    // Farthest-first seeding.
    let mut medoids = vec![0usize];
    while medoids.len() < k {
        let next = (0..n)
            .filter(|i| !medoids.contains(i))
            .max_by(|&a, &b| {
                let da = medoids
                    .iter()
                    .map(|&m| d[a * n + m])
                    .fold(f64::INFINITY, f64::min);
                let db = medoids
                    .iter()
                    .map(|&m| d[b * n + m])
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("candidates remain");
        medoids.push(next);
    }
    // Alternate assignment and medoid update.
    let mut assignment = vec![0usize; n];
    for _ in 0..max_iters.max(1) {
        // Assign to nearest medoid.
        for i in 0..n {
            assignment[i] = (0..k)
                .min_by(|&a, &b| {
                    d[i * n + medoids[a]]
                        .partial_cmp(&d[i * n + medoids[b]])
                        .expect("finite distances")
                })
                .expect("k >= 1");
        }
        // Update each medoid to the member minimizing total distance.
        let mut changed = false;
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let best = *members
                .iter()
                .min_by(|&&a, &&b| {
                    let ca: f64 = members.iter().map(|&m| d[a * n + m]).sum();
                    let cb: f64 = members.iter().map(|&m| d[b * n + m]).sum();
                    ca.partial_cmp(&cb).expect("finite distances")
                })
                .expect("non-empty");
            if best != *medoid {
                *medoid = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Final assignment and cluster materialization.
    for i in 0..n {
        assignment[i] = (0..k)
            .min_by(|&a, &b| {
                d[i * n + medoids[a]]
                    .partial_cmp(&d[i * n + medoids[b]])
                    .expect("finite distances")
            })
            .expect("k >= 1");
    }
    let mut clusters: Vec<Cluster> = Vec::with_capacity(k);
    for c in 0..k {
        let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
        if members.is_empty() {
            continue;
        }
        let cost = members.iter().map(|&m| d[medoids[c] * n + m]).sum();
        clusters.push(Cluster {
            medoid: medoids[c],
            members,
            cost,
        });
    }
    clusters.sort_by_key(|c| c.medoid);
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{Occurrence, SeqId};

    fn setup() -> (SequenceStore, Vec<Match>) {
        // Two obvious families: flat-low shapes and spike shapes, with
        // varying lengths inside each family.
        let store = SequenceStore::from_values(vec![
            vec![1.0, 1.0, 1.0, 1.0, 1.0],
            vec![1.0, 1.2, 1.0],
            vec![0.0, 10.0, 0.0],
            vec![0.0, 0.0, 10.0, 10.0, 0.0, 0.0],
        ]);
        let matches: Vec<Match> = (0..4u32)
            .map(|i| Match {
                occ: Occurrence::new(SeqId(i), 0, store.get(SeqId(i)).len() as u32),
                dist: 0.0,
            })
            .collect();
        (store, matches)
    }

    #[test]
    fn separates_obvious_families() {
        let (store, matches) = setup();
        let clusters = cluster_matches(&store, &matches, 2, 20);
        assert_eq!(clusters.len(), 2);
        let families: Vec<Vec<usize>> = clusters.iter().map(|c| c.members.clone()).collect();
        assert!(families.contains(&vec![0, 1]));
        assert!(families.contains(&vec![2, 3]));
        // Every member's medoid is one of its own cluster.
        for c in &clusters {
            assert!(c.members.contains(&c.medoid));
        }
    }

    #[test]
    fn k_one_puts_everything_together() {
        let (store, matches) = setup();
        let clusters = cluster_matches(&store, &matches, 1, 10);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn k_exceeding_n_caps_at_n() {
        let (store, matches) = setup();
        let clusters = cluster_matches(&store, &matches[..2], 10, 10);
        assert_eq!(clusters.len(), 2);
        for c in &clusters {
            assert_eq!(c.members.len(), 1);
            assert_eq!(c.cost, 0.0);
        }
    }

    #[test]
    fn empty_input_empty_output() {
        let store = SequenceStore::from_values(vec![vec![1.0]]);
        assert!(cluster_matches(&store, &[], 3, 10).is_empty());
    }

    #[test]
    fn deterministic() {
        let (store, matches) = setup();
        let a = cluster_matches(&store, &matches, 2, 20);
        let b = cluster_matches(&store, &matches, 2, 20);
        assert_eq!(a, b);
    }
}
