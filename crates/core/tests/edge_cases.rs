//! Edge-case coverage for corners the broader property tests reach only
//! incidentally.

use warptree_core::categorize::{Alphabet, CategorizationMethod, Category};
use warptree_core::dtw::WarpTable;
use warptree_core::prelude::*;

#[test]
fn widen_admits_out_of_range_values_soundly() {
    let store = SequenceStore::from_values(vec![vec![10.0, 20.0, 30.0]]);
    let mut a = Alphabet::equal_length(&store, 3).unwrap();
    let sym_low = a.symbol_for(10.0);
    // 5.0 is below every observed value: before widening its base lower
    // bound is positive…
    assert!(a.base_lb(5.0, sym_low) > 0.0);
    let extra = SequenceStore::from_values(vec![vec![5.0, 35.0]]);
    a.widen(&extra);
    // …afterwards both extremes sit inside their categories' bounds.
    assert_eq!(a.base_lb(5.0, a.symbol_for(5.0)), 0.0);
    assert_eq!(a.base_lb(35.0, a.symbol_for(35.0)), 0.0);
    // Widening never *raises* a bound for old members.
    for &v in [10.0, 20.0, 30.0].iter() {
        assert_eq!(a.base_lb(v, a.symbol_for(v)), 0.0);
    }
}

#[test]
fn from_parts_roundtrips_and_validates() {
    let store = SequenceStore::from_values(vec![vec![1.0, 5.0, 9.0]]);
    let original = Alphabet::max_entropy(&store, 3).unwrap();
    let rebuilt = Alphabet::from_parts(original.categories().to_vec(), original.method());
    assert_eq!(rebuilt, original);
    for v in [1.0, 5.0, 9.0, 4.2] {
        assert_eq!(rebuilt.symbol_for(v), original.symbol_for(v));
    }
}

#[test]
#[should_panic(expected = "ordered")]
fn from_parts_rejects_unordered_categories() {
    let c = |lo: f64, hi: f64| Category {
        lo,
        hi,
        lb: lo,
        ub: hi,
    };
    let _ = Alphabet::from_parts(
        vec![c(5.0, 9.0), c(0.0, 5.0)],
        CategorizationMethod::EqualLength,
    );
}

#[test]
#[should_panic(expected = "bounds out of order")]
fn from_parts_rejects_inverted_bounds() {
    let bad = Category {
        lo: 0.0,
        hi: 1.0,
        lb: 2.0,
        ub: 1.0,
    };
    let _ = Alphabet::from_parts(vec![bad], CategorizationMethod::EqualLength);
}

#[test]
fn warp_table_band_left_edge() {
    // Window 1 over a length-4 query: row 3's band is columns 2..=4, so
    // column 1 must be out of band (infinite) without corrupting later
    // rows.
    let q = [0.0, 0.0, 0.0, 0.0];
    let mut t = WarpTable::new(&q, Some(1));
    t.push_value(0.0);
    t.push_value(0.0);
    let s3 = t.push_value(0.0);
    assert_eq!(s3.min, 0.0);
    let s4 = t.push_value(0.0);
    assert_eq!(s4.dist, 0.0); // the diagonal stays in band throughout
}

#[test]
fn warp_table_window_zero_is_pointwise() {
    // w = 0 restricts to the diagonal: distance equals the pointwise sum
    // for equal lengths, infinite for different lengths.
    let a = [1.0, 2.0, 3.0];
    let b = [2.0, 2.0, 5.0];
    assert_eq!(warptree_core::dtw::dtw_windowed(&a, &b, 0), 1.0 + 0.0 + 2.0);
    assert_eq!(
        warptree_core::dtw::dtw_windowed(&a, &b[..2], 0),
        f64::INFINITY
    );
}

#[test]
fn search_params_combinators_chain() {
    let p = SearchParams::with_epsilon(2.0)
        .windowed(3)
        .length_range(4, 9);
    assert_eq!(p.epsilon, 2.0);
    assert_eq!(p.window, Some(3));
    assert_eq!(p.effective_max_len(5), Some(8)); // min(9, 5+3)
    assert_eq!(p.effective_min_len(5), 4); // max(4, 5-3)
}

#[test]
fn catstore_boundary_queries() {
    let cs = CatStore::from_symbols(vec![vec![1, 1], vec![]], 2);
    assert_eq!(cs.run_len(SeqId(0), 2), 0); // past the end
    assert_eq!(cs.run_len(SeqId(1), 0), 0); // empty sequence
    assert!(!cs.is_stored_suffix(SeqId(1), 0));
    assert_eq!(cs.total_len(), 2);
}

#[test]
fn answer_set_into_iterator_and_sort() {
    let mut a = AnswerSet::new();
    a.push(Match {
        occ: Occurrence::new(SeqId(1), 0, 1),
        dist: 2.0,
    });
    a.push(Match {
        occ: Occurrence::new(SeqId(0), 0, 1),
        dist: 1.0,
    });
    a.sort();
    let occs: Vec<Occurrence> = a.into_iter().map(|m| m.occ).collect();
    assert_eq!(occs[0].seq, SeqId(0));
    assert_eq!(occs[1].seq, SeqId(1));
}

#[test]
fn single_element_everything() {
    // The smallest possible database and query exercise every boundary
    // at once.
    let store = SequenceStore::from_values(vec![vec![7.0]]);
    let mut stats = SearchStats::default();
    let params = SearchParams::with_epsilon(0.0);
    let ans = seq_scan(&store, &[7.0], &params, SeqScanMode::Full, &mut stats);
    assert_eq!(ans.len(), 1);
    assert_eq!(ans.matches()[0].occ, Occurrence::new(SeqId(0), 0, 1));
    assert_eq!(stats.rows_pushed, 1);
    assert_eq!(stats.filter_cells, 1);
}

#[test]
fn kmeans_more_clusters_than_distinct_values() {
    let store = SequenceStore::from_values(vec![vec![1.0, 1.0, 2.0]]);
    let a = Alphabet::kmeans(&store, 10, 20).unwrap();
    assert!(a.len() <= 2);
    assert_ne!(a.symbol_for(1.0), a.symbol_for(2.0));
}

#[test]
fn entropy_of_single_category_is_zero() {
    let store = SequenceStore::from_values(vec![vec![3.0, 3.0]]);
    let a = Alphabet::equal_length(&store, 5).unwrap();
    assert_eq!(a.entropy(&store), 0.0);
}
