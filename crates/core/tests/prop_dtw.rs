//! Property tests for the time-warping distance kernel (paper §3).

use proptest::prelude::*;
use warptree_core::dtw::{dtw, dtw_early_abandon, dtw_naive_recursive, dtw_windowed, WarpTable};

fn seq(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-50i32..50).prop_map(|v| v as f64 * 0.25), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The DP implementation equals Definition 1's direct recursion.
    #[test]
    fn dp_equals_definition((a, b) in (seq(7), seq(7))) {
        prop_assert!((dtw(&a, &b) - dtw_naive_recursive(&a, &b)).abs() < 1e-9);
    }

    /// `D_tw` is symmetric and zero iff the warped shapes coincide.
    #[test]
    fn symmetry_and_identity((a, b) in (seq(12), seq(12))) {
        prop_assert_eq!(dtw(&a, &b), dtw(&b, &a));
        prop_assert_eq!(dtw(&a, &a), 0.0);
        prop_assert!(dtw(&a, &b) >= 0.0);
    }

    /// Stretching either sequence by duplicating elements never changes
    /// the distance-zero relation (the paper's intro example,
    /// generalized): duplicated elements warp onto the original.
    #[test]
    fn duplication_invariance(a in seq(10), dup_at in 0usize..10) {
        let i = dup_at % a.len();
        let mut stretched = a.clone();
        stretched.insert(i, a[i]);
        prop_assert_eq!(dtw(&a, &stretched), 0.0);
    }

    /// Theorem 1: appending rows never lowers the row minimum.
    #[test]
    fn theorem1_monotone_row_minimum((q, data) in (seq(8), seq(20))) {
        let mut t = WarpTable::new(&q, None);
        let mut prev = 0.0f64;
        for &v in &data {
            let s = t.push_value(v);
            prop_assert!(s.min + 1e-12 >= prev);
            prev = s.min;
        }
    }

    /// Early abandoning is exactly "distance ≤ ε" as a predicate.
    #[test]
    fn early_abandon_is_threshold_predicate(
        (a, b) in (seq(8), seq(8)),
        eps_i in 0u32..40,
    ) {
        let eps = eps_i as f64 * 0.5;
        let full = dtw(&a, &b);
        match dtw_early_abandon(&a, &b, eps) {
            Some(d) => {
                prop_assert!((d - full).abs() < 1e-9);
                prop_assert!(d <= eps);
            }
            None => prop_assert!(full > eps),
        }
    }

    /// A Sakoe–Chiba band can only forbid paths: windowed ≥ unwindowed,
    /// and widening the band is monotone.
    #[test]
    fn window_monotonicity((a, b) in (seq(8), seq(8)), w in 0u32..6) {
        let unconstrained = dtw(&a, &b);
        let tight = dtw_windowed(&a, &b, w);
        let loose = dtw_windowed(&a, &b, w + 2);
        prop_assert!(tight + 1e-12 >= loose);
        prop_assert!(loose + 1e-12 >= unconstrained);
        // A band covering the whole table is exact.
        let full_band =
            dtw_windowed(&a, &b, (a.len() + b.len()) as u32);
        prop_assert!((full_band - unconstrained).abs() < 1e-9);
    }

    /// Truncate/push round-trips restore identical table state.
    #[test]
    fn truncate_roundtrip(
        (q, data) in (seq(6), seq(12)),
        cut in 0usize..12,
    ) {
        let mut t = WarpTable::new(&q, None);
        let mut stats = Vec::new();
        for &v in &data {
            stats.push(t.push_value(v));
        }
        let cut = cut % data.len();
        t.truncate(cut as u32);
        for (i, &v) in data[cut..].iter().enumerate() {
            let s = t.push_value(v);
            prop_assert_eq!(s, stats[cut + i]);
        }
    }
}

/// The paper's §1 claim: `D_tw` violates the triangle inequality — a
/// concrete witness, which is why metric access methods are unusable.
#[test]
fn triangle_inequality_violation_witness() {
    // The counterexample family from Yi/Jagadish/Faloutsos:
    let a = [1.0];
    let b = [1.0, 2.0];
    let c = [2.0, 2.0];
    let ab = dtw(&a, &b); // 1
    let bc = dtw(&b, &c); // 1
    let ac = dtw(&a, &c); // 2
    assert_eq!((ab, bc, ac), (1.0, 1.0, 2.0));
    // Not violated yet; stretch c to make warping cheap between b,c but
    // expensive between a,c.
    let c2 = [2.0, 2.0, 2.0, 2.0, 2.0];
    let ab = dtw(&a, &b);
    let bc2 = dtw(&b, &c2);
    let ac2 = dtw(&a, &c2);
    assert!(
        ac2 > ab + bc2,
        "expected triangle violation: {ac2} <= {ab} + {bc2}"
    );
}
