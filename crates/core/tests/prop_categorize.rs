//! Property tests for categorization and the lower-bound base distance
//! (paper §5).

use proptest::prelude::*;
use warptree_core::bounds::{dtw_lb, dtw_lb2, lead_run};
use warptree_core::categorize::Alphabet;
use warptree_core::dtw::dtw;
use warptree_core::sequence::SequenceStore;

fn db() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec((-100i32..100).prop_map(|v| v as f64 * 0.5), 1..20),
        1..5,
    )
}

fn alphabets(store: &SequenceStore, c: usize) -> Vec<Alphabet> {
    vec![
        Alphabet::equal_length(store, c).unwrap(),
        Alphabet::max_entropy(store, c).unwrap(),
        Alphabet::kmeans(store, c, 30).unwrap(),
        Alphabet::singleton(store).unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every stored value maps to a category whose observed bounds
    /// contain it, so its base lower bound is zero.
    #[test]
    fn every_value_in_its_category(values in db(), c in 1usize..8) {
        let store = SequenceStore::from_values(values);
        for a in alphabets(&store, c) {
            for (_, s) in store.iter() {
                for &v in s.values() {
                    let sym = a.symbol_for(v);
                    let cat = a.category(sym);
                    prop_assert!(
                        cat.lb <= v && v <= cat.ub,
                        "{v} outside observed bounds of its category \
                         [{}, {}] ({})",
                        cat.lb,
                        cat.ub,
                        a.method()
                    );
                    prop_assert_eq!(a.base_lb(v, sym), 0.0);
                }
            }
        }
    }

    /// Categories are ordered and non-overlapping; lookup is consistent
    /// with the boundaries.
    #[test]
    fn categories_ordered_disjoint(values in db(), c in 1usize..8) {
        let store = SequenceStore::from_values(values);
        for a in alphabets(&store, c) {
            for w in a.categories().windows(2) {
                prop_assert!(w[0].lo <= w[1].lo);
                prop_assert!(w[0].ub <= w[1].lb + 1e-12);
            }
        }
    }

    /// `base_lb(x, B)` is the true minimum city-block distance between
    /// `x` and any *stored* value of category `B` (brute-forced).
    #[test]
    fn base_lb_is_tight_minimum(
        values in db(),
        c in 1usize..6,
        probe in (-250i32..250).prop_map(|v| v as f64 * 0.25),
    ) {
        let store = SequenceStore::from_values(values);
        for a in alphabets(&store, c) {
            // Collect members per category.
            let mut members: Vec<Vec<f64>> = vec![Vec::new(); a.len()];
            for (_, s) in store.iter() {
                for &v in s.values() {
                    members[a.symbol_for(v) as usize].push(v);
                }
            }
            for (sym, m) in members.iter().enumerate() {
                if m.is_empty() {
                    continue;
                }
                let brute = m
                    .iter()
                    .map(|&v| (probe - v).abs())
                    .fold(f64::INFINITY, f64::min);
                let lb = a.base_lb(probe, sym as u32);
                prop_assert!(
                    lb <= brute + 1e-9,
                    "base_lb {lb} exceeds true min {brute}"
                );
                // Tight at the boundary: equality when the probe is
                // outside the observed interval (nearest member is an
                // endpoint).
                let cat = a.category(sym as u32);
                if probe < cat.lb || probe > cat.ub {
                    let endpoint =
                        (probe - cat.lb).abs().min((probe - cat.ub).abs());
                    prop_assert!((lb - endpoint).abs() < 1e-9);
                }
            }
        }
    }

    /// Theorem 2 for every categorization method: `D_tw-lb ≤ D_tw`.
    #[test]
    fn theorem2_all_methods(
        values in db(),
        c in 1usize..6,
        q in prop::collection::vec((-100i32..100).prop_map(|v| v as f64 * 0.5), 1..6),
    ) {
        let store = SequenceStore::from_values(values);
        for a in alphabets(&store, c) {
            for (_, s) in store.iter() {
                let cs = a.encode(s.values());
                let lb = dtw_lb(&q, &cs, &a);
                let exact = dtw(&q, s.values());
                prop_assert!(
                    lb <= exact + 1e-9,
                    "lb {lb} > exact {exact} ({})",
                    a.method()
                );
                // Singleton alphabets are exact.
                if a.len() >= store.iter().flat_map(|(_, s)| s.values())
                    .count()
                {
                    // (all values distinct) — not necessarily singleton,
                    // skip equality check here; covered below.
                }
            }
        }
    }

    /// Theorem 3 for run-prefixed suffixes: `lb2 ≤ lb ≤ exact`.
    #[test]
    fn theorem3_all_methods(
        run_sym in 0usize..3,
        run_len in 2usize..6,
        tail in prop::collection::vec((-40i32..40).prop_map(|v| v as f64), 1..6),
        q in prop::collection::vec((-40i32..40).prop_map(|v| v as f64), 1..5),
    ) {
        // Construct a sequence whose categorized form has a leading run:
        // repeat a value, then append a tail.
        let lead_val = run_sym as f64 * 30.0 - 30.0;
        let mut values = vec![lead_val; run_len];
        values.extend(tail.iter().map(|v| v + 100.0)); // distinct range
        let store = SequenceStore::from_values(vec![values.clone()]);
        let a = Alphabet::equal_length(&store, 4).unwrap();
        let cs = a.encode(&values);
        let n = lead_run(&cs);
        for shift in 1..n.min(values.len() - 1) {
            let lb2 = dtw_lb2(&q, &cs, shift as u32, &a);
            let lb = dtw_lb(&q, &cs[shift..], &a);
            let exact = dtw(&q, &values[shift..]);
            prop_assert!(lb2 <= lb + 1e-9, "lb2 {lb2} > lb {lb}");
            prop_assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact}");
        }
    }

    /// Singleton alphabets make the lower bound exact.
    #[test]
    fn singleton_lb_is_exact(
        values in db(),
        q in prop::collection::vec((-100i32..100).prop_map(|v| v as f64 * 0.5), 1..5),
    ) {
        let store = SequenceStore::from_values(values);
        let a = Alphabet::singleton(&store).unwrap();
        for (_, s) in store.iter() {
            let cs = a.encode(s.values());
            prop_assert!(
                (dtw_lb(&q, &cs, &a) - dtw(&q, s.values())).abs() < 1e-9
            );
        }
    }

    /// Encoding round-trips through symbols deterministically, and the
    /// compaction structure (runs) mirrors the raw encoding.
    #[test]
    fn encoding_deterministic(values in db(), c in 1usize..6) {
        let store = SequenceStore::from_values(values);
        let a = Alphabet::max_entropy(&store, c).unwrap();
        let cs1 = a.encode_store(&store);
        let cs2 = a.encode_store(&store);
        prop_assert_eq!(cs1.seqs(), cs2.seqs());
        // run_len agrees with a scan of the symbols.
        for (i, s) in cs1.seqs().iter().enumerate() {
            for p in 0..s.len() {
                let mut n = 1;
                while p + n < s.len() && s[p + n] == s[p] {
                    n += 1;
                }
                prop_assert_eq!(
                    cs1.run_len(
                        warptree_core::sequence::SeqId(i as u32),
                        p as u32
                    ),
                    n as u32
                );
            }
        }
    }
}
