//! Property tests for the multivariate extension (paper §8).

use proptest::prelude::*;
use warptree_core::multivariate::{
    city_block, mv_dtw, mv_dtw_lb, GridAlphabet, MvSequence, MvStore,
};

fn mv_seq(dims: usize, max_pts: usize) -> impl Strategy<Value = MvSequence> {
    prop::collection::vec(
        (-40i32..40).prop_map(|v| v as f64 * 0.25),
        dims..=dims * max_pts,
    )
    .prop_map(move |mut v| {
        let keep = (v.len() / dims).max(1) * dims;
        v.truncate(keep);
        while v.len() < dims {
            v.push(0.0);
        }
        MvSequence::new(dims, v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Multivariate DTW keeps the univariate invariants.
    #[test]
    fn mv_dtw_invariants(
        dims in 1usize..4,
        seed_a in prop::collection::vec((-40i32..40).prop_map(|v| v as f64 * 0.25), 1..30),
        seed_b in prop::collection::vec((-40i32..40).prop_map(|v| v as f64 * 0.25), 1..30),
    ) {
        let make = |vals: &[f64]| {
            let keep = (vals.len() / dims).max(1) * dims;
            let mut v = vals[..keep.min(vals.len())].to_vec();
            while v.len() < dims {
                v.push(0.0);
            }
            let keep = (v.len() / dims).max(1) * dims;
            v.truncate(keep);
            MvSequence::new(dims, v)
        };
        let a = make(&seed_a);
        let b = make(&seed_b);
        prop_assert_eq!(mv_dtw(&a, &b), mv_dtw(&b, &a));
        prop_assert_eq!(mv_dtw(&a, &a), 0.0);
        prop_assert!(mv_dtw(&a, &b) >= 0.0);
        // Duplicating a point never changes the distance to the original.
        let mut dup = Vec::new();
        for (i, p) in a.points().enumerate() {
            dup.extend_from_slice(p);
            if i == 0 {
                dup.extend_from_slice(p);
            }
        }
        let stretched = MvSequence::new(dims, dup);
        prop_assert_eq!(mv_dtw(&a, &stretched), 0.0);
    }

    /// Grid encode/split round-trips and the cell lower bound holds for
    /// both EL and ME grids.
    #[test]
    fn grid_roundtrip_and_lb(
        dims in 1usize..3,
        s in (1usize..3).prop_flat_map(|d| mv_seq(d, 16).prop_map(move |x| (d, x)))
            .prop_map(|(_, x)| x),
        q in (1usize..3).prop_flat_map(|d| mv_seq(d, 6).prop_map(move |x| (d, x)))
            .prop_map(|(_, x)| x),
        c in 1usize..5,
    ) {
        let _ = dims;
        // Regenerate with matching dims: use s's dims for everything.
        let d = s.dims();
        let q = if q.dims() == d {
            q
        } else {
            MvSequence::new(
                d,
                q.points()
                    .flat_map(|p| {
                        let mut v = p.to_vec();
                        v.resize(d, 0.0);
                        v
                    })
                    .collect(),
            )
        };
        let mut store = MvStore::new();
        store.push(s.clone());
        for grid in [
            GridAlphabet::equal_length(store.seqs(), c).unwrap(),
            GridAlphabet::max_entropy(store.seqs(), c).unwrap(),
        ] {
            // Every stored point round-trips through its cell with a
            // zero self lower bound.
            for p in s.points() {
                let sym = grid.symbol_for(p);
                let parts = grid.split(sym);
                prop_assert_eq!(parts.len(), grid.dims());
                prop_assert_eq!(grid.base_lb(p, sym), 0.0);
                // base_lb lower-bounds the true point distance to every
                // member of that cell (here: p itself vs q's points).
                for qp in q.points() {
                    prop_assert!(
                        grid.base_lb(qp, sym) <= city_block(qp, p) + 1e-9
                    );
                }
            }
            // Theorem 2, multivariate.
            let cs = grid.encode(&s);
            prop_assert!(
                mv_dtw_lb(&q, &cs, &grid) <= mv_dtw(&q, &s) + 1e-9
            );
        }
    }
}
