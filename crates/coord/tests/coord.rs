//! End-to-end tests of the scatter-gather coordinator against real
//! shard servers: byte-identical answers vs a segment-aligned
//! monolithic server (matches AND funnel stats), byte-identical
//! re-encoding through a 1-shard coordinator, deterministic cross-shard
//! tie-breaking at 1 and 8 scatter lanes, and honest degradation when
//! shards die.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::Duration;

use warptree_coord::{CoordConfig, Coordinator};
use warptree_core::categorize::Alphabet;
use warptree_core::sequence::{SeqId, SequenceStore};
use warptree_core::search::BackendKind;
use warptree_disk::{
    append_segment, build_dir_backend_with, build_dir_with, real_vfs, write_shard_manifest,
    ShardManifest, ShardMeta, TreeKind,
};
use warptree_server::client::RetryPolicy;
use warptree_server::{Client, Server, ServerConfig, ServerHandle};

fn tmpdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-coord-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// A deterministic corpus with enough structure for non-trivial answer
/// sets spread across every shard: interleaved ramps on a small value
/// grid so ε-balls catch several occurrences per sequence.
fn corpus() -> SequenceStore {
    let mut values = Vec::new();
    for s in 0..12u32 {
        let len = 16 + (s as usize * 5) % 17;
        let mut seq = Vec::with_capacity(len);
        for j in 0..len {
            let v = ((s as usize * 7 + j * 3) % 23) as f64 * 0.5;
            seq.push(v);
        }
        values.push(seq);
    }
    SequenceStore::from_values(values)
}

/// A contiguous sub-store `[range.start, range.end)` of `store`.
fn slice(store: &SequenceStore, range: std::ops::Range<usize>) -> SequenceStore {
    let mut out = SequenceStore::new();
    for id in range {
        out.push(store.get(SeqId(id as u32)).clone());
    }
    out
}

/// Builds a sharded layout under `root`: one index directory per cut
/// (all over the SAME `alphabet` — the invariant that makes shard
/// answers merge byte-identically) plus a committed `SHARDS` manifest.
fn build_shard_layout(root: &Path, store: &SequenceStore, alphabet: &Alphabet, cuts: &[usize]) {
    build_shard_layout_backend(root, store, alphabet, cuts, BackendKind::Tree);
}

/// [`build_shard_layout`] with an explicit index backend per shard.
fn build_shard_layout_backend(
    root: &Path,
    store: &SequenceStore,
    alphabet: &Alphabet,
    cuts: &[usize],
    backend: BackendKind,
) {
    let mut metas = Vec::new();
    let mut start = 0usize;
    for (i, &end) in cuts.iter().enumerate() {
        let part = slice(store, start..end);
        let dir_name = format!("shard-{i:04}");
        build_dir_backend_with(
            real_vfs(),
            &part,
            alphabet,
            TreeKind::Full,
            1,
            1,
            None,
            backend,
            &root.join(&dir_name),
        )
        .unwrap();
        metas.push(ShardMeta {
            dir: dir_name,
            start_seq: start as u32,
            seq_count: (end - start) as u32,
            values: part.total_len(),
        });
        start = end;
    }
    write_shard_manifest(
        root,
        &ShardManifest {
            generation: 1,
            shards: metas,
        },
    )
    .unwrap();
}

/// Starts one shard server per `shard-NNNN` directory under `root`.
fn start_shards(root: &Path, n: usize) -> (Vec<ServerHandle>, Vec<String>) {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..n {
        let h =
            Server::start(&root.join(format!("shard-{i:04}")), ServerConfig::default()).unwrap();
        addrs.push(h.addr().to_string());
        handles.push(h);
    }
    (handles, addrs)
}

/// Fast-failing retry policy so down-shard tests don't sit in backoff.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 1,
        base: Duration::from_millis(2),
        max_backoff: Duration::from_millis(10),
        deadline: None,
    }
}

fn rpc(addr: SocketAddr, body: &str) -> String {
    let mut c = Client::connect(addr.to_string()).unwrap();
    c.request_raw(body).unwrap()
}

/// Replaces every `"generation":<digits>` with `"generation":G` — the
/// only legitimate difference between a fresh shard build (gen 1) and
/// the append-built monolithic comparator (gen 1 + one per appended
/// segment).
fn normalize_gen(resp: &str) -> String {
    let mut out = String::with_capacity(resp.len());
    let needle = "\"generation\":";
    let mut rest = resp;
    while let Some(pos) = rest.find(needle) {
        let after = pos + needle.len();
        out.push_str(&rest[..after]);
        out.push('G');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// The op bodies exercised by the equivalence tests, all at protocol
/// version 3 (no v4 timings object, which is legitimately wall-clock
/// dependent).
fn equivalence_bodies(store: &SequenceStore) -> Vec<String> {
    let seq = |i: usize, r: std::ops::Range<usize>| {
        store.get(SeqId(i as u32)).values()[r]
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let q0 = seq(0, 2..8);
    let q5 = seq(5, 4..10);
    let q11 = seq(11, 0..6);
    let mut bodies = Vec::new();
    for eps in ["0.5", "1.0", "2.5"] {
        for q in [&q0, &q5, &q11] {
            bodies.push(format!(
                "{{\"op\":\"search\",\"version\":3,\"query\":[{q}],\"epsilon\":{eps}}}"
            ));
        }
    }
    bodies.push(format!(
        "{{\"op\":\"search\",\"version\":3,\"query\":[{q0}],\"epsilon\":2.0,\"window\":2,\"min_len\":2}}"
    ));
    for k in [1, 5, 9] {
        bodies.push(format!(
            "{{\"op\":\"knn\",\"version\":3,\"query\":[{q5}],\"k\":{k}}}"
        ));
    }
    bodies.push(format!(
        "{{\"op\":\"knn\",\"version\":3,\"query\":[{q11}],\"k\":4,\"allow_overlaps\":true}}"
    ));
    bodies.push(format!(
        "{{\"op\":\"batch\",\"version\":3,\"queries\":[[{q0}],[{q5}],[{q11}]],\"epsilon\":1.5}}"
    ));
    // Cascade-off ablation: the lower-bound cascade must be togglable
    // over the wire and equally layout-independent when disabled.
    bodies.push(format!(
        "{{\"op\":\"search\",\"version\":3,\"query\":[{q0}],\"epsilon\":1.0,\"cascade\":false}}"
    ));
    bodies.push(format!(
        "{{\"op\":\"knn\",\"version\":3,\"query\":[{q5}],\"k\":3,\"cascade\":false}}"
    ));
    for q in [&q0, &q11] {
        bodies.push(format!(
            "{{\"op\":\"explain\",\"version\":3,\"query\":[{q}],\"epsilon\":2.0}}"
        ));
    }
    bodies
}

/// The headline equivalence proof: a 3-shard coordinator answers every
/// search / knn / batch / explain byte-identically (matches AND funnel
/// stats, generation normalized) to one server over a segment-aligned
/// monolithic directory — the same corpus as one index whose segment
/// boundaries coincide with the shard boundaries, so per-tree work is
/// provably the same and only the transport differs.
#[test]
fn three_shard_answers_match_segment_aligned_monolith_byte_for_byte() {
    let root = tmpdir("equiv3");
    let store = corpus();
    let alphabet = Alphabet::equal_length(&store, 6).unwrap();
    let cuts = [4usize, 8, 12];
    build_shard_layout(&root, &store, &alphabet, &cuts);

    // The comparator: slice 0 as the base tree, slices 1..N appended as
    // tail segments — same alphabet, same per-segment trees.
    let mono = root.join("mono");
    build_dir_with(
        real_vfs(),
        &slice(&store, 0..4),
        &alphabet,
        TreeKind::Full,
        1,
        1,
        None,
        &mono,
    )
    .unwrap();
    append_segment(&mono, &slice(&store, 4..8)).unwrap();
    append_segment(&mono, &slice(&store, 8..12)).unwrap();

    let (_shards, addrs) = start_shards(&root, 3);
    let mono_srv = Server::start(&mono, ServerConfig::default()).unwrap();
    let coord = Coordinator::start(
        &root,
        CoordConfig {
            shard_addrs: addrs,
            workers: 2,
            ..CoordConfig::default()
        },
    )
    .unwrap();

    let mut non_empty = 0usize;
    for body in equivalence_bodies(&store) {
        let via_coord = rpc(coord.addr(), &body);
        let via_mono = rpc(mono_srv.addr(), &body);
        assert_eq!(
            normalize_gen(&via_coord),
            normalize_gen(&via_mono),
            "coordinator diverged from the segment-aligned monolith on {body}"
        );
        assert!(via_coord.starts_with("{\"ok\":true"), "failed: {via_coord}");
        if !via_coord.contains("\"count\":0") && !via_coord.contains("\"matches\":[]") {
            non_empty += 1;
        }
    }
    assert!(non_empty >= 8, "fixture produced mostly empty answers");

    // Aggregated control plane: sequences and values sum across shards.
    let info = rpc(coord.addr(), "{\"op\":\"info\",\"version\":4}");
    assert!(info.contains("\"sequences\":12"), "{info}");
    assert!(
        info.contains(&format!("\"values\":{}", store.total_len())),
        "{info}"
    );
    assert!(info.contains("\"shards_up\":3"), "{info}");
    let health = rpc(coord.addr(), "{\"op\":\"health\",\"version\":4}");
    assert!(health.contains("\"status\":\"serving\""), "{health}");
    coord.stop();
}

/// The sharded leg of the cross-backend matrix: a 2-shard coordinator
/// over ESA shards answers every search / knn / batch / explain
/// byte-identically to a 2-shard coordinator over tree shards of the
/// same corpus, and the `"backend"` pin is forwarded to every shard —
/// a pin naming the other family comes back as the typed
/// `unsupported_backend` error, while the matching pin changes nothing.
#[test]
fn esa_shards_answer_byte_identically_and_enforce_pins() {
    let store = corpus();
    let alphabet = Alphabet::equal_length(&store, 6).unwrap();
    let cuts = [6usize, 12];

    let tree_root = tmpdir("bke-tree");
    let esa_root = tmpdir("bke-esa");
    build_shard_layout_backend(&tree_root, &store, &alphabet, &cuts, BackendKind::Tree);
    build_shard_layout_backend(&esa_root, &store, &alphabet, &cuts, BackendKind::Esa);

    let (_tree_shards, tree_addrs) = start_shards(&tree_root, 2);
    let (_esa_shards, esa_addrs) = start_shards(&esa_root, 2);
    let tree_coord = Coordinator::start(
        &tree_root,
        CoordConfig {
            shard_addrs: tree_addrs,
            workers: 2,
            ..CoordConfig::default()
        },
    )
    .unwrap();
    let esa_coord = Coordinator::start(
        &esa_root,
        CoordConfig {
            shard_addrs: esa_addrs,
            workers: 2,
            ..CoordConfig::default()
        },
    )
    .unwrap();

    for body in equivalence_bodies(&store) {
        let via_tree = rpc(tree_coord.addr(), &body);
        let via_esa = rpc(esa_coord.addr(), &body);
        assert!(via_tree.starts_with("{\"ok\":true"), "failed: {via_tree}");
        assert_eq!(
            normalize_gen(&via_tree),
            normalize_gen(&via_esa),
            "backends diverged through the coordinator on {body}"
        );
    }

    // Pin forwarding: the coordinator passes "backend" through to the
    // shards, whose executors enforce it.
    let q: String = store.get(SeqId(0)).values()[2..8]
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",");
    let pinned =
        format!("{{\"op\":\"search\",\"version\":4,\"query\":[{q}],\"epsilon\":1.0,\"backend\":\"esa\"}}");
    let unpinned = format!("{{\"op\":\"search\",\"version\":4,\"query\":[{q}],\"epsilon\":1.0}}");
    let rejected = rpc(tree_coord.addr(), &pinned);
    assert!(
        rejected.contains("\"code\":\"unsupported_backend\""),
        "tree shards accepted an esa pin: {rejected}"
    );
    let accepted = rpc(esa_coord.addr(), &pinned);
    let plain = rpc(esa_coord.addr(), &unpinned);
    assert!(accepted.starts_with("{\"ok\":true"), "{accepted}");
    // Mask the wall-clock half of the v4 timings object before the
    // byte comparison.
    assert_eq!(
        normalize_field(&accepted, "service_ns"),
        normalize_field(&plain, "service_ns"),
        "the matching pin changed the answer"
    );

    tree_coord.stop();
    esa_coord.stop();
}

/// A 1-shard coordinator is a pure re-encoding proxy: its responses
/// must equal the shard server's own bytes exactly — same float
/// rendering, same field order, same generation — for every op.
#[test]
fn single_shard_coordinator_is_byte_transparent() {
    let root = tmpdir("equiv1");
    let store = corpus();
    let alphabet = Alphabet::equal_length(&store, 6).unwrap();
    build_shard_layout(&root, &store, &alphabet, &[12]);

    let (shards, addrs) = start_shards(&root, 1);
    let coord = Coordinator::start(
        &root,
        CoordConfig {
            shard_addrs: addrs,
            ..CoordConfig::default()
        },
    )
    .unwrap();

    for body in equivalence_bodies(&store) {
        let via_coord = rpc(coord.addr(), &body);
        let direct = rpc(shards[0].addr(), &body);
        assert_eq!(
            via_coord, direct,
            "1-shard coordinator re-encoding diverged on {body}"
        );
    }
    coord.stop();
}

/// Replaces `"name":<digits>` with `"name":N` — for masking the only
/// response fields the cascade toggle may legitimately change.
fn normalize_field(resp: &str, name: &str) -> String {
    let mut out = String::with_capacity(resp.len());
    let needle = format!("\"{name}\":");
    let mut rest = resp;
    while let Some(pos) = rest.find(&needle) {
        let after = pos + needle.len();
        out.push_str(&rest[..after]);
        out.push('N');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// The sharded cascade contract: through a 2-shard coordinator, a
/// search with `"cascade":false` answers byte-identically to the
/// default cascaded search once the cascade-only fields (exact-table
/// cell count and the per-tier kill counters) are masked — and the
/// cascaded run actually reports kills on a tight-ε query.
#[test]
fn two_shard_cascade_toggle_changes_only_cascade_fields() {
    let root = tmpdir("cascade2");
    let store = corpus();
    let alphabet = Alphabet::equal_length(&store, 6).unwrap();
    build_shard_layout(&root, &store, &alphabet, &[6, 12]);
    let (_shards, addrs) = start_shards(&root, 2);
    let coord = Coordinator::start(
        &root,
        CoordConfig {
            shard_addrs: addrs,
            workers: 2,
            ..CoordConfig::default()
        },
    )
    .unwrap();

    let q = store.get(SeqId(0)).values()[2..8]
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",");
    let masked = |resp: &str| {
        let mut r = normalize_field(resp, "postprocess_cells");
        for f in [
            "cascade_lb_keogh_kills",
            "cascade_lb_improved_kills",
            "cascade_abandon_kills",
        ] {
            r = normalize_field(&r, f);
        }
        r
    };
    let mut killed_somewhere = false;
    for eps in ["0.5", "1.0", "2.5"] {
        // Matches: plain search responses are already stats-free, so
        // the toggle must leave them byte-identical outright.
        let on = rpc(
            coord.addr(),
            &format!("{{\"op\":\"search\",\"version\":3,\"query\":[{q}],\"epsilon\":{eps}}}"),
        );
        let off = rpc(
            coord.addr(),
            &format!(
                "{{\"op\":\"search\",\"version\":3,\"query\":[{q}],\"epsilon\":{eps},\"cascade\":false}}"
            ),
        );
        assert!(on.starts_with("{\"ok\":true"), "failed: {on}");
        assert_eq!(
            on, off,
            "cascade toggle changed search answers at eps={eps}"
        );

        // Funnel: explain responses carry the stats object.
        let on = rpc(
            coord.addr(),
            &format!("{{\"op\":\"explain\",\"version\":3,\"query\":[{q}],\"epsilon\":{eps}}}"),
        );
        let off = rpc(
            coord.addr(),
            &format!(
                "{{\"op\":\"explain\",\"version\":3,\"query\":[{q}],\"epsilon\":{eps},\"cascade\":false}}"
            ),
        );
        assert!(on.starts_with("{\"ok\":true"), "failed: {on}");
        assert_eq!(
            masked(&on),
            masked(&off),
            "cascade toggle changed more than its own fields at eps={eps}"
        );
        assert!(
            off.contains("\"cascade_lb_keogh_kills\":0,\"cascade_lb_improved_kills\":0,\"cascade_abandon_kills\":0"),
            "cascade-off run reported kills: {off}"
        );
        if !on.contains("\"cascade_lb_keogh_kills\":0,\"cascade_lb_improved_kills\":0,\"cascade_abandon_kills\":0")
        {
            killed_somewhere = true;
        }
    }
    assert!(
        killed_somewhere,
        "no epsilon produced a cascade kill through the shards"
    );
    coord.stop();
}

/// Satellite: deterministic cross-shard tie-breaking. Eight identical
/// sequences spread over four shards produce equal distances at the
/// same `(start, len)` in every sequence; the merged order must be the
/// canonical `(seq, start)` order, identical at 1 scatter lane and at
/// 8, and stable across repeated runs.
#[test]
fn cross_shard_equal_distance_ties_merge_deterministically() {
    let root = tmpdir("ties");
    let base: Vec<f64> = (0..12).map(|j| (j % 4) as f64).collect();
    let store = SequenceStore::from_values(vec![base; 8]);
    let alphabet = Alphabet::equal_length(&store, 4).unwrap();
    build_shard_layout(&root, &store, &alphabet, &[2, 4, 6, 8]);
    let (_shards, addrs) = start_shards(&root, 4);

    let coord_1lane = Coordinator::start(
        &root,
        CoordConfig {
            shard_addrs: addrs.clone(),
            workers: 1,
            ..CoordConfig::default()
        },
    )
    .unwrap();
    let coord_8lane = Coordinator::start(
        &root,
        CoordConfig {
            shard_addrs: addrs,
            workers: 8,
            ..CoordConfig::default()
        },
    )
    .unwrap();

    // k = 7 lands mid-tie: more zero-distance matches exist than k, and
    // they span every shard, so the cut point is decided purely by the
    // (seq, start) tie-break.
    let bodies = [
        "{\"op\":\"search\",\"version\":3,\"query\":[0,1,2],\"epsilon\":0.25}".to_string(),
        "{\"op\":\"knn\",\"version\":3,\"query\":[0,1,2],\"k\":7}".to_string(),
        "{\"op\":\"knn\",\"version\":3,\"query\":[1,2,3],\"k\":5,\"allow_overlaps\":true}"
            .to_string(),
    ];
    for body in &bodies {
        let reference = rpc(coord_1lane.addr(), body);
        assert!(reference.starts_with("{\"ok\":true"), "failed: {reference}");
        for round in 0..5 {
            let racy = rpc(coord_8lane.addr(), body);
            assert_eq!(
                racy, reference,
                "lane-count or run-to-run divergence on {body} (round {round})"
            );
        }
    }

    // The ranked knn answer's equal-distance run is in ascending
    // (seq, start) order across shard boundaries.
    let knn = rpc(coord_1lane.addr(), &bodies[1]);
    let json = warptree_server::json::parse(&knn).unwrap();
    let matches = json
        .get("matches")
        .and_then(warptree_server::Json::as_arr)
        .unwrap();
    assert_eq!(matches.len(), 7);
    let keys: Vec<(u64, u64, u64)> = matches
        .iter()
        .map(|m| {
            let f = |k: &str| m.get(k).and_then(warptree_server::Json::as_u64).unwrap();
            (f("seq"), f("start"), f("len"))
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "equal-distance knn ties must rank in (seq, start) order"
    );
    assert!(
        keys.iter().map(|k| k.0).max().unwrap() >= 2,
        "tie run should cross a shard boundary: {keys:?}"
    );

    coord_1lane.stop();
    coord_8lane.stop();
}

/// Shard loss degrades honestly: results turn `"partial":true` with a
/// coverage block aggregated across shards (the dead shard's suffixes
/// count toward the total, never the answered), `health` turns
/// degraded, v2 clients get the typed `partial_result_unsupported`
/// error, and losing every shard is a typed internal failure — never a
/// silently complete answer.
#[test]
fn shard_loss_yields_partial_results_and_degraded_health() {
    let root = tmpdir("degrade");
    let store = corpus();
    let alphabet = Alphabet::equal_length(&store, 6).unwrap();
    build_shard_layout(&root, &store, &alphabet, &[6, 12]);
    let (mut shards, addrs) = start_shards(&root, 2);
    let live_values = slice(&store, 0..6).total_len();

    let coord = Coordinator::start(
        &root,
        CoordConfig {
            shard_addrs: addrs,
            retry: fast_retry(),
            shard_timeout: Duration::from_secs(2),
            health_interval: Duration::from_millis(50),
            ..CoordConfig::default()
        },
    )
    .unwrap();

    let search = "{\"op\":\"search\",\"version\":3,\"query\":[1.5,2.0,2.5],\"epsilon\":2.0}";
    let full = rpc(coord.addr(), search);
    assert!(full.starts_with("{\"ok\":true"), "{full}");
    assert!(!full.contains("\"partial\""), "healthy answer: {full}");

    // Kill shard 1 (the tail of the id space).
    shards.pop().unwrap().stop();

    let partial = rpc(coord.addr(), search);
    assert!(partial.starts_with("{\"ok\":true"), "{partial}");
    assert!(partial.contains("\"partial\":true"), "{partial}");
    assert!(
        partial.contains(&format!(
            "\"segments_total\":2,\"segments_answered\":1,\"segments_quarantined\":0,\
             \"suffixes_total\":{},\"suffixes_answered\":{live_values}",
            store.total_len()
        )),
        "coverage must count the dead shard's suffixes as unanswered: {partial}"
    );

    // Batch: every item in the batch carries the aggregated coverage.
    let batch = rpc(
        coord.addr(),
        "{\"op\":\"batch\",\"version\":3,\"queries\":[[1.5,2.0],[3.0,3.5,4.0]],\"epsilon\":1.0}",
    );
    assert!(batch.starts_with("{\"ok\":true"), "{batch}");
    assert_eq!(batch.matches("\"partial\":true").count(), 2, "{batch}");

    // v2 cannot express partial results; the coordinator must refuse
    // with the same typed error the shard server uses.
    let v2 = rpc(
        coord.addr(),
        "{\"op\":\"search\",\"version\":2,\"query\":[1.5,2.0],\"epsilon\":1.0}",
    );
    assert!(
        v2.contains("\"code\":\"partial_result_unsupported\""),
        "{v2}"
    );

    // The health monitor notices within a few poll intervals.
    let mut degraded = false;
    for _ in 0..50 {
        let health = rpc(coord.addr(), "{\"op\":\"health\",\"version\":4}");
        if health.contains("\"status\":\"degraded\"") && health.contains("\"shards_up\":1") {
            degraded = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(degraded, "health never turned degraded after shard loss");

    // Lose the last shard: no silent empty answers, a typed error.
    shards.pop().unwrap().stop();
    let dead = rpc(coord.addr(), search);
    assert!(dead.starts_with("{\"ok\":false"), "{dead}");
    assert!(dead.contains("\"code\":\"internal\""), "{dead}");
    assert!(dead.contains("no shard answered"), "{dead}");
    coord.stop();
}

/// The coordinator forwards an active trace to every shard and nests
/// the shard span trees under its own `coord.shard` spans, so one
/// traced response attributes latency per shard.
#[test]
fn traced_request_nests_one_span_per_shard() {
    let root = tmpdir("trace");
    let store = corpus();
    let alphabet = Alphabet::equal_length(&store, 6).unwrap();
    build_shard_layout(&root, &store, &alphabet, &[6, 12]);
    let (_shards, addrs) = start_shards(&root, 2);
    let coord = Coordinator::start(
        &root,
        CoordConfig {
            shard_addrs: addrs,
            ..CoordConfig::default()
        },
    )
    .unwrap();

    let traced = rpc(
        coord.addr(),
        "{\"op\":\"search\",\"version\":4,\"query\":[1.5,2.0,2.5],\"epsilon\":1.0,\
         \"trace\":true,\"trace_id\":\"t-coord-1\"}",
    );
    assert!(traced.starts_with("{\"ok\":true"), "{traced}");
    let json = warptree_server::json::parse(&traced).unwrap();
    let trace = json.get("trace").expect("traced response carries trace");
    assert_eq!(
        trace
            .get("trace_id")
            .and_then(warptree_server::Json::as_str),
        Some("t-coord-1")
    );
    let spans = trace
        .get("spans")
        .and_then(warptree_server::Json::as_arr)
        .unwrap();
    let shard_spans: Vec<_> = spans
        .iter()
        .filter(|s| s.get("name").and_then(warptree_server::Json::as_str) == Some("coord.shard"))
        .collect();
    assert_eq!(shard_spans.len(), 2, "one shard span per shard: {traced}");
    // Each shard span embeds the shard's own span tree, which carries
    // the shard-side trace_id the coordinator forwarded.
    for s in &shard_spans {
        let attrs = s.get("attrs").expect("shard span has attrs");
        let embedded = attrs
            .get("trace")
            .and_then(warptree_server::Json::as_str)
            .expect("shard span embeds the shard's trace");
        assert!(embedded.contains("t-coord-1"), "{embedded}");
    }
    // The un-traced path stays clean.
    let plain = rpc(
        coord.addr(),
        "{\"op\":\"search\",\"version\":4,\"query\":[1.5,2.0,2.5],\"epsilon\":1.0}",
    );
    assert!(!plain.contains("\"trace\""), "{plain}");
    assert!(plain.contains("\"timings\""), "{plain}");
    coord.stop();
}

/// Protocol-level hygiene at the coordinator: typed bad requests,
/// slowlog/metrics/stats/shutdown control ops, and draining.
#[test]
fn coordinator_control_plane_and_errors() {
    let root = tmpdir("control");
    let store = corpus();
    let alphabet = Alphabet::equal_length(&store, 6).unwrap();
    build_shard_layout(&root, &store, &alphabet, &[12]);
    let (_shards, addrs) = start_shards(&root, 1);
    let coord = Coordinator::start(
        &root,
        CoordConfig {
            shard_addrs: addrs,
            trace_sample: 1,
            slow_ms: 0,
            ..CoordConfig::default()
        },
    )
    .unwrap();

    // Typed parse errors, connection stays usable.
    let mut c = Client::connect(coord.addr().to_string()).unwrap();
    let bad = c.request_raw("{\"op\":\"nope\"}").unwrap();
    assert!(bad.contains("\"code\":\"bad_request\""), "{bad}");
    let ok = c
        .request_raw("{\"op\":\"search\",\"version\":3,\"query\":[1.0],\"epsilon\":0.5}")
        .unwrap();
    assert!(ok.starts_with("{\"ok\":true"), "{ok}");

    // The 1-in-1 sampler traces every request; the ring fills.
    let slowlog = rpc(coord.addr(), "{\"op\":\"slowlog\",\"version\":4}");
    assert!(slowlog.contains("\"entries\":["), "{slowlog}");
    assert!(slowlog.contains("coord.service"), "{slowlog}");
    let metrics = rpc(coord.addr(), "{\"op\":\"metrics\",\"version\":4}");
    assert!(
        metrics.contains("\"format\":\"prometheus-0.0.4\""),
        "{metrics}"
    );
    let stats = rpc(coord.addr(), "{\"op\":\"stats\",\"version\":4}");
    assert!(stats.contains("coord.requests_ok"), "{stats}");

    // Protocol shutdown drains the coordinator.
    let bye = rpc(coord.addr(), "{\"op\":\"shutdown\",\"version\":4}");
    assert!(bye.contains("\"draining\":true"), "{bye}");
    assert!(coord.is_shutting_down());
    coord.join();
}
