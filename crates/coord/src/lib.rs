//! Horizontal sharding for the warptree index.
//!
//! This crate turns N independent shard servers — each an ordinary
//! `warptree-server` over its own slice of the corpus — into one
//! logical index behind a single address. The pieces:
//!
//! - a **shard manifest** (`warptree-disk`'s CRC'd, generational
//!   `SHARDS` file) committing which contiguous range of global
//!   sequence ids each shard owns, so sequence-id remapping is pure
//!   arithmetic;
//! - the **[`coordinator`]**: a TCP server speaking the same framed
//!   protocol as a shard, scattering every query over the fleet and
//!   gathering answers with the same deterministic `(seq, start)`
//!   merge order the segment layer proves — answers are byte-identical
//!   to a monolithic server over the same corpus;
//! - the **[`merge`]** module: the pure parse/merge/aggregate layer,
//!   unit-testable without sockets;
//! - the **[`slowlog`]** module: the coordinator's own slow-query
//!   ring, whose traced entries nest one child span per shard so slow
//!   fan-outs attribute their latency.
//!
//! Degradation is honest: a shard that stops answering makes results
//! `"partial":true` with a coverage block aggregated across shards,
//! and the coordinator's `health` op reports per-shard status.

#![warn(missing_docs)]

pub mod coordinator;
pub mod merge;
pub mod slowlog;

pub use coordinator::{CoordConfig, CoordHandle, Coordinator};
pub use merge::{
    aggregate_coverage, merge_ranked, merge_threshold, parse_coverage, parse_matches, parse_stats,
    sum_stats, ShardCoverage,
};
pub use slowlog::CoordSlowLog;
