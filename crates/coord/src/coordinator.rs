//! The scatter-gather coordinator: a TCP server speaking the same
//! framed protocol as a shard server, fanning every query out to the
//! shard fleet and merging the answers deterministically.
//!
//! ## Threading model
//!
//! One non-blocking accept loop; one thread per client connection.
//! There is no worker pool at this layer — the shards do the query
//! work, the coordinator's per-request cost is parsing and merging —
//! so each connection thread scatters directly over its own private
//! [`ShardConn`] set (sockets are never shared across requests on
//! different connections). The fan-out itself runs on up to
//! [`CoordConfig::workers`] scoped threads ("lanes"); with one lane
//! the scatter is a plain sequential loop, and the merged answer is
//! byte-identical at every lane count.
//!
//! ## Degradation contract
//!
//! Per-shard calls carry a read timeout and the configured
//! [`RetryPolicy`] (lazy re-dial on torn connections, jittered backoff
//! on `overloaded`). A shard that still fails is marked down and its
//! slice of the corpus is reported honestly: the response carries
//! `"partial":true` and a coverage block aggregated across shards
//! (down shards contribute their last-known totals with zero
//! answered). A *typed* error from any shard — `bad_request`,
//! `corruption_detected`, a mid-batch `deadline_exceeded` — fails the
//! whole query with that error (lowest shard index wins), because the
//! monolithic server would have failed the same way.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use warptree_core::search::{Match, SearchStats};
use warptree_disk::{read_shard_manifest, ShardManifest};
use warptree_obs::{json as obs_json, MetricsRegistry, Trace};
use warptree_server::client::{encode_query, ingest_request, ClientError, RetryPolicy, ShardConn};
use warptree_server::json::Json;
use warptree_server::proto::{
    self, error_response, ok_response, read_frame_idle_aware, write_frame, ErrorCode, FrameEvent,
    Request, PROTO_VERSION,
};

use crate::merge::{
    aggregate_coverage, encode_stats, merge_ranked, merge_threshold, parse_coverage, parse_matches,
    parse_stats, sum_stats, ShardCoverage,
};
use crate::slowlog::CoordSlowLog;

/// Configuration of a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Shard server addresses, one per manifest entry, **in manifest
    /// order** — address `i` must serve the index built from shard
    /// `i`'s slice, or the sequence-id remap is wrong.
    pub shard_addrs: Vec<String>,
    /// Scatter lanes per request: how many shards are queried
    /// concurrently. `1` scatters sequentially; answers are
    /// byte-identical at every setting.
    pub workers: usize,
    /// Total per-request budget. Applied as the retry policy's
    /// deadline, so retries never sleep a request past it.
    pub deadline: Duration,
    /// Per-response read timeout on every shard connection — the
    /// per-shard deadline that turns a hung shard into a down shard
    /// instead of a hung client.
    pub shard_timeout: Duration,
    /// Retry policy for shard calls (re-dial on torn connections,
    /// jittered backoff on `overloaded`). A `deadline` of `None` is
    /// replaced by [`CoordConfig::deadline`] at startup.
    pub retry: RetryPolicy,
    /// Maximum concurrent client connections.
    pub max_conns: usize,
    /// How often the health monitor polls each shard's `info`.
    pub health_interval: Duration,
    /// Slow-query threshold in milliseconds for the coordinator's own
    /// slow-query ring; `0` disables threshold capture.
    pub slow_ms: u64,
    /// Trace 1 in N requests end to end (coordinator span + one child
    /// span per shard); `0` disables sampling.
    pub trace_sample: u64,
    /// Capacity of the coordinator's slow-query ring.
    pub slowlog_capacity: usize,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            addr: "127.0.0.1:0".to_string(),
            shard_addrs: Vec::new(),
            workers: 8,
            deadline: Duration::from_secs(5),
            shard_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            max_conns: 256,
            health_interval: Duration::from_millis(500),
            slow_ms: 500,
            trace_sample: 0,
            slowlog_capacity: 128,
        }
    }
}

/// The coordinator's cached view of one shard, refreshed by the health
/// monitor's `info` polls and passively by every query exchange. The
/// cache is what makes degradation honest: when a shard stops
/// answering, its last-known totals are what the coverage block
/// reports as unanswered.
#[derive(Debug, Clone)]
struct ShardInfo {
    up: bool,
    generation: u64,
    sequences: u64,
    values: u64,
    categories: u64,
    /// Live segment count (base + tails), the `segments` info field.
    segments: u64,
    quarantined: u64,
}

struct ShardState {
    addr: String,
    /// First global sequence id this shard owns (the remap offset).
    start_seq: u32,
    info: Mutex<ShardInfo>,
}

impl ShardState {
    fn snapshot(&self) -> ShardInfo {
        self.info.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    fn update(&self, f: impl FnOnce(&mut ShardInfo)) {
        let mut info = self.info.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut info);
    }
}

/// Shared coordinator state.
struct CoordState {
    shards: Vec<ShardState>,
    workers: usize,
    shard_timeout: Duration,
    policy: RetryPolicy,
    max_conns: usize,
    registry: MetricsRegistry,
    slowlog: Arc<CoordSlowLog>,
    shutdown: Arc<AtomicBool>,
}

impl CoordState {
    fn max_generation(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.snapshot().generation)
            .max()
            .unwrap_or(0)
    }

    fn shards_up(&self) -> usize {
        self.shards.iter().filter(|s| s.snapshot().up).count()
    }
}

/// The coordinator factory. [`Coordinator::start`] reads the `SHARDS`
/// manifest under `dir`, binds the listener, performs one synchronous
/// health poll of every shard, and serves until shutdown.
pub struct Coordinator;

impl Coordinator {
    /// Starts a coordinator for the shard layout committed under
    /// `dir`. `config.shard_addrs` must list exactly one address per
    /// manifest shard, in manifest order.
    pub fn start(dir: &Path, config: CoordConfig) -> io::Result<CoordHandle> {
        let manifest = read_shard_manifest(dir)
            .map_err(|e| io::Error::other(format!("read shard manifest: {e}")))?
            .ok_or_else(|| {
                io::Error::other(format!("no SHARDS manifest under {}", dir.display()))
            })?;
        Coordinator::start_with_manifest(&manifest, config)
    }

    /// [`Coordinator::start`] from an already-loaded manifest (tests
    /// and embedding).
    pub fn start_with_manifest(
        manifest: &ShardManifest,
        config: CoordConfig,
    ) -> io::Result<CoordHandle> {
        manifest
            .validate()
            .map_err(|e| io::Error::other(format!("invalid shard manifest: {e}")))?;
        if config.shard_addrs.len() != manifest.shards.len() {
            return Err(io::Error::other(format!(
                "manifest has {} shards but {} addresses were given",
                manifest.shards.len(),
                config.shard_addrs.len()
            )));
        }
        let registry = MetricsRegistry::new();
        let slowlog = Arc::new(CoordSlowLog::new(
            config.slowlog_capacity,
            config.slow_ms,
            config.trace_sample,
            registry.clone(),
        ));
        let mut policy = config.retry.clone();
        if policy.deadline.is_none() {
            policy.deadline = Some(config.deadline);
        }
        let shards = manifest
            .shards
            .iter()
            .zip(&config.shard_addrs)
            .map(|(meta, addr)| ShardState {
                addr: addr.clone(),
                start_seq: meta.start_seq,
                // Manifest values are the fallback for a shard that
                // dies before it was ever polled: one base segment,
                // nothing quarantined, partition-time totals.
                info: Mutex::new(ShardInfo {
                    up: false,
                    generation: 0,
                    sequences: meta.seq_count as u64,
                    values: meta.values,
                    categories: 0,
                    segments: 1,
                    quarantined: 0,
                }),
            })
            .collect();
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(CoordState {
            shards,
            workers: config.workers.max(1),
            shard_timeout: config.shard_timeout,
            policy,
            max_conns: config.max_conns,
            registry: registry.clone(),
            slowlog,
            shutdown: shutdown.clone(),
        });

        // One synchronous poll round so `health` is meaningful the
        // moment `start` returns (a down shard shows down, not
        // unknown).
        {
            let mut conns = monitor_conns(&state);
            poll_round(&state, &mut conns);
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let monitor_stop = Arc::new(AtomicBool::new(false));
        let monitor = {
            let state = state.clone();
            let stop = monitor_stop.clone();
            let interval = config.health_interval;
            std::thread::Builder::new()
                .name("warptree-coord-health".to_string())
                .spawn(move || monitor_loop(&state, interval, &stop))?
        };

        let accept = {
            let state = state.clone();
            std::thread::Builder::new()
                .name("warptree-coord-accept".to_string())
                .spawn(move || accept_loop(listener, &state))?
        };

        Ok(CoordHandle {
            addr,
            registry,
            shutdown,
            accept: Some(accept),
            monitor_stop,
            monitor: Some(monitor),
        })
    }
}

/// A handle to a running coordinator.
pub struct CoordHandle {
    addr: SocketAddr,
    registry: MetricsRegistry,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    monitor_stop: Arc<AtomicBool>,
    monitor: Option<JoinHandle<()>>,
}

impl CoordHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The coordinator's metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Asks the coordinator to drain and stop. Non-blocking; follow
    /// with [`CoordHandle::join`].
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown has been requested (locally or via the
    /// protocol `shutdown` op).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the drain to complete (implies a shutdown trigger).
    pub fn join(mut self) {
        self.join_inner();
    }

    /// [`CoordHandle::request_shutdown`] + [`CoordHandle::join`].
    pub fn stop(self) {
        self.request_shutdown();
        self.join();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.monitor_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CoordHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_inner();
    }
}

/// Fresh monitor-side connections, one per shard, with the poll
/// timeout applied.
fn monitor_conns(state: &CoordState) -> Vec<ShardConn> {
    state
        .shards
        .iter()
        .map(|s| ShardConn::with_timeout(s.addr.clone(), Some(state.shard_timeout)))
        .collect()
}

/// One `info` poll of every shard, refreshing the cached view.
fn poll_round(state: &CoordState, conns: &mut [ShardConn]) {
    for (shard, conn) in state.shards.iter().zip(conns.iter_mut()) {
        match conn.request("{\"op\":\"info\"}") {
            Ok(v) => {
                let field = |k: &str| v.get(k).and_then(Json::as_u64);
                shard.update(|info| {
                    info.up = true;
                    info.generation = field("generation").unwrap_or(info.generation);
                    info.sequences = field("sequences").unwrap_or(info.sequences);
                    info.values = field("values").unwrap_or(info.values);
                    info.categories = field("categories").unwrap_or(info.categories);
                    info.segments = field("segments").unwrap_or(info.segments);
                    info.quarantined = field("quarantined_segments").unwrap_or(info.quarantined);
                });
            }
            Err(_) => shard.update(|info| info.up = false),
        }
    }
    state
        .registry
        .gauge("coord.shards_up")
        .set(state.shards_up() as f64);
}

fn monitor_loop(state: &CoordState, interval: Duration, stop: &AtomicBool) {
    let mut conns = monitor_conns(state);
    // Sleep in small slices so stop() returns promptly.
    let slice = interval
        .min(Duration::from_millis(50))
        .max(Duration::from_millis(1));
    let mut elapsed = Duration::ZERO;
    while !stop.load(Ordering::SeqCst) {
        if elapsed < interval {
            std::thread::sleep(slice);
            elapsed += slice;
            continue;
        }
        elapsed = Duration::ZERO;
        poll_round(state, &mut conns);
    }
}

fn accept_loop(listener: TcpListener, state: &Arc<CoordState>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !state.shutdown.load(Ordering::SeqCst) {
        conns.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                if conns.len() >= state.max_conns {
                    state.registry.counter("coord.rejected_conn_limit").incr();
                    reject_connection(stream);
                    continue;
                }
                state.registry.counter("coord.connections").incr();
                let conn_state = state.clone();
                match std::thread::Builder::new()
                    .name("warptree-coord-conn".to_string())
                    .spawn(move || handle_conn(stream, &conn_state))
                {
                    Ok(h) => conns.push(h),
                    Err(_) => state.registry.counter("coord.errors").incr(),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                state.registry.counter("coord.errors").incr();
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

fn reject_connection(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = write_frame(
        &mut stream,
        error_response(
            ErrorCode::Overloaded,
            "connection limit reached; retry with backoff",
        )
        .as_bytes(),
    );
}

/// Same mid-frame stall bound as the shard server (~30 s of 100 ms
/// read timeouts).
const FRAME_STALL_LIMIT: u32 = 300;

fn handle_conn(mut stream: TcpStream, state: &Arc<CoordState>) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    // This connection's private shard sockets, dialed lazily and
    // re-dialed by the retry policy after transport failures.
    let mut shards: Vec<ShardConn> = state
        .shards
        .iter()
        .map(|s| ShardConn::with_timeout(s.addr.clone(), Some(state.shard_timeout)))
        .collect();
    loop {
        match read_frame_idle_aware(&mut stream, FRAME_STALL_LIMIT) {
            Ok(FrameEvent::Frame(payload)) => {
                if !serve_one(&payload, &mut stream, state, &mut shards) {
                    return;
                }
                // Same drain rule as the shard server: once shutdown is
                // requested, close after answering instead of waiting
                // for an idle window a fast-polling client never opens.
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(FrameEvent::Closed) => return,
            Ok(FrameEvent::Idle) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one request frame. Returns `false` when the connection
/// should close.
fn serve_one(
    payload: &[u8],
    stream: &mut TcpStream,
    state: &Arc<CoordState>,
    shards: &mut [ShardConn],
) -> bool {
    let started = Instant::now();
    let (req, proto_version, trace_opts) = match Request::parse_full(payload, false) {
        Ok(parsed) => parsed,
        Err(pe) => {
            state.registry.counter("coord.bad_requests").incr();
            return respond(stream, &error_response(pe.code, &pe.message));
        }
    };

    if req.is_control() {
        let resp = clamp_oversized(control_response(&req, state), &state.registry);
        return respond(stream, &resp);
    }

    if state.shutdown.load(Ordering::SeqCst) {
        return respond(
            stream,
            &error_response(ErrorCode::ShuttingDown, "coordinator is draining"),
        );
    }

    let trace_wanted = trace_opts.wanted;
    let trace = if trace_wanted || state.slowlog.sample() {
        Trace::active(
            trace_opts
                .trace_id
                .unwrap_or_else(|| next_trace_id(req.op_label())),
        )
    } else {
        Trace::noop()
    };

    let op = req.op_label();
    let span = trace.span("coord.service");
    if span.is_active() {
        span.attr_str("op", op);
        span.attr_u64("shards", state.shards.len() as u64);
    }
    let parent = span.span_id();
    let mut resp = execute(state, shards, req, &trace, parent);
    drop(span);
    let service_ns = started.elapsed().as_nanos() as u64;
    state
        .registry
        .histogram("coord.request_ns")
        .record(service_ns);
    // Mirror the shard server's v4 shape: a timings object on every ok
    // response (the coordinator has no admission queue, so queue_ns is
    // 0) and the span tree inline when the client asked for it.
    if proto_version >= 4 && resp.starts_with("{\"ok\":true") && resp.ends_with('}') {
        resp.pop();
        resp.push_str(&format!(
            ",\"timings\":{{\"queue_ns\":0,\"service_ns\":{service_ns}}}"
        ));
        if trace_wanted {
            if let Some(data) = trace.finish() {
                resp.push_str(&format!(",\"trace\":{}", data.to_json()));
            }
        }
        resp.push('}');
    }
    // Degraded answers below protocol version 3 cannot be expressed;
    // the check runs on the merged result so it fires exactly when the
    // monolithic server's would have.
    if proto_version < 3 && resp.starts_with("{\"ok\":true") && resp.contains("\"partial\":") {
        state.registry.counter("coord.bad_requests").incr();
        resp = error_response(
            ErrorCode::PartialResultUnsupported,
            "result is partial (segments quarantined) and this protocol version cannot express partial results; retry with version 3",
        );
    }
    state
        .slowlog
        .offer(op, state.max_generation(), service_ns, &trace);
    let resp = clamp_oversized(resp, &state.registry);
    respond(stream, &resp)
}

fn clamp_oversized(resp: String, registry: &MetricsRegistry) -> String {
    if resp.len() <= proto::MAX_FRAME as usize {
        return resp;
    }
    registry.counter("coord.result_too_large").incr();
    error_response(
        ErrorCode::ResultTooLarge,
        "serialized result exceeds the 4 MiB frame limit; narrow epsilon, lower max_len, or split the batch",
    )
}

fn respond(stream: &mut TcpStream, resp: &str) -> bool {
    write_frame(stream, resp.as_bytes()).is_ok() && stream.flush().is_ok()
}

fn next_trace_id(kind: &str) -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!("coord-{kind}-{}", SEQ.fetch_add(1, Ordering::Relaxed))
}

/// A typed error frame with a shard-supplied code string, byte-shaped
/// like [`proto::error_response`] so propagated shard errors are
/// indistinguishable from locally raised ones.
fn error_frame(code: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"version\":{PROTO_VERSION},\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
        obs_json::escape(code),
        obs_json::escape(message)
    )
}

fn control_response(req: &Request, state: &CoordState) -> String {
    let infos: Vec<ShardInfo> = state.shards.iter().map(|s| s.snapshot()).collect();
    let up = infos.iter().filter(|i| i.up).count();
    let quarantined: u64 = infos.iter().map(|i| i.quarantined).sum();
    let generation = infos.iter().map(|i| i.generation).max().unwrap_or(0);
    match req {
        Request::Health => {
            // Degraded when any shard is unreachable *or* any shard is
            // itself degraded — either way answers are partial.
            let status = if up == infos.len() && quarantined == 0 {
                "serving"
            } else {
                "degraded"
            };
            let mut per = String::from("[");
            for (i, (info, shard)) in infos.iter().zip(&state.shards).enumerate() {
                if i > 0 {
                    per.push(',');
                }
                per.push_str(&format!(
                    "{{\"index\":{i},\"addr\":\"{}\",\"up\":{},\"generation\":{},\"quarantined_segments\":{}}}",
                    obs_json::escape(&shard.addr),
                    info.up,
                    info.generation,
                    info.quarantined,
                ));
            }
            per.push(']');
            ok_response(
                "health",
                &format!(
                    "\"status\":\"{status}\",\"generation\":{generation},\"quarantined_segments\":{quarantined},\"shards_total\":{},\"shards_up\":{up},\"shards\":{per}",
                    infos.len()
                ),
            )
        }
        Request::Info => {
            let sequences: u64 = infos.iter().map(|i| i.sequences).sum();
            let values: u64 = infos.iter().map(|i| i.values).sum();
            // Shards are built against one global alphabet, so the
            // category counts agree; max tolerates unpolled shards
            // (cached 0).
            let categories = infos.iter().map(|i| i.categories).max().unwrap_or(0);
            let segments: u64 = infos.iter().map(|i| i.segments).sum();
            ok_response(
                "info",
                &format!(
                    "\"generation\":{generation},\"sequences\":{sequences},\"values\":{values},\"categories\":{categories},\"segments\":{segments},\"quarantined_segments\":{quarantined},\"shards_total\":{},\"shards_up\":{up},\"workers\":{}",
                    infos.len(),
                    state.workers,
                ),
            )
        }
        Request::Stats => {
            state.registry.gauge("coord.shards_up").set(up as f64);
            ok_response(
                "stats",
                &format!("\"metrics\":{}", state.registry.snapshot().to_json()),
            )
        }
        Request::Slowlog => ok_response(
            "slowlog",
            &format!("\"entries\":{}", state.slowlog.to_json()),
        ),
        Request::Metrics => {
            state.registry.gauge("coord.shards_up").set(up as f64);
            ok_response(
                "metrics",
                &format!(
                    "\"format\":\"prometheus-0.0.4\",\"exposition\":\"{}\"",
                    obs_json::escape(&state.registry.snapshot().to_prometheus())
                ),
            )
        }
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            ok_response("shutdown", "\"draining\":true")
        }
        _ => unreachable!("non-control request routed to control_response"),
    }
}

/// What one shard call produced.
enum ShardReply {
    /// A parsed ok-response.
    Answer(Json),
    /// A typed error frame from a healthy shard.
    Typed { code: String, message: String },
    /// Transport failure after retries; the shard is marked down.
    Down(String),
}

/// One shard call with tracing: a child span under the coordinator's
/// service span carries the shard index, address, wall time, the
/// shard's own queue/service split, and — when the shard returned its
/// span tree — that tree verbatim, so a coordinator slowlog entry
/// attributes time per shard.
fn call_shard(
    state: &CoordState,
    idx: usize,
    conn: &mut ShardConn,
    body: &str,
    trace: &Trace,
    parent: Option<u32>,
) -> ShardReply {
    let span = trace.span_with_parent(parent, "coord.shard");
    if span.is_active() {
        span.attr_u64("shard", idx as u64);
        span.attr_str("addr", conn.addr());
    }
    let t0 = Instant::now();
    let result = conn.request_with_retry(body, &state.policy);
    if span.is_active() {
        span.attr_u64("dur_ns", t0.elapsed().as_nanos() as u64);
    }
    match result {
        Ok(v) => {
            if span.is_active() {
                if let Some(t) = v.get("timings") {
                    if let Some(q) = t.get("queue_ns").and_then(Json::as_u64) {
                        span.attr_u64("shard_queue_ns", q);
                    }
                    if let Some(s) = t.get("service_ns").and_then(Json::as_u64) {
                        span.attr_u64("shard_service_ns", s);
                    }
                }
                if let Some(tr) = v.get("trace") {
                    span.attr_str("trace", &tr.render());
                }
            }
            let generation = v.get("generation").and_then(Json::as_u64);
            state.shards[idx].update(|info| {
                info.up = true;
                if let Some(g) = generation {
                    info.generation = g;
                }
            });
            ShardReply::Answer(v)
        }
        // A typed error comes from a live shard over a healthy
        // connection; only transport failures mark the shard down.
        Err(ClientError::Server { code, message }) => {
            state.shards[idx].update(|info| info.up = true);
            state.registry.counter("coord.shard_typed_errors").incr();
            if span.is_active() {
                span.attr_str("error", &code);
            }
            ShardReply::Typed { code, message }
        }
        Err(e) => {
            state.shards[idx].update(|info| info.up = false);
            state.registry.counter("coord.shard_down_errors").incr();
            let desc = e.to_string();
            if span.is_active() {
                span.attr_str("error", &desc);
            }
            ShardReply::Down(desc)
        }
    }
}

/// Fans `body` out to every shard over up to `state.workers` lanes.
/// With one lane this is a plain sequential loop; with more, shards
/// are chunked across scoped threads and every reply lands in its
/// shard's slot, so reply order never depends on completion order.
fn scatter(
    state: &CoordState,
    conns: &mut [ShardConn],
    body: &str,
    trace: &Trace,
    parent: Option<u32>,
) -> Vec<ShardReply> {
    let n = conns.len();
    let lanes = state.workers.min(n).max(1);
    if lanes == 1 {
        return conns
            .iter_mut()
            .enumerate()
            .map(|(i, c)| call_shard(state, i, c, body, trace, parent))
            .collect();
    }
    let chunk = n.div_ceil(lanes);
    let mut replies: Vec<Option<ShardReply>> = Vec::with_capacity(n);
    replies.resize_with(n, || None);
    std::thread::scope(|s| {
        for (ci, (conn_chunk, reply_chunk)) in conns
            .chunks_mut(chunk)
            .zip(replies.chunks_mut(chunk))
            .enumerate()
        {
            s.spawn(move || {
                for (j, (conn, slot)) in conn_chunk
                    .iter_mut()
                    .zip(reply_chunk.iter_mut())
                    .enumerate()
                {
                    *slot = Some(call_shard(state, ci * chunk + j, conn, body, trace, parent));
                }
            });
        }
    });
    replies
        .into_iter()
        .map(|r| r.expect("scatter filled every slot"))
        .collect()
}

/// The shared `"epsilon"`/`"window"`/`"max_len"`/`"min_len"`/
/// `"parallelism"` fragment of a forwarded threshold request.
fn search_params_fragment(p: &warptree_core::search::SearchParams) -> String {
    let mut out = format!(",\"epsilon\":{}", obs_json::num(p.epsilon));
    if let Some(w) = p.window {
        out.push_str(&format!(",\"window\":{w}"));
    }
    if let Some(m) = p.max_len {
        out.push_str(&format!(",\"max_len\":{m}"));
    }
    out.push_str(&format!(
        ",\"min_len\":{},\"parallelism\":{}",
        p.min_len, p.threads
    ));
    if !p.cascade {
        out.push_str(",\"cascade\":false");
    }
    if let Some(b) = p.backend {
        out.push_str(&format!(",\"backend\":\"{}\"", b.as_str()));
    }
    out
}

/// The trace-forwarding fragment: when the coordinator is tracing this
/// request, shards are asked for their span trees under the same
/// trace id.
fn trace_fragment(trace: &Trace) -> String {
    match trace.id() {
        Some(id) => format!(",\"trace\":true,\"trace_id\":\"{}\"", obs_json::escape(id)),
        None => String::new(),
    }
}

/// Outcomes of gathering one scatter: either every answering shard
/// parsed cleanly, or the query fails with a complete error frame.
struct Gathered {
    /// Parsed ok-responses in shard order (`None` = shard down).
    answers: Vec<Option<Json>>,
    /// Max generation over the answering shards' responses.
    generation: u64,
}

/// Folds scatter replies into parsed answers, applying the error
/// contract: any typed shard error fails the query (lowest shard index
/// wins), and zero answering shards is an `internal` failure naming
/// the first transport error.
fn gather(state: &CoordState, replies: Vec<ShardReply>) -> Result<Gathered, String> {
    if let Some((i, code, message)) = replies.iter().enumerate().find_map(|(i, r)| match r {
        ShardReply::Typed { code, message } => Some((i, code.clone(), message.clone())),
        _ => None,
    }) {
        let _ = i;
        return Err(error_frame(&code, &message));
    }
    let mut answers = Vec::with_capacity(replies.len());
    let mut generation = 0u64;
    let mut first_down: Option<(usize, String)> = None;
    let mut answered = 0usize;
    for (i, r) in replies.into_iter().enumerate() {
        match r {
            ShardReply::Answer(v) => {
                answered += 1;
                if let Some(g) = v.get("generation").and_then(Json::as_u64) {
                    generation = generation.max(g);
                }
                answers.push(Some(v));
            }
            ShardReply::Down(desc) => {
                if first_down.is_none() {
                    first_down = Some((i, desc));
                }
                answers.push(None);
            }
            ShardReply::Typed { .. } => unreachable!("typed errors returned above"),
        }
    }
    if answered == 0 {
        let (i, desc) = first_down.expect("no answers implies a down shard");
        return Err(error_response(
            ErrorCode::Internal,
            &format!("no shard answered (shard {i}: {desc})"),
        ));
    }
    let _ = state;
    Ok(Gathered {
        answers,
        generation,
    })
}

/// One shard's coverage contribution for a response `v` (or a down
/// shard's, from the cache, when `v` is `None`).
fn coverage_of(state: &CoordState, idx: usize, v: Option<&Json>) -> Result<ShardCoverage, String> {
    match v {
        Some(v) => match v.get("coverage") {
            Some(c) => Ok(ShardCoverage::Partial(parse_coverage(c)?)),
            None => {
                let info = state.shards[idx].snapshot();
                Ok(ShardCoverage::Full {
                    segments: info.segments,
                    suffixes: info.values,
                })
            }
        },
        None => {
            let info = state.shards[idx].snapshot();
            Ok(ShardCoverage::Down {
                segments: info.segments,
                quarantined: info.quarantined,
                suffixes: info.values,
            })
        }
    }
}

/// Renders the aggregated coverage suffix (empty when every shard
/// answered fully), counting partial responses.
fn coverage_suffix(state: &CoordState, covs: &[ShardCoverage]) -> String {
    match aggregate_coverage(covs) {
        Some(c) => {
            state.registry.counter("coord.partial_queries").incr();
            format!(",{}", proto::encode_coverage(&c))
        }
        None => String::new(),
    }
}

/// Collects each answering shard's `"matches"` (remapped to global
/// sequence ids) and its coverage contribution.
fn matches_and_coverage(
    state: &CoordState,
    answers: &[Option<Json>],
) -> Result<(Vec<Vec<Match>>, Vec<ShardCoverage>), String> {
    let mut per_shard = Vec::with_capacity(answers.len());
    let mut covs = Vec::with_capacity(answers.len());
    for (i, a) in answers.iter().enumerate() {
        covs.push(coverage_of(state, i, a.as_ref())?);
        if let Some(v) = a {
            let arr = v
                .get("matches")
                .ok_or_else(|| format!("shard {i} response missing \"matches\""))?;
            per_shard.push(parse_matches(arr, state.shards[i].start_seq)?);
        }
    }
    Ok((per_shard, covs))
}

/// An internal-error frame for a malformed shard response.
fn malformed(err: String) -> String {
    error_response(
        ErrorCode::Internal,
        &format!("malformed shard response: {err}"),
    )
}

fn execute(
    state: &CoordState,
    conns: &mut [ShardConn],
    req: Request,
    trace: &Trace,
    parent: Option<u32>,
) -> String {
    match req {
        Request::Search { query, params } => {
            let body = format!(
                "{{\"op\":\"search\",\"version\":4,\"query\":{}{}{}}}",
                encode_query(&query),
                search_params_fragment(&params),
                trace_fragment(trace),
            );
            let replies = scatter(state, conns, &body, trace, parent);
            let g = match gather(state, replies) {
                Ok(g) => g,
                Err(resp) => return resp,
            };
            let (per_shard, covs) = match matches_and_coverage(state, &g.answers) {
                Ok(x) => x,
                Err(e) => return malformed(e),
            };
            let merged = merge_threshold(per_shard);
            let suffix = coverage_suffix(state, &covs);
            state.registry.counter("coord.requests_ok").incr();
            ok_response(
                "search",
                &format!(
                    "\"generation\":{},\"count\":{},\"matches\":{}{}",
                    g.generation,
                    merged.len(),
                    proto::encode_matches(&merged),
                    suffix
                ),
            )
        }
        Request::Knn { query, params } => {
            let mut body = format!(
                "{{\"op\":\"knn\",\"version\":4,\"query\":{},\"k\":{},\"initial_epsilon\":{},\"growth\":{},\"max_rounds\":{}",
                encode_query(&query),
                params.k,
                obs_json::num(params.initial_epsilon),
                obs_json::num(params.growth),
                params.max_rounds,
            );
            if let Some(w) = params.window {
                body.push_str(&format!(",\"window\":{w}"));
            }
            if !params.cascade {
                body.push_str(",\"cascade\":false");
            }
            if let Some(b) = params.backend {
                body.push_str(&format!(",\"backend\":\"{}\"", b.as_str()));
            }
            body.push_str(&format!(
                ",\"allow_overlaps\":{},\"parallelism\":{}{}}}",
                !params.non_overlapping,
                params.threads,
                trace_fragment(trace),
            ));
            let replies = scatter(state, conns, &body, trace, parent);
            let g = match gather(state, replies) {
                Ok(g) => g,
                Err(resp) => return resp,
            };
            let (per_shard, covs) = match matches_and_coverage(state, &g.answers) {
                Ok(x) => x,
                Err(e) => return malformed(e),
            };
            // Each shard's local top-k contains every global-top-k
            // member that shard holds (the ε-expansion schedule is
            // query-derived, hence identical on every shard, and
            // overlap filtering only compares same-sequence matches,
            // which sharding co-locates), so merging the local
            // rankings and truncating to k is the exact global top-k.
            let merged = merge_ranked(per_shard, params.k);
            let suffix = coverage_suffix(state, &covs);
            state.registry.counter("coord.requests_ok").incr();
            ok_response(
                "knn",
                &format!(
                    "\"generation\":{},\"count\":{},\"matches\":{}{}",
                    g.generation,
                    merged.len(),
                    proto::encode_matches_ranked(&merged),
                    suffix
                ),
            )
        }
        Request::Explain { query, params } => {
            let body = format!(
                "{{\"op\":\"explain\",\"version\":4,\"query\":{}{}{}}}",
                encode_query(&query),
                search_params_fragment(&params),
                trace_fragment(trace),
            );
            let replies = scatter(state, conns, &body, trace, parent);
            let g = match gather(state, replies) {
                Ok(g) => g,
                Err(resp) => return resp,
            };
            let (per_shard, covs) = match matches_and_coverage(state, &g.answers) {
                Ok(x) => x,
                Err(e) => return malformed(e),
            };
            let stats: Result<Vec<SearchStats>, String> = g
                .answers
                .iter()
                .flatten()
                .map(|v| {
                    v.get("stats")
                        .ok_or_else(|| "explain response missing \"stats\"".to_string())
                        .and_then(parse_stats)
                })
                .collect();
            let stats = match stats {
                Ok(s) => sum_stats(&s),
                Err(e) => return malformed(e),
            };
            let merged = merge_threshold(per_shard);
            let suffix = coverage_suffix(state, &covs);
            state.registry.counter("coord.requests_ok").incr();
            ok_response(
                "explain",
                &format!(
                    "\"generation\":{},\"count\":{},\"matches\":{},\"stats\":{}{}",
                    g.generation,
                    merged.len(),
                    proto::encode_matches(&merged),
                    encode_stats(&stats),
                    suffix
                ),
            )
        }
        Request::Batch { queries, params } => {
            let total = queries.len();
            let mut qarr = String::from("[");
            for (i, q) in queries.iter().enumerate() {
                if i > 0 {
                    qarr.push(',');
                }
                qarr.push_str(&encode_query(q));
            }
            qarr.push(']');
            let body = format!(
                "{{\"op\":\"batch\",\"version\":4,\"queries\":{qarr}{}{}}}",
                search_params_fragment(&params),
                trace_fragment(trace),
            );
            let replies = scatter(state, conns, &body, trace, parent);
            let g = match gather(state, replies) {
                Ok(g) => g,
                Err(resp) => return resp,
            };
            // Per answering shard: the batch's item array (each a full
            // search response body for that shard's slice).
            let mut shard_items: Vec<(usize, &[Json])> = Vec::new();
            for (i, a) in g.answers.iter().enumerate() {
                if let Some(v) = a {
                    let items = match v.get("results").and_then(Json::as_arr) {
                        Some(items) if items.len() == total => items,
                        Some(items) => {
                            return malformed(format!(
                                "shard {i} answered {} of {total} batch items",
                                items.len()
                            ))
                        }
                        None => {
                            return malformed(format!("shard {i} response missing \"results\""))
                        }
                    };
                    shard_items.push((i, items));
                }
            }
            let mut results = String::from("[");
            for j in 0..total {
                let mut per_shard = Vec::new();
                let mut covs = Vec::with_capacity(g.answers.len());
                let mut item_of = shard_items.iter().peekable();
                for (i, a) in g.answers.iter().enumerate() {
                    let item = match a {
                        Some(_) => {
                            let (_, items) = item_of.next().expect("answer has items");
                            Some(&items[j])
                        }
                        None => None,
                    };
                    match coverage_of(state, i, item) {
                        Ok(c) => covs.push(c),
                        Err(e) => return malformed(e),
                    }
                    if let Some(item) = item {
                        let arr = match item.get("matches") {
                            Some(arr) => arr,
                            None => {
                                return malformed(format!(
                                    "shard {i} batch item {j} missing \"matches\""
                                ))
                            }
                        };
                        match parse_matches(arr, state.shards[i].start_seq) {
                            Ok(m) => per_shard.push(m),
                            Err(e) => return malformed(e),
                        }
                    }
                }
                let _ = item_of;
                let merged = merge_threshold(per_shard);
                let suffix = coverage_suffix(state, &covs);
                if j > 0 {
                    results.push(',');
                }
                results.push_str(&format!(
                    "{{\"generation\":{},\"count\":{},\"matches\":{}{}}}",
                    g.generation,
                    merged.len(),
                    proto::encode_matches(&merged),
                    suffix
                ));
            }
            results.push(']');
            state.registry.counter("coord.requests_ok").incr();
            ok_response(
                "batch",
                &format!("\"generation\":{},\"results\":{}", g.generation, results),
            )
        }
        // Appends extend the *last* shard: it owns the tail of the
        // global sequence-id space, so new sequences keep the
        // contiguous-range remap intact (global id = its start_seq +
        // local id).
        Request::Ingest { sequences } => {
            let body = ingest_request(&sequences);
            let last = conns.len() - 1;
            match call_shard(state, last, &mut conns[last], &body, trace, parent) {
                ShardReply::Answer(v) => {
                    let field = |k: &str| {
                        v.get(k)
                            .and_then(Json::as_u64)
                            .ok_or_else(|| format!("ingest response missing \"{k}\""))
                    };
                    let render = field("generation")
                        .and_then(|g| Ok((g, field("sequences")?, field("segments")?)));
                    match render {
                        Ok((g, n, segs)) => {
                            state.shards[last].update(|info| {
                                info.sequences += n;
                                info.segments = segs;
                            });
                            state.registry.counter("coord.requests_ok").incr();
                            ok_response(
                                "ingest",
                                &format!(
                                    "\"generation\":{g},\"sequences\":{n},\"segments\":{segs},\"shard\":{last}"
                                ),
                            )
                        }
                        Err(e) => malformed(e),
                    }
                }
                ShardReply::Typed { code, message } => error_frame(&code, &message),
                ShardReply::Down(desc) => error_response(
                    ErrorCode::Internal,
                    &format!("ingest shard {last} unavailable: {desc}"),
                ),
            }
        }
        Request::DebugSleep { .. } => {
            error_response(ErrorCode::BadRequest, "debug ops are not coordinated")
        }
        control => unreachable!("control op {control:?} reached execute"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warptree_core::search::SearchParams;

    #[test]
    fn forwarded_bodies_parse_as_shard_requests() {
        let p = SearchParams::with_epsilon(0.75).windowed(3);
        let body = format!(
            "{{\"op\":\"search\",\"version\":4,\"query\":{}{}}}",
            encode_query(&[1.0, -2.5]),
            search_params_fragment(&p),
        );
        let (req, version, _) = Request::parse_full(body.as_bytes(), false).unwrap();
        assert_eq!(version, 4);
        match req {
            Request::Search { query, params } => {
                assert_eq!(query, vec![1.0, -2.5]);
                assert_eq!(params.epsilon, 0.75);
                assert_eq!(params.window, Some(3));
                assert_eq!(params.min_len, 1);
                assert_eq!(params.threads, 1);
            }
            other => panic!("wrong request: {other:?}"),
        }
        // The trace fragment only appears when the trace is active,
        // and carries the coordinator's id.
        assert_eq!(trace_fragment(&Trace::noop()), "");
        let t = Trace::active("abc");
        assert_eq!(trace_fragment(&t), ",\"trace\":true,\"trace_id\":\"abc\"");
    }

    /// A backend pin on the client request survives the re-serialization
    /// to shard bodies, so every shard enforces the same pin the client
    /// asked the coordinator for.
    #[test]
    fn backend_pin_is_forwarded_to_shards() {
        use warptree_core::search::BackendKind;
        let p = SearchParams::with_epsilon(0.5).on_backend(BackendKind::Esa);
        let body = format!(
            "{{\"op\":\"search\",\"version\":4,\"query\":{}{}}}",
            encode_query(&[1.0]),
            search_params_fragment(&p),
        );
        assert!(body.contains(",\"backend\":\"esa\""), "{body}");
        let (req, _, _) = Request::parse_full(body.as_bytes(), false).unwrap();
        assert_eq!(req.backend_pin(), Some(BackendKind::Esa));
        // Unpinned requests serialize without the field at all, keeping
        // forwarded bodies byte-identical to the pre-backend protocol.
        let plain = search_params_fragment(&SearchParams::with_epsilon(0.5));
        assert!(!plain.contains("backend"), "{plain}");
    }

    #[test]
    fn error_frames_match_proto_shape() {
        assert_eq!(
            error_frame("overloaded", "queue full"),
            error_response(ErrorCode::Overloaded, "queue full")
        );
        assert_eq!(
            error_frame("corruption_detected", "bad page"),
            error_response(ErrorCode::CorruptionDetected, "bad page")
        );
    }

    #[test]
    fn start_rejects_address_count_mismatch() {
        let manifest = ShardManifest {
            generation: 1,
            shards: vec![warptree_disk::ShardMeta {
                dir: "shard-0000".into(),
                start_seq: 0,
                seq_count: 1,
                values: 4,
            }],
        };
        let config = CoordConfig {
            shard_addrs: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            ..CoordConfig::default()
        };
        let err = match Coordinator::start_with_manifest(&manifest, config) {
            Ok(_) => panic!("mismatched address count must be rejected"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("1 shards but 2 addresses"));
    }
}
