//! Deterministic cross-shard merging of shard answers.
//!
//! Every function here is pure — parsed shard responses in, merged
//! values out — so the merge contract the coordinator relies on is unit
//! testable without sockets:
//!
//! * **Threshold answers** merge by the canonical `(seq, start, len)`
//!   occurrence order, the same order `encode_matches` imposes inside
//!   one server. Shards own disjoint global sequence ranges, so after
//!   remapping the union is duplicate-free and the sort is a pure
//!   interleave — byte-identical to the monolithic answer.
//! * **Ranked (k-NN) answers** merge by `(distance, occurrence)` —
//!   exactly the final ordering of the in-process k-NN engine — then
//!   truncate to `k`. Each shard's local top-k contains every
//!   global-top-k member that shard holds (the ε-expansion schedule is
//!   query-derived and identical everywhere, and overlap filtering
//!   only compares same-sequence matches, which sharding co-locates),
//!   so the truncated merge is the exact global top-k.
//! * **Funnel stats** sum field-wise: shards partition the sequences,
//!   candidate work is per-suffix, so per-shard counters add exactly.
//! * **Coverage** sums the five accounting fields across shards; a
//!   shard that answered cleanly contributes its totals as answered, a
//!   down shard contributes totals with zero answered.

use warptree_core::search::{Coverage, Match, SearchStats};
use warptree_core::sequence::{Occurrence, SeqId};
use warptree_server::json::Json;

/// Parses a response's `"matches"` array into core [`Match`]es,
/// remapping shard-local sequence ids to global ones by `start_seq`.
pub fn parse_matches(arr: &Json, start_seq: u32) -> Result<Vec<Match>, String> {
    let arr = arr.as_arr().ok_or("\"matches\" is not an array")?;
    let mut out = Vec::with_capacity(arr.len());
    for m in arr {
        let field = |k: &str| {
            m.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("match missing \"{k}\""))
        };
        let seq = field("seq")? as u32;
        let global = seq
            .checked_add(start_seq)
            .ok_or("sequence id overflows after shard remap")?;
        out.push(Match {
            occ: Occurrence::new(SeqId(global), field("start")? as u32, field("len")? as u32),
            dist: m
                .get("dist")
                .and_then(Json::as_f64)
                .ok_or("match missing \"dist\"")?,
        });
    }
    Ok(out)
}

/// Merges per-shard threshold answers into canonical occurrence order
/// (`(seq, start, len)` — what [`warptree_server::proto::encode_matches`]
/// would impose on the union).
pub fn merge_threshold(per_shard: Vec<Vec<Match>>) -> Vec<Match> {
    let mut all: Vec<Match> = per_shard.into_iter().flatten().collect();
    all.sort_by_key(|m| m.occ);
    all
}

/// Merges per-shard ranked k-NN answers: global order by
/// `(distance, occurrence)` — ties at equal distance break on the
/// occurrence, so equal-distance matches at the same shard-local
/// `(seq, start)` on different shards order by their *global* sequence
/// id, deterministically — then keeps the `k` nearest.
pub fn merge_ranked(per_shard: Vec<Vec<Match>>, k: usize) -> Vec<Match> {
    let mut all: Vec<Match> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        a.dist
            .partial_cmp(&b.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.occ.cmp(&b.occ))
    });
    all.truncate(k);
    all
}

/// Parses the 16-field `"stats"` object of an `explain` response.
pub fn parse_stats(v: &Json) -> Result<SearchStats, String> {
    let field = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("stats missing \"{k}\""))
    };
    Ok(SearchStats {
        filter_cells: field("filter_cells")?,
        nodes_visited: field("nodes_visited")?,
        nodes_expanded: field("nodes_expanded")?,
        rows_pushed: field("rows_pushed")?,
        rows_unshared: field("rows_unshared")?,
        branches_pruned: field("branches_pruned")?,
        candidates: field("candidates")?,
        stored_candidates: field("stored_candidates")?,
        lb2_candidates: field("lb2_candidates")?,
        postprocessed: field("postprocessed")?,
        postprocess_cells: field("postprocess_cells")?,
        false_alarms: field("false_alarms")?,
        answers: field("answers")?,
        cascade_lb_keogh_kills: field("cascade_lb_keogh_kills")?,
        cascade_lb_improved_kills: field("cascade_lb_improved_kills")?,
        cascade_abandon_kills: field("cascade_abandon_kills")?,
    })
}

/// Renders funnel stats in the server's 16-field `"stats"` object
/// shape, so a merged `explain` response is byte-comparable to a
/// monolithic one.
pub fn encode_stats(s: &SearchStats) -> String {
    format!(
        "{{\"filter_cells\":{},\"nodes_visited\":{},\"nodes_expanded\":{},\"rows_pushed\":{},\"rows_unshared\":{},\"branches_pruned\":{},\"candidates\":{},\"stored_candidates\":{},\"lb2_candidates\":{},\"postprocessed\":{},\"postprocess_cells\":{},\"false_alarms\":{},\"answers\":{},\"cascade_lb_keogh_kills\":{},\"cascade_lb_improved_kills\":{},\"cascade_abandon_kills\":{}}}",
        s.filter_cells,
        s.nodes_visited,
        s.nodes_expanded,
        s.rows_pushed,
        s.rows_unshared,
        s.branches_pruned,
        s.candidates,
        s.stored_candidates,
        s.lb2_candidates,
        s.postprocessed,
        s.postprocess_cells,
        s.false_alarms,
        s.answers,
        s.cascade_lb_keogh_kills,
        s.cascade_lb_improved_kills,
        s.cascade_abandon_kills,
    )
}

/// Parses a response's `"coverage"` object (protocol version 3).
pub fn parse_coverage(c: &Json) -> Result<Coverage, String> {
    let field = |k: &str| {
        c.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("coverage missing \"{k}\""))
    };
    Ok(Coverage {
        segments_total: field("segments_total")? as usize,
        segments_answered: field("segments_answered")? as usize,
        segments_quarantined: field("segments_quarantined")? as usize,
        suffixes_total: field("suffixes_total")?,
        suffixes_answered: field("suffixes_answered")?,
    })
}

/// Sums funnel stats field-wise across shards. Exact because shards
/// partition the corpus: every counter counts per-suffix (or per-node,
/// per-candidate) work inside one shard's slice.
pub fn sum_stats(per_shard: &[SearchStats]) -> SearchStats {
    let mut total = SearchStats::default();
    for s in per_shard {
        total.filter_cells += s.filter_cells;
        total.nodes_visited += s.nodes_visited;
        total.nodes_expanded += s.nodes_expanded;
        total.rows_pushed += s.rows_pushed;
        total.rows_unshared += s.rows_unshared;
        total.branches_pruned += s.branches_pruned;
        total.candidates += s.candidates;
        total.stored_candidates += s.stored_candidates;
        total.lb2_candidates += s.lb2_candidates;
        total.postprocessed += s.postprocessed;
        total.postprocess_cells += s.postprocess_cells;
        total.false_alarms += s.false_alarms;
        total.answers += s.answers;
        total.cascade_lb_keogh_kills += s.cascade_lb_keogh_kills;
        total.cascade_lb_improved_kills += s.cascade_lb_improved_kills;
        total.cascade_abandon_kills += s.cascade_abandon_kills;
    }
    total
}

/// What one shard contributed to a query, coverage-wise.
#[derive(Debug, Clone)]
pub enum ShardCoverage {
    /// The shard answered with no coverage block — a shard carrying
    /// quarantined segments always reports its own partial coverage,
    /// so a clean response means everything the shard holds answered.
    Full {
        /// The shard's live segment count (base + live tails — the
        /// `segments` field of its `info` response).
        segments: u64,
        /// Values (suffix positions) the shard holds.
        suffixes: u64,
    },
    /// The shard answered partially and reported its own coverage.
    Partial(Coverage),
    /// The shard did not answer; its totals (from the coordinator's
    /// cached view or the shard manifest) count as unanswered.
    Down {
        /// Last known live segment count.
        segments: u64,
        /// Last known quarantined count (part of the segment total,
        /// never of the answered count).
        quarantined: u64,
        /// Last known values.
        suffixes: u64,
    },
}

/// Sums shard coverage into the corpus-wide [`Coverage`] block.
/// Returns `None` when every shard answered fully — the merged
/// response then omits the block, byte-identical to a clean monolithic
/// response.
pub fn aggregate_coverage(shards: &[ShardCoverage]) -> Option<Coverage> {
    let mut agg = Coverage {
        segments_total: 0,
        segments_answered: 0,
        segments_quarantined: 0,
        suffixes_total: 0,
        suffixes_answered: 0,
    };
    let mut any_partial = false;
    for s in shards {
        match s {
            ShardCoverage::Full { segments, suffixes } => {
                agg.segments_total += *segments as usize;
                agg.segments_answered += *segments as usize;
                agg.suffixes_total += *suffixes;
                agg.suffixes_answered += *suffixes;
            }
            ShardCoverage::Partial(c) => {
                agg.segments_total += c.segments_total;
                agg.segments_answered += c.segments_answered;
                agg.segments_quarantined += c.segments_quarantined;
                agg.suffixes_total += c.suffixes_total;
                agg.suffixes_answered += c.suffixes_answered;
                any_partial = true;
            }
            ShardCoverage::Down {
                segments,
                quarantined,
                suffixes,
            } => {
                agg.segments_total += (*segments + *quarantined) as usize;
                agg.segments_quarantined += *quarantined as usize;
                agg.suffixes_total += *suffixes;
                any_partial = true;
            }
        }
    }
    if any_partial {
        Some(agg)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warptree_server::json;

    fn m(seq: u32, start: u32, len: u32, dist: f64) -> Match {
        Match {
            occ: Occurrence::new(SeqId(seq), start, len),
            dist,
        }
    }

    #[test]
    fn matches_parse_and_remap() {
        let v = json::parse(
            r#"[{"seq":0,"start":5,"len":3,"dist":1.5},{"seq":1,"start":0,"len":2,"dist":0.25}]"#,
        )
        .unwrap();
        let parsed = parse_matches(&v, 10).unwrap();
        assert_eq!(parsed, vec![m(10, 5, 3, 1.5), m(11, 0, 2, 0.25)]);
        assert!(parse_matches(&json::parse(r#"[{"seq":0}]"#).unwrap(), 0).is_err());
    }

    #[test]
    fn threshold_merge_interleaves_canonically() {
        let a = vec![m(0, 3, 2, 1.0), m(2, 0, 4, 2.0)];
        let b = vec![m(1, 0, 2, 0.5), m(2, 0, 3, 0.5)];
        let merged = merge_threshold(vec![a, b]);
        let occs: Vec<(u32, u32, u32)> = merged
            .iter()
            .map(|x| (x.occ.seq.0, x.occ.start, x.occ.len))
            .collect();
        assert_eq!(occs, vec![(0, 3, 2), (1, 0, 2), (2, 0, 3), (2, 0, 4)]);
    }

    #[test]
    fn ranked_merge_breaks_equal_distance_ties_by_occurrence() {
        // Two shards report the *same shard-local* (seq=0, start=5) at
        // the same distance; after remapping they are global seqs 0 and
        // 7, and the merge must order them by global id, every time.
        let shard_a = vec![m(0, 5, 3, 1.25), m(0, 9, 3, 2.0)];
        let shard_b = vec![m(7, 5, 3, 1.25), m(7, 1, 3, 1.25)];
        let merged = merge_ranked(vec![shard_a.clone(), shard_b.clone()], 3);
        let expect = vec![m(0, 5, 3, 1.25), m(7, 1, 3, 1.25), m(7, 5, 3, 1.25)];
        assert_eq!(merged, expect);
        // Shard arrival order must not matter.
        assert_eq!(merge_ranked(vec![shard_b, shard_a], 3), expect);
    }

    #[test]
    fn stats_sum_fieldwise() {
        let one = SearchStats {
            filter_cells: 1,
            nodes_visited: 2,
            nodes_expanded: 1,
            rows_pushed: 4,
            rows_unshared: 8,
            branches_pruned: 1,
            candidates: 3,
            stored_candidates: 2,
            lb2_candidates: 1,
            postprocessed: 3,
            postprocess_cells: 30,
            false_alarms: 1,
            answers: 2,
            cascade_lb_keogh_kills: 5,
            cascade_lb_improved_kills: 2,
            cascade_abandon_kills: 1,
        };
        let total = sum_stats(&[one, one]);
        assert_eq!(total.filter_cells, 2);
        assert_eq!(total.rows_unshared, 16);
        assert_eq!(total.answers, 4);
        assert_eq!(total.cascade_lb_keogh_kills, 10);
        assert_eq!(total.cascade_lb_improved_kills, 4);
        assert_eq!(total.cascade_abandon_kills, 2);
        // Round-trips through the wire encoding.
        let wire = json::parse(&encode_stats(&one)).unwrap();
        assert_eq!(parse_stats(&wire).unwrap(), one);
    }

    #[test]
    fn coverage_parses_the_wire_shape() {
        let c = Coverage {
            segments_total: 3,
            segments_answered: 2,
            segments_quarantined: 1,
            suffixes_total: 100,
            suffixes_answered: 75,
        };
        let frag = format!("{{{}}}", warptree_server::proto::encode_coverage(&c));
        let v = json::parse(&frag).unwrap();
        assert_eq!(parse_coverage(v.get("coverage").unwrap()).unwrap(), c);
        assert!(parse_coverage(&json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn coverage_aggregates_honestly() {
        // All full → no block at all.
        let clean = vec![
            ShardCoverage::Full {
                segments: 2,
                suffixes: 100,
            },
            ShardCoverage::Full {
                segments: 1,
                suffixes: 50,
            },
        ];
        assert!(aggregate_coverage(&clean).is_none());
        // One shard down: its totals count, its answers do not.
        let one_down = vec![
            ShardCoverage::Full {
                segments: 2,
                suffixes: 100,
            },
            ShardCoverage::Down {
                segments: 1,
                quarantined: 0,
                suffixes: 50,
            },
        ];
        let c = aggregate_coverage(&one_down).unwrap();
        assert!(c.is_partial());
        assert_eq!(c.segments_total, 3);
        assert_eq!(c.segments_answered, 2);
        assert_eq!(c.suffixes_total, 150);
        assert_eq!(c.suffixes_answered, 100);
        // A down shard's quarantined segments count toward its total.
        let down_degraded = vec![ShardCoverage::Down {
            segments: 2,
            quarantined: 1,
            suffixes: 40,
        }];
        let c = aggregate_coverage(&down_degraded).unwrap();
        assert_eq!(c.segments_total, 3);
        assert_eq!(c.segments_quarantined, 1);
        assert_eq!(c.segments_answered, 0);
        // A shard's own partial coverage folds in verbatim.
        let nested = vec![
            ShardCoverage::Partial(Coverage {
                segments_total: 3,
                segments_answered: 2,
                segments_quarantined: 1,
                suffixes_total: 80,
                suffixes_answered: 60,
            }),
            ShardCoverage::Full {
                segments: 1,
                suffixes: 20,
            },
        ];
        let c = aggregate_coverage(&nested).unwrap();
        assert_eq!(c.segments_total, 4);
        assert_eq!(c.segments_answered, 3);
        assert_eq!(c.segments_quarantined, 1);
        assert_eq!(c.suffixes_total, 100);
        assert_eq!(c.suffixes_answered, 80);
    }
}
