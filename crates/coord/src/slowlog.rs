//! The coordinator's slow-query ring — same wire shape as the shard
//! server's `{"op":"slowlog"}` so the same tooling reads both, but
//! owned here: the server keeps its ring private, and the entries mean
//! something different at this layer (a coordinator entry's trace
//! carries one child span per shard, attributing the latency across
//! the fan-out).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

use warptree_obs::{json as obs_json, MetricsRegistry, Trace};

/// One completed coordinated request kept by the ring.
struct SlowEntry {
    op: &'static str,
    trace_id: String,
    unix_ms: u64,
    generation: u64,
    /// Total coordinator-side latency for the request.
    dur_ns: u64,
    /// The serialized span tree, when the request was traced.
    trace_json: Option<String>,
}

/// Traces kept in the ring are capped so a pathological fan-out cannot
/// pin megabytes per entry; the entry survives with `"trace": null`.
const SLOWLOG_MAX_TRACE_BYTES: usize = 256 * 1024;

/// The bounded in-memory slow-query ring plus the tracing policy (the
/// 1-in-N sampler and the slow threshold). Mirrors the shard server's
/// ring: push is O(1) under one short-held lock, `to_json` renders
/// newest-first.
pub struct CoordSlowLog {
    entries: Mutex<VecDeque<SlowEntry>>,
    capacity: usize,
    /// Threshold in ns; `u64::MAX` when threshold capture is disabled.
    slow_ns: u64,
    /// Sample every Nth request; `0` disables sampling.
    sample_every: u64,
    seen: AtomicU64,
    registry: MetricsRegistry,
}

impl CoordSlowLog {
    /// Builds a ring holding `capacity` entries, capturing requests at
    /// or above `slow_ms` (0 disables) and sampling 1 in
    /// `trace_sample` requests (0 disables).
    pub fn new(
        capacity: usize,
        slow_ms: u64,
        trace_sample: u64,
        registry: MetricsRegistry,
    ) -> CoordSlowLog {
        CoordSlowLog {
            entries: Mutex::new(VecDeque::new()),
            capacity,
            slow_ns: match slow_ms {
                0 => u64::MAX,
                ms => ms.saturating_mul(1_000_000),
            },
            sample_every: trace_sample,
            seen: AtomicU64::new(0),
            registry,
        }
    }

    /// Decides, per request, whether the 1-in-N sampler traces this one
    /// (the first request always is, so a freshly booted coordinator
    /// with sampling on produces a trace immediately).
    pub fn sample(&self) -> bool {
        self.sample_every > 0
            && self
                .seen
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(self.sample_every)
    }

    /// Offers a completed request to the ring; kept when it was slow
    /// (threshold) or traced.
    pub fn offer(&self, op: &'static str, generation: u64, dur_ns: u64, trace: &Trace) {
        if dur_ns < self.slow_ns && !trace.is_active() {
            return;
        }
        let trace_json = trace
            .finish()
            .map(|data| data.to_json())
            .filter(|j| j.len() <= SLOWLOG_MAX_TRACE_BYTES);
        let entry = SlowEntry {
            op,
            trace_id: trace.id().unwrap_or_default().to_string(),
            unix_ms: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            generation,
            dur_ns,
            trace_json,
        };
        if dur_ns >= self.slow_ns {
            self.registry.counter("coord.slow_queries").incr();
        }
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if self.capacity == 0 {
            return;
        }
        while entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        self.registry
            .gauge("coord.slowlog_entries")
            .set(entries.len() as f64);
    }

    /// The `{"op":"slowlog"}` body: entries newest first, in the shard
    /// server's entry shape (`queue_ns` is always 0 — the coordinator
    /// has no admission queue).
    pub fn to_json(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::from("[");
        for (i, e) in entries.iter().rev().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"op\":\"{}\",\"trace_id\":\"{}\",\"unix_ms\":{},\"generation\":{},\"dur_ns\":{},\"queue_ns\":0,\"trace\":{}}}",
                e.op,
                obs_json::escape(&e.trace_id),
                e.unix_ms,
                e.generation,
                e.dur_ns,
                e.trace_json.as_deref().unwrap_or("null"),
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_slow_and_traced_entries_newest_first() {
        let log = CoordSlowLog::new(2, 1, 0, MetricsRegistry::new());
        // Below threshold, untraced: dropped.
        log.offer("search", 1, 100, &Trace::noop());
        assert_eq!(log.to_json(), "[]");
        // Slow entries land; capacity 2 evicts the oldest.
        log.offer("search", 1, 2_000_000, &Trace::noop());
        log.offer("knn", 1, 3_000_000, &Trace::noop());
        log.offer("batch", 2, 4_000_000, &Trace::noop());
        let v = warptree_server::json::parse(&log.to_json()).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].get("op").and_then(warptree_server::Json::as_str),
            Some("batch")
        );
        assert_eq!(
            arr[1].get("op").and_then(warptree_server::Json::as_str),
            Some("knn")
        );
        // A traced fast request is kept (traces are why the ring exists).
        let log = CoordSlowLog::new(4, 0, 0, MetricsRegistry::new());
        let trace = Trace::active("t-1");
        drop(trace.span("coord.service"));
        log.offer("search", 1, 10, &trace);
        let v = warptree_server::json::parse(&log.to_json()).unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 1);
    }

    #[test]
    fn sampler_fires_first_and_every_nth() {
        let log = CoordSlowLog::new(1, 0, 3, MetricsRegistry::new());
        let picks: Vec<bool> = (0..6).map(|_| log.sample()).collect();
        assert_eq!(picks, vec![true, false, false, true, false, false]);
        let off = CoordSlowLog::new(1, 0, 0, MetricsRegistry::new());
        assert!(!off.sample());
    }
}
