//! Table 1 — index sizes with increasing number of categories.
//!
//! Paper setup: 545 stock sequences (mean length 232); columns ST,
//! ST_C (EL/ME) and SST_C (EL/ME); category counts 10–300. Expected
//! shapes (paper Table 1):
//!
//! * ST is enormous (≈ 80× the database) and independent of `c`;
//! * ST_C and SST_C grow with the number of categories;
//! * SST_C < ST_C < ST at every category count;
//! * ME indexes are larger than EL (balanced categories split the long
//!   flat runs that EL lumps into one bucket).

use warptree_bench::{
    banner, build_index, database_size, disk_size, group_digits, kib, materialized_size, IndexKind,
    Method, Scale,
};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Table 1: index sizes (KiB on disk) vs. number of categories",
        scale,
    );
    let store = scale.stock();
    println!(
        "database: {} sequences, mean length {:.0}, {} KiB raw\n",
        store.len(),
        store.mean_len(),
        kib(database_size(&store))
    );

    let exact = build_index(&store, IndexKind::Exact, Method::El, 0);
    let st_size = disk_size(&exact.tree, "t1-st");
    // The paper's trees inline edge labels; ours store (seq,start,len)
    // references. Both metrics are reported: "ref" is our file size,
    // "inline" matches the paper's representation (raw 8-byte values for
    // ST, 4-byte symbols for the categorized trees).
    let st_inline = materialized_size(&exact.tree, 8);
    println!(
        "ST (uncategorized): {} KiB ref / {} KiB inline, {} nodes, \
         built in {:.2}s",
        kib(st_size),
        kib(st_inline),
        group_digits(exact.tree.node_count() as u64),
        exact.build_secs
    );

    for metric in ["ref", "inline"] {
        println!(
            "\n[{metric}] {:>6} | {:>12} {:>12} | {:>12} {:>12}",
            "#cats", "ST_C/EL", "ST_C/ME", "SST_C/EL", "SST_C/ME"
        );
        println!("{}", "-".repeat(72));
        for c in scale.category_counts() {
            let mut row = Vec::new();
            for (kind, method) in [
                (IndexKind::Full, Method::El),
                (IndexKind::Full, Method::Me),
                (IndexKind::Sparse, Method::El),
                (IndexKind::Sparse, Method::Me),
            ] {
                let built = build_index(&store, kind, method, c);
                row.push(if metric == "ref" {
                    disk_size(&built.tree, &format!("t1-{c}"))
                } else {
                    materialized_size(&built.tree, 4)
                });
            }
            println!(
                "[{metric}] {:>6} | {:>12} {:>12} | {:>12} {:>12}",
                c,
                kib(row[0]),
                kib(row[1]),
                kib(row[2]),
                kib(row[3])
            );
        }
    }
    println!(
        "\nshapes to check vs. paper Table 1 (inline metric): \
         SST_C < ST_C << ST; sizes grow with #cats; ME > EL."
    );
}
