//! `bench_report` — the perf-trajectory snapshot. Runs the Table-1/2
//! workload (stock corpus, stratified ~20-element queries, ME
//! categorization swept over category counts) through SeqScan and both
//! tree variants, and writes one machine-readable `BENCH_search.json`
//! with latency percentiles and the filter-funnel counters.
//!
//! Committing the file after a perf-relevant change gives the repo a
//! diffable trajectory: reviewers compare p50/p95 and candidate ratios
//! across commits instead of rerunning the whole suite.
//!
//! ```text
//! cargo run --release -p warptree-bench --bin bench_report -- \
//!     [--full] [--out BENCH_search.json]
//! ```

use std::sync::Arc;
use std::time::Instant;
use warptree_bench::{banner, build_index, IndexKind, Method, Scale};
use warptree_core::categorize::Alphabet;
use warptree_core::search::{
    run_query_with, seq_scan, BackendKind, QueryRequest, SearchMetrics, SearchParams, SearchStats,
    SeqScanMode,
};
use warptree_obs::json::num;
use warptree_obs::HistogramSnapshot;

/// One measured workload row, ready to serialize.
struct Row {
    strategy: &'static str,
    categories: Option<usize>,
    /// Worker subthreads per query (1 = sequential execution).
    threads: u32,
    /// Whether the lower-bound cascade screened candidates ahead of the
    /// exact tables (for SeqScan: [`SeqScanMode::Cascade`] vs
    /// early-abandon). Ablation pairs differ only in this flag.
    cascade: bool,
    latencies: Vec<f64>,
    answers: u64,
    stats: SearchStats,
    /// Per-stage wall-time breakdown (filter vs. postprocess), from
    /// the `SearchMetrics` phase histograms. `None` for SeqScan, which
    /// has no funnel stages.
    stages: Option<(HistogramSnapshot, HistogramSnapshot)>,
}

/// Renders one phase histogram as `{"p50_us":…,"p95_us":…,"mean_us":…}`
/// (values recorded in ns, reported in µs).
fn stage_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"p50_us\":{},\"p95_us\":{},\"mean_us\":{}}}",
        num(h.quantile(0.50) as f64 / 1e3),
        num(h.quantile(0.95) as f64 / 1e3),
        num(h.mean() / 1e3),
    )
}

impl Row {
    fn quantile(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies.len() - 1) as f64 * q).round() as usize;
        self.latencies[idx]
    }

    fn to_json(&self, queries: u64) -> String {
        let n = queries.max(1) as f64;
        let mean_ms = 1e3 * self.latencies.iter().sum::<f64>() / n;
        // Filter selectivity: exact-DTW checks per reported answer. 1.0
        // is a perfect filter; SeqScan's value is the worst case.
        let candidate_ratio = self.stats.postprocessed as f64 / self.answers.max(1) as f64;
        let s = &self.stats;
        format!(
            concat!(
                "{{\"strategy\":\"{}\",\"categories\":{},\"threads\":{},",
                "\"cascade\":{},",
                "\"latency_ms\":{{\"p50\":{},\"p95\":{},\"mean\":{}}},",
                "\"answers_per_query\":{},\"candidates_per_query\":{},",
                "\"candidate_ratio\":{},\"stages\":{},",
                "\"counters\":{{\"nodes_visited\":{},\"branches_pruned\":{},",
                "\"candidates\":{},\"false_alarms\":{},",
                "\"filter_cells\":{},\"postprocess_cells\":{},",
                "\"rows_pushed\":{},\"rows_unshared\":{},",
                "\"cascade_lb_keogh_kills\":{},\"cascade_lb_improved_kills\":{},",
                "\"cascade_abandon_kills\":{}}}}}"
            ),
            self.strategy,
            match self.categories {
                Some(c) => c.to_string(),
                None => "null".into(),
            },
            self.threads,
            self.cascade,
            num(1e3 * self.quantile(0.5)),
            num(1e3 * self.quantile(0.95)),
            num(mean_ms),
            num(self.answers as f64 / n),
            num(s.postprocessed as f64 / n),
            num(candidate_ratio),
            match &self.stages {
                Some((filter, post)) => format!(
                    "{{\"filter\":{},\"postprocess\":{}}}",
                    stage_json(filter),
                    stage_json(post)
                ),
                None => "null".into(),
            },
            s.nodes_visited,
            s.branches_pruned,
            s.candidates,
            s.false_alarms,
            s.filter_cells,
            s.postprocess_cells,
            s.rows_pushed,
            s.rows_unshared,
            s.cascade_lb_keogh_kills,
            s.cascade_lb_improved_kills,
            s.cascade_abandon_kills,
        )
    }
}

fn main() {
    let scale = Scale::from_args();
    banner("Perf-trajectory report (BENCH_search.json)", scale);
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2)
            .find(|w| w[0] == "--out")
            .map(|w| w[1].clone())
            .unwrap_or_else(|| "BENCH_search.json".into())
    };
    let store = scale.stock();
    let queries = scale.queries(&store);
    let epsilon = match scale {
        Scale::Quick => 10.0,
        Scale::Full => 20.0,
    };
    let params = SearchParams::with_epsilon(epsilon);
    let mut rows: Vec<Row> = Vec::new();

    // SeqScan baselines: early-abandon (cascade=false) and the
    // envelope-cascaded scan (cascade=true) — same answers, fewer rows.
    for (mode, cascade) in [
        (SeqScanMode::EarlyAbandon, false),
        (SeqScanMode::Cascade, true),
    ] {
        let mut row = Row {
            strategy: "seqscan",
            categories: None,
            threads: 1,
            cascade,
            latencies: Vec::new(),
            answers: 0,
            stats: SearchStats::default(),
            stages: None,
        };
        for q in queries.queries() {
            let mut stats = SearchStats::default();
            let t0 = Instant::now();
            let answers = seq_scan(&store, &q.values, &params, mode, &mut stats);
            row.latencies.push(t0.elapsed().as_secs_f64());
            row.answers += answers.len() as u64;
            row.stats.merge(&stats);
        }
        row.latencies.sort_by(|a, b| a.total_cmp(b));
        println!(
            "{:>8} {:>5} | p50 {:>8.3} ms | p95 {:>8.3} ms | cascade {}",
            row.strategy,
            "-",
            1e3 * row.quantile(0.5),
            1e3 * row.quantile(0.95),
            cascade
        );
        rows.push(row);
    }

    for cats in scale.category_counts() {
        for (kind, strategy) in [(IndexKind::Full, "full"), (IndexKind::Sparse, "sparse")] {
            let built = build_index(&store, kind, Method::Me, cats);
            // Ablation pair: the same workload with the lower-bound
            // cascade on and off. Answers must agree exactly (the
            // cascade is provably no-false-dismissal); the off row
            // prices the false-alarm tax the cascade removes.
            let mut pair_answers = [0u64; 2];
            for (slot, cascade) in [(0usize, true), (1, false)] {
                // One metrics handle for the whole workload: the
                // snapshot is the per-workload aggregate of every
                // funnel counter.
                let metrics = SearchMetrics::new();
                let mut row = Row {
                    strategy,
                    categories: Some(cats),
                    threads: 1,
                    cascade,
                    latencies: Vec::new(),
                    answers: 0,
                    stats: SearchStats::default(),
                    stages: None,
                };
                let cp = params.clone().cascaded(cascade);
                for q in queries.queries() {
                    let req = QueryRequest::threshold_params(&q.values, cp.clone());
                    let t0 = Instant::now();
                    let answers =
                        run_query_with(&built.tree, &built.alphabet, &store, &req, &metrics)
                            .unwrap()
                            .into_answer_set();
                    row.latencies.push(t0.elapsed().as_secs_f64());
                    row.answers += answers.len() as u64;
                }
                row.stats = metrics.snapshot();
                row.stages = Some((
                    metrics.filter_ns.snapshot(),
                    metrics.postprocess_ns.snapshot(),
                ));
                row.latencies.sort_by(|a, b| a.total_cmp(b));
                println!(
                    "{:>8} {:>5} | p50 {:>8.3} ms | p95 {:>8.3} ms | {:>6.1} checks/answer | cascade {}",
                    row.strategy,
                    cats,
                    1e3 * row.quantile(0.5),
                    1e3 * row.quantile(0.95),
                    row.stats.postprocessed as f64 / row.answers.max(1) as f64,
                    cascade
                );
                pair_answers[slot] = row.answers;
                rows.push(row);
            }
            assert_eq!(
                pair_answers[0], pair_answers[1],
                "cascade changed the answer count ({strategy}, {cats} categories)"
            );
        }
    }

    // Parallel-execution trajectory: the same workload on the best
    // category count, threads=1 vs threads=N. Answers (and every
    // deterministic counter) are byte-identical across rows; only the
    // latency columns should move.
    {
        let cats = *scale
            .category_counts()
            .last()
            .expect("non-empty category sweep");
        // At least 4 worker subthreads even on small machines, so the
        // committed trajectory always carries a real fan-out row.
        let par = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(4, 8) as u32;
        let built = build_index(&store, IndexKind::Sparse, Method::Me, cats);
        for threads in [1, par] {
            let tp = params.clone().parallel(threads);
            let metrics = SearchMetrics::new();
            let mut row = Row {
                strategy: "sparse",
                categories: Some(cats),
                threads,
                cascade: true,
                latencies: Vec::new(),
                answers: 0,
                stats: SearchStats::default(),
                stages: None,
            };
            for q in queries.queries() {
                let req = QueryRequest::threshold_params(&q.values, tp.clone());
                let t0 = Instant::now();
                let answers = run_query_with(&built.tree, &built.alphabet, &store, &req, &metrics)
                    .unwrap()
                    .into_answer_set();
                row.latencies.push(t0.elapsed().as_secs_f64());
                row.answers += answers.len() as u64;
            }
            row.stats = metrics.snapshot();
            row.stages = Some((
                metrics.filter_ns.snapshot(),
                metrics.postprocess_ns.snapshot(),
            ));
            row.latencies.sort_by(|a, b| a.total_cmp(b));
            println!(
                "{:>8} {:>5} | p50 {:>8.3} ms | p95 {:>8.3} ms | threads {}",
                row.strategy,
                cats,
                1e3 * row.quantile(0.5),
                1e3 * row.quantile(0.95),
                threads
            );
            rows.push(row);
        }
    }

    // Backend race: the same 10-category sparse workload built as a
    // disk-resident suffix tree vs. an enhanced suffix array. Answers
    // are byte-identical (the equivalence suite proves it); these rows
    // price the difference — build time, resident index bytes, and
    // query latency — and gate the ESA's memory claim: its resident
    // footprint must stay at or below half the tree's.
    let race_rows: Vec<String> = {
        let cats = 10usize;
        let alphabet = Alphabet::max_entropy(&store, cats).expect("alphabet");
        let cat = Arc::new(alphabet.encode_store(&store));
        let mut resident = [0u64; 2];
        let mut out = Vec::new();
        for (slot, backend) in [BackendKind::Tree, BackendKind::Esa].into_iter().enumerate() {
            let dir = std::env::temp_dir().join(format!(
                "warptree-bkrace-{}-{}",
                std::process::id(),
                backend.as_str()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("race dir");
            let t0 = Instant::now();
            warptree_disk::build_dir_backend_with(
                warptree_disk::real_vfs(),
                &store,
                &alphabet,
                warptree_disk::TreeKind::Sparse,
                64,
                1,
                None,
                backend,
                &dir,
            )
            .expect("race build");
            let build_secs = t0.elapsed().as_secs_f64();
            let resolved =
                warptree_disk::resolve_dir_with(&warptree_disk::RealVfs, &dir).expect("resolve");
            let index = warptree_disk::AnyIndex::open_with(
                &warptree_disk::RealVfs,
                &resolved.index_path,
                cat.clone(),
                backend,
                64,
                512,
            )
            .expect("race open");
            let file_bytes = std::fs::metadata(&resolved.index_path).expect("stat").len();
            let metrics = SearchMetrics::new();
            let mut latencies = Vec::new();
            let mut answers = 0u64;
            for q in queries.queries() {
                let req = QueryRequest::threshold_params(&q.values, params.clone());
                let t0 = Instant::now();
                let got = run_query_with(&index, &alphabet, &store, &req, &metrics)
                    .unwrap()
                    .into_answer_set();
                latencies.push(t0.elapsed().as_secs_f64());
                answers += got.len() as u64;
            }
            latencies.sort_by(|a, b| a.total_cmp(b));
            let quantile = |q: f64| -> f64 {
                latencies[((latencies.len() - 1) as f64 * q).round() as usize]
            };
            resident[slot] = index.resident_bytes();
            println!(
                "{:>8} {:>5} | p50 {:>8.3} ms | p95 {:>8.3} ms | build {:>6.1} ms | resident {} KiB",
                backend.as_str(),
                cats,
                1e3 * quantile(0.5),
                1e3 * quantile(0.95),
                1e3 * build_secs,
                resident[slot] / 1024,
            );
            out.push(format!(
                concat!(
                    "{{\"backend\":\"{}\",\"categories\":{},",
                    "\"build_ms\":{},\"resident_bytes\":{},\"file_bytes\":{},",
                    "\"latency_ms\":{{\"p50\":{},\"p95\":{},\"mean\":{}}},",
                    "\"answers_per_query\":{}}}"
                ),
                backend.as_str(),
                cats,
                num(1e3 * build_secs),
                resident[slot],
                file_bytes,
                num(1e3 * quantile(0.5)),
                num(1e3 * quantile(0.95)),
                num(1e3 * latencies.iter().sum::<f64>() / latencies.len().max(1) as f64),
                num(answers as f64 / latencies.len().max(1) as f64),
            ));
            std::fs::remove_dir_all(&dir).ok();
        }
        assert!(
            resident[1] * 2 <= resident[0],
            "ESA resident bytes ({}) exceed half the tree's ({})",
            resident[1],
            resident[0]
        );
        out
    };

    let nq = queries.len() as u64;
    let body: Vec<String> = rows.iter().map(|r| r.to_json(nq)).collect();
    let json = format!(
        concat!(
            "{{\"workload\":{{\"scale\":\"{}\",\"sequences\":{},",
            "\"elements\":{},\"queries\":{},\"epsilon\":{},",
            "\"method\":\"ME\"}},\"rows\":[{}],\"backend_race\":[{}]}}"
        ),
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        store.len(),
        store.total_len(),
        nq,
        num(epsilon),
        body.join(","),
        race_rows.join(",")
    );
    std::fs::write(&out, json + "\n").expect("write report");
    println!("\nwrote {out}");
}
