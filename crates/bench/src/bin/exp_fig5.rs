//! Figure 5 — scalability with the number of sequences.
//!
//! Paper setup: artificial sequences of length 200, count swept 1000 →
//! 10000, ME-based `SimSearch-SST_C` vs. sequential scanning. Expected
//! shapes (paper Figure 5): both curves grow *linearly* with the number
//! of sequences; the index's advantage is maintained throughout.

use warptree_bench::{
    banner, build_index, csv_row, csv_sink, database_size, measure_index, measure_seqscan, to_disk,
    IndexKind, Method, Scale,
};
use warptree_core::search::{SearchParams, SeqScanMode};
use warptree_data::{artificial_corpus, ArtificialConfig, QueryConfig, QueryWorkload};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 5: query time vs. number of sequences", scale);
    let (len, counts, n_queries): (usize, Vec<usize>, usize) = match scale {
        Scale::Quick => (100, vec![100, 200, 400, 700, 1000], 4),
        Scale::Full => (200, vec![1000, 2500, 5000, 7500, 10000], 8),
    };
    let epsilon = 10.0;
    let cats = 20;

    println!(
        "sequences of length {len}, ε = {epsilon}, SST_C/ME with {cats} \
         categories\n"
    );
    println!(
        "{:>8} | {:>12} {:>12} | {:>8} | {:>10}",
        "#seqs", "SeqScan(s)", "SST_C(s)", "speedup", "build(s)"
    );
    println!("{}", "-".repeat(62));
    let mut csv = csv_sink("fig5", "sequences,seqscan_s,sst_s,build_s");
    for &n in &counts {
        let store = artificial_corpus(&ArtificialConfig {
            sequences: n,
            len,
            len_jitter: 0,
            seed: 0xF15_0000 + n as u64,
            ..Default::default()
        });
        let queries = QueryWorkload::draw(
            &store,
            &QueryConfig {
                count: n_queries,
                mean_len: 20,
                len_jitter: 4,
                noise_std: 0.5,
                bands: None,
                ..Default::default()
            },
        );
        let params = SearchParams::with_epsilon(epsilon);
        let scan = measure_seqscan(&store, &queries, &params, SeqScanMode::Full);
        let built = build_index(&store, IndexKind::Sparse, Method::Me, cats);
        let dsk = to_disk(&built, "fig", database_size(&store));
        let idx = measure_index(&dsk.disk, &built.alphabet, &store, &queries, &params);
        println!(
            "{:>8} | {:>12.3} {:>12.3} | {:>7.1}x | {:>10.2}",
            n,
            scan.secs_per_query,
            idx.secs_per_query,
            scan.secs_per_query / idx.secs_per_query,
            built.build_secs
        );
        csv_row(
            &mut csv,
            &format!(
                "{n},{},{},{}",
                scan.secs_per_query, idx.secs_per_query, built.build_secs
            ),
        );
    }
    println!(
        "\nshapes to check vs. paper Figure 5: both curves grow linearly \
         with the number of sequences; the index advantage persists."
    );
}
