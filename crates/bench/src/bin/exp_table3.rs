//! Table 3 — sequential scanning vs. `SimSearch-SST_C` (ME) with
//! increasing distance-threshold ε.
//!
//! Paper setup: ME-based SST_C with 10, 20, and 80 categories; ε from 5
//! to 50. Expected shapes (paper Table 3):
//!
//! * SeqScan time is nearly flat in ε;
//! * the index is faster at every ε, with the gap largest at small ε
//!   (up to ≈ 35× with 80 categories in the paper);
//! * more categories → faster queries (at these counts) at the cost of
//!   index size;
//! * answer counts grow steeply with ε.

use warptree_bench::{
    banner, build_index, csv_row, csv_sink, database_size, measure_index, measure_seqscan, to_disk,
    IndexKind, Method, Scale,
};
use warptree_core::search::{SearchParams, SeqScanMode};

fn main() {
    let scale = Scale::from_args();
    banner("Table 3: SeqScan vs. SimSearch-SST_C over ε", scale);
    let store = scale.stock();
    let queries = scale.queries(&store);
    let cats = [10usize, 20, 80];
    let epsilons: Vec<f64> = match scale {
        Scale::Quick => vec![2.5, 5.0, 10.0, 15.0, 20.0, 25.0],
        Scale::Full => vec![5.0, 10.0, 20.0, 30.0, 40.0, 50.0],
    };

    let cache = database_size(&store);
    let indexes: Vec<_> = cats
        .iter()
        .map(|&c| {
            let built = build_index(&store, IndexKind::Sparse, Method::Me, c);
            let disk = to_disk(&built, &format!("t3-{c}"), cache);
            (built, disk)
        })
        .collect();

    let mut csv = csv_sink(
        "table3",
        "epsilon,seqscan_s,sst10_s,sst20_s,sst80_s,sst80_p95_s,answers",
    );
    println!(
        "{:>6} | {:>10} | {:>10} {:>10} {:>10} | {:>9}",
        "ε", "SeqScan", "SST(10)", "SST(20)", "SST(80)", "answers"
    );
    println!("{}", "-".repeat(70));
    for &eps in &epsilons {
        let params = SearchParams::with_epsilon(eps);
        let scan = measure_seqscan(&store, &queries, &params, SeqScanMode::Full);
        let mut cols = Vec::new();
        for (built, disk) in &indexes {
            cols.push(measure_index(
                &disk.disk,
                &built.alphabet,
                &store,
                &queries,
                &params,
            ));
        }
        println!(
            "{:>6.1} | {:>10.3} | {:>10.3} {:>10.3} {:>10.3} | {:>9.0}",
            eps,
            scan.secs_per_query,
            cols[0].secs_per_query,
            cols[1].secs_per_query,
            cols[2].secs_per_query,
            scan.answers_per_query
        );
        let speedups: Vec<String> = cols
            .iter()
            .map(|m| format!("{:.1}x", scan.secs_per_query / m.secs_per_query))
            .collect();
        println!(
            "{:>6} | {:>10} | {:>10} {:>10} {:>10} |",
            "", "speedup", speedups[0], speedups[1], speedups[2]
        );
        // Tail latency of the best configuration.
        println!(
            "{:>6} | {:>10} | {:>10} {:>10} {:>10} |",
            "",
            "p95",
            format!("{:.3}", cols[0].quantile(0.95)),
            format!("{:.3}", cols[1].quantile(0.95)),
            format!("{:.3}", cols[2].quantile(0.95)),
        );
        csv_row(
            &mut csv,
            &format!(
                "{eps},{},{},{},{},{},{}",
                scan.secs_per_query,
                cols[0].secs_per_query,
                cols[1].secs_per_query,
                cols[2].secs_per_query,
                cols[2].quantile(0.95),
                scan.answers_per_query
            ),
        );
    }
    println!(
        "\nshapes to check vs. paper Table 3: index wins at every ε; \
         speedup grows with #categories and shrinks as ε grows."
    );
}
