//! Ablations beyond the paper's tables, isolating each design choice:
//!
//! * **A — Theorem-1 early abandoning in SeqScan**: how much of the
//!   speed-up is pruning alone, without any index?
//! * **B — warping-window depth limiting (paper §8)**: the future-work
//!   optimization of bounding answer lengths via a Sakoe–Chiba band.
//! * **C — disk vs. memory traversal**: the cost of paging + CRC +
//!   record decoding on the same tree.
//! * **D — merge fan-in**: incremental construction cost vs. batch
//!   size (paper §4.1's binary-merge pipeline).
//! * **E — §8 truncated index**: space and time when query lengths are
//!   known in advance.
//! * **F — segment-aligned matching (paper ref [14])**: how many true
//!   answers boundary-aligned matching dismisses.

use std::sync::Arc;
use std::time::Instant;

use warptree_bench::{
    banner, build_index, kib, materialized_size, measure_index, measure_seqscan, IndexKind, Method,
    Scale,
};
use warptree_core::search::{SearchParams, SeqScanMode};
use warptree_disk::{DiskTree, IncrementalBuilder, TreeKind};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Ablations: pruning, window, disk overhead, merge fan-in",
        scale,
    );
    let store = scale.stock();
    let queries = scale.queries(&store);
    let epsilon = match scale {
        Scale::Quick => 15.0,
        Scale::Full => 30.0,
    };
    let params = SearchParams::with_epsilon(epsilon);

    // --- A: early abandoning in the scan --------------------------------
    println!("\n[A] SeqScan: full tables vs. Theorem-1 early abandoning");
    let full = measure_seqscan(&store, &queries, &params, SeqScanMode::Full);
    let ea = measure_seqscan(&store, &queries, &params, SeqScanMode::EarlyAbandon);
    println!(
        "    full:          {:>8.3} s/query  {:>12.2e} cells",
        full.secs_per_query, full.cells_per_query
    );
    println!(
        "    early-abandon: {:>8.3} s/query  {:>12.2e} cells  ({:.1}x)",
        ea.secs_per_query,
        ea.cells_per_query,
        full.secs_per_query / ea.secs_per_query
    );

    // --- B: warping-window depth limiting -------------------------------
    println!("\n[B] SST_C/ME(40): unconstrained vs. warping window");
    let built = build_index(&store, IndexKind::Sparse, Method::Me, 40);
    let unconstrained = measure_index(&built.tree, &built.alphabet, &store, &queries, &params);
    for w in [2u32, 5, 10] {
        let wp = SearchParams::with_epsilon(epsilon).windowed(w);
        let m = measure_index(&built.tree, &built.alphabet, &store, &queries, &wp);
        println!(
            "    w = {w:>2}: {:>8.3} s/query, {:>9.0} answers \
             (unconstrained: {:.3} s, {:.0} answers)",
            m.secs_per_query,
            m.answers_per_query,
            unconstrained.secs_per_query,
            unconstrained.answers_per_query
        );
    }

    // --- C: disk vs. memory traversal ------------------------------------
    println!("\n[C] same SST_C/ME(40) tree: in-memory vs. on-disk cursor");
    let dir = std::env::temp_dir().join(format!("warptree-ablation-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tree_path = dir.join("ablation.wt");
    let size = warptree_disk::write_tree(&built.tree, &tree_path).unwrap();
    let disk = DiskTree::open(&tree_path, built.cat.clone(), 256, 4096).unwrap();
    let mem = measure_index(&built.tree, &built.alphabet, &store, &queries, &params);
    let dsk = measure_index(&disk, &built.alphabet, &store, &queries, &params);
    println!(
        "    memory: {:>8.3} s/query   disk: {:>8.3} s/query \
         ({:.2}x overhead, {} KiB file)",
        mem.secs_per_query,
        dsk.secs_per_query,
        dsk.secs_per_query / mem.secs_per_query,
        kib(size)
    );
    let io = disk.io_stats();
    println!(
        "    pager: {} pages read, {} cache hits",
        io.pages_read, io.cache_hits
    );

    // --- D: merge fan-in --------------------------------------------------
    println!("\n[D] incremental construction: build time vs. batch size");
    let batches = match scale {
        Scale::Quick => vec![store.len(), store.len() / 4, store.len() / 16],
        Scale::Full => vec![
            store.len(),
            store.len() / 4,
            store.len() / 16,
            store.len() / 64,
        ],
    };
    for batch in batches {
        let batch = batch.max(1);
        let out = dir.join(format!("incr-{batch}.wt"));
        let t0 = Instant::now();
        let size = IncrementalBuilder::new(built.cat.clone(), TreeKind::Sparse, batch, dir.clone())
            .build(&out)
            .unwrap();
        println!(
            "    batch {:>5}: {:>7.2}s, final file {:>9} KiB",
            batch,
            t0.elapsed().as_secs_f64(),
            kib(size)
        );
    }
    // Verify the incremental result answers like the direct tree.
    let incr_path = dir.join(format!("incr-{}.wt", 1.max(store.len() / 16)));
    if incr_path.exists() {
        let incr = DiskTree::open(&incr_path, built.cat.clone(), 256, 4096).unwrap();
        let a = measure_index(&incr, &built.alphabet, &store, &queries, &params);
        assert_eq!(a.answers_per_query, mem.answers_per_query);
        println!("    (merged index verified: identical answers)");
    }
    // --- E: §8 truncated index -------------------------------------------
    println!("\n[E] truncated SST_C/ME(40) for queries of length 16..24, w = 5");
    let spec = warptree_suffix::TruncateSpec::for_queries(16, 24, 5);
    let t0 = Instant::now();
    let trunc = warptree_suffix::build_sparse_truncated(built.cat.clone(), spec);
    let trunc_build = t0.elapsed().as_secs_f64();
    let trunc_path = dir.join("trunc.wt");
    std::fs::create_dir_all(&dir).unwrap();
    let trunc_size = warptree_disk::write_tree(&trunc, &trunc_path).unwrap();
    let full_size = warptree_disk::write_tree(&built.tree, &tree_path).unwrap();
    let wp = SearchParams::with_epsilon(epsilon).windowed(5);
    let full_m = measure_index(&built.tree, &built.alphabet, &store, &queries, &wp);
    let trunc_m = measure_index(&trunc, &built.alphabet, &store, &queries, &wp);
    // The space saving shows in the inline-label metric (the ref format
    // stores labels as fixed-size references, so cutting label *length*
    // barely moves the file size).
    println!(
        "    full:      {:>9} KiB ref / {:>9} KiB inline, {:>8.3} s/query,          {:>8.0} answers",
        kib(full_size),
        kib(materialized_size(&built.tree, 4)),
        full_m.secs_per_query,
        full_m.answers_per_query
    );
    println!(
        "    truncated: {:>9} KiB ref / {:>9} KiB inline, {:>8.3} s/query,          {:>8.0} answers (built in {trunc_build:.2}s)",
        kib(trunc_size),
        kib(materialized_size(&trunc, 4)),
        trunc_m.secs_per_query,
        trunc_m.answers_per_query
    );
    assert_eq!(
        full_m.answers_per_query, trunc_m.answers_per_query,
        "truncation must not change windowed answers"
    );

    // --- F: aligned matching's false dismissals ---------------------------
    println!("\n[F] segment-aligned matching (ref [14]) vs. full search");
    use warptree_core::search::{aligned_scan, seq_scan, SearchStats};
    let q = &queries.queries()[0].values;
    let fp = SearchParams::with_epsilon(epsilon);
    let mut full_stats = SearchStats::default();
    let truth = seq_scan(&store, q, &fp, SeqScanMode::Full, &mut full_stats).occurrence_set();
    for seg in [4u32, 8, 16] {
        let mut stats = SearchStats::default();
        let aligned = aligned_scan(&store, q, &fp, seg, &mut stats).occurrence_set();
        let found = aligned
            .iter()
            .filter(|o| truth.binary_search(o).is_ok())
            .count();
        println!(
            "    segments of {seg:>2}: {:>8} of {:>8} true answers found              ({:.1}% dismissed)",
            found,
            truth.len(),
            100.0 * (truth.len() - found) as f64 / truth.len().max(1) as f64
        );
    }

    let _ = Arc::strong_count(&built.cat);
    std::fs::remove_dir_all(&dir).ok();
}
