//! Measuring the paper's reduction factors `R_d` and `R_p` (§4.3, §5.5).
//!
//! The paper's complexity model says `SimSearch` costs
//! `O(M·L̄²·|Q| / (R_d · R_p))`:
//!
//! * `R_d` — savings from *sharing* cumulative-table rows across all
//!   suffixes with a common prefix. Measured as
//!   `(rows a sequential scan pushes) / (rows an unpruned tree
//!   traversal pushes)` — pure tree structure, independent of ε.
//! * `R_p` — savings from Theorem-1 *pruning*. Measured as
//!   `(unpruned tree rows) / (pruned tree rows at ε)` — grows as ε
//!   shrinks.
//!
//! The paper derives both factors but never reports them; this
//! experiment fills that gap and confirms the trends the analysis
//! predicts: `R_d` grows as categories shrink (more shared prefixes),
//! `R_p` grows as ε shrinks.

use warptree_bench::{banner, build_index, IndexKind, Method, Scale};
use warptree_core::search::{filter_tree, SearchMetrics, SearchParams};

fn main() {
    let scale = Scale::from_args();
    banner("Reduction factors R_d (sharing) and R_p (pruning)", scale);
    let store = scale.stock();
    let queries = scale.queries(&store);
    // Rows a sequential scan pushes: one per (suffix, prefix) pair.
    let scan_rows: u64 = store
        .iter()
        .map(|(_, s)| (s.len() * (s.len() + 1) / 2) as u64)
        .sum();
    println!(
        "database: {} sequences, {} suffixes, {} scan rows/query\n",
        store.len(),
        store.total_len(),
        scan_rows
    );

    let epsilons: Vec<f64> = match scale {
        Scale::Quick => vec![2.5, 10.0, 25.0],
        Scale::Full => vec![5.0, 20.0, 50.0],
    };
    println!(
        "{:>6} {:>7} | {:>8} | {}",
        "#cats",
        "tree",
        "R_d",
        epsilons
            .iter()
            .map(|e| format!("{:>10}", format!("R_p(ε={e})")))
            .collect::<String>()
    );
    println!("{}", "-".repeat(30 + 10 * epsilons.len()));
    for cats in [10usize, 40, 120] {
        for (kind, tag) in [(IndexKind::Full, "ST_C"), (IndexKind::Sparse, "SST_C")] {
            let built = build_index(&store, kind, Method::Me, cats);
            // Unpruned traversal: a threshold no distance can exceed.
            let unpruned_rows = mean_rows(&built, &store, &queries, 1e18);
            let r_d = scan_rows as f64 / unpruned_rows;
            let mut rps = String::new();
            for &eps in &epsilons {
                let rows = mean_rows(&built, &store, &queries, eps);
                rps.push_str(&format!("{:>10.1}", unpruned_rows / rows));
            }
            println!("{:>6} {:>7} | {:>8.2} | {}", cats, tag, r_d, rps);
        }
    }
    println!(
        "\nshapes to check vs. §4.3/§5.5: R_d > 1 and grows as categories \
         shrink; R_p grows as ε shrinks; the product matches the observed \
         speed-ups."
    );
}

/// Mean filter rows per query at threshold `eps` (filter only — the
/// factors describe the traversal, not post-processing).
fn mean_rows(
    built: &warptree_bench::BuiltIndex,
    store: &warptree_core::sequence::SequenceStore,
    queries: &warptree_data::QueryWorkload,
    eps: f64,
) -> f64 {
    let _ = store;
    let params = SearchParams::with_epsilon(eps);
    let mut total = 0u64;
    for q in queries.queries() {
        let metrics = SearchMetrics::new();
        let _ = filter_tree(&built.tree, &built.alphabet, &q.values, &params, &metrics);
        total += metrics.snapshot().rows_pushed;
    }
    total as f64 / queries.len().max(1) as f64
}
