//! Table 2 — average query processing time of the three search
//! algorithms with increasing number of categories (ε fixed).
//!
//! Paper setup: stock corpus, average distance-tolerance 30, mean query
//! length 20. Expected shapes (paper Table 2):
//!
//! * `SimSearch-ST` is a single column (category-independent) and slower
//!   than the categorized searches at their sweet spot;
//! * categorized searches get faster as categories increase, then slow
//!   down past an optimum (the U-shape; the paper reports optima around
//!   120–200 categories);
//! * `SimSearch-SST_C` ≤ `SimSearch-ST_C` on similar-size indexes.

use warptree_bench::{
    banner, build_index, database_size, measure_index, to_disk, IndexKind, Method, Scale,
};
use warptree_core::search::SearchParams;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Table 2: mean query time (s) vs. number of categories",
        scale,
    );
    let store = scale.stock();
    let queries = scale.queries(&store);
    let epsilon = match scale {
        Scale::Quick => 15.0,
        Scale::Full => 30.0, // the paper's average distance-tolerance
    };
    let params = SearchParams::with_epsilon(epsilon);
    println!(
        "ε = {epsilon}, {} queries of mean length 20\n",
        queries.len()
    );

    // All indexes are measured disk-resident with a database-sized
    // buffer pool — the paper's limited-memory, disk-based setting.
    let cache = database_size(&store);
    let exact = build_index(&store, IndexKind::Exact, Method::El, 0);
    let st_disk = to_disk(&exact, "t2-st", cache);
    let st = measure_index(&st_disk.disk, &exact.alphabet, &store, &queries, &params);
    println!(
        "SimSearch-ST: {:.3} s/query ({:.1}M cells, {:.0} answers)\n",
        st.secs_per_query,
        st.cells_per_query / 1e6,
        st.answers_per_query
    );

    println!(
        "{:>6} | {:>11} {:>11} | {:>11} {:>11}",
        "#cats", "ST_C/EL", "ST_C/ME", "SST_C/EL", "SST_C/ME"
    );
    println!("{}", "-".repeat(60));
    for c in scale.category_counts() {
        let mut cols = Vec::new();
        for (kind, method) in [
            (IndexKind::Full, Method::El),
            (IndexKind::Full, Method::Me),
            (IndexKind::Sparse, Method::El),
            (IndexKind::Sparse, Method::Me),
        ] {
            let built = build_index(&store, kind, method, c);
            let dsk = to_disk(&built, &format!("t2-{c}"), cache);
            let m = measure_index(&dsk.disk, &built.alphabet, &store, &queries, &params);
            cols.push(m);
        }
        println!(
            "{:>6} | {:>11.3} {:>11.3} | {:>11.3} {:>11.3}",
            c,
            cols[0].secs_per_query,
            cols[1].secs_per_query,
            cols[2].secs_per_query,
            cols[3].secs_per_query
        );
        // Machine-independent cost: table cells (filter + post-process).
        println!(
            "{:>6} | {:>10.2}M {:>10.2}M | {:>10.2}M {:>10.2}M",
            "cells",
            cols[0].cells_per_query / 1e6,
            cols[1].cells_per_query / 1e6,
            cols[2].cells_per_query / 1e6,
            cols[3].cells_per_query / 1e6
        );
    }
    println!(
        "\nshapes to check vs. paper Table 2: time falls then rises with \
         #cats (U-shape); SST_C ≤ ST_C; ME best at small #cats."
    );
}
